//! The §6 NLP pipeline in isolation: language filter → dedup → embed →
//! reduce → HDBSCAN → c-TF-IDF keywords → vetting → taxonomy.
//!
//! Generates a labeled synthetic corpus (so precision/recall against
//! ground truth can be printed) and runs both clustering backends.
//!
//! ```sh
//! cargo run --release --example scam_pipeline
//! ```

use acctrade::core::scamposts::{
    analyze, synthetic_posts, ClusterBackend, ScamPipelineConfig,
};

fn main() {
    // 60 posts per scam subcategory (16 of them), 25 per benign topic (70).
    let posts = synthetic_posts(60, 25, 7);
    let truth_scam = 16 * 60;
    println!(
        "corpus: {} posts ({truth_scam} scam by construction)\n",
        posts.len()
    );

    for (name, backend) in [
        ("HDBSCAN (paper-faithful)", ClusterBackend::Hdbscan { min_cluster_size: 3 }),
        ("DBSCAN baseline", ClusterBackend::Dbscan { eps: 0.35, min_pts: 3 }),
    ] {
        let cfg = ScamPipelineConfig { backend, ..Default::default() };
        let a = analyze(&posts, cfg);
        println!("== {name} ==");
        println!("  english posts:    {}", a.english_posts);
        println!("  unique documents: {}", a.unique_documents);
        println!("  clusters:         {} ({} scam)", a.clusters.len(), a.scam_cluster_count);
        println!(
            "  scam posts found: {} / {truth_scam} ({:.0}% recall)",
            a.total_scam_posts,
            100.0 * a.total_scam_posts as f64 / truth_scam as f64
        );
        println!("  scam accounts:    {}", a.total_scam_accounts);
        println!("  taxonomy:");
        for row in &a.table6 {
            if row.posts == 0 {
                continue;
            }
            println!("    {:<28} {:>5} accounts {:>6} posts", row.category.label(), row.accounts, row.posts);
            for (sub, accounts, posts) in &row.subrows {
                if *posts > 0 {
                    println!("      - {:<40} {accounts:>4} / {posts}", sub.label());
                }
            }
        }
        println!("  sample scam-cluster keywords:");
        for c in a.clusters.iter().filter(|c| c.category.is_some()).take(6) {
            println!(
                "    [{}] {}",
                c.category.map(|c| c.label()).unwrap_or("-"),
                c.keywords.join(", ")
            );
        }
        println!();
    }
}
