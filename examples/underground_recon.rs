//! §4.2 in miniature: visit the eight underground Tor forums with a
//! manual-operator persona (registration wall, CAPTCHA solving,
//! link-restricted navigation), collect postings under the paper's caps,
//! and run the listing-similarity analysis that exposed template reuse.
//!
//! ```sh
//! cargo run --release --example underground_recon
//! ```

use acctrade::core::underground::analyze;
use acctrade::crawler::UndergroundCollector;
use acctrade::net::tor::TorDirectory;
use acctrade::net::{Client, SimNet};
use acctrade::workload::world::{World, WorldParams};
use foundation::rng::SeedableRng;
use foundation::rng::ChaCha8Rng;

fn main() {
    let world = World::generate(WorldParams { seed: 99, scale: 0.05 });
    let net = SimNet::new(99);
    world.deploy(&net);

    let directory = TorDirectory::default_consensus();
    let mut rng = ChaCha8Rng::seed_from_u64(99);

    let mut all_records = Vec::new();
    for forum in &world.forums {
        let cfg = forum.config();
        let circuit = directory.build_circuit(&mut rng);
        println!(
            "visiting {} via circuit {:?} (exit {}) ...",
            cfg.name,
            circuit.path(),
            circuit.exit_nickname()
        );
        let operator = Client::new(&net, "tor-browser/13")
            .manual(99 ^ cfg.id as u64)
            .via_tor(circuit);
        let collector = UndergroundCollector::new(&operator, cfg.host.clone(), cfg.name);
        let (records, stats) = collector.collect();
        println!(
            "  registered={} pages={} searches={} posts recorded={}",
            stats.registered, stats.pages_browsed, stats.searches_run, stats.posts_recorded
        );
        all_records.extend(records);
    }

    println!("\n== §4.2 analysis ==");
    let analysis = analyze(&all_records);
    println!("total posts: {}", analysis.total_posts);
    for m in &analysis.markets {
        println!(
            "  {:<14} {:>3} posts, {} sellers, {} accounts offered, avg {} words [{}]",
            m.market,
            m.posts,
            m.sellers,
            m.accounts_offered,
            m.avg_words,
            m.platforms.join("/")
        );
    }
    println!(
        "\nnear-duplicate pairs (>= 88% word similarity): {}",
        analysis.reuse_pairs.len()
    );
    for p in analysis.reuse_pairs.iter().take(5) {
        println!(
            "  {:.0}%  {} ({}) vs {} ({}){}",
            p.similarity * 100.0,
            p.author_a,
            p.market_a,
            p.author_b,
            p.market_b,
            if p.same_author { "  [same seller]" } else { "" }
        );
    }
    println!("authors behind duplicates: {}", analysis.reuse_authors);
    println!(
        "cross-market sellers: {}",
        if analysis.cross_market_sellers.is_empty() {
            "none".to_string()
        } else {
            analysis.cross_market_sellers.join(", ")
        }
    );
    println!(
        "\nvirtual days spent in the dark web: {:.1}",
        net.clock().days_into_collection()
    );
}
