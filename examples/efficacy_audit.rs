//! §8 in isolation: take a world, snapshot the visible accounts, run the
//! calibrated moderation sweeps, re-query every account through the
//! platform APIs, and print Table 8 — plus the keyword breakdown showing
//! that actioned accounts skew toward trending-topic names, as the paper
//! observed.
//!
//! ```sh
//! cargo run --release --example efficacy_audit
//! ```

use acctrade::core::efficacy;
use acctrade::core::report::render_table8;
use acctrade::crawler::ProfileResolver;
use acctrade::net::{Client, SimNet};
use acctrade::social::moderation::TRENDING_KEYWORDS;
use acctrade::social::Platform;
use acctrade::workload::world::{World, WorldParams};

fn main() {
    let mut world = World::generate(WorldParams { seed: 7, scale: 0.1 });
    let net = SimNet::new(7);
    world.deploy(&net);

    // Snapshot all visible handles before moderation acts.
    let mut handles: Vec<(Platform, String, String)> = Vec::new(); // (platform, handle, name+desc)
    for (platform, store) in &world.stores {
        for account in store.read().accounts_sorted() {
            handles.push((
                *platform,
                account.handle.clone(),
                format!("{} {}", account.name, account.description),
            ));
        }
    }
    println!("visible accounts: {}", handles.len());

    // Moderation runs mid-window.
    net.clock().advance(60 * acctrade::net::clock::DAY);
    world.run_moderation(net.clock().now_unix());

    // Re-query everything, §8-style.
    let client = Client::new(&net, "acctrade-pipeline/0.1");
    let resolver = ProfileResolver::new(&client);
    let requery: Vec<_> = handles
        .iter()
        .map(|(platform, handle, _)| resolver.resolve(*platform, handle))
        .collect();

    let analysis = efficacy::analyze(&requery);
    println!("\n{}", render_table8(&analysis));
    println!(
        "forbidden (hard bans): {}   not-found (deleted/renamed): {}",
        analysis.forbidden, analysis.not_found
    );

    // The paper: "blocked accounts frequently featured names associated
    // with trends like crypto, NFTs, beauty, luxury".
    let trending = |text: &str| {
        let lower = text.to_ascii_lowercase();
        TRENDING_KEYWORDS.iter().any(|k| lower.contains(k))
    };
    let (mut blocked_trend, mut blocked) = (0usize, 0usize);
    let (mut live_trend, mut live) = (0usize, 0usize);
    for (record, (_, _, name)) in requery.iter().zip(&handles) {
        if record.status.is_inactive() {
            blocked += 1;
            if trending(name) {
                blocked_trend += 1;
            }
        } else {
            live += 1;
            if trending(name) {
                live_trend += 1;
            }
        }
    }
    println!(
        "\ntrending-topic names: {:.0}% of blocked vs {:.0}% of surviving accounts",
        100.0 * blocked_trend as f64 / blocked.max(1) as f64,
        100.0 * live_trend as f64 / live.max(1) as f64,
    );
}
