//! Quickstart: generate a small world, crawl one marketplace, resolve its
//! visible accounts, print the first numbers, and export the run's
//! telemetry manifest to `target/TELEMETRY_report.json`.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use acctrade::crawler::{MarketplaceCrawler, ProfileResolver};
use acctrade::market::config::MarketplaceId;
use acctrade::net::{Client, SimNet};
use acctrade::workload::world::{World, WorldParams};

fn main() {
    // Scope a telemetry recorder around the whole run: every instrumented
    // crate below records into it, and we export the manifest at the end.
    let rec = acctrade::telemetry::Recorder::new();
    let _scope = rec.enter();

    // A deterministic miniature of the measured ecosystem (5% of the
    // paper's scale).
    let world = World::generate(WorldParams { seed: 2024, scale: 0.05 });
    let net = SimNet::new(2024);
    {
        let _stage = acctrade::telemetry::span("deploy");
        world.deploy(&net);
    }

    // Crawl one marketplace, §3.2-style: storefront → listing pages →
    // every offer, politely.
    let client = Client::new(&net, "acctrade-crawler/0.1").with_politeness(20.0, 8.0);
    let market = MarketplaceId::Accsmarket;
    let mut crawler = MarketplaceCrawler::new(&client, market);
    let (offers, stats) = {
        let _stage = acctrade::telemetry::span("crawl");
        crawler.crawl(0)
    };
    println!("crawled {}:", market.name());
    println!("  pages fetched:    {}", stats.pages_fetched);
    println!("  offers collected: {}", stats.offers_collected);

    let visible: Vec<_> = offers.iter().filter(|o| o.is_visible()).collect();
    println!(
        "  visible profiles: {} ({:.0}%)",
        visible.len(),
        100.0 * visible.len() as f64 / offers.len().max(1) as f64
    );

    let prices: Vec<f64> = offers.iter().filter_map(|o| o.price_usd).collect();
    let total: f64 = prices.iter().sum();
    println!("  advertised value: ${total:.0}");

    // Resolve a few visible accounts against the platform APIs.
    let _stage = acctrade::telemetry::span("resolve");
    let resolver = ProfileResolver::new(&client);
    println!("\nfirst visible accounts:");
    for offer in visible.iter().take(5) {
        let handle = offer.handle.as_deref().expect("visible offers carry handles");
        let platform = offer
            .platform
            .as_deref()
            .and_then(acctrade::social::Platform::parse)
            .expect("known platform");
        let profile = resolver.resolve(platform, handle);
        println!(
            "  @{handle} on {} -> {:?}, {} followers",
            platform.name(),
            profile.status,
            profile.followers.unwrap_or(0)
        );
    }

    println!(
        "\nvirtual time elapsed: {:.1} hours across {} requests",
        net.clock().days_into_collection() * 24.0,
        net.request_count()
    );

    // Export the provenance manifest (what the CI gate validates).
    drop(_stage);
    let manifest = rec.manifest("quickstart", 2024, &acctrade::telemetry::digest64("quickstart"));
    manifest.validate().expect("quickstart manifest must validate");
    let path = format!("target/{}", acctrade::telemetry::REPORT_FILE);
    std::fs::create_dir_all("target").expect("create target/");
    std::fs::write(&path, manifest.to_json_pretty()).expect("write manifest");
    println!("telemetry manifest written to {path}");
}
