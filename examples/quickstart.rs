//! Quickstart: generate a small world, crawl one marketplace, resolve its
//! visible accounts, print the first numbers, and export the run's
//! telemetry manifest to `target/TELEMETRY_report.json`.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```
//!
//! With `--transport loopback` the same crawl runs twice — once on the
//! simulated fabric and once over real loopback TCP against an
//! `acctrade-httpd` server mounting the same seeded sites — and the
//! normalized offer sets are compared (the CI transport-parity gate
//! asserts on the resulting `target/PARITY_loopback.json`). With
//! `--serve <addr>` the example just binds the server and serves the
//! seeded world until killed:
//!
//! ```sh
//! cargo run --release --example quickstart -- --transport loopback
//! cargo run --release --example quickstart -- --serve 127.0.0.1:8080
//! ```
//!
//! With `--campaign` the example instead runs a small *persisted* study
//! against a durable `acctrade-store` campaign store — the CI
//! crash-recovery gate drives it through a kill-and-resume cycle:
//!
//! ```sh
//! # clean persisted run
//! cargo run --release --example quickstart -- --campaign \
//!     --store-dir target/store/clean --out target/gate-clean
//! # crash after 2 iterations (exits with code 3) …
//! cargo run --release --example quickstart -- --campaign \
//!     --store-dir target/store/crash --kill-at 2
//! # … resume, byte-identical to the clean run
//! cargo run --release --example quickstart -- --campaign \
//!     --store-dir target/store/crash --resume --out target/gate-crash
//! ```
//!
//! `--scenario <name>` attaches the live economy to a campaign run
//! (`escrow-basic`, `price-shocks`, `bot-inventory`, or `all`): escrow
//! order flow, price trajectories, and bot-operated inventory run
//! between crawl passes, and the run additionally writes
//! `ECONOMY_report.json` (the E1–E3 analysis) and `ECONOMY_events.jsonl`
//! (the replayable event stream) into `--out`. It composes with
//! `--kill-at`/`--resume` — a resumed economy is rebuilt from the
//! checkpoint and verified against the WAL stream:
//!
//! ```sh
//! cargo run --release --example quickstart -- --campaign \
//!     --scenario all --store-dir target/store/econ --out target/gate-econ
//! ```
//!
//! `--ops <addr>` mounts the live ops plane on a campaign run: an
//! `acctrade-httpd` server binds `addr` with the `ops.acctrade.local`
//! virtual host (`/metrics`, `/healthz`, `/statz`, `/tracez`), the
//! campaign recorder and its trace ring are attached, and a scraper
//! thread polls `/metrics` over real loopback sockets while the study
//! runs. The final scrape is written to `--out`
//! (`OPS_metrics.prom`, `OPS_statz.json`, `OPS_tracez.json`,
//! `TRACE_wall.json`) and its counters are reconciled against the
//! study's own manifest. `--trace-out <file>` additionally exports the
//! deterministic virtual-time Chrome trace (a pure function of the
//! manifest — byte-identical across same-seed runs and worker counts):
//!
//! ```sh
//! cargo run --release --example quickstart -- --campaign \
//!     --ops 127.0.0.1:0 --trace-out target/gate-ops/TRACE_report.json \
//!     --store-dir target/store/ops --out target/gate-ops
//! # while it runs (or against --serve, which also mounts the plane):
//! curl -H 'host: ops.acctrade.local' http://127.0.0.1:<port>/metrics
//! ```
//!
//! Exit codes: `0` success; `2` bad CLI usage (unknown transport or
//! scenario, or a resume whose store ran a different scenario); `3` an
//! injected `--kill-at` crash fired (the store is left resumable); `4`
//! transport parity failure; `5` economy payment reconciliation failure
//! (a settled order used a method its marketplace does not list); `6`
//! ops reconciliation failure (the final `/metrics` scrape disagrees
//! with `TELEMETRY_report.json`).

// conformance: atomics(relaxed) — demo counter, no cross-thread protocol

use acctrade::core::{Study, StudyConfig};
use acctrade::crawler::merge::normalize_for_parity;
use acctrade::crawler::{MarketplaceCrawler, ProfileResolver};
use acctrade::httpd::{
    HostTable, HttpServer, LoopbackTransport, OpsPlane, ServerConfig, TimeSource, OPS_HOST,
};
use acctrade::market::config::MarketplaceId;
use acctrade::net::http::Request;
use acctrade::net::transport::Transport;
use acctrade::net::url::Url;
use acctrade::net::{Client, SimNet};
use acctrade::workload::world::{World, WorldParams};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

/// The `--flag value` lookup for the campaign mode's tiny CLI.
fn arg_value<'a>(args: &'a [String], flag: &str) -> Option<&'a str> {
    args.iter().position(|a| a == flag).and_then(|i| args.get(i + 1)).map(|s| s.as_str())
}

/// One GET against the ops virtual host over real loopback sockets —
/// the in-process equivalent of
/// `curl -H 'host: ops.acctrade.local' http://<addr><path>`.
fn ops_get(transport: &LoopbackTransport, path: &str) -> Option<String> {
    let url = Url::parse(&format!("http://{OPS_HOST}{path}")).ok()?;
    let resp = transport.send(&Request::get(url)).ok()?;
    (resp.status.code() == 200).then(|| resp.text())
}

/// The live ops plane attached to a campaign run: a bound httpd server
/// carrying only the `ops.acctrade.local` vhost, plus a scraper thread
/// polling `/metrics` mid-run over real sockets.
struct OpsCampaign {
    server: HttpServer,
    plane: OpsPlane,
    stop: Arc<AtomicBool>,
    scraper: std::thread::JoinHandle<usize>,
}

impl OpsCampaign {
    /// Bind the ops server, wire the campaign recorder and trace ring
    /// into it, prove `/healthz` answers, and start the scraper.
    fn start(addr: &str, rec: &acctrade::telemetry::Recorder) -> OpsCampaign {
        let plane = OpsPlane::new();
        plane.attach_campaign(rec.clone());
        rec.set_trace_sink(plane.tracer().clone());
        let server = HttpServer::bind(
            addr,
            HostTable::new(),
            ServerConfig {
                workers: 2,
                time: TimeSource::Wall,
                ops: Some(plane.clone()),
                ..ServerConfig::default()
            },
        )
        .expect("bind --ops address");
        let transport = LoopbackTransport::new(server.addr());
        let health = ops_get(&transport, "/healthz").expect("ops /healthz must answer");
        assert!(health.starts_with("ok"), "unexpected /healthz body");
        eprintln!("campaign: ops plane live on http://{} (host: {OPS_HOST})", server.addr());

        let stop = Arc::new(AtomicBool::new(false));
        let scraper = {
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                let mut scrapes = 0usize;
                while !stop.load(Ordering::Relaxed) {
                    if ops_get(&transport, "/metrics").is_some() {
                        scrapes += 1;
                    }
                    std::thread::sleep(std::time::Duration::from_millis(25));
                }
                scrapes
            })
        };
        OpsCampaign { server, plane, stop, scraper }
    }

    /// Stop scraping, take the final scrape, write the `OPS_*` (and
    /// wall-trace) artifacts into `out_dir`, and reconcile the scraped
    /// `/metrics` counters against the finished manifest. Returns the
    /// reconciliation mismatches (empty = reconciled).
    fn finish(
        self,
        out_dir: &Path,
        manifest: &acctrade::telemetry::RunManifest,
    ) -> Vec<String> {
        self.stop.store(true, Ordering::Relaxed);
        let mid_scrapes = self.scraper.join().expect("join ops scraper");

        let transport = LoopbackTransport::new(self.server.addr());
        let metrics = ops_get(&transport, "/metrics").expect("final /metrics scrape");
        let statz = ops_get(&transport, "/statz").expect("final /statz scrape");
        let tracez = ops_get(&transport, "/tracez").expect("final /tracez scrape");
        let wall_trace = self.plane.tracer().chrome_json().render_pretty() + "\n";
        self.server.shutdown();

        std::fs::write(out_dir.join("OPS_metrics.prom"), &metrics).expect("write ops metrics");
        std::fs::write(out_dir.join("OPS_statz.json"), &statz).expect("write ops statz");
        std::fs::write(out_dir.join("OPS_tracez.json"), &tracez).expect("write ops tracez");
        std::fs::write(out_dir.join("TRACE_wall.json"), wall_trace)
            .expect("write wall trace");
        eprintln!(
            "campaign: ops plane scraped {mid_scrapes} times mid-run; final scrape in {}",
            out_dir.display()
        );
        reconcile_metrics(&metrics, manifest)
    }
}

/// Compare the scraped `source="campaign"` counters against the
/// manifest's counter table. Every manifest counter must appear; values
/// must match exactly, except `store.*` counters where the scrape may
/// run ahead (the manifest is exported before the store's final
/// checkpoint write lands its last append/sync counts).
fn reconcile_metrics(
    scraped: &str,
    manifest: &acctrade::telemetry::RunManifest,
) -> Vec<String> {
    let parsed = acctrade::telemetry::parse_exposition(scraped);
    let mut mismatches = Vec::new();
    for entry in &manifest.counters {
        let key = acctrade::telemetry::parse_rendered_key(&entry.key);
        let sample = acctrade::telemetry::counter_sample_key(&key, "campaign");
        match parsed.get(&sample) {
            None => mismatches.push(format!("{}: missing from /metrics scrape", entry.key)),
            Some(&v) => {
                let want = entry.value as f64;
                let ok = if key.name.starts_with("store.") { v >= want } else { v == want };
                if !ok {
                    mismatches
                        .push(format!("{}: scraped {v}, manifest {want}", entry.key));
                }
            }
        }
    }
    mismatches
}

/// The fixed configuration the CI gate compares across clean and
/// crashed-then-resumed runs.
fn campaign_config() -> StudyConfig {
    StudyConfig { seed: 2024, scale: 0.01, iterations: 4, scam: Default::default() }
}

/// `--campaign`: a persisted (and optionally crashed / resumed) study.
fn campaign_mode(args: &[String]) {
    let store_dir = arg_value(args, "--store-dir")
        .map(PathBuf::from)
        .unwrap_or_else(|| acctrade::output::store_dir("quickstart"));
    let out_dir = arg_value(args, "--out").map(PathBuf::from).unwrap_or_else(acctrade::output::dir);
    let config = campaign_config();
    // Crawl-engine worker threads. Any value yields byte-identical
    // artifacts (the CI parallel-determinism gate compares --workers 1
    // against --workers 4); it only changes wall-clock time.
    let workers: usize = arg_value(args, "--workers")
        .map(|w| w.parse().expect("--workers takes a thread count"))
        .unwrap_or(1);
    // The optional live economy: orders, repricing, and bot inventory
    // running between crawl passes.
    let scenario = arg_value(args, "--scenario");
    let economy = scenario.map(|name| {
        acctrade::economy::EconomyConfig::scenario(name).unwrap_or_else(|| {
            eprintln!(
                "unknown --scenario {name:?} (expected one of {:?})",
                acctrade::economy::SCENARIO_NAMES
            );
            std::process::exit(2);
        })
    });
    let build_study = || {
        let mut study = Study::new(config).with_workers(workers);
        if let Some(cfg) = economy.clone() {
            study = study.with_economy(cfg);
        }
        study
    };

    let rec = acctrade::telemetry::Recorder::new();
    let _scope = rec.enter();

    // The live ops plane: a real loopback server exposing this run's
    // recorder and trace ring while the study executes.
    let ops = arg_value(args, "--ops").map(|addr| OpsCampaign::start(addr, &rec));
    let trace_out = arg_value(args, "--trace-out").map(PathBuf::from);

    if let Some(k) = arg_value(args, "--kill-at") {
        let k: usize = k.parse().expect("--kill-at takes an iteration count");
        eprintln!("campaign: running with an injected crash after {k} iterations ...");
        let outcome = build_study()
            .run_persisted_with_kill(&store_dir, k)
            .expect("persisted run with kill");
        if outcome.is_none() {
            eprintln!(
                "campaign: killed after {k} iterations; interrupted store left at {}",
                store_dir.display()
            );
            // A distinctive exit code the CI gate asserts on.
            std::process::exit(3);
        }
        eprintln!("campaign: kill point {k} was never reached; study completed");
        return;
    }

    let report = if args.iter().any(|a| a == "--resume") {
        eprintln!("campaign: resuming interrupted store at {} ...", store_dir.display());
        let report =
            Study::resume_from_with_workers(config, &store_dir, workers).expect("resume");
        let recovery = report.recovery.as_ref().expect("resumed runs report recovery");
        eprintln!("campaign: {}", recovery.describe());
        // The resumed scenario comes from the checkpoint; a mismatched
        // --scenario on the resume command line is operator error.
        if let Some(requested) = scenario {
            let resumed = report.economy.as_ref().map(|e| e.scenario.as_str()).unwrap_or("");
            if resumed != requested {
                eprintln!(
                    "campaign: store ran scenario {resumed:?}, but --scenario {requested:?} \
                     was requested"
                );
                std::process::exit(2);
            }
        }
        report
    } else {
        eprintln!("campaign: clean persisted run into {} ...", store_dir.display());
        build_study().run_persisted(&store_dir).expect("persisted run")
    };

    report.telemetry.validate().expect("campaign manifest must validate");
    std::fs::create_dir_all(&out_dir).expect("create --out directory");
    let dataset_path = out_dir.join("dataset.json");
    std::fs::write(&dataset_path, report.dataset.to_json()).expect("write dataset");
    let manifest_path = out_dir.join("TELEMETRY_deterministic.txt");
    std::fs::write(&manifest_path, report.telemetry.deterministic_string())
        .expect("write deterministic manifest");
    eprintln!(
        "campaign: {} offers, {} profiles, {} posts over {:.0} virtual days",
        report.dataset.offers.len(),
        report.dataset.profiles.len(),
        report.dataset.posts.len(),
        report.campaign_days,
    );
    eprintln!(
        "campaign: dataset written to {}; deterministic manifest to {}",
        dataset_path.display(),
        manifest_path.display()
    );

    // The deterministic virtual-time Chrome trace: a pure function of
    // the manifest, byte-identical across same-seed runs and workers.
    if let Some(path) = trace_out {
        if let Some(parent) = path.parent() {
            std::fs::create_dir_all(parent).expect("create --trace-out directory");
        }
        let trace = acctrade::telemetry::virtual_trace(&report.telemetry);
        std::fs::write(&path, trace.render_pretty() + "\n").expect("write virtual trace");
        eprintln!("campaign: virtual trace written to {}", path.display());
    }

    // Final ops scrape + reconciliation: the live `/metrics` view must
    // agree with the manifest the study just exported.
    if let Some(ops) = ops {
        let mismatches = ops.finish(&out_dir, &report.telemetry);
        if !mismatches.is_empty() {
            eprintln!(
                "campaign: ops reconciliation FAILED — /metrics disagrees with the manifest:"
            );
            for line in &mismatches {
                eprintln!("  {line}");
            }
            std::process::exit(6);
        }
        eprintln!(
            "campaign: ops reconciliation OK — {} manifest counters match the final scrape",
            report.telemetry.counters.len()
        );
    }

    if let Some(analysis) = &report.economy {
        let report_path = out_dir.join("ECONOMY_report.json");
        std::fs::write(&report_path, analysis.to_json_pretty()).expect("write economy report");
        let mut lines = String::new();
        for event in &report.economy_events {
            lines.push_str(&event.to_json_line());
            lines.push('\n');
        }
        let events_path = out_dir.join("ECONOMY_events.jsonl");
        std::fs::write(&events_path, lines).expect("write economy events");
        eprintln!(
            "campaign: economy scenario {:?} — {} events ({} orders opened, {} exit scams, \
             {} price observations); report at {}, stream at {}",
            analysis.scenario,
            analysis.events,
            analysis.funnel_all.opened,
            analysis.funnel_all.exit_scams,
            report.price_observations,
            report_path.display(),
            events_path.display()
        );
        if !analysis.reconciliation_ok {
            eprintln!(
                "campaign: payment reconciliation FAILED — a settled order used a method \
                 its marketplace does not list"
            );
            std::process::exit(5);
        }
        eprintln!("campaign: payment reconciliation OK");
    }
}

/// One crawl of the quickstart marketplace over the given transport
/// (`None` = the native sim fabric), returning the parity-normalized
/// offer records.
fn crawl_once(
    transport: Option<Arc<dyn Transport>>,
) -> Vec<acctrade::crawler::OfferRecord> {
    let world = World::generate(WorldParams { seed: 2024, scale: 0.05 });
    let net = SimNet::new(2024);
    world.deploy(&net);
    let client = Client::new(&net, "acctrade-crawler/0.1").with_politeness(20.0, 8.0);
    let client = match transport {
        Some(t) => client.with_transport(t),
        None => client,
    };
    let mut crawler = MarketplaceCrawler::new(&client, MarketplaceId::Accsmarket);
    let (offers, _stats) = crawler.crawl(0);
    normalize_for_parity(offers)
}

/// `--transport loopback`: crawl the same seeded marketplace on the sim
/// fabric and over real loopback TCP, compare the normalized offer
/// sets, and write `target/PARITY_loopback.json`.
fn loopback_mode() {
    let rec = acctrade::telemetry::Recorder::new();
    let _scope = rec.enter();

    eprintln!("transport parity: sim-mode crawl ...");
    let sim = crawl_once(None);

    eprintln!("transport parity: loopback crawl against a real server ...");
    // A separate world/fabric with the same seed, mounted on real
    // sockets; the server shares the study's virtual clock.
    let world = World::generate(WorldParams { seed: 2024, scale: 0.05 });
    let net = SimNet::new(2024);
    world.deploy(&net);
    let server = HttpServer::bind(
        "127.0.0.1:0",
        HostTable::from_sim(&net),
        ServerConfig {
            workers: 4,
            time: TimeSource::Virtual(net.clock().clone()),
            ..ServerConfig::default()
        },
    )
    .expect("bind loopback server");
    let transport: Arc<dyn Transport> = Arc::new(LoopbackTransport::new(server.addr()));
    let loopback = {
        let client = Client::new(&net, "acctrade-crawler/0.1")
            .with_politeness(20.0, 8.0)
            .with_transport(Arc::clone(&transport));
        let mut crawler = MarketplaceCrawler::new(&client, MarketplaceId::Accsmarket);
        let (offers, _stats) = crawler.crawl(0);
        normalize_for_parity(offers)
    };

    let stats = server.stats();
    server.shutdown();
    stats.publish();
    let snap = stats.snapshot();

    let parity = sim == loopback;
    let json = format!(
        "{{\n  \"parity\": {parity},\n  \"sim_offers\": {},\n  \"loopback_offers\": {},\n  \"server_requests\": {},\n  \"server_conns_accepted\": {},\n  \"server_keepalive_reuse\": {},\n  \"server_parse_rejects\": {}\n}}\n",
        sim.len(),
        loopback.len(),
        snap.requests,
        snap.accepted,
        snap.keepalive_reuse,
        snap.parse_rejects,
    );
    let path = acctrade::output::artifact("PARITY_loopback.json");
    std::fs::write(&path, &json).expect("write parity artifact");
    eprintln!(
        "transport parity: sim={} loopback={} offers; {} requests over {} connections \
         ({} keep-alive reuses); artifact at {}",
        sim.len(),
        loopback.len(),
        snap.requests,
        snap.accepted,
        snap.keepalive_reuse,
        path.display()
    );
    if !parity {
        eprintln!("transport parity: FAILED — offer sets diverge");
        std::process::exit(4);
    }
    eprintln!("transport parity: offer sets identical");
}

/// `--serve <addr>`: mount the seeded world on a real server and serve
/// until killed (wall-clock request contexts — demo mode, not parity).
fn serve_mode(addr: &str) {
    let world = World::generate(WorldParams { seed: 2024, scale: 0.05 });
    let net = SimNet::new(2024);
    world.deploy(&net);
    let hosts = HostTable::from_sim(&net);
    let mut names = hosts.hosts();
    let server = HttpServer::bind(
        addr,
        hosts,
        ServerConfig {
            workers: 4,
            time: TimeSource::Wall,
            ops: Some(OpsPlane::new()),
            ..ServerConfig::default()
        },
    )
    .expect("bind --serve address");
    names.push(OPS_HOST.to_string());
    eprintln!("serving the seeded world on http://{}", server.addr());
    eprintln!("virtual hosts (send a matching `host:` header):");
    for host in names {
        eprintln!("  {host}");
    }
    eprintln!("press ctrl-c to stop");
    loop {
        std::thread::sleep(std::time::Duration::from_secs(3600));
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    // `--scenario` implies a campaign: the economy only runs between
    // the passes of a full crawl campaign.
    if args.iter().any(|a| a == "--campaign") || arg_value(&args, "--scenario").is_some() {
        campaign_mode(&args);
        return;
    }
    if let Some(addr) = arg_value(&args, "--serve") {
        serve_mode(addr);
        return;
    }
    match arg_value(&args, "--transport") {
        None | Some("sim") => {} // the default path below
        Some("loopback") => {
            loopback_mode();
            return;
        }
        Some(other) => {
            eprintln!("unknown --transport {other:?} (expected sim|loopback)");
            std::process::exit(2);
        }
    }
    // Scope a telemetry recorder around the whole run: every instrumented
    // crate below records into it, and we export the manifest at the end.
    let rec = acctrade::telemetry::Recorder::new();
    let _scope = rec.enter();

    // A deterministic miniature of the measured ecosystem (5% of the
    // paper's scale).
    let world = World::generate(WorldParams { seed: 2024, scale: 0.05 });
    let net = SimNet::new(2024);
    {
        let _stage = acctrade::telemetry::span("deploy");
        world.deploy(&net);
    }

    // Crawl one marketplace, §3.2-style: storefront → listing pages →
    // every offer, politely.
    let client = Client::new(&net, "acctrade-crawler/0.1").with_politeness(20.0, 8.0);
    let market = MarketplaceId::Accsmarket;
    let mut crawler = MarketplaceCrawler::new(&client, market);
    let (offers, stats) = {
        let _stage = acctrade::telemetry::span("crawl");
        crawler.crawl(0)
    };
    println!("crawled {}:", market.name());
    println!("  pages fetched:    {}", stats.pages_fetched);
    println!("  offers collected: {}", stats.offers_collected);

    let visible: Vec<_> = offers.iter().filter(|o| o.is_visible()).collect();
    println!(
        "  visible profiles: {} ({:.0}%)",
        visible.len(),
        100.0 * visible.len() as f64 / offers.len().max(1) as f64
    );

    let prices: Vec<f64> = offers.iter().filter_map(|o| o.price_usd).collect();
    let total: f64 = prices.iter().sum();
    println!("  advertised value: ${total:.0}");

    // Resolve a few visible accounts against the platform APIs.
    let _stage = acctrade::telemetry::span("resolve");
    let resolver = ProfileResolver::new(&client);
    println!("\nfirst visible accounts:");
    for offer in visible.iter().take(5) {
        let handle = offer.handle.as_deref().expect("visible offers carry handles");
        let platform = offer
            .platform
            .as_deref()
            .and_then(acctrade::social::Platform::parse)
            .expect("known platform");
        let profile = resolver.resolve(platform, handle);
        println!(
            "  @{handle} on {} -> {:?}, {} followers",
            platform.name(),
            profile.status,
            profile.followers.unwrap_or(0)
        );
    }

    println!(
        "\nvirtual time elapsed: {:.1} hours across {} requests",
        net.clock().days_into_collection() * 24.0,
        net.request_count()
    );

    // Export the provenance manifest (what the CI gate validates).
    drop(_stage);
    let manifest = rec.manifest("quickstart", 2024, &acctrade::telemetry::digest64("quickstart"));
    manifest.validate().expect("quickstart manifest must validate");
    let path = acctrade::output::artifact(acctrade::telemetry::REPORT_FILE);
    std::fs::write(&path, manifest.to_json_pretty()).expect("write manifest");
    println!("telemetry manifest written to {}", path.display());
}
