//! The full paper pipeline, end to end: generate the world, run the crawl
//! campaign over the Feb–Jun window, resolve all visible profiles, collect
//! the underground forums over Tor, run platform moderation, audit
//! efficacy, and print **every table and figure** of the paper.
//!
//! Scale is configurable: pass a scale factor (default 0.1; `1.0`
//! reproduces the paper's 38,253 listings and ~205K posts — takes a few
//! minutes).
//!
//! ```sh
//! cargo run --release --example full_study           # 10% scale
//! cargo run --release --example full_study -- 1.0    # paper scale
//! ```

use acctrade::core::{Study, StudyConfig};

fn main() {
    let scale: f64 = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(0.1);
    let config = StudyConfig {
        seed: 0xACC7,
        scale,
        iterations: 10,
        scam: Default::default(),
    };
    eprintln!("running study at scale {scale} (seed {:#x}) ...", config.seed);
    let report = Study::new(config).run();
    let rendered = report.render_all();
    println!("{rendered}");
    eprintln!(
        "campaign: {} requests over {:.0} virtual days",
        report.requests_issued, report.campaign_days
    );

    // Stage-timing table (virtual vs wall time per pipeline stage).
    eprintln!("\n{}", report.telemetry.render_stage_table());

    // Persist the artefacts under target/ (kept out of the repo), via the
    // shared output-dir helper every example uses.
    let report_path = acctrade::output::artifact("full_scale_report.txt");
    std::fs::write(&report_path, &rendered).expect("write full report");
    let manifest_path = acctrade::output::artifact(acctrade::telemetry::REPORT_FILE);
    report.telemetry.validate().expect("study manifest must validate");
    std::fs::write(&manifest_path, report.telemetry.to_json_pretty())
        .expect("write telemetry manifest");
    eprintln!(
        "report written to {}; telemetry manifest to {}",
        report_path.display(),
        manifest_path.display()
    );
}
