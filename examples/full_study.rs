//! The full paper pipeline, end to end: generate the world, run the crawl
//! campaign over the Feb–Jun window, resolve all visible profiles, collect
//! the underground forums over Tor, run platform moderation, audit
//! efficacy, and print **every table and figure** of the paper.
//!
//! Scale is configurable: pass a scale factor (default 0.1; `1.0`
//! reproduces the paper's 38,253 listings and ~205K posts — takes a few
//! minutes).
//!
//! ```sh
//! cargo run --release --example full_study           # 10% scale
//! cargo run --release --example full_study -- 1.0    # paper scale
//! ```

use acctrade::core::{Study, StudyConfig};

fn main() {
    let scale: f64 = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(0.1);
    let config = StudyConfig {
        seed: 0xACC7,
        scale,
        iterations: 10,
        scam: Default::default(),
    };
    eprintln!("running study at scale {scale} (seed {:#x}) ...", config.seed);
    let report = Study::new(config).run();
    println!("{}", report.render_all());
    eprintln!(
        "campaign: {} requests over {:.0} virtual days",
        report.requests_issued, report.campaign_days
    );
}
