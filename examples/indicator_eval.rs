//! §9 evaluated: the paper *recommends* two platform-side indicators —
//! referral-header monitoring and rapid-follower-growth detection — but
//! could not test them. The simulation can: deploy both against a
//! generated world and score them with ground truth.
//!
//! ```sh
//! cargo run --release --example indicator_eval
//! ```

use acctrade::core::indicators::{evaluate_growth_indicator, evaluate_referral_monitoring};
use acctrade::crawler::MarketplaceCrawler;
use acctrade::market::config::ALL_MARKETPLACES;
use acctrade::net::{Client, SimNet};
use acctrade::workload::world::{World, WorldParams};

fn main() {
    let world = World::generate(WorldParams { seed: 9001, scale: 0.05 });
    let net = SimNet::new(9001);
    world.deploy(&net);

    // Crawl everything once so we know which accounts are advertised.
    let client = Client::new(&net, "acctrade-crawler/0.1");
    let mut offers = Vec::new();
    for market in ALL_MARKETPLACES {
        let (o, _) = MarketplaceCrawler::new(&client, market).crawl(0);
        offers.extend(o);
    }
    println!("world: {} offers, {} visible accounts\n", offers.len(), world.truth.visible_total);

    // -- Indicator 1: referral monitoring -----------------------------------
    println!("== referral-header monitoring ==");
    for buyers in [500usize, 2_000, 8_000] {
        let report = evaluate_referral_monitoring(&world, &net, &offers, buyers, buyers / 4, 9001);
        println!(
            "  {buyers:>5} buyer sessions -> {:>4}/{} advertised accounts flagged ({:.0}% coverage), {} false alarms",
            report.flagged_advertised,
            report.advertised_total,
            report.coverage() * 100.0,
            report.flagged_unadvertised,
        );
    }
    println!("  (every flag is actionable: only marketplace referers trigger)\n");

    // -- Indicator 2: rapid follower growth ---------------------------------
    println!("== rapid-follower-growth detection ==");
    let report = evaluate_growth_indicator(&world, &[0.05, 0.1, 0.2, 0.5, 1.0, 2.0], 180, 9001);
    println!(
        "  {} visible accounts scored over 180 days of telemetry",
        report.accounts_evaluated
    );
    println!("  threshold  precision  recall  f1");
    for (threshold, m) in &report.operating_points {
        println!(
            "  {threshold:>9.2}  {:>9.2}  {:>6.2}  {:.2}",
            m.precision(),
            m.recall(),
            m.f1()
        );
    }
    if let Some((t, m)) = report.best() {
        println!(
            "\n  best operating point: +{:.0}%/day flags farming with precision {:.2}, recall {:.2}",
            t * 100.0,
            m.precision(),
            m.recall()
        );
    }
}
