#!/usr/bin/env bash
# CI entry point for the acctrade workspace.
#
# The workspace is zero-dependency (std + the in-tree `foundation` crate
# only), so everything here runs fully offline — no registry, no network.
#
#   ./ci.sh            # build + test (required), clippy (advisory)
#
# Gating steps: a failure in build or test fails CI.
# Advisory steps: clippy findings are printed but do not fail the run
# (toolchains without clippy, or clippy version drift, must not block).

set -uo pipefail

cd "$(dirname "$0")"

run() {
    echo
    echo "==> $*"
    "$@"
}

fail=0

# 1. Release build of every crate, offline.
run cargo build --release --offline --workspace || fail=1

# 2. The full test suite (unit + integration + property + doc), offline.
run cargo test -q --offline --workspace || fail=1

if [ "$fail" -ne 0 ]; then
    echo
    echo "ci: FAILED (build or tests)"
    exit 1
fi

# 3. Clippy, advisory only.
echo
echo "==> cargo clippy --offline --workspace --all-targets -- -D warnings (advisory)"
if cargo clippy --offline --workspace --all-targets -- -D warnings; then
    echo "ci: clippy clean"
else
    echo "ci: clippy reported findings (advisory — not failing the build)"
fi

echo
echo "ci: OK"
