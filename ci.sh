#!/usr/bin/env bash
# CI entry point for the acctrade workspace.
#
# The workspace is zero-dependency (std + the in-tree `foundation` crate
# only), so everything here runs fully offline — no registry, no network.
#
#   ./ci.sh            # build + test + clippy + telemetry-manifest gate
#
# Gating steps (any failure fails CI):
#   1. release build           2. full test suite
#   3. clippy -D warnings      (skipped gracefully when the toolchain
#                               ships without clippy)
#   4. quickstart example must produce a well-formed
#      target/TELEMETRY_report.json (validated by the
#      acctrade-telemetry `validate_manifest` binary)
#   5. crash recovery: a persisted quickstart campaign is killed
#      mid-run (exit code 3), resumed, and its dataset + deterministic
#      telemetry manifest must be byte-identical to a clean
#      uninterrupted same-seed run
#   6. conformance: the in-tree static analyzer
#      (`acctrade-conformance`) must report zero findings over the
#      workspace, and two back-to-back runs must emit byte-identical
#      LINT_report.json files
#   7. parallel determinism: the persisted quickstart campaign run at
#      --workers 4 must produce byte-identical artifacts to the
#      --workers 1 run from gate 5, and the parallel-crawl bench
#      records the speedup trajectory into target/BENCH_report.json
#   8. serving layer: the quickstart loopback run (real HTTP/1.1 server
#      + sockets) must report parity with the simulated crawl in
#      target/PARITY_loopback.json, and the httpd bench records
#      req/s + latency percentiles into target/BENCH_report.json
#   9. economy determinism: the quickstart campaign with --scenario all
#      must produce byte-identical ECONOMY_report.json +
#      ECONOMY_events.jsonl across two clean runs, across --workers 1
#      vs 4, and across a kill-at-2/resume cycle (proving the economy
#      WAL record kinds survive crash recovery); the economy bench
#      records events/sec into target/BENCH_report.json
#  10. live ops plane: two campaigns run with --ops (the
#      ops.acctrade.local vhost is scraped over real sockets mid-run,
#      and the quickstart exits 6 unless the final /metrics scrape
#      reconciles with the manifest); their virtual-time
#      TRACE_report.json files must be byte-identical across workers
#      1 vs 4; and the TRACE/BENCH/ECONOMY artifacts must pass
#      validate_manifest
#  11. conformance v2 + perf budget: the LINT report and the committed
#      ARCH baseline must pass validate_manifest's schema checks; the
#      analyzer gate is proven to have teeth by three injected
#      violations (an undeclared manifest edge, an undocumented unsafe
#      block, a blocking call on a reactor path), each of which must
#      drive the analyzer to a nonzero exit with the tree restored and
#      re-proven clean afterwards; the lint bench records the
#      graph-resolution pass; and the accumulated bench report must sit
#      inside BENCH_budget.json (with a deliberately degraded budget
#      proven to fail the gate)

set -uo pipefail

cd "$(dirname "$0")"

run() {
    echo
    echo "==> $*"
    "$@"
}

fail=0

# 1. Release build of every crate, offline.
run cargo build --release --offline --workspace || fail=1

# 2. The full test suite (unit + integration + property + doc), offline.
run cargo test -q --offline --workspace || fail=1

if [ "$fail" -ne 0 ]; then
    echo
    echo "ci: FAILED (build or tests)"
    exit 1
fi

# 3. Clippy, gating when the toolchain provides it.
if cargo clippy --version >/dev/null 2>&1; then
    run cargo clippy --offline --workspace --all-targets -- -D warnings || fail=1
    if [ "$fail" -ne 0 ]; then
        echo
        echo "ci: FAILED (clippy)"
        exit 1
    fi
    echo "ci: clippy clean"
else
    echo
    echo "ci: clippy unavailable on this toolchain — skipping (not a failure)"
fi

# 4. Telemetry-manifest gate: the quickstart run must emit a well-formed
#    target/TELEMETRY_report.json.
rm -f target/TELEMETRY_report.json
run cargo run --release --offline --example quickstart || fail=1
if [ "$fail" -ne 0 ] || [ ! -f target/TELEMETRY_report.json ]; then
    echo
    echo "ci: FAILED (quickstart did not produce target/TELEMETRY_report.json)"
    exit 1
fi
run cargo run --release --offline -p acctrade-telemetry --bin validate_manifest -- \
    target/TELEMETRY_report.json || fail=1
if [ "$fail" -ne 0 ]; then
    echo
    echo "ci: FAILED (telemetry manifest invalid)"
    exit 1
fi

# 5. Crash-recovery gate: kill a persisted campaign mid-run, resume it,
#    and demand byte-identical artifacts versus a clean same-seed run.
rm -rf target/store/ci-clean target/store/ci-crash target/gate-clean target/gate-crash

run cargo run --release --offline --example quickstart -- --campaign \
    --store-dir target/store/ci-clean --out target/gate-clean || fail=1

echo
echo "==> cargo run --release --offline --example quickstart -- --campaign" \
     "--store-dir target/store/ci-crash --kill-at 2   (expecting exit code 3)"
cargo run --release --offline --example quickstart -- --campaign \
    --store-dir target/store/ci-crash --kill-at 2
kill_status=$?
if [ "$kill_status" -ne 3 ]; then
    echo
    echo "ci: FAILED (injected kill exited with $kill_status, expected 3)"
    exit 1
fi

run cargo run --release --offline --example quickstart -- --campaign \
    --store-dir target/store/ci-crash --resume --out target/gate-crash || fail=1
if [ "$fail" -ne 0 ]; then
    echo
    echo "ci: FAILED (crash-recovery runs did not complete)"
    exit 1
fi

run cmp target/gate-clean/dataset.json target/gate-crash/dataset.json || fail=1
run cmp target/gate-clean/TELEMETRY_deterministic.txt \
        target/gate-crash/TELEMETRY_deterministic.txt || fail=1
if [ "$fail" -ne 0 ]; then
    echo
    echo "ci: FAILED (resumed campaign artifacts differ from the clean run)"
    exit 1
fi
echo "ci: crash-recovery artifacts byte-identical"

# 6. Conformance gate: the tree must lint clean, and the report must be
#    deterministic — two runs, byte-compared.
rm -f target/LINT_report.json target/LINT_report.second.json

run cargo run --release --offline -p acctrade-conformance -- \
    --out target/LINT_report.json || fail=1
if [ "$fail" -ne 0 ]; then
    echo
    echo "ci: FAILED (conformance findings — see lines above)"
    exit 1
fi
run cargo run --release --offline -p acctrade-conformance -- --quiet \
    --out target/LINT_report.second.json || fail=1
run cmp target/LINT_report.json target/LINT_report.second.json || fail=1
if [ "$fail" -ne 0 ]; then
    echo
    echo "ci: FAILED (conformance report not deterministic across runs)"
    exit 1
fi
echo "ci: conformance clean, report deterministic"

# 7. Parallel-determinism gate: the same campaign on 4 crawl workers
#    must be byte-identical to the sequential gate-5 run, and the
#    parallel-crawl bench records the speedup trajectory.
rm -rf target/store/ci-parallel target/gate-parallel

run cargo run --release --offline --example quickstart -- --campaign \
    --store-dir target/store/ci-parallel --workers 4 --out target/gate-parallel || fail=1
if [ "$fail" -ne 0 ]; then
    echo
    echo "ci: FAILED (parallel campaign run did not complete)"
    exit 1
fi

run cmp target/gate-clean/dataset.json target/gate-parallel/dataset.json || fail=1
run cmp target/gate-clean/TELEMETRY_deterministic.txt \
        target/gate-parallel/TELEMETRY_deterministic.txt || fail=1
if [ "$fail" -ne 0 ]; then
    echo
    echo "ci: FAILED (--workers 4 artifacts differ from --workers 1)"
    exit 1
fi
echo "ci: campaign artifacts byte-identical at 1 and 4 workers"

echo
echo "==> BENCH_REPORT_PATH=target/BENCH_report.json cargo bench --offline" \
     "-p acctrade-bench --bench parallel_crawl"
# Absolute path: cargo runs bench binaries from the package directory,
# not the workspace root.
BENCH_REPORT_PATH="$PWD/target/BENCH_report.json" cargo bench --offline \
    -p acctrade-bench --bench parallel_crawl || fail=1
if [ "$fail" -ne 0 ] || [ ! -f target/BENCH_report.json ]; then
    echo
    echo "ci: FAILED (parallel-crawl bench did not record target/BENCH_report.json)"
    exit 1
fi
echo "ci: parallel-crawl speedup trajectory recorded in target/BENCH_report.json"

# 8. Serving-layer gate: the quickstart loopback run crawls a real
#    HTTP/1.1 server over real sockets and must surface the exact same
#    offers as the simulated fabric; the httpd bench then records
#    keep-alive throughput + latency percentiles.
rm -f target/PARITY_loopback.json

run cargo run --release --offline --example quickstart -- --transport loopback || fail=1
if [ "$fail" -ne 0 ] || [ ! -f target/PARITY_loopback.json ]; then
    echo
    echo "ci: FAILED (loopback run did not produce target/PARITY_loopback.json)"
    exit 1
fi
if ! grep -q '"parity": true' target/PARITY_loopback.json; then
    echo
    echo "ci: FAILED (loopback crawl diverged from the simulated crawl)"
    cat target/PARITY_loopback.json
    exit 1
fi
echo "ci: loopback crawl byte-identical to simulated crawl (after normalization)"

echo
echo "==> BENCH_REPORT_PATH=target/BENCH_report.json cargo bench --offline" \
     "-p acctrade-bench --bench httpd"
BENCH_REPORT_PATH="$PWD/target/BENCH_report.json" cargo bench --offline \
    -p acctrade-bench --bench httpd || fail=1
if [ "$fail" -ne 0 ] || ! grep -q '"httpd/keepalive_throughput"' target/BENCH_report.json; then
    echo
    echo "ci: FAILED (httpd bench did not record httpd/ entries in target/BENCH_report.json)"
    exit 1
fi
echo "ci: httpd throughput + latency percentiles recorded in target/BENCH_report.json"

# 9. Economy-determinism gate: the live economy (escrow orders, price
#    trajectories, bot inventory) must be byte-identical run to run,
#    across worker counts, and across a crash/resume cycle — the resume
#    path replays the economy WAL record kinds and verifies the rebuilt
#    stream against them.
rm -rf target/store/ci-econ-a target/store/ci-econ-b target/store/ci-econ-par \
       target/store/ci-econ-crash \
       target/gate-econ-a target/gate-econ-b target/gate-econ-par target/gate-econ-crash

run cargo run --release --offline --example quickstart -- --campaign --scenario all \
    --store-dir target/store/ci-econ-a --out target/gate-econ-a || fail=1
run cargo run --release --offline --example quickstart -- --campaign --scenario all \
    --store-dir target/store/ci-econ-b --out target/gate-econ-b || fail=1
run cargo run --release --offline --example quickstart -- --campaign --scenario all \
    --store-dir target/store/ci-econ-par --workers 4 --out target/gate-econ-par || fail=1
if [ "$fail" -ne 0 ]; then
    echo
    echo "ci: FAILED (economy campaign runs did not complete)"
    exit 1
fi

echo
echo "==> cargo run --release --offline --example quickstart -- --campaign --scenario all" \
     "--store-dir target/store/ci-econ-crash --kill-at 2   (expecting exit code 3)"
cargo run --release --offline --example quickstart -- --campaign --scenario all \
    --store-dir target/store/ci-econ-crash --kill-at 2
kill_status=$?
if [ "$kill_status" -ne 3 ]; then
    echo
    echo "ci: FAILED (economy injected kill exited with $kill_status, expected 3)"
    exit 1
fi
run cargo run --release --offline --example quickstart -- --campaign --scenario all \
    --store-dir target/store/ci-econ-crash --resume --out target/gate-econ-crash || fail=1
if [ "$fail" -ne 0 ]; then
    echo
    echo "ci: FAILED (economy crash-recovery run did not complete)"
    exit 1
fi

for variant in gate-econ-b gate-econ-par gate-econ-crash; do
    run cmp target/gate-econ-a/ECONOMY_report.json "target/$variant/ECONOMY_report.json" || fail=1
    run cmp target/gate-econ-a/ECONOMY_events.jsonl "target/$variant/ECONOMY_events.jsonl" || fail=1
    run cmp target/gate-econ-a/dataset.json "target/$variant/dataset.json" || fail=1
done
if [ "$fail" -ne 0 ]; then
    echo
    echo "ci: FAILED (economy artifacts differ across runs/workers/resume)"
    exit 1
fi
echo "ci: economy artifacts byte-identical across reruns, 1 vs 4 workers, and kill/resume"

echo
echo "==> BENCH_REPORT_PATH=target/BENCH_report.json cargo bench --offline" \
     "-p acctrade-bench --bench economy"
BENCH_REPORT_PATH="$PWD/target/BENCH_report.json" cargo bench --offline \
    -p acctrade-bench --bench economy || fail=1
if [ "$fail" -ne 0 ] || ! grep -q '"economy/scenario_all_campaign"' target/BENCH_report.json; then
    echo
    echo "ci: FAILED (economy bench did not record economy/ entries in target/BENCH_report.json)"
    exit 1
fi
echo "ci: economy simulation throughput recorded in target/BENCH_report.json"

# 10. Ops-plane gate. Two campaigns run with the live ops vhost
#     mounted: the quickstart itself scrapes /metrics over real
#     loopback sockets while the study executes and exits 6 unless the
#     final scrape reconciles with TELEMETRY_report.json. The exported
#     virtual-time Chrome traces must be byte-identical across
#     --workers 1 vs 4 (and hence across the double run), and the JSON
#     artifacts must pass validate_manifest's schema checks.
rm -rf target/store/ci-ops-a target/store/ci-ops-b target/gate-ops-a target/gate-ops-b

run cargo run --release --offline --example quickstart -- --campaign \
    --ops 127.0.0.1:0 --trace-out target/gate-ops-a/TRACE_report.json \
    --store-dir target/store/ci-ops-a --out target/gate-ops-a || fail=1
run cargo run --release --offline --example quickstart -- --campaign --workers 4 \
    --ops 127.0.0.1:0 --trace-out target/gate-ops-b/TRACE_report.json \
    --store-dir target/store/ci-ops-b --out target/gate-ops-b || fail=1
if [ "$fail" -ne 0 ]; then
    echo
    echo "ci: FAILED (ops campaigns did not complete with /metrics reconciled — exit 6" \
         "means the live scrape disagreed with the manifest)"
    exit 1
fi

for artifact in OPS_metrics.prom OPS_statz.json OPS_tracez.json TRACE_wall.json; do
    if [ ! -s "target/gate-ops-a/$artifact" ]; then
        echo
        echo "ci: FAILED (ops campaign did not write $artifact)"
        exit 1
    fi
done
if ! grep -q 'source="campaign"' target/gate-ops-a/OPS_metrics.prom \
    || ! grep -q 'source="server"' target/gate-ops-a/OPS_metrics.prom; then
    echo
    echo "ci: FAILED (OPS_metrics.prom is missing the campaign/server source split)"
    exit 1
fi
echo "ci: ops vhost scraped mid-run over real sockets; /metrics reconciled with the manifest"

run cmp target/gate-ops-a/TRACE_report.json target/gate-ops-b/TRACE_report.json || fail=1
if [ "$fail" -ne 0 ]; then
    echo
    echo "ci: FAILED (virtual-time traces differ across --workers 1 vs 4)"
    exit 1
fi
echo "ci: virtual-time TRACE_report.json byte-identical across runs and worker counts"

run cargo run --release --offline -p acctrade-telemetry --bin validate_manifest -- \
    target/gate-ops-a/TRACE_report.json || fail=1
run cargo run --release --offline -p acctrade-telemetry --bin validate_manifest -- \
    target/gate-ops-a/TRACE_wall.json || fail=1
run cargo run --release --offline -p acctrade-telemetry --bin validate_manifest -- \
    target/gate-econ-a/ECONOMY_report.json || fail=1

echo
echo "==> BENCH_REPORT_PATH=target/BENCH_report.json cargo bench --offline" \
     "-p acctrade-bench --bench store"
BENCH_REPORT_PATH="$PWD/target/BENCH_report.json" cargo bench --offline \
    -p acctrade-bench --bench store || fail=1
run cargo run --release --offline -p acctrade-telemetry --bin validate_manifest -- \
    target/BENCH_report.json || fail=1
if [ "$fail" -ne 0 ]; then
    echo
    echo "ci: FAILED (TRACE/BENCH/ECONOMY artifacts did not pass schema validation)"
    exit 1
fi
echo "ci: TRACE/BENCH/ECONOMY artifacts pass validate_manifest schema checks"

# 11. Conformance-v2 + perf-budget gate. The LINT report from gate 6
#     and the committed architecture baseline must pass
#     validate_manifest's schema checks; then the analyzer gate is
#     proven to have teeth: three violations are injected one at a
#     time — an undeclared manifest edge (the baseline-diff rule), an
#     undocumented unsafe block (unsafe-audit), and a thread::sleep in
#     a reactor-path file (blocking-call) — and each must drive the
#     analyzer to a nonzero exit. The tree is restored after each
#     injection and re-proven clean (byte-identical to the gate-6
#     report). Finally the lint bench records the graph-resolution
#     pass and the accumulated bench report must sit inside the
#     committed perf budget — with a deliberately degraded budget
#     proven to fail.
run cargo run --release --offline -p acctrade-telemetry --bin validate_manifest -- \
    target/LINT_report.json || fail=1
run cargo run --release --offline -p acctrade-telemetry --bin validate_manifest -- \
    ARCH_baseline.json || fail=1
if [ "$fail" -ne 0 ]; then
    echo
    echo "ci: FAILED (LINT/ARCH artifacts did not pass schema validation)"
    exit 1
fi

conformance_must_fail() {
    echo
    echo "==> cargo run --release --offline -p acctrade-conformance -- --quiet" \
         "  (expecting findings: $1)"
    if cargo run --release --offline -p acctrade-conformance -- --quiet \
        --out target/LINT_must_fail.json; then
        echo
        echo "ci: FAILED (injected $1 did not fail the conformance gate)"
        return 1
    fi
    echo "ci: injected $1 correctly failed the analyzer"
    return 0
}

# a. Undeclared manifest edge: a dependency appears in a Cargo.toml
#    without ARCH_baseline.json being regenerated alongside it.
cp crates/net/Cargo.toml target/ci-net-manifest.bak
sed -i 's/^acctrade-telemetry.workspace = true$/acctrade-telemetry.workspace = true\nacctrade-html.workspace = true/' \
    crates/net/Cargo.toml
conformance_must_fail "undeclared arch edge (net -> html)" || fail=1
mv target/ci-net-manifest.bak crates/net/Cargo.toml

# b. An unsafe block with no SAFETY comment.
cp crates/text/src/stopwords.rs target/ci-stopwords.bak
printf '\nfn ci_injected_unsafe() {\n    unsafe { std::ptr::null::<u8>(); }\n}\n' \
    >> crates/text/src/stopwords.rs
conformance_must_fail "unsafe block without SAFETY comment" || fail=1
mv target/ci-stopwords.bak crates/text/src/stopwords.rs

# c. A blocking call in a reactor-path file.
cp crates/net/src/url.rs target/ci-url.bak
printf '\nfn ci_injected_nap() {\n    std::thread::sleep(std::time::Duration::from_millis(1));\n}\n' \
    >> crates/net/src/url.rs
conformance_must_fail "thread::sleep on a reactor path" || fail=1
mv target/ci-url.bak crates/net/src/url.rs

if [ "$fail" -ne 0 ]; then
    echo
    echo "ci: FAILED (a conformance must-fail injection was not caught)"
    exit 1
fi

# The restored tree must scan clean again, byte-identical to gate 6 —
# proving both the analyzer and the restore.
run cargo run --release --offline -p acctrade-conformance -- --quiet \
    --out target/LINT_report.restored.json || fail=1
run cmp target/LINT_report.json target/LINT_report.restored.json || fail=1
if [ "$fail" -ne 0 ]; then
    echo
    echo "ci: FAILED (tree not clean after must-fail injections were restored)"
    exit 1
fi
echo "ci: all three injected violations caught; restored tree scans clean"

echo
echo "==> BENCH_REPORT_PATH=target/BENCH_report.json cargo bench --offline" \
     "-p acctrade-bench --bench lint"
BENCH_REPORT_PATH="$PWD/target/BENCH_report.json" cargo bench --offline \
    -p acctrade-bench --bench lint || fail=1
if [ "$fail" -ne 0 ] || ! grep -q '"graph_resolution/resolve_workspace"' target/BENCH_report.json; then
    echo
    echo "ci: FAILED (lint bench did not record graph_resolution/ entries in target/BENCH_report.json)"
    exit 1
fi
echo "ci: conformance scanner + graph-resolution timings recorded in target/BENCH_report.json"

run cargo run --release --offline -p acctrade-bench --bin bench_budget -- \
    target/BENCH_report.json BENCH_budget.json || fail=1
if [ "$fail" -ne 0 ]; then
    echo
    echo "ci: FAILED (bench report regressed outside BENCH_budget.json)"
    exit 1
fi

# The gate must have teeth: a budget demanding impossible throughput
# has to fail against the very same report.
sed 's/"min": 15000/"min": 99000000/' BENCH_budget.json > target/BENCH_budget_degraded.json
echo
echo "==> cargo run --release --offline -p acctrade-bench --bin bench_budget --" \
     "target/BENCH_report.json target/BENCH_budget_degraded.json   (expecting failure)"
if cargo run --release --offline -p acctrade-bench --bin bench_budget -- \
    target/BENCH_report.json target/BENCH_budget_degraded.json; then
    echo
    echo "ci: FAILED (degraded perf budget did not fail the gate)"
    exit 1
fi
echo "ci: perf budget holds, and a degraded budget demonstrably fails the gate"

echo
echo "ci: OK"
