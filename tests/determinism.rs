//! Determinism: every artifact of a study is a pure function of the seed.

use acctrade::core::{Study, StudyConfig};

#[test]
fn identical_seeds_identical_reports() {
    let config = StudyConfig { seed: 31337, scale: 0.01, iterations: 3, scam: Default::default() };
    let a = Study::new(config).run();
    let b = Study::new(config).run();
    assert_eq!(a.render_all(), b.render_all());
    assert_eq!(a.dataset.to_json(), b.dataset.to_json());
    assert_eq!(a.requests_issued, b.requests_issued);
}

#[test]
fn different_seeds_different_worlds() {
    let a = Study::new(StudyConfig { seed: 1, scale: 0.01, iterations: 2, scam: Default::default() })
        .run();
    let b = Study::new(StudyConfig { seed: 2, scale: 0.01, iterations: 2, scam: Default::default() })
        .run();
    // Same *shape*, different content.
    assert_eq!(a.table1.len(), b.table1.len());
    assert_ne!(a.dataset.to_json(), b.dataset.to_json());
}
