//! Determinism: every artifact of a study is a pure function of the seed.
//!
//! The reproduction leans on this everywhere — CI compares artifacts
//! byte-for-byte, and the paper's tables are regenerated from a pinned
//! seed. With `foundation` supplying the RNG, JSON encoder, and thread
//! primitives, the whole pipeline is deterministic end to end: same seed
//! ⇒ byte-identical JSON, different seed ⇒ a different world.

use acctrade::core::{Study, StudyConfig};
use acctrade::crawler::record::Dataset;

#[test]
fn identical_seeds_identical_reports() {
    let config = StudyConfig { seed: 31337, scale: 0.01, iterations: 3, scam: Default::default() };
    let a = Study::new(config).run();
    let b = Study::new(config).run();
    assert_eq!(a.render_all(), b.render_all());
    assert_eq!(a.dataset.to_json(), b.dataset.to_json());
    assert_eq!(a.requests_issued, b.requests_issued);
}

/// The headline guarantee: two independent `Study` runs from one seed
/// serialize to *byte-identical* JSON — not merely equal values. The
/// `foundation::json` encoder preserves field order (insertion order of
/// the codec macros), so equality of bytes is achievable and asserted.
#[test]
fn identical_seeds_byte_identical_json() {
    let config = StudyConfig { seed: 777, scale: 0.01, iterations: 2, scam: Default::default() };
    let a = Study::new(config).run().dataset.to_json();
    let b = Study::new(config).run().dataset.to_json();
    assert_eq!(a.as_bytes(), b.as_bytes(), "report JSON must be byte-identical");

    // And the encoding is stable through a decode/re-encode cycle: the
    // parsed dataset re-renders to the very same bytes.
    let decoded = Dataset::from_json(&a).expect("study JSON parses");
    assert_eq!(decoded.to_json().as_bytes(), a.as_bytes(), "re-encode must be stable");
}

/// Determinism holds even when the two runs race each other on separate
/// threads — nothing in the pipeline leaks wall-clock or scheduler state
/// into the artifacts.
#[test]
fn concurrent_runs_agree() {
    let config = StudyConfig { seed: 4242, scale: 0.01, iterations: 2, scam: Default::default() };
    let (a, b) = foundation::sync::scope(|s| {
        let ha = s.spawn(move || Study::new(config).run());
        let hb = s.spawn(move || Study::new(config).run());
        (ha.join().unwrap(), hb.join().unwrap())
    });
    assert_eq!(a.dataset.to_json(), b.dataset.to_json());
    assert_eq!(a.render_all(), b.render_all());
}

/// The telemetry manifest's virtual-time view is part of the determinism
/// contract: two same-seed runs must serialize to *byte-identical*
/// deterministic JSON once the clearly-named `wall_*` fields are
/// stripped. (Wall-clock timings legitimately differ between runs; the
/// counters, stage virtual times, crawl/API tallies, and events must
/// not.)
#[test]
fn telemetry_manifests_byte_identical_without_wall_fields() {
    let config = StudyConfig { seed: 909, scale: 0.01, iterations: 2, scam: Default::default() };
    let a = Study::new(config).run().telemetry;
    let b = Study::new(config).run().telemetry;
    assert!(a.validate().is_ok());
    assert_eq!(
        a.deterministic_string().as_bytes(),
        b.deterministic_string().as_bytes(),
        "virtual-time manifest fields must be byte-identical"
    );
    // And the full manifest roundtrips through its JSON codec.
    let parsed = acctrade::telemetry::RunManifest::parse(&a.to_json_string())
        .expect("manifest JSON parses");
    assert_eq!(parsed.deterministic_string(), a.deterministic_string());
}

#[test]
fn different_seeds_different_worlds() {
    let a = Study::new(StudyConfig { seed: 1, scale: 0.01, iterations: 2, scam: Default::default() })
        .run();
    let b = Study::new(StudyConfig { seed: 2, scale: 0.01, iterations: 2, scam: Default::default() })
        .run();
    // Same *shape*, different content.
    assert_eq!(a.table1.len(), b.table1.len());
    assert_ne!(a.dataset.to_json(), b.dataset.to_json());
}
