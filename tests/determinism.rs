//! Determinism: every artifact of a study is a pure function of the seed.
//!
//! The reproduction leans on this everywhere — CI compares artifacts
//! byte-for-byte, and the paper's tables are regenerated from a pinned
//! seed. With `foundation` supplying the RNG, JSON encoder, and thread
//! primitives, the whole pipeline is deterministic end to end: same seed
//! ⇒ byte-identical JSON, different seed ⇒ a different world.

use acctrade::core::{Study, StudyConfig};
use acctrade::crawler::record::Dataset;

#[test]
fn identical_seeds_identical_reports() {
    let config = StudyConfig { seed: 31337, scale: 0.01, iterations: 3, scam: Default::default() };
    let a = Study::new(config).run();
    let b = Study::new(config).run();
    assert_eq!(a.render_all(), b.render_all());
    assert_eq!(a.dataset.to_json(), b.dataset.to_json());
    assert_eq!(a.requests_issued, b.requests_issued);
}

/// The headline guarantee: two independent `Study` runs from one seed
/// serialize to *byte-identical* JSON — not merely equal values. The
/// `foundation::json` encoder preserves field order (insertion order of
/// the codec macros), so equality of bytes is achievable and asserted.
#[test]
fn identical_seeds_byte_identical_json() {
    let config = StudyConfig { seed: 777, scale: 0.01, iterations: 2, scam: Default::default() };
    let a = Study::new(config).run().dataset.to_json();
    let b = Study::new(config).run().dataset.to_json();
    assert_eq!(a.as_bytes(), b.as_bytes(), "report JSON must be byte-identical");

    // And the encoding is stable through a decode/re-encode cycle: the
    // parsed dataset re-renders to the very same bytes.
    let decoded = Dataset::from_json(&a).expect("study JSON parses");
    assert_eq!(decoded.to_json().as_bytes(), a.as_bytes(), "re-encode must be stable");
}

/// Determinism holds even when the two runs race each other on separate
/// threads — nothing in the pipeline leaks wall-clock or scheduler state
/// into the artifacts.
#[test]
fn concurrent_runs_agree() {
    let config = StudyConfig { seed: 4242, scale: 0.01, iterations: 2, scam: Default::default() };
    let (a, b) = foundation::sync::scope(|s| {
        let ha = s.spawn(move || Study::new(config).run());
        let hb = s.spawn(move || Study::new(config).run());
        (ha.join().unwrap(), hb.join().unwrap())
    });
    assert_eq!(a.dataset.to_json(), b.dataset.to_json());
    assert_eq!(a.render_all(), b.render_all());
}

/// The telemetry manifest's virtual-time view is part of the determinism
/// contract: two same-seed runs must serialize to *byte-identical*
/// deterministic JSON once the clearly-named `wall_*` fields are
/// stripped. (Wall-clock timings legitimately differ between runs; the
/// counters, stage virtual times, crawl/API tallies, and events must
/// not.)
#[test]
fn telemetry_manifests_byte_identical_without_wall_fields() {
    let config = StudyConfig { seed: 909, scale: 0.01, iterations: 2, scam: Default::default() };
    let a = Study::new(config).run().telemetry;
    let b = Study::new(config).run().telemetry;
    assert!(a.validate().is_ok());
    assert_eq!(
        a.deterministic_string().as_bytes(),
        b.deterministic_string().as_bytes(),
        "virtual-time manifest fields must be byte-identical"
    );
    // And the full manifest roundtrips through its JSON codec.
    let parsed = acctrade::telemetry::RunManifest::parse(&a.to_json_string())
        .expect("manifest JSON parses");
    assert_eq!(parsed.deterministic_string(), a.deterministic_string());
    // The deterministic view is exactly the centralized wall-stripping
    // normalization applied to the full manifest — every consumer
    // (deterministic_string, validate_manifest, the CI cmp gates) goes
    // through the same `normalize_for_determinism`.
    let full = foundation::json::Json::parse(&a.to_json_string()).expect("full manifest JSON");
    assert_eq!(
        acctrade::telemetry::normalize_for_determinism(&full).render_pretty(),
        a.deterministic_string(),
    );
}

/// The persistence layer must not weaken the determinism contract: an
/// interrupted-then-resumed persisted study produces the same bytes as
/// an *uninterrupted, unpersisted* same-seed run — the WAL, checkpoints,
/// and recovery machinery are invisible in the artifacts. (The deeper
/// per-kill-point variants live in `tests/crash_recovery.rs`; this is
/// the determinism-suite view: persisted == resumed == in-memory.)
#[test]
fn interrupted_and_resumed_run_matches_uninterrupted_run() {
    let config =
        StudyConfig { seed: 5150, scale: 0.01, iterations: 3, scam: Default::default() };

    let scratch = |tag: &str| {
        let dir = std::env::temp_dir()
            .join(format!("acctrade-determinism-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    };

    // Uninterrupted runs: one in-memory, one persisted (the persisted
    // run's manifest additionally carries the `store.*` counters, so the
    // manifest comparison is persisted-vs-persisted).
    let clean_mem = Study::new(config).run();
    let clean_dir = scratch("clean");
    let clean = {
        let rec = acctrade::telemetry::Recorder::new();
        let _scope = rec.enter();
        Study::new(config).run_persisted(&clean_dir).unwrap()
    };

    // Persisted run killed after one iteration, then resumed cold.
    let crash_dir = scratch("crash");
    {
        let rec = acctrade::telemetry::Recorder::new();
        let _scope = rec.enter();
        let outcome = Study::new(config).run_persisted_with_kill(&crash_dir, 1).unwrap();
        assert!(outcome.is_none(), "kill after iteration 1 must interrupt the run");
    }
    let resumed = {
        let rec = acctrade::telemetry::Recorder::new();
        let _scope = rec.enter();
        Study::resume_from(config, &crash_dir).unwrap()
    };
    assert!(resumed.recovery.is_some(), "resumed runs report their recovery");

    // Persistence itself is artifact-invisible: the persisted clean run
    // matches the in-memory run's dataset and rendered report …
    assert_eq!(clean.dataset.to_json().as_bytes(), clean_mem.dataset.to_json().as_bytes());
    assert_eq!(clean.render_all(), clean_mem.render_all());

    // … and the interruption is too: resumed == uninterrupted, to the byte.
    assert_eq!(
        resumed.dataset.to_json().as_bytes(),
        clean.dataset.to_json().as_bytes(),
        "resumed dataset JSON must be byte-identical to the uninterrupted run"
    );
    assert_eq!(
        resumed.telemetry.deterministic_string().as_bytes(),
        clean.telemetry.deterministic_string().as_bytes(),
        "resumed telemetry manifest (wall fields stripped) must be byte-identical"
    );
    assert_eq!(resumed.render_all(), clean.render_all(), "every table and figure agrees");
    assert_eq!(resumed.requests_issued, clean.requests_issued);
    let _ = std::fs::remove_dir_all(&clean_dir);
    let _ = std::fs::remove_dir_all(&crash_dir);
}

#[test]
fn different_seeds_different_worlds() {
    let a = Study::new(StudyConfig { seed: 1, scale: 0.01, iterations: 2, scam: Default::default() })
        .run();
    let b = Study::new(StudyConfig { seed: 2, scale: 0.01, iterations: 2, scam: Default::default() })
        .run();
    // Same *shape*, different content.
    assert_eq!(a.table1.len(), b.table1.len());
    assert_ne!(a.dataset.to_json(), b.dataset.to_json());
}
