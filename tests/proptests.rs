//! Property-based tests on cross-crate invariants (`foundation::check`).

use acctrade::html::{parse, Selector};
use acctrade::market::site::format_price;
use acctrade::net::ratelimit::TokenBucket;
use acctrade::net::url::Url;
use acctrade::store::{decode_frame, encode_frame, Decoded};
use acctrade::text::similarity::{dice_similarity, jaccard_similarity, word_similarity};
use acctrade::text::tokenize::tokenize;
use acctrade::text::vectorize::{cosine, TfIdfModel};
use foundation::check::{self, pattern, PatternStrategy};
use foundation::prop_check;

/// Strategy for URL-safe host names.
fn host_strategy() -> PatternStrategy {
    pattern("[a-z][a-z0-9-]{0,12}(\\.[a-z]{2,5}){1,2}")
}

/// Strategy for URL paths.
fn path_strategy() -> PatternStrategy {
    pattern("(/[a-zA-Z0-9_.-]{1,8}){0,4}")
}

prop_check! {
    fn url_display_parse_roundtrip(host in host_strategy(), path in path_strategy()) {
        let url = Url::http(&host, &path);
        let reparsed = Url::parse(&url.to_string()).expect("display output parses");
        assert_eq!(url, reparsed);
    }

    fn url_join_produces_same_host_for_relative(host in host_strategy(),
                                                base in path_strategy(),
                                                link in pattern("[a-zA-Z0-9_.-]{1,8}")) {
        let url = Url::http(&host, &base);
        let joined = url.join(&link).expect("relative join succeeds");
        assert_eq!(joined.host(), url.host());
        assert!(joined.path().starts_with('/'));
    }

    fn html_escape_text_roundtrip(text in pattern("[ -~]{0,64}")) {
        // Build a document with the text, render, reparse: the text
        // content must survive (modulo whitespace normalization the DOM
        // applies).
        let mut b = acctrade::html::dom::Builder::new();
        b.open("p").text(text.to_string()).close();
        let rendered = b.finish().render();
        let doc = parse(&rendered);
        let p = doc.select_first(&Selector::parse("p").unwrap()).unwrap();
        let expect: String = text.split_whitespace().collect::<Vec<_>>().join(" ");
        assert_eq!(p.text(), expect);
    }

    fn html_attr_roundtrip(value in pattern("[ -~&&[^<>]]{0,40}")) {
        let mut b = acctrade::html::dom::Builder::new();
        b.open("a").attr("title", value.to_string()).close();
        let rendered = b.finish().render();
        let doc = parse(&rendered);
        let a = doc.select_first(&Selector::parse("a").unwrap()).unwrap();
        assert_eq!(a.attr("title"), Some(value.as_str()));
    }

    fn tokenizer_tokens_are_lowercase_nonempty(text in pattern("\\PC{0,200}")) {
        for t in tokenize(&text) {
            assert!(!t.is_empty());
            // Lowercasing is idempotent on every token (some scripts have
            // uppercase-only codepoints with no lowercase mapping, e.g.
            // mathematical alphanumerics — those are fixed points).
            let lowered: String = t.chars().flat_map(char::to_lowercase).collect();
            assert_eq!(&lowered, &t, "token not lowercase-stable");
            assert!(!t.contains(char::is_whitespace));
        }
    }

    fn similarity_bounds_and_symmetry(a in pattern("[a-z ]{0,80}"), b in pattern("[a-z ]{0,80}")) {
        for f in [word_similarity, jaccard_similarity, dice_similarity] {
            let s_ab = f(&a, &b);
            let s_ba = f(&b, &a);
            assert!((0.0..=1.0).contains(&s_ab));
            assert!((s_ab - s_ba).abs() < 1e-12);
        }
        assert!((word_similarity(&a, &a) - 1.0).abs() < 1e-12);
    }

    fn tfidf_cosine_bounds(docs in check::vec(pattern("[a-z ]{1,60}"), 2..8)) {
        let docs: Vec<String> = docs.iter().map(|d| d.to_string()).collect();
        let model = TfIdfModel::fit(&docs, 1);
        let vecs = model.transform_all(&docs);
        for x in &vecs {
            for y in &vecs {
                let c = cosine(x, y);
                assert!((-1.0001..=1.0001).contains(&c));
            }
        }
    }

    fn token_bucket_never_exceeds_rate(rate in 1.0f64..50.0,
                                       burst in 1.0f64..10.0,
                                       steps in check::vec(1_000u64..500_000, 1..100)) {
        let mut bucket = TokenBucket::new(rate, burst, 0);
        let mut now = 0u64;
        let mut grants = 0u64;
        for dt in &steps {
            now += dt;
            if bucket.try_acquire(now) {
                grants += 1;
            }
        }
        let cap = burst + rate * (now as f64 / 1e6) + 1.0;
        assert!((grants as f64) <= cap, "grants={grants} cap={cap}");
    }

    fn price_format_parse_roundtrip(cents in 100i64..2_000_000_000) {
        let usd = cents as f64 / 100.0;
        let formatted = format_price(usd);
        let parsed = acctrade::crawler::extract::parse_price(&formatted)
            .expect("formatted price parses");
        assert!((parsed - usd).abs() < 0.005, "{usd} -> {formatted} -> {parsed}");
    }

    fn median_is_order_statistic(values in check::vec(0.0f64..1e6, 1..50)) {
        let mut values = values;
        let m = acctrade::core::stats::median(&values).unwrap();
        values.sort_by(|a, b| a.partial_cmp(b).unwrap());
        assert!(m >= values[0] && m <= *values.last().unwrap());
        // At least half the values on each side.
        let below = values.iter().filter(|&&v| v <= m).count();
        let above = values.iter().filter(|&&v| v >= m).count();
        assert!(below * 2 >= values.len());
        assert!(above * 2 >= values.len());
    }

    fn ecdf_is_monotone(values in check::vec(-1e6f64..1e6, 1..60)) {
        let points = acctrade::core::stats::ecdf(&values);
        assert!(points.windows(2).all(|w| w[0].0 <= w[1].0 && w[0].1 <= w[1].1));
        assert!((points.last().unwrap().1 - 1.0).abs() < 1e-9);
    }
}

// WAL framing (`acctrade-store`): the checksummed binary format every
// crawl record passes through. Round-trip fidelity and corruption
// detection are what make the crash-recovery guarantees honest.
prop_check! {
    fn wal_frame_roundtrips_any_kind_and_payload(kind in 0u64..256,
                                                 payload in check::vec(0u64..256, 0..120)) {
        let kind = kind as u8;
        let payload: Vec<u8> = payload.iter().map(|&b| b as u8).collect();
        let frame = encode_frame(kind, &payload);
        match decode_frame(&frame) {
            Decoded::Frame { kind: k, payload: p, consumed } => {
                assert_eq!(k, kind);
                assert_eq!(p, &payload[..]);
                assert_eq!(consumed, frame.len(), "frame is self-delimiting");
            }
            other => panic!("round-trip lost the frame: {other:?}"),
        }
        // With trailing garbage (the next frame, a torn tail, anything),
        // decoding still yields exactly the first frame.
        let mut noisy = frame.clone();
        noisy.extend_from_slice(&payload);
        noisy.push(0x5A);
        match decode_frame(&noisy) {
            Decoded::Frame { payload: p, consumed, .. } => {
                assert_eq!(p, &payload[..]);
                assert_eq!(consumed, frame.len());
            }
            other => panic!("trailing bytes broke the first frame: {other:?}"),
        }
    }

    fn wal_frame_single_byte_corruption_is_always_detected(
            kind in 0u64..256,
            payload in check::vec(0u64..256, 0..120),
            idx in 0u64..1_000_000,
            mask in 1u64..256) {
        let payload: Vec<u8> = payload.iter().map(|&b| b as u8).collect();
        let mut frame = encode_frame(kind as u8, &payload);
        let idx = (idx as usize) % frame.len();
        frame[idx] ^= mask as u8;
        // Any single-byte flip — header, CRC, kind, or payload — must be
        // *rejected* (corrupt, or incomplete when the flipped length now
        // claims more bytes than exist), never silently decoded and never
        // a panic. CRC-32 detects all single-byte errors in the body; the
        // length-field guards catch the rest.
        match decode_frame(&frame) {
            Decoded::Corrupt | Decoded::Incomplete => {}
            Decoded::Frame { kind: k, payload: p, .. } => panic!(
                "corrupted frame (byte {idx} ^ {mask:#04x}) decoded as kind {k}, {} payload bytes",
                p.len()
            ),
        }
    }

    fn wal_frame_truncation_never_yields_a_frame(payload in check::vec(0u64..256, 0..80),
                                                 cut in 0u64..1_000_000) {
        let payload: Vec<u8> = payload.iter().map(|&b| b as u8).collect();
        let frame = encode_frame(1, &payload);
        let cut = (cut as usize) % frame.len(); // strictly shorter than the frame
        match decode_frame(&frame[..cut]) {
            Decoded::Incomplete | Decoded::Corrupt => {}
            Decoded::Frame { .. } => panic!("truncated frame decoded at cut {cut}"),
        }
    }
}

/// Deterministic offer record derived from one seed word — enough
/// field diversity to exercise every component of the merge key,
/// including ties on the leading timestamp and on (timestamp, market).
/// The payload (`title`) is a function of the merge key alone,
/// mirroring the engine: one (offer URL, iteration) is crawled by
/// exactly one shard at one virtual time, so records with equal keys
/// are equal records.
fn offer_from_seed(seed: u64) -> acctrade::crawler::OfferRecord {
    let market = seed % 5;
    let (url_id, time, iter) = (seed % 89, seed % 1_000, seed % 4);
    acctrade::crawler::OfferRecord {
        marketplace: format!("market-{market}"),
        offer_url: format!("https://market-{market}.example/offer/{url_id}"),
        title: format!("offer m{market} u{url_id} t{time} i{iter}"),
        seller: None,
        seller_country: None,
        price_usd: None,
        platform: None,
        category: None,
        claimed_followers: None,
        claims_verified: false,
        monthly_revenue_usd: None,
        income_source: None,
        description: None,
        profile_link: None,
        handle: None,
        collected_unix: time as i64,
        iteration: iter as usize,
    }
}

// Deterministic merge (`acctrade-crawler::merge`): the two properties
// the parallel crawl engine's honesty rests on. If either fails, the
// merged dataset would depend on steal/completion order and the
// byte-identity guarantee across worker counts would be a fluke.
prop_check! {
    fn merge_is_invariant_under_shard_permutation(seeds in check::vec(check::any_u64(), 1..48),
                                                  twist in check::any_u64()) {
        use acctrade::crawler::merge::merge_shards;
        let records: Vec<_> = seeds.iter().map(|&s| offer_from_seed(s)).collect();

        // One completion order: round-robin over k shards.
        let k = (twist % 7 + 1) as usize;
        let mut shards: Vec<Vec<_>> = vec![Vec::new(); k];
        for (i, r) in records.iter().enumerate() {
            shards[i % k].push(r.clone());
        }
        let merged = merge_shards(shards.clone());

        // A different completion order: shards rotated and each shard's
        // arrival order reversed — as if every worker finished in the
        // opposite sequence.
        let mut permuted: Vec<Vec<_>> = shards
            .into_iter()
            .map(|mut s| {
                s.reverse();
                s
            })
            .collect();
        permuted.rotate_left((twist % k as u64) as usize);
        assert_eq!(merged, merge_shards(permuted), "shard permutation changed the merge");

        // And the degenerate single-shard order (pure sequential crawl).
        assert_eq!(merged, merge_shards(vec![records]), "sharding itself changed the merge");
    }

    fn merge_key_is_a_total_order(seeds in check::vec(check::any_u64(), 1..24)) {
        use acctrade::crawler::merge::{merge_key, merge_shards};
        use std::cmp::Ordering;
        let records: Vec<_> = seeds.iter().map(|&s| offer_from_seed(s)).collect();

        for a in &records {
            assert_eq!(merge_key(a).cmp(&merge_key(a)), Ordering::Equal, "reflexive");
            for b in &records {
                // Antisymmetry/totality: cmp in both directions agrees,
                // and equal keys mean equal key tuples.
                assert_eq!(
                    merge_key(a).cmp(&merge_key(b)),
                    merge_key(b).cmp(&merge_key(a)).reverse(),
                );
                for c in &records {
                    if merge_key(a) <= merge_key(b) && merge_key(b) <= merge_key(c) {
                        assert!(merge_key(a) <= merge_key(c), "transitive");
                    }
                }
            }
        }

        // The merged stream is sorted under that order — the order is
        // not just total but actually what the merge produces.
        let merged = merge_shards(vec![records]);
        assert!(merged.windows(2).all(|w| merge_key(&w[0]) <= merge_key(&w[1])));
    }
}

/// Shrinking regression: a failing property must be reported with the
/// *minimal* counterexample inside the strategy's support, not merely
/// the first failure found.
#[test]
fn shrinking_reports_minimal_counterexample() {
    let config = check::Config {
        cases: 64,
        max_shrink: 4_096,
        seed: 0xDECAF,
    };
    let err = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        check::run_with(
            "never_250_or_more",
            &config,
            &(0u64..100_000,),
            |&(v,)| assert!(v < 250),
        );
    }))
    .expect_err("property must fail");
    let message = err
        .downcast_ref::<String>()
        .cloned()
        .expect("panic carries a message");
    assert!(
        message.contains("minimal input: (250,)"),
        "expected the boundary counterexample 250, got: {message}"
    );
    assert!(message.contains("reproduce with CHECK_SEED="));
}
