//! Property-based tests on cross-crate invariants (proptest).

use acctrade::html::{parse, Selector};
use acctrade::market::site::format_price;
use acctrade::net::ratelimit::TokenBucket;
use acctrade::net::url::Url;
use acctrade::text::similarity::{dice_similarity, jaccard_similarity, word_similarity};
use acctrade::text::tokenize::tokenize;
use acctrade::text::vectorize::{cosine, TfIdfModel};
use proptest::prelude::*;

/// Strategy for URL-safe host names.
fn host_strategy() -> impl Strategy<Value = String> {
    "[a-z][a-z0-9-]{0,12}(\\.[a-z]{2,5}){1,2}"
}

/// Strategy for URL paths.
fn path_strategy() -> impl Strategy<Value = String> {
    "(/[a-zA-Z0-9_.-]{1,8}){0,4}"
}

proptest! {
    #[test]
    fn url_display_parse_roundtrip(host in host_strategy(), path in path_strategy()) {
        let url = Url::http(&host, &path);
        let reparsed = Url::parse(&url.to_string()).expect("display output parses");
        prop_assert_eq!(url, reparsed);
    }

    #[test]
    fn url_join_produces_same_host_for_relative(host in host_strategy(),
                                                base in path_strategy(),
                                                link in "[a-zA-Z0-9_.-]{1,8}") {
        let url = Url::http(&host, &base);
        let joined = url.join(&link).expect("relative join succeeds");
        prop_assert_eq!(joined.host(), url.host());
        prop_assert!(joined.path().starts_with('/'));
    }

    #[test]
    fn html_escape_text_roundtrip(text in "[ -~]{0,64}") {
        // Build a document with the text, render, reparse: the text
        // content must survive (modulo whitespace normalization the DOM
        // applies).
        let mut b = acctrade::html::dom::Builder::new();
        b.open("p").text(text.clone()).close();
        let rendered = b.finish().render();
        let doc = parse(&rendered);
        let p = doc.select_first(&Selector::parse("p").unwrap()).unwrap();
        let expect: String = text.split_whitespace().collect::<Vec<_>>().join(" ");
        prop_assert_eq!(p.text(), expect);
    }

    #[test]
    fn html_attr_roundtrip(value in "[ -~&&[^<>]]{0,40}") {
        let mut b = acctrade::html::dom::Builder::new();
        b.open("a").attr("title", value.clone()).close();
        let rendered = b.finish().render();
        let doc = parse(&rendered);
        let a = doc.select_first(&Selector::parse("a").unwrap()).unwrap();
        prop_assert_eq!(a.attr("title"), Some(value.as_str()));
    }

    #[test]
    fn tokenizer_tokens_are_lowercase_nonempty(text in "\\PC{0,200}") {
        for t in tokenize(&text) {
            prop_assert!(!t.is_empty());
            // Lowercasing is idempotent on every token (some scripts have
            // uppercase-only codepoints with no lowercase mapping, e.g.
            // mathematical alphanumerics — those are fixed points).
            let lowered: String = t.chars().flat_map(char::to_lowercase).collect();
            prop_assert_eq!(&lowered, &t, "token not lowercase-stable");
            prop_assert!(!t.contains(char::is_whitespace));
        }
    }

    #[test]
    fn similarity_bounds_and_symmetry(a in "[a-z ]{0,80}", b in "[a-z ]{0,80}") {
        for f in [word_similarity, jaccard_similarity, dice_similarity] {
            let s_ab = f(&a, &b);
            let s_ba = f(&b, &a);
            prop_assert!((0.0..=1.0).contains(&s_ab));
            prop_assert!((s_ab - s_ba).abs() < 1e-12);
        }
        prop_assert!((word_similarity(&a, &a) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn tfidf_cosine_bounds(docs in proptest::collection::vec("[a-z ]{1,60}", 2..8)) {
        let model = TfIdfModel::fit(&docs, 1);
        let vecs = model.transform_all(&docs);
        for x in &vecs {
            for y in &vecs {
                let c = cosine(x, y);
                prop_assert!((-1.0001..=1.0001).contains(&c));
            }
        }
    }

    #[test]
    fn token_bucket_never_exceeds_rate(rate in 1.0f64..50.0,
                                       burst in 1.0f64..10.0,
                                       steps in proptest::collection::vec(1_000u64..500_000, 1..100)) {
        let mut bucket = TokenBucket::new(rate, burst, 0);
        let mut now = 0u64;
        let mut grants = 0u64;
        for dt in &steps {
            now += dt;
            if bucket.try_acquire(now) {
                grants += 1;
            }
        }
        let cap = burst + rate * (now as f64 / 1e6) + 1.0;
        prop_assert!((grants as f64) <= cap, "grants={grants} cap={cap}");
    }

    #[test]
    fn price_format_parse_roundtrip(cents in 100i64..2_000_000_000) {
        let usd = cents as f64 / 100.0;
        let formatted = format_price(usd);
        let parsed = acctrade::crawler::extract::parse_price(&formatted)
            .expect("formatted price parses");
        prop_assert!((parsed - usd).abs() < 0.005, "{usd} -> {formatted} -> {parsed}");
    }

    #[test]
    fn median_is_order_statistic(mut values in proptest::collection::vec(0.0f64..1e6, 1..50)) {
        let m = acctrade::core::stats::median(&values).unwrap();
        values.sort_by(|a, b| a.partial_cmp(b).unwrap());
        prop_assert!(m >= values[0] && m <= *values.last().unwrap());
        // At least half the values on each side.
        let below = values.iter().filter(|&&v| v <= m).count();
        let above = values.iter().filter(|&&v| v >= m).count();
        prop_assert!(below * 2 >= values.len());
        prop_assert!(above * 2 >= values.len());
    }

    #[test]
    fn ecdf_is_monotone(values in proptest::collection::vec(-1e6f64..1e6, 1..60)) {
        let points = acctrade::core::stats::ecdf(&values);
        prop_assert!(points.windows(2).all(|w| w[0].0 <= w[1].0 && w[0].1 <= w[1].1));
        prop_assert!((points.last().unwrap().1 - 1.0).abs() < 1e-9);
    }
}
