//! Parallel determinism: the sharded work-stealing crawl engine must be
//! a pure performance knob, never an output knob.
//!
//! The honesty claim behind `--workers N` is sharp: the *entire*
//! persisted artifact set of a campaign — dataset JSON, deterministic
//! telemetry manifest (wall-clock fields stripped), the WAL segment
//! bytes themselves, the store manifest, and the final checkpoint
//! (including its per-shard lane cursors) — must be byte-identical at
//! every worker count. These tests pin that claim at workers ∈
//! {1, 2, 4, 8}, then stress the work-stealing scheduler itself on 8
//! threads and demand conservation: every frontier shard processed
//! exactly once, no loss, no duplication, regardless of steal order.

use acctrade::core::study::{Study, StudyConfig, StudyReport};
use acctrade::crawler::{merge, steal};
use acctrade::net::{Client, SimNet};
use acctrade::telemetry;
use acctrade::workload::world::{World, WorldParams};
use std::path::{Path, PathBuf};

const SEED: u64 = 20250807;
const WORKER_COUNTS: [usize; 4] = [1, 2, 4, 8];

fn config() -> StudyConfig {
    StudyConfig { seed: SEED, scale: 0.01, iterations: 3, scam: Default::default() }
}

fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("acctrade-par-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Everything a persisted campaign leaves behind that must not depend
/// on the worker count.
struct Artifacts {
    dataset_json: String,
    manifest: String,
    segments: Vec<(String, Vec<u8>)>,
    store_manifest: String,
    checkpoint: String,
}

fn collect_artifacts(report: &StudyReport, dir: &Path) -> Artifacts {
    let mut names: Vec<String> = std::fs::read_dir(dir)
        .unwrap()
        .map(|e| e.unwrap().file_name().into_string().unwrap())
        .filter(|n| n.ends_with(".seg"))
        .collect();
    names.sort();
    let segments = names
        .into_iter()
        .map(|n| {
            let bytes = std::fs::read(dir.join(&n)).unwrap();
            (n, bytes)
        })
        .collect();
    Artifacts {
        dataset_json: report.dataset.to_json(),
        manifest: report.telemetry.deterministic_string(),
        segments,
        store_manifest: std::fs::read_to_string(dir.join("store_manifest.json")).unwrap(),
        checkpoint: std::fs::read_to_string(dir.join("checkpoint.json")).unwrap(),
    }
}

/// One full persisted campaign at the given worker count.
fn persisted_run(workers: usize) -> Artifacts {
    let dir = scratch(&format!("w{workers}"));
    let rec = telemetry::Recorder::new();
    let _scope = rec.enter();
    let report = Study::new(config()).with_workers(workers).run_persisted(&dir).unwrap();
    assert!(report.recovery.is_none(), "clean runs perform no recovery");
    let artifacts = collect_artifacts(&report, &dir);
    let _ = std::fs::remove_dir_all(&dir);
    artifacts
}

/// The tentpole guarantee: same seed, any worker count, byte-identical
/// everything.
#[test]
fn worker_counts_produce_byte_identical_artifacts() {
    let baseline = persisted_run(WORKER_COUNTS[0]);
    assert!(!baseline.dataset_json.is_empty());
    assert!(!baseline.segments.is_empty(), "campaign persists WAL segments");
    assert!(
        baseline.checkpoint.contains("shard_cursors"),
        "v2 checkpoints carry per-shard lane cursors"
    );

    for &workers in &WORKER_COUNTS[1..] {
        let run = persisted_run(workers);
        assert_eq!(
            run.dataset_json.as_bytes(),
            baseline.dataset_json.as_bytes(),
            "dataset JSON differs at workers={workers}"
        );
        assert_eq!(
            run.manifest.as_bytes(),
            baseline.manifest.as_bytes(),
            "deterministic telemetry manifest differs at workers={workers}"
        );
        assert_eq!(
            run.segments.len(),
            baseline.segments.len(),
            "WAL segment count differs at workers={workers}"
        );
        for ((rn, rb), (bn, bb)) in run.segments.iter().zip(&baseline.segments) {
            assert_eq!(rn, bn, "segment names differ at workers={workers}");
            assert_eq!(rb, bb, "segment {rn} differs at workers={workers}");
        }
        assert_eq!(
            run.store_manifest, baseline.store_manifest,
            "store manifest differs at workers={workers}"
        );
        assert_eq!(
            run.checkpoint, baseline.checkpoint,
            "final checkpoint (with shard cursors) differs at workers={workers}"
        );
    }
}

fn engine_setup(seed: u64) -> std::sync::Arc<SimNet> {
    let world = World::generate(WorldParams { seed, scale: 0.02 });
    let net = SimNet::new(seed);
    world.deploy(&net);
    net
}

/// 8-thread work-stealing stress: conservation of the frontier. Every
/// planned shard is executed exactly once — by someone — and the
/// per-worker diagnostics account for all of them.
#[test]
fn eight_worker_stress_conserves_every_shard() {
    let net = engine_setup(SEED);
    let client = Client::new(&net, "acctrade-crawler/0.1").with_politeness(20.0, 8.0);

    for iteration in 0..3 {
        let run = steal::run_iteration(&client, iteration, 8, None);
        assert!(!run.killed);
        assert!(run.shards_total > 8, "enough shards to exercise stealing");

        // Exactly once: indices are a permutation of 0..shards_total,
        // and no (marketplace, chain) pair appears twice.
        let indexes: Vec<usize> = run.outcomes.iter().map(|o| o.index).collect();
        assert_eq!(indexes, (0..run.shards_total).collect::<Vec<_>>());
        let mut keys: Vec<(&str, usize)> =
            run.outcomes.iter().map(|o| (o.market.name(), o.chain)).collect();
        keys.sort();
        let before = keys.len();
        keys.dedup();
        assert_eq!(keys.len(), before, "no shard is crawled twice");

        // The worker reports conserve the same total, and busy time
        // matches the lanes they claim to have run.
        assert_eq!(run.reports.len(), 8);
        assert_eq!(run.reports.iter().map(|r| r.shards_run).sum::<usize>(), run.shards_total);
        assert_eq!(
            run.reports.iter().map(|r| r.shards_stolen).sum::<usize>(),
            run.outcomes.iter().filter(|o| o.stolen).count(),
        );
        let lane_total: u64 =
            run.outcomes.iter().map(|o| o.lane.now_us() - o.lane.start_us()).sum();
        assert_eq!(run.reports.iter().map(|r| r.busy_virtual_us).sum::<u64>(), lane_total);

        // Fold the iteration back into the fabric exactly as the
        // campaign scheduler does, so iteration i+1 starts from the
        // same shared clock a sequential run would reach.
        for (_, lane) in &run.discovery {
            net.absorb_lane(lane);
        }
        for outcome in &run.outcomes {
            net.absorb_lane(&outcome.lane);
        }
    }
}

/// The merged record stream is invariant not just across worker counts
/// but across *which* worker ran which shard: an 8-way stressed run
/// merges to the same bytes as the sequential reference.
#[test]
fn stressed_merge_matches_sequential_reference() {
    let sequential = {
        let net = engine_setup(SEED + 1);
        let client = Client::new(&net, "acctrade-crawler/0.1").with_politeness(20.0, 8.0);
        let run = steal::run_iteration(&client, 0, 1, None);
        merge::merge_shards(run.outcomes.into_iter().map(|o| o.records).collect())
    };
    let stressed = {
        let net = engine_setup(SEED + 1);
        let client = Client::new(&net, "acctrade-crawler/0.1").with_politeness(20.0, 8.0);
        let run = steal::run_iteration(&client, 0, 8, None);
        merge::merge_shards(run.outcomes.into_iter().map(|o| o.records).collect())
    };
    assert!(!sequential.is_empty());
    assert_eq!(sequential, stressed, "steal order must never leak into the merged stream");

    // And the merge really is ordered by the canonical key, not by
    // shard arrival: adjacent records never violate the total order.
    for pair in stressed.windows(2) {
        assert!(
            merge::merge_key(&pair[0]) <= merge::merge_key(&pair[1]),
            "merged stream is sorted by (virtual time, marketplace, url, iteration)"
        );
    }
}
