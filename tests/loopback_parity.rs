//! Transport parity: a crawl over real loopback TCP must surface the
//! same offers as the same crawl run on the simulated fabric.
//!
//! The loopback leg is the serving layer end-to-end: the seeded world's
//! sites are mounted on an `acctrade-httpd` server behind a virtual-host
//! table, and the work-stealing campaign engine (4 workers) crawls them
//! through `LoopbackTransport` — real sockets, real concurrency, real
//! keep-alive. Loopback records carry wall-clock `collected_unix`
//! stamps, so both sides are normalized with
//! `crawler::merge::normalize_for_parity` (timestamps zeroed, canonical
//! merge-key order) before comparison.

use acctrade::crawler::merge::normalize_for_parity;
use acctrade::crawler::record::OfferRecord;
use acctrade::crawler::CrawlCampaign;
use acctrade::httpd::{HostTable, HttpServer, LoopbackTransport, ServerConfig, TimeSource};
use acctrade::net::transport::Transport;
use acctrade::net::{Client, SimNet};
use acctrade::workload::world::{World, WorldParams};
use std::sync::Arc;

const SEED: u64 = 4242;
const SCALE: f64 = 0.01;
const ITERATIONS: usize = 2;

enum Mode {
    Sim,
    Loopback,
}

/// Run the crawl campaign over the chosen transport and return its
/// parity-normalized offer records.
fn campaign_offers(mode: Mode) -> Vec<OfferRecord> {
    let rec = acctrade::telemetry::Recorder::new();
    let _scope = rec.enter();

    let mut world = World::generate(WorldParams { seed: SEED, scale: SCALE });
    let net = SimNet::new(SEED);
    world.deploy(&net);

    let client = Client::new(&net, "acctrade-crawler/0.1").with_politeness(20.0, 8.0);
    let (client, server, workers) = match mode {
        Mode::Sim => (client, None, 1),
        Mode::Loopback => {
            // Mount the live fabric services (shared Arcs — world churn
            // between iterations propagates) on a real server that
            // shares the study's virtual clock.
            let config = ServerConfig {
                workers: 4,
                time: TimeSource::Virtual(net.clock().clone()),
                ..ServerConfig::default()
            };
            let server = HttpServer::bind("127.0.0.1:0", HostTable::from_sim(&net), config)
                .expect("bind loopback server");
            let transport: Arc<dyn Transport> = Arc::new(LoopbackTransport::new(server.addr()));
            (client.with_transport(transport), Some(server), 4)
        }
    };

    let mut campaign = CrawlCampaign::new(&client);
    campaign.workers = workers;
    let (dataset, snapshots) = campaign.run(&mut world, ITERATIONS);
    assert_eq!(snapshots.len(), ITERATIONS);
    assert!(!dataset.offers.is_empty(), "campaign collected nothing");

    if let Some(server) = server {
        let stats = server.stats();
        server.shutdown();
        let snap = stats.snapshot();
        assert!(snap.requests > 0, "loopback campaign never touched the server");
        assert_eq!(snap.parse_rejects, 0, "crawler sent malformed requests");
    }
    normalize_for_parity(dataset.offers)
}

#[test]
fn loopback_campaign_matches_sim_campaign() {
    let sim = campaign_offers(Mode::Sim);
    let loopback = campaign_offers(Mode::Loopback);

    assert_eq!(
        sim.len(),
        loopback.len(),
        "offer counts diverge between transports: sim={} loopback={}",
        sim.len(),
        loopback.len()
    );
    for (i, (s, l)) in sim.iter().zip(&loopback).enumerate() {
        assert_eq!(s, l, "offer {i} diverges between transports");
    }
}

#[test]
fn loopback_transport_reports_its_mode() {
    // Provenance surface: the study records which wire it ran on.
    use acctrade::core::{Study, StudyConfig};
    let study = Study::new(StudyConfig { seed: 1, scale: 0.01, iterations: 1, scam: Default::default() });
    assert_eq!(study.transport_mode(), "sim");
}
