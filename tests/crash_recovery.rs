//! Crash recovery: an interrupted persisted study resumes byte-identically.
//!
//! The paper's dataset is the product of a five-month crawl campaign; in
//! reality such campaigns die and restart. These tests kill a persisted
//! study at four distinct points — a clean iteration boundary, a torn
//! frame mid-segment, a crash between the WAL fsync and the checkpoint
//! replace, and a death *inside* the parallel crawl phase with shards
//! in flight on 4 workers — then resume and demand that *every*
//! artifact is
//! byte-identical to an uninterrupted same-seed run: the dataset JSON,
//! the deterministic telemetry manifest, the WAL segment files
//! themselves, the store manifest, and the final checkpoint.

use acctrade::core::study::{Study, StudyConfig, StudyReport};
use acctrade::store::StoreError;
use acctrade::telemetry;
use std::path::{Path, PathBuf};
use std::sync::OnceLock;

const SEED: u64 = 20240615;

fn config() -> StudyConfig {
    StudyConfig { seed: SEED, scale: 0.01, iterations: 4, scam: Default::default() }
}

fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("acctrade-crash-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Everything that must be byte-identical between an uninterrupted run
/// and an interrupted-then-resumed run.
struct Artifacts {
    dataset_json: String,
    manifest: String,
    segments: Vec<(String, Vec<u8>)>,
    store_manifest: String,
    checkpoint: String,
}

fn collect_artifacts(report: &StudyReport, dir: &Path) -> Artifacts {
    let mut names: Vec<String> = std::fs::read_dir(dir)
        .unwrap()
        .map(|e| e.unwrap().file_name().into_string().unwrap())
        .filter(|n| n.ends_with(".seg"))
        .collect();
    names.sort();
    let segments = names
        .into_iter()
        .map(|n| {
            let bytes = std::fs::read(dir.join(&n)).unwrap();
            (n, bytes)
        })
        .collect();
    Artifacts {
        dataset_json: report.dataset.to_json(),
        manifest: report.telemetry.deterministic_string(),
        segments,
        store_manifest: std::fs::read_to_string(dir.join("store_manifest.json")).unwrap(),
        checkpoint: std::fs::read_to_string(dir.join("checkpoint.json")).unwrap(),
    }
}

/// The uninterrupted same-seed run, shared across tests.
fn baseline() -> &'static Artifacts {
    static BASELINE: OnceLock<Artifacts> = OnceLock::new();
    BASELINE.get_or_init(|| {
        let dir = scratch("clean");
        let rec = telemetry::Recorder::new();
        let _scope = rec.enter();
        let report = Study::new(config()).run_persisted(&dir).unwrap();
        assert!(report.recovery.is_none(), "clean run performs no recovery");
        let artifacts = collect_artifacts(&report, &dir);
        let _ = std::fs::remove_dir_all(&dir);
        artifacts
    })
}

fn assert_identical(resumed: &Artifacts) {
    let clean = baseline();
    assert_eq!(
        resumed.dataset_json.as_bytes(),
        clean.dataset_json.as_bytes(),
        "dataset JSON must be byte-identical"
    );
    assert_eq!(
        resumed.manifest.as_bytes(),
        clean.manifest.as_bytes(),
        "deterministic telemetry manifest must be byte-identical"
    );
    assert_eq!(
        resumed.segments.len(),
        clean.segments.len(),
        "same number of WAL segments"
    );
    for ((rn, rb), (cn, cb)) in resumed.segments.iter().zip(&clean.segments) {
        assert_eq!(rn, cn, "segment file names must match");
        assert_eq!(rb, cb, "segment {rn} must be byte-identical");
    }
    assert_eq!(resumed.store_manifest, clean.store_manifest, "store manifest");
    assert_eq!(resumed.checkpoint, clean.checkpoint, "final checkpoint");
}

/// Run the study with a crash injected after `kill_after` iterations.
fn killed_run(dir: &Path, kill_after: usize) {
    let rec = telemetry::Recorder::new();
    let _scope = rec.enter();
    let outcome = Study::new(config()).run_persisted_with_kill(dir, kill_after).unwrap();
    assert!(outcome.is_none(), "kill must fire before the campaign completes");
}

/// Resume under a fresh ambient recorder; return the report plus the
/// ambient recorder (which collected the recovery counters).
fn resume(dir: &Path) -> (StudyReport, telemetry::Recorder) {
    let ambient = telemetry::Recorder::new();
    let report = {
        let _scope = ambient.enter();
        Study::resume_from(config(), dir).unwrap()
    };
    (report, ambient)
}

fn last_segment(dir: &Path) -> PathBuf {
    let mut names: Vec<String> = std::fs::read_dir(dir)
        .unwrap()
        .map(|e| e.unwrap().file_name().into_string().unwrap())
        .filter(|n| n.ends_with(".seg"))
        .collect();
    names.sort();
    dir.join(names.last().expect("killed run left segments"))
}

/// Kill point 1: a clean iteration boundary — WAL synced, checkpoint
/// durable, process gone.
#[test]
fn kill_at_iteration_boundary_resumes_byte_identical() {
    let dir = scratch("boundary");
    killed_run(&dir, 2);

    // A mismatched seed is refused before any simulation is rebuilt.
    let mut wrong = config();
    wrong.seed ^= 1;
    match Study::resume_from(wrong, &dir) {
        Err(StoreError::Invalid(msg)) => assert!(msg.contains("seed"), "got {msg:?}"),
        other => panic!("expected Invalid seed mismatch, got {:?}", other.map(|_| "report")),
    }

    let (report, _ambient) = resume(&dir);
    let recovery = report.recovery.expect("resumed run reports recovery");
    assert_eq!(recovery.torn_tails_truncated, 0);
    assert_eq!(recovery.uncommitted_records_dropped, 0);
    assert!(recovery.records_replayed > 0);
    assert_identical(&collect_artifacts(&report, &dir));

    // The finished store is marked complete and refuses a second resume.
    match Study::resume_from(config(), &dir) {
        Err(StoreError::Invalid(msg)) => assert!(msg.contains("complete"), "got {msg:?}"),
        other => panic!("expected Invalid complete, got {:?}", other.map(|_| "report")),
    }
    let _ = std::fs::remove_dir_all(&dir);
}

/// Kill point 2: mid-segment — the process died while writing a frame,
/// leaving a torn partial frame at the tail of the last segment.
#[test]
fn kill_mid_segment_truncates_torn_tail_and_resumes_byte_identical() {
    let dir = scratch("midseg");
    killed_run(&dir, 2);

    // A torn half-frame at the tail of the last segment.
    let seg = last_segment(&dir);
    let mut bytes = std::fs::read(&seg).unwrap();
    bytes.extend_from_slice(&[0x5A, 0x01, 0x02]);
    std::fs::write(&seg, bytes).unwrap();

    let (report, ambient) = resume(&dir);
    let recovery = report.recovery.expect("resumed run reports recovery");
    assert_eq!(recovery.torn_tails_truncated, 1, "the torn tail was truncated");
    assert_eq!(recovery.uncommitted_records_dropped, 0);

    // Recovery telemetry surfaces on the ambient recorder — deliberately
    // not inside the restored study recorder.
    assert_eq!(ambient.counter("store.torn_tails_truncated", &[]), 1);
    assert!(ambient.counter("store.records_replayed", &[]) > 0);

    assert_identical(&collect_artifacts(&report, &dir));
    let _ = std::fs::remove_dir_all(&dir);
}

/// Kill point 3: between the WAL fsync and the checkpoint replace — the
/// WAL holds whole records the checkpoint never committed, and a stale
/// `checkpoint.json.tmp` from the aborted atomic replace is lying around.
#[test]
fn kill_before_checkpoint_fsync_rolls_back_uncommitted_records() {
    let dir = scratch("prefsync");
    killed_run(&dir, 2);

    // Whole, valid, CRC-clean frames beyond the committed count …
    let frame = acctrade::store::encode_frame(1, b"uncommitted offer the checkpoint never saw");
    let seg = last_segment(&dir);
    let mut bytes = std::fs::read(&seg).unwrap();
    bytes.extend_from_slice(&frame);
    std::fs::write(&seg, bytes).unwrap();
    // … and a torn scratch file from the interrupted checkpoint replace.
    std::fs::write(dir.join("checkpoint.json.tmp"), b"{ torn garba").unwrap();

    let (report, _ambient) = resume(&dir);
    let recovery = report.recovery.expect("resumed run reports recovery");
    assert_eq!(recovery.uncommitted_records_dropped, 1, "the unseen record was rolled back");
    assert_eq!(recovery.torn_tails_truncated, 0);
    assert_identical(&collect_artifacts(&report, &dir));
    let _ = std::fs::remove_dir_all(&dir);
}

/// Kill point 4: inside the parallel crawl phase — the process dies on
/// a 4-worker run after 5 shard completions of iteration 2, with the
/// rest of the iteration's shards still in flight. The engine persists
/// nothing of a torn iteration (no WAL appends, no progress), so the
/// store still describes the iteration-1 boundary; resuming — at a
/// *different* worker count, even — replays from there and converges
/// on byte-identical artifacts.
#[test]
fn kill_mid_parallel_crawl_resumes_byte_identical() {
    let dir = scratch("shardkill");
    {
        let rec = telemetry::Recorder::new();
        let _scope = rec.enter();
        let outcome = Study::new(config())
            .with_workers(4)
            .run_persisted_with_shard_kill(&dir, 2, 5)
            .unwrap();
        assert!(outcome.is_none(), "shard kill must fire before the campaign completes");
    }

    // The interrupted store's checkpoint is a clean iteration boundary
    // carrying the previous iteration's shard cursors — the torn
    // iteration left no trace.
    let cp = acctrade::crawler::CampaignCheckpoint::parse(
        &std::fs::read_to_string(dir.join("checkpoint.json")).unwrap(),
    )
    .unwrap();
    assert!(!cp.complete, "interrupted store is not complete");
    assert!(!cp.shard_cursors.is_empty(), "v2 checkpoint carries shard lane cursors");

    let (report, _ambient) = resume(&dir);
    let recovery = report.recovery.expect("resumed run reports recovery");
    assert_eq!(recovery.torn_tails_truncated, 0);
    assert_eq!(recovery.uncommitted_records_dropped, 0);
    assert!(recovery.records_replayed > 0);
    assert_identical(&collect_artifacts(&report, &dir));
    let _ = std::fs::remove_dir_all(&dir);
}

/// Corruption of *committed* data is not recoverable-by-truncation: the
/// checkpoint promised those records were durable, so resume must fail
/// loudly rather than silently resume a shrunken dataset.
#[test]
fn corrupt_committed_record_is_a_hard_error() {
    let dir = scratch("corrupt");
    killed_run(&dir, 2);

    let mut names: Vec<String> = std::fs::read_dir(&dir)
        .unwrap()
        .map(|e| e.unwrap().file_name().into_string().unwrap())
        .filter(|n| n.ends_with(".seg"))
        .collect();
    names.sort();
    let first = dir.join(&names[0]);
    let mut bytes = std::fs::read(&first).unwrap();
    bytes[20] ^= 0xFF; // flip one byte inside a committed record
    std::fs::write(&first, bytes).unwrap();

    match Study::resume_from(config(), &dir) {
        Err(StoreError::CommittedDataLost { committed, salvaged, .. }) => {
            assert!(salvaged < committed, "salvaged {salvaged} < committed {committed}");
        }
        other => panic!("expected CommittedDataLost, got {:?}", other.map(|_| "report")),
    }
    let _ = std::fs::remove_dir_all(&dir);
}
