//! Cross-crate integration: the generate → serve → crawl → resolve →
//! analyze chain, dataset round-trips, and the paper's ethics invariants
//! enforced mechanically.

use acctrade::crawler::record::Dataset;
use acctrade::crawler::{MarketplaceCrawler, ProfileResolver};
use acctrade::market::config::{MarketplaceId, ALL_MARKETPLACES};
use acctrade::net::http::Status;
use acctrade::net::robots::RobotsPolicy;
use acctrade::net::tor::TorDirectory;
use acctrade::net::{Client, NetError, SimNet};
use acctrade::workload::world::{World, WorldParams};
use foundation::rng::SeedableRng;
use foundation::rng::ChaCha8Rng;

fn deployed(seed: u64, scale: f64) -> (World, std::sync::Arc<SimNet>) {
    let world = World::generate(WorldParams { seed, scale });
    let net = SimNet::new(seed);
    world.deploy(&net);
    (world, net)
}

#[test]
fn crawl_every_marketplace_and_roundtrip_the_dataset() {
    let (world, net) = deployed(501, 0.01);
    let client = Client::new(&net, "acctrade-crawler/0.1");

    let mut dataset = Dataset::default();
    for market in ALL_MARKETPLACES {
        let mut crawler = MarketplaceCrawler::new(&client, market);
        let (offers, stats) = crawler.crawl(0);
        assert_eq!(stats.fetch_errors, 0, "{}", market.name());
        assert_eq!(
            offers.len(),
            world.markets[&market].read().active_count(),
            "{} offer count",
            market.name()
        );
        dataset.offers.extend(offers);
    }

    let resolver = ProfileResolver::new(&client);
    let (profiles, posts) = resolver.resolve_offers(&dataset.offers);
    dataset.profiles = profiles;
    dataset.posts = posts;

    // JSON roundtrip of the full dataset (the release artifact path).
    let json = dataset.to_json();
    let back = Dataset::from_json(&json).expect("dataset parses");
    assert_eq!(dataset, back);
    assert!(dataset.visible_offers().count() > 0);
    assert_eq!(dataset.profiles.len(), dataset.visible_offers().count());
}

#[test]
fn ethics_invariant_automated_clients_never_enter_forums() {
    let (world, net) = deployed(502, 0.005);
    let directory = TorDirectory::default_consensus();
    let mut rng = ChaCha8Rng::seed_from_u64(502);
    // An automated client riding Tor still cannot pass the CAPTCHA wall.
    let bot = Client::new(&net, "acctrade-crawler/0.1")
        .via_tor(directory.build_circuit(&mut rng));
    for forum in &world.forums {
        let host = &forum.config().host;
        let resp = bot.get(&format!("http://{host}/register")).unwrap();
        assert_eq!(resp.status, Status::Unauthorized, "{host} let a bot in");
        let resp = bot.get(&format!("http://{host}/section/accounts")).unwrap();
        assert_eq!(resp.status, Status::Unauthorized);
    }
}

#[test]
fn ethics_invariant_onion_hosts_unreachable_without_tor() {
    let (world, net) = deployed(503, 0.005);
    let clearnet_client = Client::new(&net, "acctrade-crawler/0.1");
    let host = world.forums[0].config().host.clone();
    let err = clearnet_client.get(&format!("http://{host}/")).unwrap_err();
    assert!(matches!(err, NetError::TorRequired(_)));
}

#[test]
fn ethics_invariant_robots_disallow_is_honored() {
    let (_world, net) = deployed(504, 0.005);
    // Add a strict host and verify the automated client refuses.
    struct Page;
    impl acctrade::net::Service for Page {
        fn handle(
            &self,
            _req: &acctrade::net::Request,
            _ctx: &acctrade::net::RequestCtx,
        ) -> acctrade::net::Response {
            acctrade::net::Response::ok().with_text("secret")
        }
        fn robots(&self) -> RobotsPolicy {
            RobotsPolicy::deny_all()
        }
    }
    net.register("strict.example", Page);
    let client = Client::new(&net, "acctrade-crawler/0.1");
    let err = client.get("http://strict.example/anything").unwrap_err();
    assert!(matches!(err, NetError::RobotsDisallowed(_)));
}

#[test]
fn banned_accounts_vanish_from_apis_with_platform_vocabulary() {
    let (mut world, net) = deployed(505, 0.01);
    let at = net.clock().now_unix() + 120 * 86_400;
    world.run_moderation(at);
    let client = Client::new(&net, "acctrade-pipeline/0.1");
    let resolver = ProfileResolver::new(&client);

    // Find a banned X account and a banned Instagram account via ground
    // truth, then verify the API vocabulary.
    use acctrade::social::account::AccountStatus;
    use acctrade::social::Platform;
    let banned_handle = |p: Platform| {
        world.stores[&p]
            .read()
            .accounts_sorted()
            .into_iter()
            .find(|a| a.status == AccountStatus::Banned)
            .map(|a| a.handle.clone())
    };
    if let Some(h) = banned_handle(Platform::X) {
        let r = resolver.resolve(Platform::X, &h);
        assert_eq!(r.status_detail.as_deref(), Some("Forbidden"));
    }
    if let Some(h) = banned_handle(Platform::Instagram) {
        let r = resolver.resolve(Platform::Instagram, &h);
        assert_eq!(r.status_detail.as_deref(), Some("Page Not Found"));
    }
}

#[test]
fn sold_offers_disappear_between_iterations() {
    let (mut world, net) = deployed(506, 0.01);
    let client = Client::new(&net, "acctrade-crawler/0.1");
    let market = MarketplaceId::FameSwap;
    let mut crawler = MarketplaceCrawler::new(&client, market);
    let (first, _) = crawler.crawl(0);

    for i in 0..3 {
        world.step_iteration(net.clock().now_unix() + i * 86_400 * 14);
    }
    crawler.reset();
    let (second, stats) = crawler.crawl(1);
    let first_urls: std::collections::HashSet<_> =
        first.iter().map(|o| o.offer_url.clone()).collect();
    let second_urls: std::collections::HashSet<_> =
        second.iter().map(|o| o.offer_url.clone()).collect();
    let gone = first_urls.difference(&second_urls).count();
    assert!(gone > 0, "churn must remove offers");
    let _ = stats;
}
