//! Fault injection: the crawler on a lossy network.
//!
//! Real measurement campaigns ride flaky residential connections and
//! overloaded marketplaces. The fabric injects connection resets and
//! timeouts; the retrying client must still collect the full inventory.

use acctrade::crawler::MarketplaceCrawler;
use acctrade::market::config::MarketplaceId;
use acctrade::net::sim::FaultPlan;
use acctrade::net::{Client, SimNet};
use acctrade::workload::world::{World, WorldParams};

fn lossy_world(seed: u64, reset_prob: f64, timeout_prob: f64) -> (World, std::sync::Arc<SimNet>) {
    let world = World::generate(WorldParams { seed, scale: 0.01 });
    let net = SimNet::new(seed);
    world.deploy(&net);
    net.set_faults(FaultPlan { reset_prob, timeout_prob, deadline_us: 5_000_000 });
    (world, net)
}

#[test]
fn retrying_crawler_survives_10pct_resets() {
    let (world, net) = lossy_world(71, 0.10, 0.0);
    let client = Client::new(&net, "acctrade-crawler/0.1").with_retries(4);
    let market = MarketplaceId::Accsmarket;
    let mut crawler = MarketplaceCrawler::new(&client, market);
    let (offers, stats) = crawler.crawl(0);
    let active = world.markets[&market].read().active_count();
    // With 4 retries at 10% loss, the chance of losing any page is
    // ~1e-5 per page; the inventory must be complete.
    assert_eq!(offers.len(), active, "lost offers under faults: {stats:?}");
    assert_eq!(stats.fetch_errors, 0);
}

#[test]
fn non_retrying_crawler_loses_coverage() {
    let (world, net) = lossy_world(72, 0.15, 0.05);
    let client = Client::new(&net, "acctrade-crawler/0.1"); // no retries
    let market = MarketplaceId::FameSwap;
    let mut crawler = MarketplaceCrawler::new(&client, market);
    let (offers, stats) = crawler.crawl(0);
    let active = world.markets[&market].read().active_count();
    assert!(
        offers.len() < active,
        "expected losses without retries ({} of {active})",
        offers.len()
    );
    assert!(stats.fetch_errors > 0);
}

#[test]
fn faults_cost_virtual_time() {
    let (_world, net) = lossy_world(73, 0.2, 0.0);
    let client = Client::new(&net, "acctrade-crawler/0.1").with_retries(3);
    let t0 = net.clock().now_us();
    let mut crawler = MarketplaceCrawler::new(&client, MarketplaceId::SurgeGram);
    let (_offers, _stats) = crawler.crawl(0);
    // Retried requests pay latency plus backoff; the clock must have
    // moved well past the fault-free cost.
    assert!(net.clock().now_us() > t0);
}
