//! Fault injection: the crawler on a lossy network.
//!
//! Real measurement campaigns ride flaky residential connections and
//! overloaded marketplaces. The fabric injects connection resets and
//! timeouts; the retrying client must still collect the full inventory.

use acctrade::crawler::MarketplaceCrawler;
use acctrade::market::config::MarketplaceId;
use acctrade::net::sim::FaultPlan;
use acctrade::net::{Client, SimNet};
use acctrade::workload::world::{World, WorldParams};

fn lossy_world(seed: u64, reset_prob: f64, timeout_prob: f64) -> (World, std::sync::Arc<SimNet>) {
    let world = World::generate(WorldParams { seed, scale: 0.01 });
    let net = SimNet::new(seed);
    world.deploy(&net);
    net.set_faults(FaultPlan { reset_prob, timeout_prob, deadline_us: 5_000_000 });
    (world, net)
}

#[test]
fn retrying_crawler_survives_10pct_resets() {
    let (world, net) = lossy_world(71, 0.10, 0.0);
    let client = Client::new(&net, "acctrade-crawler/0.1").with_retries(4);
    let market = MarketplaceId::Accsmarket;
    let mut crawler = MarketplaceCrawler::new(&client, market);
    let (offers, stats) = crawler.crawl(0);
    let active = world.markets[&market].read().active_count();
    // With 4 retries at 10% loss, the chance of losing any page is
    // ~1e-5 per page; the inventory must be complete.
    assert_eq!(offers.len(), active, "lost offers under faults: {stats:?}");
    assert_eq!(stats.fetch_errors, 0);
}

#[test]
fn non_retrying_crawler_loses_coverage() {
    let (world, net) = lossy_world(72, 0.15, 0.05);
    let client = Client::new(&net, "acctrade-crawler/0.1"); // no retries
    let market = MarketplaceId::FameSwap;
    let mut crawler = MarketplaceCrawler::new(&client, market);
    let (offers, stats) = crawler.crawl(0);
    let active = world.markets[&market].read().active_count();
    assert!(
        offers.len() < active,
        "expected losses without retries ({} of {active})",
        offers.len()
    );
    assert!(stats.fetch_errors > 0);
}

#[test]
fn faults_cost_virtual_time() {
    let (_world, net) = lossy_world(73, 0.2, 0.0);
    let client = Client::new(&net, "acctrade-crawler/0.1").with_retries(3);
    let t0 = net.clock().now_us();
    let mut crawler = MarketplaceCrawler::new(&client, MarketplaceId::SurgeGram);
    let (_offers, _stats) = crawler.crawl(0);
    // Retried requests pay latency plus backoff; the clock must have
    // moved well past the fault-free cost.
    assert!(net.clock().now_us() > t0);
}

/// The telemetry fault counters must agree *exactly* with the fabric's
/// own request log: every injected reset/timeout shows up once in
/// `net.faults`, every completed request once in `net.requests`, and the
/// crawler's error counter mirrors its returned stats.
#[test]
fn telemetry_counters_match_injected_fault_counts() {
    let rec = acctrade::telemetry::Recorder::new();
    let _scope = rec.enter();

    let (_world, net) = lossy_world(74, 0.10, 0.05);
    let client = Client::new(&net, "acctrade-crawler/0.1").with_retries(3);
    let market = MarketplaceId::Accsmarket;
    let mut crawler = MarketplaceCrawler::new(&client, market);
    let (_offers, stats) = crawler.crawl(0);

    let log = net.log_snapshot();
    let logged_faults = log.iter().filter(|e| e.status.is_none()).count() as u64;
    let logged_responses = log.iter().filter(|e| e.status.is_some()).count() as u64;

    let counted_faults = rec.counter("net.faults", &[("kind", "reset")])
        + rec.counter("net.faults", &[("kind", "timeout")])
        + rec.counter("net.faults", &[("kind", "unreachable")]);
    assert!(counted_faults > 0, "lossy run must inject faults");
    assert_eq!(counted_faults, logged_faults, "fault counters vs request log");
    assert_eq!(
        rec.counter_total("net.requests"),
        logged_responses,
        "request counters vs request log"
    );
    // Every transparent client retry burned one logged fault.
    assert_eq!(rec.counter_total("net.retries") + stats.fetch_errors as u64, logged_faults);
    // The crawler's own stats mirror into the crawl.* counters.
    assert_eq!(
        rec.counter("crawl.fetch_errors", &[("marketplace", market.name())]),
        stats.fetch_errors as u64
    );
    assert_eq!(
        rec.counter("crawl.pages", &[("marketplace", market.name())]),
        stats.pages_fetched as u64
    );
}

/// Eight threads hammering one recorder through scoped handles: the
/// sharded registry must conserve every increment and histogram sample.
#[test]
fn concurrent_recording_conserves_totals() {
    const THREADS: u64 = 8;
    const OPS: u64 = 2_000;
    let rec = acctrade::telemetry::Recorder::new();
    foundation::sync::scope(|s| {
        for t in 0..THREADS {
            let rec = rec.clone();
            s.spawn(move || {
                let _scope = rec.enter();
                let label = t.to_string();
                for i in 0..OPS {
                    acctrade::telemetry::with_recorder(|r| {
                        r.incr("stress.ops", &[("thread", &label)], 1);
                        r.incr("stress.shared", &[], 1);
                        r.observe("stress.val", &[], i);
                    });
                }
            });
        }
    });
    assert_eq!(rec.counter_total("stress.ops"), THREADS * OPS);
    assert_eq!(rec.counter("stress.shared", &[]), THREADS * OPS);
    for t in 0..THREADS {
        assert_eq!(rec.counter("stress.ops", &[("thread", &t.to_string())]), OPS);
    }
    let hists = rec.histograms();
    let (_, hist) = hists
        .iter()
        .find(|(k, _)| k.name == "stress.val")
        .expect("histogram recorded");
    assert_eq!(hist.count(), THREADS * OPS);
    assert_eq!(hist.max(), OPS - 1);
}
