//! Round-trip coverage for every `foundation::json::JsonCodec` impl in the
//! workspace, plus malformed-input rejection.
//!
//! The dataset artifact, the API bodies, and the bench report all flow
//! through these codecs; a silent asymmetry between encode and decode
//! would corrupt the study's released JSON. Every serializable type gets
//! `value -> to_string -> from_str -> value` checked for equality, and the
//! decoders are probed with the classic malformed shapes: unknown enum
//! variants, missing fields, wrong primitive types, truncated documents.

use acctrade::crawler::record::{
    Dataset, FetchStatus, OfferRecord, PostRecord, ProfileRecord, UndergroundRecord,
};
use acctrade::crawler::{ApiOutcomeRecord, CampaignCheckpoint, IterationSnapshot};
use acctrade::market::config::{MarketplaceId, ALL_MARKETPLACES};
use acctrade::market::listing::{Listing, ListingId, ListingState, Monetization};
use acctrade::market::seller::{Seller, SellerId};
use acctrade::net::http::{Headers, Method, Status};
use acctrade::net::url::{Scheme, Url};
use acctrade::social::account::{
    AccountDisposition, AccountId, AccountProfile, AccountStatus, AccountType,
};
use acctrade::social::api::{ApiPost, ApiProfile};
use acctrade::social::platform::{Platform, ALL_PLATFORMS};
use acctrade::social::post::{Post, PostId};
use foundation::json::{self, JsonCodec};

/// Encode → decode → compare, returning the wire string for extra checks.
fn roundtrip<T: JsonCodec + PartialEq + std::fmt::Debug>(value: &T) -> String {
    let wire = json::to_string(value);
    let back: T = json::from_str(&wire).expect("round-trip decode");
    assert_eq!(&back, value, "decode(encode(x)) != x; wire = {wire}");
    // Pretty form decodes to the same value too.
    let pretty: T = json::from_str(&json::to_string_pretty(value)).expect("pretty decode");
    assert_eq!(&pretty, value);
    wire
}

// ---------------------------------------------------------------- enums --

#[test]
fn platform_enum_roundtrips_and_rejects_unknown() {
    for p in ALL_PLATFORMS {
        let wire = roundtrip(&p);
        assert_eq!(wire, format!("{:?}", format!("{p:?}")), "unit variant is its name string");
    }
    assert!(json::from_str::<Platform>("\"MySpace\"").is_err());
    assert!(json::from_str::<Platform>("42").is_err());
}

#[test]
fn marketplace_enum_roundtrips_and_rejects_unknown() {
    for m in ALL_MARKETPLACES {
        roundtrip(&m);
    }
    assert!(json::from_str::<MarketplaceId>("\"Craigslist\"").is_err());
    assert!(json::from_str::<MarketplaceId>("null").is_err());
}

#[test]
fn account_enums_roundtrip() {
    for t in [
        AccountType::Standard,
        AccountType::Business,
        AccountType::Verified,
        AccountType::Private,
        AccountType::Protected,
    ] {
        roundtrip(&t);
    }
    for s in [AccountStatus::Active, AccountStatus::Banned, AccountStatus::Deleted] {
        roundtrip(&s);
    }
    for d in [
        AccountDisposition::Organic,
        AccountDisposition::Farmed,
        AccountDisposition::Harvested,
        AccountDisposition::ScamOperator,
    ] {
        roundtrip(&d);
    }
    assert!(json::from_str::<AccountType>("\"Influencer\"").is_err());
    assert!(json::from_str::<AccountStatus>("\"Zombie\"").is_err());
}

#[test]
fn listing_and_fetch_enums_roundtrip() {
    for s in [ListingState::Active, ListingState::Sold, ListingState::Delisted] {
        roundtrip(&s);
    }
    for f in [
        FetchStatus::Ok,
        FetchStatus::Forbidden,
        FetchStatus::NotFound,
        FetchStatus::Error,
    ] {
        roundtrip(&f);
    }
    assert!(json::from_str::<ListingState>("\"Pending\"").is_err());
    assert!(json::from_str::<FetchStatus>("\"Teapot\"").is_err());
}

#[test]
fn http_enums_roundtrip() {
    for m in [Method::Get, Method::Post, Method::Head] {
        roundtrip(&m);
    }
    for s in [
        Status::Ok,
        Status::MovedPermanently,
        Status::Found,
        Status::BadRequest,
        Status::Unauthorized,
        Status::Forbidden,
        Status::NotFound,
        Status::Gone,
        Status::TooManyRequests,
        Status::InternalError,
        Status::ServiceUnavailable,
    ] {
        roundtrip(&s);
    }
    for s in [Scheme::Http, Scheme::Https] {
        roundtrip(&s);
    }
    assert!(json::from_str::<Method>("\"PATCH\"").is_err());
    assert!(json::from_str::<Status>("\"ImATeapot\"").is_err());
}

// ------------------------------------------------------------- newtypes --

#[test]
fn newtype_ids_roundtrip_as_bare_numbers() {
    assert_eq!(roundtrip(&AccountId(77)), "77");
    assert_eq!(roundtrip(&PostId(12_345)), "12345");
    assert_eq!(roundtrip(&SellerId(3)), "3");
    // 2^53 - 1: the largest integer the f64-backed number model carries
    // exactly — ids above that are out of the codec's contract.
    assert_eq!(roundtrip(&ListingId((1 << 53) - 1)), ((1u64 << 53) - 1).to_string());
    assert!(json::from_str::<AccountId>("\"77\"").is_err(), "string is not an id");
    assert!(json::from_str::<ListingId>("-1").is_err(), "ids are unsigned");
}

// --------------------------------------------------------- URL / headers --

#[test]
fn url_roundtrips_as_canonical_string() {
    for raw in [
        "http://fameswap.example/offer/9",
        "https://api.youtube.example/channel/abc?part=stats",
        "http://dreadxyz.onion/forum/accounts",
    ] {
        let url = Url::parse(raw).unwrap();
        let wire = roundtrip(&url);
        assert_eq!(wire, format!("{:?}", url.to_string()));
    }
    // Malformed URL strings are decode errors, not panics.
    assert!(json::from_str::<Url>("\"ftp://nope.example/\"").is_err());
    assert!(json::from_str::<Url>("\"http://\"").is_err());
    assert!(json::from_str::<Url>("17").is_err());
}

#[test]
fn headers_roundtrip_in_insertion_order() {
    let mut h = Headers::new();
    h.set("User-Agent", "acctrade-crawler/1.0");
    h.set("Accept", "text/html");
    h.set("X-Request-Id", "abc-123");
    let wire = roundtrip(&h);
    // Insertion order is preserved on the wire.
    let ua = wire.find("User-Agent").unwrap();
    let acc = wire.find("Accept").unwrap();
    let rid = wire.find("X-Request-Id").unwrap();
    assert!(ua < acc && acc < rid, "header order lost: {wire}");
    // Non-string header values are rejected.
    assert!(json::from_str::<Headers>(r#"{"Content-Length": 42}"#).is_err());
    assert!(json::from_str::<Headers>("[]").is_err());
}

// -------------------------------------------------------------- structs --

fn sample_profile() -> AccountProfile {
    AccountProfile {
        id: AccountId(501),
        platform: Platform::Instagram,
        handle: "fashion.page".into(),
        name: "Fashion Page".into(),
        description: "27k real followers, niche fashion".into(),
        location: Some("US".into()),
        category: Some("fashion".into()),
        email: Some("seller@mail.example".into()),
        phone: None,
        website: Some("http://linkhub.example/fp".into()),
        created_unix: 1_431_648_000,
        account_type: AccountType::Business,
        followers: 27_431,
        following: 310,
        post_count: 902,
        status: AccountStatus::Active,
        disposition: AccountDisposition::Harvested,
    }
}

#[test]
fn account_profile_roundtrips_and_rejects_missing_fields() {
    roundtrip(&sample_profile());

    // Dropping a required field must fail the decode.
    let wire = json::to_string(&sample_profile());
    let truncated = wire.replace("\"handle\":", "\"renamed\":");
    assert!(json::from_str::<AccountProfile>(&truncated).is_err(), "missing field accepted");
    // Wrong primitive type in a field.
    let wrong = wire.replace("27431", "\"lots\"");
    assert!(json::from_str::<AccountProfile>(&wrong).is_err(), "string-for-u64 accepted");
}

#[test]
fn post_roundtrips() {
    let post = Post {
        id: PostId(9_001),
        platform: Platform::X,
        author: AccountId(501),
        text: "crypto doubling giveaway \u{1F680} — dm me".into(),
        created_unix: 1_706_000_000,
        likes: 12,
        views: 4_403,
        replies: 2,
        shares: 1,
    };
    let wire = roundtrip(&post);
    assert!(wire.contains("\\ud83d\\ude80") || wire.contains('\u{1F680}'), "non-BMP text survives");
    assert!(json::from_str::<Post>("{}").is_err());
    assert!(json::from_str::<Post>("[1,2,3]").is_err());
}

#[test]
fn api_types_roundtrip() {
    let profile = ApiProfile {
        user_id: 501,
        handle: "fashion.page".into(),
        name: "Fashion Page".into(),
        description: "bio".into(),
        location: None,
        category: Some("fashion".into()),
        email: None,
        phone: Some("+1-555-0100".into()),
        website: None,
        created_unix: 1_431_648_000,
        account_type: "business".into(),
        followers: 27_431,
        following: 310,
        post_count: 902,
        platform: "Instagram".into(),
    };
    roundtrip(&profile);

    let post = ApiPost {
        post_id: 9_001,
        author_id: 501,
        text: "hello".into(),
        created_unix: 1_706_000_000,
        likes: 1,
        views: 2,
        replies: 0,
        shares: 0,
    };
    roundtrip(&post);
    let wire = json::to_string(&vec![post.clone(), post]);
    let timeline: Vec<ApiPost> = json::from_str(&wire).unwrap();
    assert_eq!(timeline.len(), 2);

    assert!(json::from_str::<ApiProfile>(r#"{"user_id": "501"}"#).is_err());
}

#[test]
fn seller_and_listing_roundtrip() {
    let seller = Seller {
        id: SellerId(3),
        username: "igking".into(),
        country: Some("ID".into()),
        rating: 4.75,
        completed_sales: 212,
        joined_unix: 1_600_000_000,
    };
    roundtrip(&seller);

    let mut listing = Listing::new(
        ListingId(9),
        MarketplaceId::FameSwap,
        Platform::Instagram,
        SellerId(3),
        298.0,
    );
    listing.title = "IG fashion page, 27k real followers".into();
    listing.description = Some("aged 2015, organic growth".into());
    listing.category = Some("fashion".into());
    listing.claimed_followers = Some(27_431);
    listing.monetization = Some(Monetization {
        monthly_revenue_usd: 136.0,
        income_source: "Google AdSense".into(),
    });
    listing.profile_link = Some("http://instagram.example/fashion.page".into());
    listing.linked_handle = Some("fashion.page".into());
    listing.listed_unix = 1_700_000_000;
    listing.close(ListingState::Sold, 1_700_086_400);
    roundtrip(&listing);

    // `None` optionals encode as null and decode back to None.
    let bare = Listing::new(ListingId(1), MarketplaceId::Z2U, Platform::X, SellerId(1), 17.0);
    let wire = roundtrip(&bare);
    assert!(wire.contains("\"description\":null"), "missing optionals are explicit nulls");
}

// ------------------------------------------------------- crawl records --

fn sample_dataset() -> Dataset {
    Dataset {
        offers: vec![OfferRecord {
            marketplace: "FameSwap".into(),
            offer_url: "http://fameswap.example/offer/9".into(),
            title: "IG fashion page".into(),
            seller: Some("igking".into()),
            seller_country: Some("ID".into()),
            price_usd: Some(298.0),
            platform: Some("Instagram".into()),
            category: Some("fashion".into()),
            claimed_followers: Some(27_431),
            claims_verified: false,
            monthly_revenue_usd: Some(136.0),
            income_source: Some("Google AdSense".into()),
            description: Some("aged 2015".into()),
            profile_link: Some("http://instagram.example/fashion.page".into()),
            handle: Some("fashion.page".into()),
            collected_unix: 1_700_000_000,
            iteration: 2,
        }],
        profiles: vec![ProfileRecord {
            platform: "Instagram".into(),
            handle: "fashion.page".into(),
            status: FetchStatus::Ok,
            status_detail: None,
            user_id: Some(501),
            name: Some("Fashion Page".into()),
            description: Some("bio".into()),
            location: None,
            category: Some("fashion".into()),
            email: None,
            phone: None,
            website: None,
            created_unix: Some(1_431_648_000),
            account_type: Some("business".into()),
            followers: Some(27_431),
            post_count: Some(902),
        }],
        posts: vec![PostRecord {
            platform: "Instagram".into(),
            handle: "fashion.page".into(),
            author_id: 501,
            post_id: 9_001,
            text: "new drop".into(),
            created_unix: 1_706_000_000,
            likes: 12,
            views: 4_403,
        }],
        underground: vec![UndergroundRecord {
            market: "dread".into(),
            url: "http://dreadxyz.onion/post/4".into(),
            title: "aged IG accounts x100".into(),
            body: "bulk aged accounts, escrow ok".into(),
            author: "vendor77".into(),
            platform: Some("Instagram".into()),
            published_unix: Some(1_699_000_000),
            replies: Some(6),
            price_usd: Some(4.0),
            quantity: Some(100),
            screenshot: true,
        }],
    }
}

#[test]
fn crawl_records_and_dataset_roundtrip() {
    let ds = sample_dataset();
    roundtrip(&ds.offers[0]);
    roundtrip(&ds.profiles[0]);
    roundtrip(&ds.posts[0]);
    roundtrip(&ds.underground[0]);

    // The whole dataset through its public artifact API.
    let artifact = ds.to_json();
    let back = Dataset::from_json(&artifact).expect("artifact parses");
    assert_eq!(back, ds);
    // Encoding is canonical: re-encoding the decoded dataset is stable.
    assert_eq!(back.to_json(), artifact);
}

// ------------------------------------------------- campaign persistence --

#[test]
fn fetch_status_is_hashable_and_copy() {
    // The `Hash` derive feeds dedup sets in the persistence layer; make
    // sure it composes with the codec (same variant -> one set entry).
    let mut seen = std::collections::HashSet::new();
    for f in [FetchStatus::Ok, FetchStatus::Forbidden, FetchStatus::NotFound, FetchStatus::Error]
    {
        seen.insert(f);
        let wire = json::to_string(&f);
        seen.insert(json::from_str::<FetchStatus>(&wire).unwrap());
    }
    assert_eq!(seen.len(), 4, "decode maps onto the same hash bucket");
}

#[test]
fn iteration_snapshot_and_api_outcome_roundtrip() {
    let snap = IterationSnapshot {
        iteration: 3,
        at_unix: 1_707_000_000,
        cumulative_offers: 412,
        active_offers: 380,
        new_offers: 17,
    };
    roundtrip(&snap);
    assert!(json::from_str::<IterationSnapshot>(r#"{"iteration": 3}"#).is_err());

    let outcome = ApiOutcomeRecord {
        platform: "Instagram".into(),
        handle: "fashion.page".into(),
        status: FetchStatus::NotFound,
        at_unix: 1_710_000_000,
    };
    let wire = roundtrip(&outcome);
    assert!(wire.contains("\"NotFound\""), "status encodes as its variant name");
    let poisoned = wire.replace("\"NotFound\"", "\"Teapot\"");
    assert!(json::from_str::<ApiOutcomeRecord>(&poisoned).is_err());
}

#[test]
fn campaign_checkpoint_roundtrips_and_validates() {
    let cp = CampaignCheckpoint {
        schema: acctrade::crawler::persist::CHECKPOINT_SCHEMA.into(),
        seed: 0xACC7,
        config_digest: acctrade::telemetry::digest64("study-config"),
        iterations_total: 10,
        next_iteration: 2,
        days_between: 15,
        t0_unix: 1_706_745_600,
        campaign_started_us: 1_250,
        clock_us: 2_592_000_000_000,
        net_rng_words: 88_431,
        requests_issued: 12_007,
        committed_records: 512,
        segment_max_bytes: 1 << 20,
        step_unixes: vec![1_708_041_600],
        snapshots: vec![
            IterationSnapshot {
                iteration: 0,
                at_unix: 1_706_745_600,
                cumulative_offers: 300,
                active_offers: 300,
                new_offers: 300,
            },
            IterationSnapshot {
                iteration: 1,
                at_unix: 1_708_041_600,
                cumulative_offers: 330,
                active_offers: 290,
                new_offers: 30,
            },
        ],
        shard_cursors: vec![
            acctrade::crawler::persist::ShardCursor {
                marketplace: "Accsmarket".into(),
                chain: 0,
                lane_end_us: 2_591_000_000_000,
                lane_rng_words: 96,
                records: 0,
            },
            acctrade::crawler::persist::ShardCursor {
                marketplace: "Accsmarket".into(),
                chain: 1,
                lane_end_us: 2_591_900_000_000,
                lane_rng_words: 1_024,
                records: 41,
            },
        ],
        telemetry: acctrade::telemetry::Recorder::new().snapshot(),
        economy_scenario: "all".into(),
        complete: false,
    };
    assert!(cp.validate().is_ok(), "{:?}", cp.validate());

    // The on-disk pretty form parses back to the identical value, and the
    // wire form round-trips through the generic codec too.
    let back = CampaignCheckpoint::parse(&cp.to_json_pretty()).unwrap();
    assert_eq!(back, cp);
    roundtrip(&cp);

    // Malformed checkpoints are decode or validation errors, not panics.
    assert!(CampaignCheckpoint::parse("{").is_err());
    assert!(CampaignCheckpoint::parse("null").is_err());
    let missing = cp.to_json_pretty().replace("\"seed\"", "\"sede\"");
    assert!(CampaignCheckpoint::parse(&missing).is_err());
    let mut bad = cp.clone();
    bad.config_digest = "short".into();
    assert!(bad.validate().is_err(), "digest length is validated");
    let mut dup = cp.clone();
    dup.shard_cursors.push(dup.shard_cursors[0].clone());
    assert!(dup.validate().is_err(), "duplicate (marketplace, chain) cursors are rejected");
}

#[test]
fn store_manifest_roundtrips_via_generic_codec() {
    let manifest = acctrade::store::StoreManifest {
        schema: "acctrade-store/v1".into(),
        segment_max_bytes: 4096,
        total_records: 7,
        segments: vec![
            acctrade::store::SegmentEntry { file: "wal-00000.seg".into(), records: 4, bytes: 3_900 },
            acctrade::store::SegmentEntry { file: "wal-00001.seg".into(), records: 3, bytes: 2_100 },
        ],
    };
    assert!(manifest.validate().is_ok());
    roundtrip(&manifest);
    // Per-segment record counts must sum to the advertised total.
    let mut bad = manifest.clone();
    bad.total_records = 99;
    assert!(bad.validate().is_err());
}

#[test]
fn dataset_rejects_malformed_documents() {
    // Truncated JSON.
    let artifact = sample_dataset().to_json();
    assert!(Dataset::from_json(&artifact[..artifact.len() / 2]).is_err());
    // Trailing garbage after a valid document.
    assert!(Dataset::from_json(&format!("{artifact} trailing")).is_err());
    // Wrong top-level shape.
    assert!(Dataset::from_json("[]").is_err());
    assert!(Dataset::from_json("\"dataset\"").is_err());
    // A record with a mistyped field deep inside.
    let poisoned = artifact.replace("\"claims_verified\": false", "\"claims_verified\": \"no\"");
    assert_ne!(poisoned, artifact, "replacement must hit");
    assert!(Dataset::from_json(&poisoned).is_err());
    // Not JSON at all.
    assert!(Dataset::from_json("").is_err());
    assert!(Dataset::from_json("{offers: []}").is_err(), "unquoted keys rejected");
}

// ------------------------------------------------- conformance report --

#[test]
fn conformance_finding_roundtrips() {
    let finding = acctrade::conformance::report::Finding {
        rule: "determinism".into(),
        file: "crates/core/src/anatomy.rs".into(),
        line: 42,
        col: 7,
        message: "`HashMap` in a crate that feeds serialized output".into(),
    };
    let wire = roundtrip(&finding);
    assert!(wire.contains("\"rule\""), "field names are on the wire: {wire}");
    // Missing field and mistyped line are rejected.
    assert!(json::from_str::<acctrade::conformance::report::Finding>(
        "{\"rule\": \"determinism\", \"file\": \"a.rs\"}"
    )
    .is_err());
    assert!(json::from_str::<acctrade::conformance::report::Finding>(
        &wire.replace("42", "\"42\"")
    )
    .is_err());
}

#[test]
fn conformance_report_roundtrips() {
    use acctrade::conformance::report;
    let report = report::LintReport {
        schema: report::LINT_SCHEMA.into(),
        files_scanned: 140,
        manifests_scanned: 14,
        suppressed: 3,
        arch_digest: "7d8e59b3d406be21".into(),
        rule_counts: vec![
            report::RuleCount { rule: "panic-policy".into(), findings: 1, suppressed: 3 },
            report::RuleCount { rule: "zero-dep".into(), findings: 1, suppressed: 0 },
        ],
        unsafe_inventory: vec![
            report::UnsafeSite {
                file: "crates/telemetry/src/trace.rs".into(),
                line: 213,
                kind: "impl".into(),
            },
            report::UnsafeSite {
                file: "crates/foundation/src/json.rs".into(),
                line: 369,
                kind: "block".into(),
            },
        ],
        findings: vec![
            report::Finding {
                rule: "panic-policy".into(),
                file: "crates/core/src/study.rs".into(),
                line: 198,
                col: 14,
                message: "`.expect(…)` in library code".into(),
            },
            report::Finding {
                rule: "zero-dep".into(),
                file: "Cargo.toml".into(),
                line: 12,
                col: 1,
                message: "external dependency `serde`".into(),
            },
        ],
    };
    let wire = roundtrip(&report);
    assert!(wire.contains("\"arch_digest\""), "v2 fields are on the wire: {wire}");
    assert!(wire.contains("\"unsafe_inventory\""));
    // An empty (clean) report round-trips too — that is the shape CI
    // byte-compares across the double run — and carries the v2 schema.
    assert!(report::LintReport::default().clean());
    assert_eq!(report::LintReport::default().schema, report::LINT_SCHEMA);
    roundtrip(&report::LintReport::default());
    assert!(json::from_str::<report::LintReport>("[]").is_err());
}

#[test]
fn conformance_arch_baseline_roundtrips() {
    use acctrade::conformance::report;
    let baseline = report::ArchBaseline {
        schema: "acctrade-arch/v1".into(),
        crates: vec![
            report::ArchCrate {
                package: "acctrade-conformance".into(),
                lib_name: "conformance".into(),
                deps: vec!["acctrade-foundation".into()],
                dev_deps: vec![],
            },
            report::ArchCrate {
                package: "acctrade-foundation".into(),
                lib_name: "foundation".into(),
                deps: vec![],
                dev_deps: vec![],
            },
        ],
    };
    let wire = roundtrip(&baseline);
    assert!(wire.contains("\"lib_name\""), "crate rows are on the wire: {wire}");
    // A mistyped field (number where a string belongs) is rejected.
    let poisoned = wire.replace("\"lib_name\":\"conformance\"", "\"lib_name\":7");
    assert_ne!(poisoned, wire, "replacement must hit");
    assert!(json::from_str::<report::ArchBaseline>(&poisoned).is_err());
    // The committed baseline itself parses and is canonically rendered.
    let committed = std::fs::read_to_string(concat!(env!("CARGO_MANIFEST_DIR"), "/ARCH_baseline.json"))
        .expect("committed baseline");
    let parsed: report::ArchBaseline = json::from_str(&committed).expect("baseline parses");
    assert_eq!(json::to_string_pretty(&parsed) + "\n", committed, "canonical formatting");
    assert!(parsed.crates.len() >= 14, "every workspace crate is pinned");
}
