//! The live ops plane, end to end: Prometheus exposition goldens, the
//! trace ring under concurrent producers, `/metrics`-vs-manifest
//! reconciliation over a real socket, and the virtual-time trace's
//! determinism contract.

use acctrade::core::{Study, StudyConfig};
use acctrade::httpd::{
    HostTable, HttpServer, LoopbackTransport, OpsPlane, OpsService, ServerConfig, TimeSource,
    OPS_HOST,
};
use acctrade::net::http::Request;
use acctrade::net::server::{RequestCtx, Service};
use acctrade::net::transport::Transport;
use acctrade::net::url::Url;
use acctrade::telemetry;
use foundation::json::Json;

/// The exposition renderer is a golden format: sorted families, sorted
/// sample lines, `# TYPE` headers, summary-style histograms. Pin the
/// exact bytes so a formatting drift (which would silently break every
/// scrape consumer and the reconciliation join) fails loudly.
#[test]
fn prometheus_exposition_matches_golden() {
    let rec = telemetry::Recorder::new();
    rec.incr("crawl.pages", &[("marketplace", "Accsmarket")], 12);
    rec.incr("net.requests", &[], 70);
    rec.gauge_set("crawl.frontier_peak", &[], 17.5);
    rec.observe("net.latency_us", &[], 300);
    rec.observe("net.latency_us", &[], 700);
    let golden = "\
# TYPE crawl_frontier_peak gauge
crawl_frontier_peak{source=\"campaign\"} 17.5
# TYPE crawl_pages counter
crawl_pages{marketplace=\"Accsmarket\",source=\"campaign\"} 12
# TYPE net_latency_us summary
net_latency_us_count{source=\"campaign\"} 2
net_latency_us_max{source=\"campaign\"} 700
net_latency_us_min{source=\"campaign\"} 300
net_latency_us_sum{source=\"campaign\"} 1000
net_latency_us{quantile=\"0.5\",source=\"campaign\"} 511
net_latency_us{quantile=\"0.9\",source=\"campaign\"} 700
net_latency_us{quantile=\"0.99\",source=\"campaign\"} 700
# TYPE net_requests counter
net_requests{source=\"campaign\"} 70
";
    let rendered = telemetry::render_prometheus(&[("campaign", &rec)]);
    assert_eq!(rendered, golden);
    // Same registry state, same bytes — the property mid-run scrapes
    // and the reconciliation gate both rest on.
    assert_eq!(telemetry::render_prometheus(&[("campaign", &rec)]), rendered);
}

fn ops_get(svc: &OpsService, path: &str) -> String {
    let url = Url::parse(&format!("http://{OPS_HOST}{path}")).unwrap();
    let resp = svc.handle(&Request::get(url), &RequestCtx::test());
    assert_eq!(resp.status.code(), 200, "GET {path}");
    resp.text()
}

/// Eight producer threads hammer the trace ring while `/tracez` is
/// served concurrently: the lock-free SPSC rings must neither lose the
/// accounting (drained + dropped == produced) nor wedge a reader.
#[test]
fn tracez_survives_eight_concurrent_producers() {
    const THREADS: usize = 8;
    const PER_THREAD: u64 = 500;

    let plane = OpsPlane::new();
    plane.set_slow_threshold_us(1_000);
    let svc = OpsService::new(plane.clone());

    let producers: Vec<_> = (0..THREADS)
        .map(|t| {
            let tracer = plane.tracer().clone();
            std::thread::spawn(move || {
                for i in 0..PER_THREAD {
                    tracer.record_complete(
                        "stress.span",
                        telemetry::TraceCat::Http,
                        i,
                        // Every 100th span crosses the slow threshold.
                        if i % 100 == 0 { 2_000 } else { 5 },
                        0,
                        0,
                        format!("thread {t} span {i}"),
                    );
                }
            })
        })
        .collect();

    // Read the endpoint while producers are live — this interleaves
    // ring drains with in-flight writes.
    for _ in 0..50 {
        let doc = Json::parse(&ops_get(&svc, "/tracez")).expect("tracez JSON");
        assert!(doc.get("recent").and_then(Json::as_arr).is_some());
    }
    for p in producers {
        p.join().unwrap();
    }

    let doc = Json::parse(&ops_get(&svc, "/tracez")).expect("tracez JSON");
    let tracer = plane.tracer();
    tracer.drain();
    let produced = (THREADS as u64) * PER_THREAD;
    let accounted = tracer.retained_len() as u64 + tracer.dropped();
    assert_eq!(accounted, produced, "drained + dropped must equal produced");
    assert_eq!(tracer.threads(), THREADS);
    assert_eq!(doc.get("threads").and_then(Json::as_num), Some(THREADS as f64));
    let recent = doc.get("recent").and_then(Json::as_arr).unwrap();
    assert!(!recent.is_empty() && recent.len() <= 128);
    // 5 µs spans stay out of the slow log; the 2 ms ones land in it.
    assert!(!doc.get("slow").and_then(Json::as_arr).unwrap().is_empty());
}

/// The acceptance loop of the ops plane: run a campaign with the ops
/// vhost mounted on a real socket, scrape `/metrics` over loopback TCP,
/// and reconcile every scraped `source="campaign"` counter against the
/// study's own `TELEMETRY_report.json` manifest — exactly.
#[test]
fn scraped_metrics_reconcile_with_manifest_over_real_socket() {
    let rec = telemetry::Recorder::new();
    let _scope = rec.enter();

    let plane = OpsPlane::new();
    plane.attach_campaign(rec.clone());
    rec.set_trace_sink(plane.tracer().clone());
    let server = HttpServer::bind(
        "127.0.0.1:0",
        HostTable::new(),
        ServerConfig {
            workers: 2,
            time: TimeSource::Wall,
            ops: Some(plane),
            ..ServerConfig::default()
        },
    )
    .expect("bind ops server");
    let transport = LoopbackTransport::new(server.addr());
    let scrape = |path: &str| {
        let url = Url::parse(&format!("http://{OPS_HOST}{path}")).unwrap();
        let resp = transport.send(&Request::get(url)).expect("ops scrape");
        assert_eq!(resp.status.code(), 200);
        resp.text()
    };
    // The plane is live before the study starts …
    assert!(scrape("/healthz").starts_with("ok"));

    let config = StudyConfig { seed: 606, scale: 0.01, iterations: 2, scam: Default::default() };
    let report = Study::new(config).run();
    let manifest = &report.telemetry;
    assert!(manifest.validate().is_ok());
    assert!(!manifest.counters.is_empty());

    // … and the final scrape agrees with the exported manifest, counter
    // by counter (no `store.*` slack here: this run is unpersisted).
    let parsed = telemetry::parse_exposition(&scrape("/metrics"));
    for entry in &manifest.counters {
        let key = telemetry::parse_rendered_key(&entry.key);
        let sample = telemetry::counter_sample_key(&key, "campaign");
        assert_eq!(
            parsed.get(&sample),
            Some(&(entry.value as f64)),
            "scraped {sample} disagrees with manifest {}",
            entry.key
        );
    }
    // The recorder's stage spans flowed into the trace ring too.
    let statz = Json::parse(&scrape("/statz")).expect("statz JSON");
    assert!(statz.get("requests").and_then(Json::as_num).unwrap_or(0.0) >= 2.0);
    let tracez = Json::parse(&scrape("/tracez")).expect("tracez JSON");
    assert!(!tracez.get("recent").and_then(Json::as_arr).unwrap().is_empty());
    server.shutdown();
}

/// The virtual-time Chrome trace is a pure function of the manifest's
/// deterministic view: byte-identical across a same-seed double run and
/// across 1 vs 4 crawl workers, and schema-valid.
#[test]
fn virtual_trace_is_byte_identical_across_runs_and_workers() {
    let config = StudyConfig { seed: 1213, scale: 0.01, iterations: 2, scam: Default::default() };
    let render = |workers: usize| {
        let manifest = Study::new(config).with_workers(workers).run().telemetry;
        telemetry::virtual_trace(&manifest).render_pretty() + "\n"
    };
    let a = render(1);
    assert_eq!(a, render(1), "same-seed double run must serialize identically");
    assert_eq!(a, render(4), "worker count must not leak into the virtual trace");
    let summary = telemetry::validate_trace(&a).expect("virtual trace validates");
    assert!(summary.starts_with("mode=virtual"));
}
