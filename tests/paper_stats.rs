//! Paper-shape assertions: the measured tables must reproduce the
//! *orderings, ratios, and bands* the paper reports (DESIGN.md §4).
//!
//! Absolute identity is not expected — the substrate is a seeded
//! simulation — but who wins, by roughly what factor, and where the
//! crossovers fall must match.

use acctrade::core::{Study, StudyConfig, StudyReport};
use std::sync::OnceLock;

/// One shared study run (scale 5%, full iteration count).
fn report() -> &'static StudyReport {
    static REPORT: OnceLock<StudyReport> = OnceLock::new();
    REPORT.get_or_init(|| {
        Study::new(StudyConfig {
            seed: 0x9A9E5,
            scale: 0.05,
            iterations: 10,
            scam: Default::default(),
        })
        .run()
    })
}

fn row_accounts(r: &StudyReport, market: &str) -> usize {
    r.table1.iter().find(|x| x.marketplace == market).expect("market row").accounts
}

#[test]
fn table1_accsmarket_largest_fameseller_smallest() {
    let r = report();
    let accs = row_accounts(r, "Accsmarket");
    let fame = row_accounts(r, "FameSeller");
    for row in &r.table1 {
        assert!(row.accounts <= accs, "{} exceeds Accsmarket", row.marketplace);
        assert!(row.accounts >= fame, "{} below FameSeller", row.marketplace);
    }
    // Accsmarket holds ~35% of all listings.
    let total: usize = r.table1.iter().map(|x| x.accounts).sum();
    let share = accs as f64 / total as f64;
    assert!((0.30..0.42).contains(&share), "Accsmarket share {share}");
}

#[test]
fn table2_platform_marginals() {
    let r = report();
    let get = |p: &str| {
        r.table2
            .iter()
            .find(|x| x.platform == p)
            .expect("platform row")
    };
    // Instagram has the most advertised accounts; X the fewest (Table 2).
    let ig = get("Instagram").all_accounts;
    let x = get("X").all_accounts;
    for row in &r.table2 {
        assert!(row.all_accounts <= ig + ig / 4, "{} too large", row.platform);
    }
    assert!(x < ig / 2, "X={x} should be far below Instagram={ig}");
    // YouTube dominates visible accounts (54% in the paper).
    let yt_vis = get("YouTube").visible_accounts;
    let total_vis: usize = r.table2.iter().map(|x| x.visible_accounts).sum();
    let yt_share = yt_vis as f64 / total_vis as f64;
    assert!((0.40..0.68).contains(&yt_share), "YouTube visible share {yt_share}");
    // X accounts produced by far the most posts (165K of 205K).
    let x_posts = get("X").visible_posts;
    let total_posts: usize = r.table2.iter().map(|x| x.visible_posts).sum();
    assert!(
        x_posts as f64 / total_posts as f64 > 0.6,
        "X post share {}",
        x_posts as f64 / total_posts as f64
    );
}

#[test]
fn section4_1_economics() {
    let r = report();
    let a = &r.anatomy;
    // Price ordering: TikTok/YouTube >> Instagram >> X/Facebook medians.
    let med = |p: &str| *a.price_medians.get(p).expect("median");
    assert!(med("TikTok") > med("Instagram"), "tiktok {} ig {}", med("TikTok"), med("Instagram"));
    assert!(med("YouTube") > med("Instagram"));
    assert!(med("Instagram") > med("X"));
    assert!(med("Instagram") > med("Facebook"));
    // Total value scales to the paper's $64M: at 5% scale expect $2–5M.
    assert!(
        (1_500_000.0..6_000_000.0).contains(&a.price_total_usd),
        "total ${:.0}",
        a.price_total_usd
    );
    // Premium segment: ~0.9% of listings, median near $45k.
    let premium_rate = a.premium_count as f64 / a.total_offers as f64;
    assert!((0.004..0.02).contains(&premium_rate), "premium rate {premium_rate}");
    let pm = a.premium_median_usd.expect("premium listings exist");
    assert!((25_000.0..90_000.0).contains(&pm), "premium median {pm}");
    // ~63% described, ~40% show followers, ~22% uncategorized.
    let described = a.described as f64 / a.total_offers as f64;
    assert!((0.55..0.72).contains(&described), "described {described}");
    let followers_shown = a.followers_shown as f64 / a.total_offers as f64;
    assert!((0.32..0.48).contains(&followers_shown), "followers shown {followers_shown}");
    let uncategorized = a.uncategorized as f64 / a.total_offers as f64;
    assert!((0.15..0.30).contains(&uncategorized), "uncategorized {uncategorized}");
    // Humor/Memes is the top category.
    assert_eq!(a.top_categories[0].0, "Humor/Memes");
    // Description strategies: "authentic" labeled listings dominate the
    // other keyword strategies (784 of ~1,280 in the paper).
    let strat = |label: &str| {
        a.description_strategies
            .iter()
            .find(|(l, _)| *l == label)
            .map(|(_, n)| *n)
            .unwrap_or(0)
    };
    assert!(strat("authentic") > 0);
    assert!(strat("authentic") >= strat("fresh and ready"));
    assert!(strat("authentic") >= strat("business adaptability"));
    // Verified claims: all YouTube, none with links.
    assert!(a.verified_claims_all_youtube);
    assert!(a.verified_claims_without_links);
    // Monetization medians in the paper's band.
    if let Some(m) = a.monetization_median_usd {
        assert!((60.0..260.0).contains(&m), "monetization median {m}");
    }
}

#[test]
fn figure2_replenishment_dynamics() {
    let r = report();
    assert!(r.dynamics.cumulative_monotone());
    assert!(r.dynamics.active_declined(), "active listings must dip");
    assert!(r.dynamics.total_replenished > 0);
    assert!(r.dynamics.total_retired > 0);
}

#[test]
fn table4_follower_shape() {
    let r = report();
    let row = |p: &str| r.table4.iter().find(|x| x.platform == p).expect("row");
    // TikTok's advertised accounts are fresh (tiny median); the others
    // carry audiences in the thousands.
    assert!(row("TikTok").median < 100, "tiktok median {}", row("TikTok").median);
    assert!(row("Instagram").median > 1_000);
    assert!(row("Facebook").median > row("X").median);
    // The overall max is the per-platform max; the tail reaches deep
    // into the millions (paper: YouTube at 20.5M). At small scales which
    // platform draws the single largest account is seed noise.
    let all = row("All");
    let per_platform_max = ["TikTok", "X", "Facebook", "Instagram", "YouTube"]
        .iter()
        .map(|p| row(p).max)
        .max()
        .unwrap();
    assert_eq!(all.max, per_platform_max);
    assert!(all.max > 500_000, "max followers {}", all.max);
}

#[test]
fn figure4_creation_cohorts() {
    let r = report();
    let c = &r.creation;
    assert!((0.22..0.38).contains(&c.pre_2020), "pre-2020 {}", c.pre_2020);
    assert!((0.60..0.80).contains(&c.last_3_5_years), "recent {}", c.last_3_5_years);
    assert!(c.youtube_2006_2010 < 0.02, "ancient YT {}", c.youtube_2006_2010);
    // TikTok accounts all post-2017.
    let tiktok = &c.per_platform["TikTok"];
    let cut = acctrade::net::clock::unix_from_ymd(2017, 1, 1);
    assert!(tiktok.iter().all(|&t| t >= cut));
}

#[test]
fn section5_profile_tailoring() {
    let r = report();
    let s = &r.setup;
    // US is the top location; location coverage ~28%.
    assert_eq!(s.top_locations[0].0, "United States");
    let coverage = s.located as f64 / s.live_profiles as f64;
    assert!((0.20..0.38).contains(&coverage), "location coverage {coverage}");
    // Verified dominates the special account types (669 of 932 in the
    // paper); protected is the rarest. Business-vs-private ordering is
    // not stable at 5% scale (expected counts ~10 vs ~3), so assert the
    // robust facts only.
    assert!(s.verified > s.business);
    assert!(s.verified > s.private + s.protected);
    assert!(s.protected <= s.private.max(s.business));
}

#[test]
fn tables5_6_scam_taxonomy_shape() {
    let r = report();
    let scam = &r.scam;
    assert!(scam.scam_cluster_count >= 8, "scam clusters {}", scam.scam_cluster_count);
    // Financial scams dominate posts; engagement bait dominates by
    // accounts among non-financial categories.
    let row = |c: acctrade::workload::ScamCategory| {
        scam.table6.iter().find(|x| x.category == c).expect("category row")
    };
    use acctrade::workload::ScamCategory::*;
    assert!(row(Financial).posts > row(Phishing).posts);
    assert!(row(Financial).posts > row(ProductFraud).posts);
    assert!(row(EngagementBait).accounts > row(Impersonation).accounts);
    assert!(row(EngagementBait).accounts > row(AdultContent).accounts);
    // Scam posts are a sizable minority of all collected posts (~9% in
    // the paper).
    let rate = scam.total_scam_posts as f64 / scam.total_posts.max(1) as f64;
    assert!((0.03..0.25).contains(&rate), "scam post rate {rate}");
    // X leads scam posts (Table 5).
    let t5 = |p: &str| scam.table5.iter().find(|x| x.platform == p).expect("row");
    assert!(t5("X").scam_posts >= t5("Facebook").scam_posts);
    assert!(t5("X").scam_posts >= t5("TikTok").scam_posts);
}

#[test]
fn table7_clusters_are_a_small_minority() {
    let r = report();
    let all = &r.network.all_row;
    assert!(all.clusters > 0);
    // 4.7% overall in the paper; generous band.
    assert!(
        (0.5..12.0).contains(&all.clustered_pct),
        "clustered {}%",
        all.clustered_pct
    );
    assert_eq!(all.min_size, 2);
    // YouTube has the most clusters (97 of 203 in the paper).
    let yt = r.network.rows.iter().find(|x| x.platform == "YouTube").expect("row");
    for row in &r.network.rows {
        assert!(row.clusters <= yt.clusters, "{} > YouTube", row.platform);
    }
}

#[test]
fn table8_efficacy_ordering() {
    let r = report();
    let e = |p: &str| {
        r.efficacy
            .rows
            .iter()
            .find(|x| x.platform == p)
            .expect("row")
            .blocking_efficacy_pct
    };
    // TikTok & Instagram high; YouTube & Facebook low; X in between.
    assert!(e("TikTok") > 35.0, "tiktok {}", e("TikTok"));
    assert!(e("Instagram") > 35.0, "instagram {}", e("Instagram"));
    assert!(e("YouTube") < 12.0, "youtube {}", e("YouTube"));
    assert!(e("Facebook") < 14.0, "facebook {}", e("Facebook"));
    assert!(e("X") > e("YouTube") && e("X") < e("TikTok"), "x {}", e("X"));
    // Overall ~19.7%.
    let overall = r.efficacy.all_row.blocking_efficacy_pct;
    assert!((12.0..30.0).contains(&overall), "overall {overall}");
}

#[test]
fn section4_2_underground_shape() {
    let r = report();
    let u = &r.underground;
    // Six markets yielded posts; Nexus the most.
    assert!(u.markets.len() >= 5, "markets {}", u.markets.len());
    let nexus = u.markets.iter().find(|m| m.market == "Nexus").expect("nexus");
    for m in &u.markets {
        assert!(m.posts <= nexus.posts, "{} > Nexus", m.market);
    }
    // Kerberos bulk: few posts, many accounts.
    let kerberos = u.markets.iter().find(|m| m.market == "Kerberos").expect("kerberos");
    assert!(kerberos.accounts_offered > kerberos.posts as u64 * 10);
    // Template reuse found, at high similarity, tied to few authors.
    assert!(!u.reuse_pairs.is_empty());
    assert!(u.reuse_pairs.iter().all(|p| p.similarity >= 0.88));
    // The paper ties TikTok near-dups to 3 authors; across all markets
    // and platforms more authors share boilerplate ("lesser extent across
    // different marketplaces").
    assert!(u.reuse_authors <= 16, "reuse authors {}", u.reuse_authors);
    // TikTok leads near-duplicates (Nexus's 12/42 in the paper).
    let tiktok_dups = u.near_dup_posts_by_platform.get("TikTok").copied().unwrap_or(0);
    assert!(tiktok_dups >= 2, "tiktok near-dups {tiktok_dups}");
}
