//! Economy-subsystem guarantees, end to end through the study driver:
//!
//! * the live economy is a deterministic function of (seed, scenario) —
//!   worker counts are a pure performance knob, and a crash/resume
//!   cycle reproduces the identical economy event for event;
//! * with no economy attached, the subsystem is perfectly inert: no
//!   events, no counters, no report section — the study's artifacts are
//!   those of the pre-economy pipeline.

use acctrade::core::study::{Study, StudyConfig, StudyReport};
use acctrade::economy::{stream_digest, EconomyConfig};
use acctrade::telemetry;
use std::path::PathBuf;

const SEED: u64 = 20250808;

fn config() -> StudyConfig {
    StudyConfig { seed: SEED, scale: 0.01, iterations: 3, scam: Default::default() }
}

fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("acctrade-econ-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// The byte views of a report that must not depend on how the economy
/// was executed: the event stream, the E1–E3 analysis, the dataset, and
/// the rendered report.
fn byte_views(report: &StudyReport) -> (String, String, String, String) {
    let stream: String =
        report.economy_events.iter().map(|e| e.to_json_line() + "\n").collect();
    let analysis = report.economy.as_ref().expect("economy attached").to_json_pretty();
    (stream, analysis, report.dataset.to_json(), report.render_all())
}

fn persisted_scenario_run(workers: usize, tag: &str) -> (StudyReport, String) {
    let dir = scratch(tag);
    let rec = telemetry::Recorder::new();
    let _scope = rec.enter();
    let report = Study::new(config())
        .with_workers(workers)
        .with_economy(EconomyConfig::scenario("all").expect("known scenario"))
        .run_persisted(&dir)
        .expect("persisted economy run");
    let checkpoint = std::fs::read_to_string(dir.join("checkpoint.json")).expect("checkpoint");
    let _ = std::fs::remove_dir_all(&dir);
    (report, checkpoint)
}

#[test]
fn worker_counts_do_not_perturb_the_economy() {
    let (base, base_cp) = persisted_scenario_run(1, "w1");
    assert!(!base.economy_events.is_empty(), "scenario `all` emits events");
    assert!(base.economy.as_ref().unwrap().funnel_all.opened > 0);
    assert!(
        base_cp.contains("\"economy_scenario\": \"all\""),
        "checkpoint records the scenario"
    );

    let (par, par_cp) = persisted_scenario_run(4, "w4");
    assert_eq!(byte_views(&base), byte_views(&par), "4 workers diverged from 1");
    assert_eq!(base_cp, par_cp, "final checkpoints differ across worker counts");
}

#[test]
fn kill_and_resume_reproduce_the_identical_economy() {
    let (clean, clean_cp) = persisted_scenario_run(1, "clean");

    let dir = scratch("crash");
    let study = || {
        Study::new(config())
            .with_economy(EconomyConfig::scenario("all").expect("known scenario"))
    };
    {
        let rec = telemetry::Recorder::new();
        let _scope = rec.enter();
        let killed = study()
            .run_persisted_with_kill(&dir, 2)
            .expect("killed economy run");
        assert!(killed.is_none(), "the injected kill must fire");
    }
    let resumed = {
        let rec = telemetry::Recorder::new();
        let _scope = rec.enter();
        Study::resume_from(config(), &dir).expect("resume rebuilds the economy")
    };
    assert!(resumed.recovery.is_some(), "resumed runs report recovery");
    let resumed_cp = std::fs::read_to_string(dir.join("checkpoint.json")).expect("checkpoint");
    let _ = std::fs::remove_dir_all(&dir);

    assert_eq!(
        byte_views(&clean),
        byte_views(&resumed),
        "crash/resume diverged from the uninterrupted run"
    );
    assert_eq!(clean_cp, resumed_cp, "final checkpoints differ across kill/resume");
    assert_eq!(
        stream_digest(&clean.economy_events),
        stream_digest(&resumed.economy_events),
    );
}

#[test]
fn disabled_economy_is_perfectly_inert() {
    let rec = telemetry::Recorder::new();
    let _scope = rec.enter();
    let report = Study::new(config()).run();

    assert!(report.economy.is_none(), "no economy attached, no analysis");
    assert!(report.economy_events.is_empty());
    assert_eq!(report.price_observations, 0, "a static world never reprices");
    for counter in &report.telemetry.counters {
        assert!(
            !counter.key.starts_with("economy.")
                && !counter.key.starts_with("campaign.price_observations"),
            "disabled economy leaked counter {}",
            counter.key
        );
    }
    assert!(
        !report.render_all().contains("Economy E1"),
        "disabled economy must not render a report section"
    );
}

/// Scenario packs really gate their engines: an escrow-only economy
/// emits no price ticks or bot posts, and a bot-only economy opens no
/// orders.
#[test]
fn scenario_packs_gate_their_engines() {
    let run = |name: &str| {
        let rec = telemetry::Recorder::new();
        let _scope = rec.enter();
        Study::new(config())
            .with_economy(EconomyConfig::scenario(name).expect("known scenario"))
            .run()
    };

    let escrow = run("escrow-basic");
    let analysis = escrow.economy.as_ref().unwrap();
    assert!(analysis.funnel_all.opened > 0, "escrow engine runs");
    assert!(analysis.cadence.is_empty(), "no bot engine, no cadence rows");

    let bots = run("bot-inventory");
    let analysis = bots.economy.as_ref().unwrap();
    assert_eq!(analysis.funnel_all.opened, 0, "no escrow engine, no orders");
    assert!(!analysis.cadence.is_empty(), "bot engine posts inventory");
}
