//! # acctrade-bench
//!
//! Benchmarks and regeneration targets for every table and figure in the
//! paper, plus the ablation benches DESIGN.md calls out.
//!
//! * `cargo run -p acctrade-bench --bin report -- all 0.1` regenerates
//!   every table/figure at the given scale;
//! * `cargo bench -p acctrade-bench` runs the benches on `foundation::bench` (one
//!   bench target per experiment, plus ablations).

use acctrade_core::study::{Study, StudyConfig, StudyReport};
use std::sync::OnceLock;

/// Scale used by the benches — small enough to iterate, big
/// enough that the pipelines do real work.
pub const BENCH_SCALE: f64 = 0.05;

/// A shared study run for analysis benches (building the dataset once;
/// individual benches then measure their analysis stage).
pub fn shared_report() -> &'static StudyReport {
    static REPORT: OnceLock<StudyReport> = OnceLock::new();
    REPORT.get_or_init(|| {
        Study::new(StudyConfig {
            seed: 0xBE7C,
            scale: BENCH_SCALE,
            iterations: 6,
            scam: Default::default(),
        })
        .run()
    })
}
