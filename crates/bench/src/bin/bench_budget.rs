//! CI gate 11's perf-budget check: diff a `BENCH_report.json` against
//! the committed `BENCH_budget.json` floors and ceilings.
//!
//! ```sh
//! cargo run -p acctrade-bench --bin bench_budget -- \
//!     target/BENCH_report.json BENCH_budget.json
//! ```
//!
//! The budget document pins one metric per bench entry to a `min`
//! floor (throughput, speedup) or a `max` ceiling (latency medians). A
//! `tolerance_pct` band absorbs machine noise: floors are checked at
//! `min * (1 - tol)`, ceilings at `max * (1 + tol)`. Budgets are
//! deliberately conservative multiples of measured values — the gate
//! exists to catch order-of-magnitude regressions (a lost fast path, an
//! accidental O(n²)), not 5% jitter.
//!
//! Exits 0 when every budgeted metric is inside its band; exits 1 with
//! a per-entry verdict table on any regression, missing entry, or
//! malformed budget.

use foundation::json::Json;

const BUDGET_SCHEMA: &str = "acctrade-bench-budget/v1";

fn main() {
    let mut args = std::env::args().skip(1);
    let report_path = args.next().unwrap_or_else(|| "target/BENCH_report.json".into());
    let budget_path = args.next().unwrap_or_else(|| "BENCH_budget.json".into());
    match check(&report_path, &budget_path) {
        Ok(lines) => {
            for line in lines {
                println!("{line}");
            }
            println!("bench budget OK ({report_path} within {budget_path})");
        }
        Err(err) => {
            eprintln!("bench budget FAILED: {err}");
            std::process::exit(1);
        }
    }
}

fn load(path: &str) -> Result<Json, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    Json::parse(&text).map_err(|e| format!("{path}: bad JSON: {e}"))
}

fn check(report_path: &str, budget_path: &str) -> Result<Vec<String>, String> {
    let report = load(report_path)?;
    let budget = load(budget_path)?;
    let schema = budget.get("schema").and_then(Json::as_str).unwrap_or("");
    if schema != BUDGET_SCHEMA {
        return Err(format!("{budget_path}: unknown budget schema {schema:?}"));
    }
    let tolerance = budget.get("tolerance_pct").and_then(Json::as_num).unwrap_or(0.0) / 100.0;
    if !(0.0..1.0).contains(&tolerance) {
        return Err(format!("{budget_path}: tolerance_pct out of range"));
    }
    let Some(Json::Obj(entries)) = budget.get("entries") else {
        return Err(format!("{budget_path}: missing entries object"));
    };
    if entries.is_empty() {
        return Err(format!("{budget_path}: empty budget"));
    }

    let mut lines = Vec::new();
    let mut failures = Vec::new();
    for (id, spec) in entries {
        match check_entry(&report, id, spec, tolerance) {
            Ok(line) => lines.push(line),
            Err(reason) => failures.push(format!("{id}: {reason}")),
        }
    }
    if failures.is_empty() {
        Ok(lines)
    } else {
        for line in &lines {
            eprintln!("{line}");
        }
        Err(failures.join("; "))
    }
}

fn check_entry(report: &Json, id: &str, spec: &Json, tolerance: f64) -> Result<String, String> {
    let metric = spec
        .get("metric")
        .and_then(Json::as_str)
        .ok_or_else(|| "budget entry missing metric name".to_string())?;
    let value = report
        .get(id)
        .ok_or_else(|| "entry missing from bench report".to_string())?
        .get(metric)
        .and_then(Json::as_num)
        .ok_or_else(|| format!("report entry has no numeric {metric:?}"))?;
    let floor = spec.get("min").and_then(Json::as_num);
    let ceiling = spec.get("max").and_then(Json::as_num);
    if floor.is_none() && ceiling.is_none() {
        return Err("budget entry needs a min or a max".into());
    }
    if let Some(min) = floor {
        let bound = min * (1.0 - tolerance);
        if value < bound {
            return Err(format!(
                "{metric} = {value:.1} below floor {min:.1} (tolerance-adjusted {bound:.1})"
            ));
        }
    }
    if let Some(max) = ceiling {
        let bound = max * (1.0 + tolerance);
        if value > bound {
            return Err(format!(
                "{metric} = {value:.1} above ceiling {max:.1} (tolerance-adjusted {bound:.1})"
            ));
        }
    }
    let bounds = match (floor, ceiling) {
        (Some(min), Some(max)) => format!("within [{min:.1}, {max:.1}]"),
        (Some(min), None) => format!(">= floor {min:.1}"),
        (None, _) => format!("<= ceiling {:.1}", ceiling.unwrap()),
    };
    Ok(format!("  {id}: {metric} = {value:.1} {bounds}"))
}
