//! Regenerate any table or figure from the paper.
//!
//! ```sh
//! report <target> [scale] [seed]
//! ```
//!
//! `target` ∈ table1..table9, figure2..figure5, anatomy, setup,
//! underground, dataset (full campaign dataset as JSON — the paper's
//! release-artifact format), figure2csv/figure4csv (plot data), all.
//! `scale` defaults to 0.1; `1.0` is paper scale.

use acctrade_core::study::{Study, StudyConfig};
use acctrade_core::{anatomy, report};

fn main() {
    let mut args = std::env::args().skip(1);
    let target = args.next().unwrap_or_else(|| "all".to_string());
    let scale: f64 = args.next().and_then(|s| s.parse().ok()).unwrap_or(0.1);
    let seed: u64 = args.next().and_then(|s| s.parse().ok()).unwrap_or(0xACC7);

    // Tables 3 and 9 are static configuration; serve them without a run.
    match target.as_str() {
        "figure1" => {
            println!("{}", report::render_figure1());
            return;
        }
        "appendixa" => {
            println!("{}", acctrade_core::payments_security::render_appendix_a());
            return;
        }
        "table3" => {
            println!("{}", report::render_table3());
            return;
        }
        "table9" => {
            println!("{}", report::render_table9());
            return;
        }
        _ => {}
    }

    eprintln!("running study (target={target}, scale={scale}, seed={seed}) ...");
    let r = Study::new(StudyConfig { seed, scale, iterations: 10, scam: Default::default() }).run();

    let out = match target.as_str() {
        "table1" => report::render_table1(&r.table1),
        "table2" => report::render_table2(&r.table2),
        "table4" => report::render_table4(&r.table4),
        "table5" => report::render_table5(&r.scam),
        "table6" => report::render_table6(&r.scam),
        "table7" => report::render_table7(&r.network),
        "table8" => report::render_table8(&r.efficacy),
        "figure2" => report::render_figure2(&r.dynamics),
        "figure3" => report::render_figure3(anatomy::figure3_outlier(&r.dataset.offers)),
        "figure4" => report::render_figure4(&r.creation),
        "figure5" => report::render_figure5(&r.network),
        "anatomy" => report::render_anatomy(&r.anatomy),
        "setup" => report::render_setup(&r.setup),
        "underground" => report::render_underground(&r.underground),
        "dataset" => r.dataset.to_json(),
        "figure2csv" => acctrade_core::figures::figure2_csv(&r.dynamics),
        "figure4csv" => acctrade_core::figures::figure4_csv(&r.creation, 200),
        "all" => r.render_all(),
        other => {
            eprintln!("unknown target {other:?}");
            eprintln!(
                "targets: table1..table9, figure2..figure5, anatomy, setup, underground, dataset, figure2csv, figure4csv, all"
            );
            std::process::exit(2);
        }
    };
    println!("{out}");
}
