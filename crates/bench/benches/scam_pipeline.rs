//! Tables 5–6 — the §6 scam-post pipeline, plus the two ablations
//! DESIGN.md calls out:
//!
//! * **clusterer ablation** — HDBSCAN (paper-faithful) vs DBSCAN at a
//!   fixed radius vs a k-means baseline (no noise concept);
//! * **embedding-dimension sweep** — cosine-geometry preservation vs
//!   cost.

use acctrade_core::scamposts::{
    analyze, synthetic_posts, ClusterBackend, ScamPipelineConfig,
};
use acctrade_text::cluster::kmeans;
use acctrade_text::embed::Embedder;
use acctrade_text::reduce::pca_reduce;
use foundation::bench::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

fn bench_pipeline(c: &mut Criterion) {
    let posts = synthetic_posts(25, 12, 77);
    let truth_scam = 16 * 25;

    // Headline numbers per backend (the shape check for Tables 5/6).
    for (name, backend) in [
        ("hdbscan", ClusterBackend::Hdbscan { min_cluster_size: 3 }),
        ("dbscan", ClusterBackend::Dbscan { eps: 0.35, min_pts: 3 }),
    ] {
        let a = analyze(&posts, ScamPipelineConfig { backend, ..Default::default() });
        eprintln!(
            "[scam:{name}] clusters={} scam_clusters={} recall={:.0}%",
            a.clusters.len(),
            a.scam_cluster_count,
            100.0 * a.total_scam_posts as f64 / truth_scam as f64
        );
    }

    let mut group = c.benchmark_group("table5_6_pipeline");
    group.sample_size(10);
    for (name, backend) in [
        ("hdbscan", ClusterBackend::Hdbscan { min_cluster_size: 3 }),
        ("dbscan_eps0.35", ClusterBackend::Dbscan { eps: 0.35, min_pts: 3 }),
    ] {
        group.bench_function(name, |b| {
            b.iter(|| {
                analyze(
                    black_box(&posts),
                    ScamPipelineConfig { backend, ..Default::default() },
                )
            })
        });
    }
    group.finish();

    // k-means baseline ablation: cluster the same reduced embeddings; it
    // has no noise concept, so every benign post lands in *some* cluster.
    let texts: Vec<String> = posts.iter().map(|p| p.text.clone()).collect();
    let embedder = Embedder::new(192, 7);
    let embedded = embedder.embed_all(&texts[..texts.len().min(1500)]);
    let reduced = pca_reduce(&embedded, 24, 7);
    let mut group = c.benchmark_group("ablation_clusterer");
    group.sample_size(10);
    group.bench_function("kmeans_k86_baseline", |b| {
        b.iter(|| kmeans(black_box(&reduced), 86, 7, 30))
    });
    group.finish();

    // Embedding-dimension sweep.
    let mut group = c.benchmark_group("ablation_embed_dim");
    group.sample_size(10);
    for dim in [64usize, 192, 512] {
        group.bench_with_input(BenchmarkId::from_parameter(dim), &dim, |b, &dim| {
            let e = Embedder::new(dim, 7);
            b.iter(|| e.embed_all(black_box(&texts[..500])))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_pipeline);
criterion_main!(benches);
