//! Store benches: WAL frame encode/decode, append throughput (with and
//! without segment rotation pressure), fsync'd sync cost, and full-store
//! replay/recovery throughput. Results land in `BENCH_report.json` with
//! every other bench.

use foundation::bench::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use std::path::PathBuf;
use store::{decode_frame, encode_frame, replay, WalOptions, Writer};

/// A realistic record payload: the JSON rendering of one crawled offer
/// (~300 bytes — the store's payloads are opaque, so bytes are bytes).
fn sample_payload() -> Vec<u8> {
    let mut p = br#"{"marketplace":"FameSwap","offer_url":"http://fameswap.example/offer/"#
        .to_vec();
    p.extend_from_slice(b"123456");
    p.extend_from_slice(
        br#"","title":"IG fashion page, 27k real followers","seller":"igking","seller_country":"ID","price_usd":298.0,"platform":"Instagram","category":"fashion","claimed_followers":27431,"claims_verified":false,"monthly_revenue_usd":136.0,"income_source":"Google AdSense","description":"aged 2015, organic growth","collected_unix":1700000000,"iteration":2}"#,
    );
    p
}

fn scratch(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("acctrade-bench-store-{tag}-{}", std::process::id()))
}

fn bench_store(c: &mut Criterion) {
    let mut group = c.benchmark_group("store");
    group.sample_size(10);

    let payload = sample_payload();
    eprintln!("[store] payload={} bytes/record", payload.len());

    // Frame codec micro-benches: the per-record floor of every append
    // and every replay.
    group.bench_function("frame_encode", |b| {
        let payload = payload.clone();
        b.iter(|| black_box(encode_frame(1, black_box(&payload))))
    });
    group.bench_function("frame_decode", |b| {
        let frame = encode_frame(1, &payload);
        b.iter(|| black_box(decode_frame(black_box(&frame))))
    });

    // Append throughput: 1,000 records per iteration, one fsync'd sync
    // at the end (the campaign's per-iteration pattern). The default
    // segment size never rotates at this volume; the 64 KiB variant
    // forces rotation every ~190 records to price the rotation path.
    const APPENDS: usize = 1_000;
    for (label, seg_bytes) in
        [("default_segment", WalOptions::default().segment_max_bytes), ("64k_segment", 64 << 10)]
    {
        group.bench_with_input(
            BenchmarkId::new("append_1k_then_sync", label),
            &seg_bytes,
            |b, &seg_bytes| {
                let dir = scratch(label);
                b.iter_with_setup(
                    // `Writer::create` wipes any previous chain, so each
                    // iteration starts from an empty store.
                    || Writer::create(&dir, WalOptions { segment_max_bytes: seg_bytes }).unwrap(),
                    |mut w| {
                        for _ in 0..APPENDS {
                            w.append(1, &payload).unwrap();
                        }
                        w.sync().unwrap();
                        black_box(w.total_records())
                    },
                );
                let _ = std::fs::remove_dir_all(&dir);
            },
        );
    }

    // Replay/recovery throughput: scan, CRC-check, and decode a 10,000
    // record chain (what `Study::resume_from` pays before continuing).
    const REPLAYED: usize = 10_000;
    let dir = scratch("replay");
    {
        let mut w = Writer::create(&dir, WalOptions { segment_max_bytes: 1 << 20 }).unwrap();
        for _ in 0..REPLAYED {
            w.append(1, &payload).unwrap();
        }
        w.sync().unwrap();
        let stats = w.stats();
        eprintln!(
            "[store] replay corpus: {} records, {} bytes, {} rotations",
            stats.records_appended, stats.bytes_appended, stats.segments_rotated
        );
    }
    group.bench_function("replay_10k_records", |b| {
        b.iter(|| {
            let (records, report) = replay(&dir).unwrap();
            assert_eq!(records.len(), REPLAYED);
            black_box(report.records_replayed)
        })
    });
    let _ = std::fs::remove_dir_all(&dir);

    group.finish();
}

criterion_group!(benches, bench_store);
criterion_main!(benches);
