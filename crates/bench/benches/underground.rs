//! §4.2 — underground collection (Tor + CAPTCHA + link-walking) and the
//! listing-similarity analysis.

use acctrade_bench::shared_report;
use acctrade_core::underground;
use acctrade_crawler::underground::UndergroundCollector;
use acctrade_net::client::Client;
use acctrade_net::sim::SimNet;
use acctrade_net::tor::TorDirectory;
use acctrade_workload::world::{World, WorldParams};
use foundation::bench::{criterion_group, criterion_main, Criterion};
use foundation::rng::SeedableRng;
use foundation::rng::ChaCha8Rng;
use std::hint::black_box;

fn bench_underground(c: &mut Criterion) {
    let report = shared_report();
    eprintln!(
        "[underground] posts={} reuse_pairs={}",
        report.underground.total_posts,
        report.underground.reuse_pairs.len()
    );

    // Manual collection of the biggest market (Nexus).
    let mut group = c.benchmark_group("section4_2");
    group.sample_size(10);
    group.bench_function("manual_collection_nexus", |b| {
        b.iter_with_setup(
            || {
                let world = World::generate(WorldParams { seed: 9, scale: 0.02 });
                let net = SimNet::new(9);
                world.deploy(&net);
                let host = world
                    .forums
                    .iter()
                    .find(|f| f.config().name == "Nexus")
                    .expect("nexus exists")
                    .config()
                    .host
                    .clone();
                (net, host)
            },
            |(net, host)| {
                let dir = TorDirectory::default_consensus();
                let mut rng = ChaCha8Rng::seed_from_u64(9);
                let operator =
                    Client::new(&net, "tor-browser").manual(9).via_tor(dir.build_circuit(&mut rng));
                let collector = UndergroundCollector::new(&operator, host, "Nexus");
                black_box(collector.collect())
            },
        )
    });

    // Similarity analysis on the shared records.
    let records = &report.dataset.underground;
    group.bench_function("similarity_analysis", |b| {
        b.iter(|| underground::analyze(black_box(records)))
    });
    group.finish();
}

criterion_group!(benches, bench_underground);
criterion_main!(benches);
