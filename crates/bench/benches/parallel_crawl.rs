//! Parallel crawl-engine benches: campaign wall time at 1/2/4/8 workers
//! plus the deterministic schedule-speedup trajectory recorded into
//! `BENCH_report.json`.
//!
//! Wall time is hardware-dependent (a 1-core CI box cannot show an 8-way
//! speedup no matter how well the engine shards), so alongside the
//! measured wall stats this bench derives a machine-independent metric
//! from the engine's own shard lane durations: the makespan of greedy
//! longest-first list scheduling over the real per-shard virtual costs,
//! with the sequential discovery phase charged as the serial fraction.
//! That is the speedup an ideal work-stealing executor extracts from
//! this shard decomposition — the quantity the (marketplace, platform
//! chain) sharding was designed to maximise — and it is byte-stable
//! across runs, so the recorded trajectory is comparable over time.

use acctrade_bench::BENCH_SCALE;
use acctrade_crawler::schedule::CrawlCampaign;
use acctrade_crawler::steal;
use acctrade_net::client::Client;
use acctrade_net::sim::SimNet;
use acctrade_workload::world::{World, WorldParams};
use foundation::bench::{criterion_group, BenchmarkId, Criterion};
use foundation::json::Json;
use std::hint::black_box;

const WORKER_COUNTS: [usize; 4] = [1, 2, 4, 8];

fn bench_parallel_campaign(c: &mut Criterion) {
    let mut group = c.benchmark_group("parallel_crawl");
    group.sample_size(3);

    for workers in WORKER_COUNTS {
        group.bench_with_input(
            BenchmarkId::new("campaign_wall", format!("workers={workers}")),
            &workers,
            |b, &workers| {
                b.iter_with_setup(
                    || {
                        let world = World::generate(WorldParams { seed: 41, scale: BENCH_SCALE });
                        let net = SimNet::new(41);
                        world.deploy(&net);
                        (world, net)
                    },
                    |(mut world, net)| {
                        let client = Client::new(&net, "acctrade-crawler/0.1")
                            .with_politeness(20.0, 8.0);
                        let mut campaign = CrawlCampaign::new(&client);
                        campaign.workers = workers;
                        black_box(campaign.run(&mut world, 2))
                    },
                )
            },
        );
    }
    group.finish();
}

/// Greedy longest-first list scheduling: the makespan `k` workers reach
/// over the given task durations.
fn lpt_makespan(durations: &[u64], k: usize) -> u64 {
    let mut sorted = durations.to_vec();
    sorted.sort_unstable_by(|a, b| b.cmp(a));
    let mut load = vec![0u64; k.max(1)];
    for d in sorted {
        let slot = load
            .iter()
            .enumerate()
            .min_by_key(|(_, l)| **l)
            .map(|(i, _)| i)
            .unwrap_or(0);
        load[slot] += d;
    }
    load.into_iter().max().unwrap_or(0)
}

/// Measure the shard decomposition once and record the schedule-speedup
/// trajectory (serial discovery + LPT over real shard costs) into the
/// bench report, merging with the harness-written entries.
fn record_schedule_speedup() {
    let world = World::generate(WorldParams { seed: 41, scale: BENCH_SCALE });
    let net = SimNet::new(41);
    world.deploy(&net);
    let client = Client::new(&net, "acctrade-crawler/0.1").with_politeness(20.0, 8.0);
    let run = steal::run_iteration(&client, 0, 1, None);

    let discovery_us: u64 = run.discovery.iter().map(|(_, l)| l.now_us() - l.start_us()).sum();
    let durations: Vec<u64> =
        run.outcomes.iter().map(|o| o.lane.now_us() - o.lane.start_us()).collect();
    let total: u64 = durations.iter().sum();
    let serial = discovery_us + total;
    let largest = durations.iter().copied().max().unwrap_or(0);
    let ceiling = serial as f64 / (discovery_us + largest).max(1) as f64;

    let mut fields: Vec<(String, Json)> = vec![
        ("shards".into(), Json::Num(run.shards_total as f64)),
        ("serial_virtual_us".into(), Json::Num(serial as f64)),
        ("speedup_ceiling".into(), Json::Num(ceiling)),
    ];
    for k in WORKER_COUNTS {
        let makespan = discovery_us + lpt_makespan(&durations, k);
        let speedup = serial as f64 / makespan.max(1) as f64;
        eprintln!("[parallel_crawl] schedule speedup at {k} workers: {speedup:.2}x");
        fields.push((format!("schedule_speedup_{k}w"), Json::Num(speedup)));
    }

    let path = std::env::var("BENCH_REPORT_PATH")
        .unwrap_or_else(|_| "BENCH_report.json".to_string());
    let mut entries: Vec<(String, Json)> = match std::fs::read_to_string(&path) {
        Ok(existing) => match Json::parse(&existing) {
            Ok(Json::Obj(f)) => f,
            _ => Vec::new(),
        },
        Err(_) => Vec::new(),
    };
    let id = "parallel_crawl/schedule_speedup".to_string();
    let value = Json::Obj(fields);
    match entries.iter_mut().find(|(k, _)| *k == id) {
        Some(slot) => slot.1 = value,
        None => entries.push((id, value)),
    }
    if let Err(err) = std::fs::write(&path, Json::Obj(entries).render_pretty() + "\n") {
        eprintln!("[bench] could not write {path}: {err}");
    }
}

criterion_group!(benches, bench_parallel_campaign);

fn main() {
    benches();
    // After the harness flushed its wall stats, merge in the
    // deterministic schedule-speedup trajectory.
    record_schedule_speedup();
}
