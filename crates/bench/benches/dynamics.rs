//! Figure 2 — listing dynamics: the crawl campaign itself (collection
//! cost) and the snapshot-series derivation.

use acctrade_bench::BENCH_SCALE;
use acctrade_core::dynamics::ListingDynamics;
use acctrade_crawler::schedule::CrawlCampaign;
use acctrade_net::client::Client;
use acctrade_net::sim::SimNet;
use acctrade_workload::world::{World, WorldParams};
use foundation::bench::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench_dynamics(c: &mut Criterion) {
    // Campaign cost: world + fabric rebuilt per iteration (the campaign
    // mutates both).
    c.bench_function("figure2_crawl_campaign_3_iterations", |b| {
        b.iter(|| {
            let mut world = World::generate(WorldParams { seed: 42, scale: BENCH_SCALE / 2.0 });
            let net = SimNet::new(42);
            world.deploy(&net);
            let client = Client::new(&net, "acctrade-crawler/0.1");
            let campaign = CrawlCampaign::new(&client);
            black_box(campaign.run(&mut world, 3))
        })
    });

    // Series derivation on a prebuilt snapshot list.
    let mut world = World::generate(WorldParams { seed: 43, scale: BENCH_SCALE });
    let net = SimNet::new(43);
    world.deploy(&net);
    let client = Client::new(&net, "acctrade-crawler/0.1");
    let (_, snaps) = CrawlCampaign::new(&client).run(&mut world, 6);
    eprintln!(
        "[dynamics] final cumulative={} active={}",
        snaps.last().unwrap().cumulative_offers,
        snaps.last().unwrap().active_offers
    );
    c.bench_function("figure2_series_derivation", |b| {
        b.iter(|| ListingDynamics::from_snapshots(black_box(&snaps)))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_dynamics
}
criterion_main!(benches);
