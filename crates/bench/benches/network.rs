//! Table 7 / Figure 5 — attribute-based network clustering.

use acctrade_bench::shared_report;
use acctrade_core::network;
use foundation::bench::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench_network(c: &mut Criterion) {
    let report = shared_report();
    let profiles = &report.dataset.profiles;
    eprintln!(
        "[network] clusters={} clustered={:.1}%",
        report.network.all_row.clusters, report.network.all_row.clustered_pct
    );

    c.bench_function("table7_attribute_clustering", |b| {
        b.iter(|| network::analyze(black_box(profiles)))
    });
    let analysis = network::analyze(profiles);
    c.bench_function("figure5_exemplars", |b| {
        b.iter(|| network::figure5_exemplars(black_box(&analysis), 3))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_network
}
criterion_main!(benches);
