//! Crawler benches: single-marketplace DFS crawl cost, the DFS-vs-BFS
//! frontier ablation (time to the first offers), and the politeness
//! ablation (virtual collection time vs client-side rate limit).

use acctrade_bench::BENCH_SCALE;
use acctrade_crawler::crawl::MarketplaceCrawler;
use acctrade_crawler::frontier::CrawlOrder;
use acctrade_market::config::MarketplaceId;
use acctrade_net::client::Client;
use acctrade_net::sim::SimNet;
use acctrade_workload::world::{World, WorldParams};
use foundation::bench::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

fn bench_crawl(c: &mut Criterion) {
    let mut group = c.benchmark_group("crawler");
    group.sample_size(10);

    group.bench_function("dfs_crawl_accsmarket", |b| {
        b.iter_with_setup(
            || {
                let world = World::generate(WorldParams { seed: 11, scale: BENCH_SCALE });
                let net = SimNet::new(11);
                world.deploy(&net);
                net
            },
            |net| {
                let client = Client::new(&net, "acctrade-crawler/0.1");
                let mut crawler = MarketplaceCrawler::new(&client, MarketplaceId::Accsmarket);
                black_box(crawler.crawl(0))
            },
        )
    });

    // DFS vs BFS ablation: DFS reaches its first offers immediately
    // (drains each listing page before paginating); BFS walks every
    // listing page first. Measured as pages fetched before the 25th
    // offer (printed) plus wall time per full crawl.
    for order in [CrawlOrder::DepthFirst, CrawlOrder::BreadthFirst] {
        // One instrumented run outside the timer.
        let world = World::generate(WorldParams { seed: 13, scale: BENCH_SCALE });
        let net = SimNet::new(13);
        world.deploy(&net);
        let client = Client::new(&net, "acctrade-crawler/0.1");
        let start = net.clock().now_unix();
        let mut crawler =
            MarketplaceCrawler::with_order(&client, MarketplaceId::Accsmarket, order);
        let (records, stats) = crawler.crawl(0);
        // DFS reaches its 25th offer after ~2 listing pages; BFS only
        // after walking the whole pagination chain.
        let t25 = records.get(24).map(|r| r.collected_unix - start).unwrap_or(0);
        eprintln!(
            "[crawl:{order:?}] offers={} pages={} 25th-offer-at=+{t25}s-from-start",
            records.len(),
            stats.pages_fetched,
        );
        group.bench_with_input(
            BenchmarkId::new("frontier_order", format!("{order:?}")),
            &order,
            |b, &order| {
                b.iter_with_setup(
                    || {
                        let world =
                            World::generate(WorldParams { seed: 13, scale: BENCH_SCALE / 2.0 });
                        let net = SimNet::new(13);
                        world.deploy(&net);
                        net
                    },
                    |net| {
                        let client = Client::new(&net, "acctrade-crawler/0.1");
                        let mut crawler = MarketplaceCrawler::with_order(
                            &client,
                            MarketplaceId::Accsmarket,
                            order,
                        );
                        black_box(crawler.crawl(0))
                    },
                )
            },
        );
    }

    // Politeness ablation: how much *virtual* collection time the
    // crawler's self-throttle costs (printed; wall time is what the harness
    // measures).
    for rate in [2.0f64, 10.0, 50.0] {
        group.bench_with_input(
            BenchmarkId::new("politeness_rate", format!("{rate}")),
            &rate,
            |b, &rate| {
                b.iter_with_setup(
                    || {
                        let world =
                            World::generate(WorldParams { seed: 12, scale: BENCH_SCALE / 2.0 });
                        let net = SimNet::new(12);
                        world.deploy(&net);
                        net
                    },
                    |net| {
                        let t0 = net.clock().now_us();
                        let client =
                            Client::new(&net, "acctrade-crawler/0.1").with_politeness(rate, 4.0);
                        let mut crawler = MarketplaceCrawler::new(&client, MarketplaceId::FameSwap);
                        let out = crawler.crawl(0);
                        let virtual_hours =
                            (net.clock().now_us() - t0) as f64 / 3_600_000_000.0;
                        black_box((out, virtual_hours))
                    },
                )
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_crawl);
criterion_main!(benches);
