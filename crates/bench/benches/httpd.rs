//! Serving-layer benches: request-parser throughput through the
//! standard harness, plus a keep-alive load run against a real
//! loopback `HttpServer` recording req/s and latency percentiles into
//! `BENCH_report.json` (`httpd/keepalive_throughput`).
//!
//! Like every `foundation::bench` bench this runs in two modes: quick
//! (what `cargo test` sees — a handful of requests, smoke only) and
//! full (`cargo bench -- --bench` via the CI gate — enough volume for
//! stable percentiles).

use acctrade_httpd::{HostTable, HttpServer, RequestParser, ServerConfig, TimeSource};
use acctrade_net::server::Router;
use foundation::bench::{criterion_group, Criterion};
use foundation::json::Json;
use std::hint::black_box;
use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::Arc;
use std::time::{Duration, Instant};

const REQUEST: &[u8] = b"GET /offers?page=1 HTTP/1.1\r\nhost: bench.example\r\n\r\n";

fn bench_parser(c: &mut Criterion) {
    let mut group = c.benchmark_group("httpd");
    group.bench_function("parse_request", |b| {
        b.iter(|| {
            let mut p = RequestParser::new();
            p.feed(black_box(REQUEST));
            black_box(p.next_request().unwrap().unwrap())
        })
    });
    // Torn-read worst case: one byte per feed.
    group.bench_function("parse_request_byte_torn", |b| {
        b.iter(|| {
            let mut p = RequestParser::new();
            for chunk in REQUEST.chunks(1) {
                p.feed(chunk);
            }
            black_box(p.next_request().unwrap().unwrap())
        })
    });
    group.finish();
}

criterion_group!(benches, bench_parser);

/// The benched server: a static small-body route, 4 workers.
fn bench_server() -> HttpServer {
    let site = Router::new().route("/offers", |_req, _ctx| {
        acctrade_net::http::Response::ok()
            .with_html("<html><body><ul><li>offer</li></ul></body></html>")
    });
    let hosts = HostTable::new().with_service("bench.example", Arc::new(site));
    let config = ServerConfig {
        workers: 4,
        queue_capacity: 256,
        idle_timeout: Duration::from_secs(5),
        read_timeout: Duration::from_secs(5),
        write_timeout: Duration::from_secs(5),
        time: TimeSource::Wall,
        ..ServerConfig::default()
    };
    HttpServer::bind("127.0.0.1:0", hosts, config).expect("bind bench server")
}

/// Read one content-length-framed response; returns bytes consumed.
fn read_one(conn: &mut TcpStream, scratch: &mut Vec<u8>) -> usize {
    let mut buf = [0u8; 4096];
    let mut need = None;
    loop {
        if let Some(total) = need {
            if scratch.len() >= total {
                let surplus = scratch.len() - total;
                scratch.drain(..total);
                debug_assert_eq!(surplus, scratch.len());
                return total;
            }
        } else if let Some(end) = scratch.windows(4).position(|w| w == b"\r\n\r\n") {
            let len: usize = std::str::from_utf8(&scratch[..end])
                .ok()
                .and_then(|head| {
                    head.split("\r\n")
                        .find_map(|l| l.strip_prefix("content-length:"))
                        .and_then(|v| v.trim().parse().ok())
                })
                .expect("framed response");
            need = Some(end + 4 + len);
            continue;
        }
        let n = conn.read(&mut buf).expect("bench read");
        assert!(n > 0, "server closed mid-bench");
        scratch.extend_from_slice(&buf[..n]);
    }
}

/// Drive `requests` keep-alive requests over one connection, recording
/// per-request latency (ns).
fn client_run(addr: std::net::SocketAddr, requests: usize) -> Vec<u64> {
    let mut conn = TcpStream::connect(addr).expect("bench connect");
    conn.set_nodelay(true).expect("nodelay");
    let mut scratch = Vec::with_capacity(4096);
    let mut latencies = Vec::with_capacity(requests);
    for _ in 0..requests {
        let start = Instant::now();
        conn.write_all(REQUEST).expect("bench write");
        read_one(&mut conn, &mut scratch);
        latencies.push(start.elapsed().as_nanos() as u64);
    }
    latencies
}

fn percentile_us(sorted_ns: &[u64], p: f64) -> f64 {
    if sorted_ns.is_empty() {
        return 0.0;
    }
    let idx = ((sorted_ns.len() - 1) as f64 * p).round() as usize;
    sorted_ns[idx] as f64 / 1_000.0
}

/// The keep-alive load run: `conns` concurrent connections, `per_conn`
/// requests each; merges `httpd/keepalive_throughput` into the report.
fn record_keepalive_throughput(full: bool) {
    let (conns, per_conn) = if full { (4, 25_000) } else { (2, 50) };
    let server = bench_server();
    let addr = server.addr();

    let started = Instant::now();
    let handles: Vec<_> = (0..conns)
        .map(|_| std::thread::spawn(move || client_run(addr, per_conn)))
        .collect();
    let mut latencies: Vec<u64> =
        handles.into_iter().flat_map(|h| h.join().expect("bench client")).collect();
    let elapsed = started.elapsed();
    let stats = server.stats();
    server.shutdown();

    latencies.sort_unstable();
    let total = conns * per_conn;
    let req_per_s = total as f64 / elapsed.as_secs_f64().max(1e-9);
    let p50 = percentile_us(&latencies, 0.50);
    let p99 = percentile_us(&latencies, 0.99);
    let snap = stats.snapshot();
    assert_eq!(snap.requests, total as u64, "server answered every request exactly once");
    eprintln!(
        "[httpd] keep-alive: {total} requests over {conns} conns in {:.2}s → \
         {req_per_s:.0} req/s, p50 {p50:.0} µs, p99 {p99:.0} µs",
        elapsed.as_secs_f64()
    );

    let fields: Vec<(String, Json)> = vec![
        ("req_per_s".into(), Json::Num(req_per_s)),
        ("p50_us".into(), Json::Num(p50)),
        ("p99_us".into(), Json::Num(p99)),
        ("requests".into(), Json::Num(total as f64)),
        ("connections".into(), Json::Num(conns as f64)),
        ("server_workers".into(), Json::Num(4.0)),
        ("keepalive_reuse".into(), Json::Num(snap.keepalive_reuse as f64)),
    ];
    let path = std::env::var("BENCH_REPORT_PATH")
        .unwrap_or_else(|_| "BENCH_report.json".to_string());
    let mut entries: Vec<(String, Json)> = match std::fs::read_to_string(&path) {
        Ok(existing) => match Json::parse(&existing) {
            Ok(Json::Obj(f)) => f,
            _ => Vec::new(),
        },
        Err(_) => Vec::new(),
    };
    let id = "httpd/keepalive_throughput".to_string();
    let value = Json::Obj(fields);
    match entries.iter_mut().find(|(k, _)| *k == id) {
        Some(slot) => slot.1 = value,
        None => entries.push((id, value)),
    }
    if let Err(err) = std::fs::write(&path, Json::Obj(entries).render_pretty() + "\n") {
        eprintln!("[bench] could not write {path}: {err}");
    }
}

fn main() {
    benches();
    let full = std::env::args().any(|a| a == "--bench");
    record_keepalive_throughput(full);
}
