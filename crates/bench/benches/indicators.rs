//! §9 — the proposed-indicator experiments: referral monitoring and
//! rapid-growth detection cost at evaluation scale.

use acctrade_bench::BENCH_SCALE;
use acctrade_core::indicators::{evaluate_growth_indicator, evaluate_referral_monitoring};
use acctrade_crawler::crawl::MarketplaceCrawler;
use acctrade_market::config::MarketplaceId;
use acctrade_net::client::Client;
use acctrade_net::sim::SimNet;
use acctrade_workload::world::{World, WorldParams};
use foundation::bench::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench_indicators(c: &mut Criterion) {
    let mut group = c.benchmark_group("section9_indicators");
    group.sample_size(10);

    group.bench_function("referral_monitoring_1k_buyers", |b| {
        b.iter_with_setup(
            || {
                let world = World::generate(WorldParams { seed: 15, scale: BENCH_SCALE / 2.0 });
                let net = SimNet::new(15);
                world.deploy(&net);
                let client = Client::new(&net, "acctrade-crawler/0.1");
                let (offers, _) =
                    MarketplaceCrawler::new(&client, MarketplaceId::Accsmarket).crawl(0);
                (world, net, offers)
            },
            |(world, net, offers)| {
                black_box(evaluate_referral_monitoring(&world, &net, &offers, 1_000, 250, 15))
            },
        )
    });

    group.bench_function("growth_indicator_4_thresholds", |b| {
        b.iter_with_setup(
            || World::generate(WorldParams { seed: 16, scale: BENCH_SCALE / 2.0 }),
            |world| {
                black_box(evaluate_growth_indicator(
                    &world,
                    &[0.05, 0.2, 0.5, 2.0],
                    180,
                    16,
                ))
            },
        )
    });
    group.finish();
}

criterion_group!(benches, bench_indicators);
criterion_main!(benches);
