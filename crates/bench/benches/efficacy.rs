//! Table 8 — moderation sweeps and the efficacy audit, plus a capacity
//! what-if sweep (what would §8 look like if every platform moderated at
//! TikTok's rate?).

use acctrade_bench::BENCH_SCALE;
use acctrade_core::efficacy;
use acctrade_crawler::resolve::ProfileResolver;
use acctrade_net::client::Client;
use acctrade_net::sim::SimNet;
use acctrade_social::moderation::ModerationEngine;
use acctrade_social::platform::{Platform, ALL_PLATFORMS};
use acctrade_workload::world::{World, WorldParams};
use foundation::bench::{criterion_group, criterion_main, BenchmarkId, Criterion};
use foundation::rng::SeedableRng;
use foundation::rng::ChaCha8Rng;
use std::hint::black_box;

fn bench_efficacy(c: &mut Criterion) {
    // Moderation sweep cost on one platform store.
    c.bench_function("table8_moderation_sweep", |b| {
        b.iter_with_setup(
            || World::generate(WorldParams { seed: 5, scale: BENCH_SCALE }),
            |world| {
                let engine = ModerationEngine::calibrated(Platform::TikTok);
                let mut rng = ChaCha8Rng::seed_from_u64(5);
                let store = &world.stores[&Platform::TikTok];
                black_box(engine.sweep(&mut store.write(), 1_717_200_000, &mut rng))
            },
        )
    });

    // Full audit: moderate + re-query everything + analyze.
    let mut group = c.benchmark_group("table8_requery_audit");
    group.sample_size(10);
    group.bench_function("audit", |b| {
        b.iter_with_setup(
            || {
                let mut world = World::generate(WorldParams { seed: 6, scale: BENCH_SCALE });
                let net = SimNet::new(6);
                world.deploy(&net);
                world.run_moderation(net.clock().now_unix());
                let handles: Vec<(Platform, String)> = world
                    .stores
                    .iter()
                    .flat_map(|(p, s)| {
                        s.read()
                            .accounts_sorted()
                            .into_iter()
                            .map(|a| (*p, a.handle.clone()))
                            .collect::<Vec<_>>()
                    })
                    .collect();
                (net, handles)
            },
            |(net, handles)| {
                let client = Client::new(&net, "audit");
                let resolver = ProfileResolver::new(&client);
                let requery: Vec<_> = handles
                    .iter()
                    .map(|(p, h)| resolver.resolve(*p, h))
                    .collect();
                black_box(efficacy::analyze(&requery))
            },
        )
    });
    group.finish();

    // What-if sweep: uniform capacity across platforms.
    let mut group = c.benchmark_group("whatif_capacity");
    group.sample_size(10);
    for capacity in [0.05f64, 0.2, 0.48] {
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{capacity:.2}")),
            &capacity,
            |b, &capacity| {
                b.iter_with_setup(
                    || World::generate(WorldParams { seed: 7, scale: BENCH_SCALE / 2.0 }),
                    |world| {
                        let mut rng = ChaCha8Rng::seed_from_u64(7);
                        let mut inactive = 0usize;
                        for p in ALL_PLATFORMS {
                            let engine = ModerationEngine::with_capacity(p, capacity);
                            let store = &world.stores[&p];
                            let r = engine.sweep(&mut store.write(), 1_717_200_000, &mut rng);
                            inactive += r.total_inactive();
                        }
                        black_box(inactive)
                    },
                )
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_efficacy);
criterion_main!(benches);
