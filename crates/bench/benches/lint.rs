//! The conformance analyzer itself — scanner throughput and the cost of
//! a full workspace pass (what gate 6 of `ci.sh` pays, twice).

use conformance::lexer::tokenize;
use foundation::bench::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use std::path::Path;

fn workspace_root() -> std::path::PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("../..").canonicalize().expect("repo root")
}

fn bench_lint(c: &mut Criterion) {
    let root = workspace_root();

    // A corpus that exercises every lexer mode: the analyzer's own rule
    // engine (annotation comments, cfg-test regions) plus the property
    // harness (raw strings, escapes, pattern literals).
    let mut corpus = String::new();
    for rel in ["crates/conformance/src/rules.rs", "crates/foundation/src/check.rs"] {
        corpus.push_str(&std::fs::read_to_string(root.join(rel)).expect("corpus file"));
    }
    let tokens = tokenize(&corpus).len();
    eprintln!("[lint] corpus={} bytes, {tokens} tokens", corpus.len());

    c.bench_function("scanner_tokenize_corpus", |b| {
        b.iter(|| tokenize(black_box(&corpus)))
    });

    let report = conformance::run(&root).expect("full pass");
    eprintln!(
        "[lint] full pass: {} files, {} manifests, {} findings, {} suppressed",
        report.files_scanned,
        report.manifests_scanned,
        report.findings.len(),
        report.suppressed
    );

    let mut group = c.benchmark_group("full_pass");
    group.sample_size(10);
    group.bench_function("workspace_lint", |b| {
        b.iter(|| conformance::run(black_box(&root)).expect("full pass"))
    });
    group.finish();

    // The graph-resolution pass in isolation: every source resolved to
    // `FileFacts` and the manifest DAG rebuilt — the architecture
    // check's input, with the rule engine and I/O factored out.
    let ws = conformance::workspace::discover(&root).expect("workspace");
    let sources: Vec<String> = ws
        .sources
        .iter()
        .map(|f| std::fs::read_to_string(ws.abs(&f.rel)).expect("source"))
        .collect();
    let manifests: Vec<String> = ws
        .manifests
        .iter()
        .map(|m| std::fs::read_to_string(ws.abs(m)).expect("manifest"))
        .collect();
    eprintln!(
        "[lint] graph-resolution input: {} sources, {} manifests",
        sources.len(),
        manifests.len()
    );

    let mut group = c.benchmark_group("graph_resolution");
    group.sample_size(10);
    group.bench_function("resolve_workspace", |b| {
        b.iter(|| {
            sources
                .iter()
                .map(|s| conformance::resolve::resolve_file(black_box(s)).idents.len())
                .sum::<usize>()
        })
    });
    group.bench_function("manifest_dag", |b| {
        b.iter(|| {
            let infos: Vec<_> = ws
                .manifests
                .iter()
                .zip(&manifests)
                .map(|(rel, text)| conformance::arch::parse_manifest(rel, black_box(text)))
                .collect();
            conformance::arch::current_graph(&infos).crates.len()
        })
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_lint
}
criterion_main!(benches);
