//! Tables 1–3, Figure 3, and the §4.1 statistics — marketplace anatomy.
//!
//! Measures the analysis stage on a shared crawled dataset; the printed
//! summary lines double as a sanity check that the regenerated rows have
//! the paper's shape.

use acctrade_bench::shared_report;
use acctrade_core::anatomy;
use foundation::bench::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench_anatomy(c: &mut Criterion) {
    let report = shared_report();
    let offers = &report.dataset.offers;
    eprintln!(
        "[anatomy] offers={} sellers={} total=${:.0}",
        offers.len(),
        report.anatomy.total_sellers,
        report.anatomy.price_total_usd
    );

    c.bench_function("table1_marketplace_rollup", |b| {
        b.iter(|| anatomy::table1(black_box(offers)))
    });
    c.bench_function("section4_1_anatomy_stats", |b| {
        b.iter(|| anatomy::anatomy_stats(black_box(offers)))
    });
    c.bench_function("table3_payment_matrix", |b| b.iter(anatomy::table3));
    c.bench_function("figure3_price_outlier", |b| {
        b.iter(|| anatomy::figure3_outlier(black_box(offers)))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_anatomy
}
criterion_main!(benches);
