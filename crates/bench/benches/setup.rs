//! Table 4, Figure 4, and the §5 statistics — account setup analysis.

use acctrade_bench::shared_report;
use acctrade_core::setup;
use foundation::bench::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench_setup(c: &mut Criterion) {
    let report = shared_report();
    let profiles = &report.dataset.profiles;
    eprintln!(
        "[setup] profiles={} pre2020={:.2} last3.5y={:.2}",
        profiles.len(),
        report.creation.pre_2020,
        report.creation.last_3_5_years
    );

    c.bench_function("table4_follower_distribution", |b| {
        b.iter(|| setup::table4(black_box(profiles)))
    });
    c.bench_function("figure4_creation_cdf", |b| {
        b.iter(|| setup::creation_cdf(black_box(profiles)))
    });
    c.bench_function("section5_setup_stats", |b| {
        b.iter(|| setup::setup_stats(black_box(profiles)))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_setup
}
criterion_main!(benches);
