//! Economy benches: full-scenario simulation throughput (events/sec
//! across a campaign's worth of virtual time), ledger replay (what the
//! resume integrity gate and every analysis pay per event), and the
//! event stream's JSON round-trip (the WAL persistence floor). Results
//! land in `BENCH_report.json` with every other bench.

use acctrade_workload::world::{World, WorldParams};
use economy::{stream_digest, EconomyConfig, EconomySim, Ledger};
use foundation::bench::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

const SEED: u64 = 2024;
const SCALE: f64 = 0.01;
const T0: i64 = 1_706_745_600; // 2024-02-01, the campaign's start
const STEPS: i64 = 4;
const STEP_S: i64 = 15 * 86_400;

/// Prime a fresh world + simulator pair (the per-iteration setup).
fn primed() -> (World, EconomySim) {
    let mut world = World::generate(WorldParams { seed: SEED, scale: SCALE });
    let cfg = EconomyConfig::scenario("all").expect("known scenario");
    let mut sim = EconomySim::new(SEED, SCALE, cfg);
    sim.prime(&mut world, T0);
    (world, sim)
}

/// Run the campaign's step schedule to completion, returning the sim.
fn run_campaign(mut world: World, mut sim: EconomySim) -> EconomySim {
    for step in 1..=STEPS {
        let at = T0 + step * STEP_S;
        world.step_iteration(at);
        sim.advance_to(&mut world, at);
    }
    sim
}

fn bench_economy(c: &mut Criterion) {
    let mut group = c.benchmark_group("economy");
    group.sample_size(10);

    // Corpus for the replay/serde benches: one full scenario run.
    let (world, sim) = primed();
    let sim = run_campaign(world, sim);
    let events = sim.events().to_vec();
    eprintln!(
        "[economy] corpus: {} events over {} virtual days (digest {})",
        events.len(),
        STEPS * STEP_S / 86_400,
        stream_digest(&events)
    );

    // The three engines end to end: escrow orders, pricing sweeps, and
    // bot inventory across a campaign's worth of virtual time.
    group.bench_function("scenario_all_campaign", |b| {
        b.iter_with_setup(primed, |(world, sim)| {
            let sim = run_campaign(world, sim);
            black_box(sim.events().len())
        })
    });

    // Ledger replay: the per-event price of the resume integrity gate
    // and of every E1–E3 analysis.
    group.bench_function("ledger_replay", |b| {
        b.iter(|| {
            let ledger = Ledger::replay(black_box(&events)).expect("stream replays");
            black_box(ledger.events_replayed)
        })
    });

    // The WAL persistence floor: serialize every event to its JSON line
    // and parse it back.
    group.bench_function("event_stream_roundtrip", |b| {
        b.iter(|| {
            let mut parsed = 0usize;
            for event in &events {
                let line = event.to_json_line();
                let back = economy::EconomyEvent::parse(&line).expect("line parses");
                parsed += usize::from(back == *event);
            }
            black_box(parsed)
        })
    });

    group.finish();
}

criterion_group!(benches, bench_economy);
criterion_main!(benches);
