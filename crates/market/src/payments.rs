//! Payment methods and the Table 3 marketplace matrix.

use foundation::json_codec_enum;

/// A payment method observed across the 11 marketplaces (Table 3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum PaymentMethod {
    // Traditional
    /// Visa.
    Visa,
    /// Pay direkt.
    PayDirekt,
    /// Google Pay backed Visa.
    GPayVisa,
    /// DLocal payment gateway.
    DLocal,
    /// Appota-issued Visa.
    AppotaVisa,
    // Prepaid vouchers
    /// NeoSurf prepaid vouchers.
    NeoSurf,
    // Crypto
    /// Bitcoin.
    Btc,
    /// Ethereum.
    Eth,
    /// Lite coin.
    LiteCoin,
    /// Tether.
    Tether,
    /// Binance Coin.
    Bnb,
    /// Matic.
    Matic,
    /// Dash.
    Dash,
    // Exchanges
    /// Coinbase.
    Coinbase,
    /// Air wallex.
    AirWallex,
    // Digital wallets
    /// Pay pal.
    PayPal,
    /// Trustly.
    Trustly,
    /// Skrill.
    Skrill,
    /// We chat.
    WeChat,
    /// Ali pay.
    AliPay,
    /// Payssion.
    Payssion,
    // Escrow-based
    /// Trustap.
    Trustap,
    /// Payer.
    Payer,
    /// The marketplace does not disclose payment methods.
    Unknown,
}

json_codec_enum! {
    PaymentMethod {
        Visa, PayDirekt, GPayVisa, DLocal, AppotaVisa, NeoSurf, Btc, Eth,
        LiteCoin, Tether, Bnb, Matic, Dash, Coinbase, AirWallex, PayPal,
        Trustly, Skrill, WeChat, AliPay, Payssion, Trustap, Payer, Unknown,
    }
}

/// Table 3's row groups.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum PaymentCategory {
    /// Traditional.
    Traditional,
    /// Prepaid vouchers.
    PrepaidVouchers,
    /// Crypto.
    Crypto,
    /// Exchanges.
    Exchanges,
    /// Digital wallets.
    DigitalWallets,
    /// Escrow based.
    EscrowBased,
    /// Unknown.
    Unknown,
}

impl PaymentCategory {
    /// Category label as printed in Table 3.
    pub fn label(self) -> &'static str {
        match self {
            PaymentCategory::Traditional => "Traditional",
            PaymentCategory::PrepaidVouchers => "Prepaid Vouchers",
            PaymentCategory::Crypto => "Crypto",
            PaymentCategory::Exchanges => "Exchanges",
            PaymentCategory::DigitalWallets => "Digital Wallets",
            PaymentCategory::EscrowBased => "Escrow-Based",
            PaymentCategory::Unknown => "Unknown",
        }
    }

    /// All categories in Table 3 order.
    pub fn all() -> [PaymentCategory; 7] {
        [
            PaymentCategory::Traditional,
            PaymentCategory::PrepaidVouchers,
            PaymentCategory::Crypto,
            PaymentCategory::Exchanges,
            PaymentCategory::DigitalWallets,
            PaymentCategory::EscrowBased,
            PaymentCategory::Unknown,
        ]
    }
}

impl PaymentMethod {
    /// The method's Table 3 row group.
    pub fn category(self) -> PaymentCategory {
        use PaymentMethod::*;
        match self {
            Visa | PayDirekt | GPayVisa | DLocal | AppotaVisa => PaymentCategory::Traditional,
            NeoSurf => PaymentCategory::PrepaidVouchers,
            Btc | Eth | LiteCoin | Tether | Bnb | Matic | Dash => PaymentCategory::Crypto,
            Coinbase | AirWallex => PaymentCategory::Exchanges,
            PayPal | Trustly | Skrill | WeChat | AliPay | Payssion => {
                PaymentCategory::DigitalWallets
            }
            Trustap | Payer => PaymentCategory::EscrowBased,
            Unknown => PaymentCategory::Unknown,
        }
    }

    /// Method label as printed in Table 3.
    pub fn label(self) -> &'static str {
        use PaymentMethod::*;
        match self {
            Visa => "Visa",
            PayDirekt => "PayDirekt",
            GPayVisa => "GPay Visa",
            DLocal => "DLocal",
            AppotaVisa => "Appota Visa",
            NeoSurf => "NeoSurf",
            Btc => "BTC",
            Eth => "ETH",
            LiteCoin => "LiteCoin",
            Tether => "Tether",
            Bnb => "BNB",
            Matic => "Matic",
            Dash => "Dash",
            Coinbase => "Coinbase",
            AirWallex => "AirWallex",
            PayPal => "PayPal",
            Trustly => "Trustly",
            Skrill => "Skrill",
            WeChat => "WeChat",
            AliPay => "AliPay",
            Payssion => "Payssion",
            Trustap => "Trustap",
            Payer => "Payer",
            Unknown => "Unknown",
        }
    }

    /// Does the method give the *buyer* meaningful recourse (refunds /
    /// chargebacks / escrow)? Appendix A's security analysis.
    pub fn has_buyer_protection(self) -> bool {
        use PaymentMethod::*;
        matches!(self, PayPal | Skrill | Trustly | Trustap | Payer | Visa | GPayVisa)
    }

    /// Are payments effectively irreversible (Appendix A: "Risk of
    /// Irreversible Payments")?
    pub fn is_irreversible(self) -> bool {
        self.category() == PaymentCategory::Crypto
            || matches!(self, PaymentMethod::NeoSurf)
    }

    /// All concrete methods (excluding [`PaymentMethod::Unknown`]) in
    /// Table 3 order.
    pub fn all_known() -> Vec<PaymentMethod> {
        use PaymentMethod::*;
        vec![
            Visa, PayDirekt, GPayVisa, DLocal, AppotaVisa, NeoSurf, Btc, Eth, LiteCoin, Tether,
            Bnb, Matic, Dash, Coinbase, AirWallex, PayPal, Trustly, Skrill, WeChat, AliPay,
            Payssion, Trustap, Payer,
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_method_has_a_category() {
        for m in PaymentMethod::all_known() {
            assert_ne!(m.category(), PaymentCategory::Unknown, "{m:?}");
        }
        assert_eq!(PaymentMethod::Unknown.category(), PaymentCategory::Unknown);
    }

    #[test]
    fn crypto_is_irreversible_wallets_protected() {
        assert!(PaymentMethod::Btc.is_irreversible());
        assert!(PaymentMethod::Tether.is_irreversible());
        assert!(!PaymentMethod::PayPal.is_irreversible());
        assert!(PaymentMethod::PayPal.has_buyer_protection());
        assert!(PaymentMethod::Trustap.has_buyer_protection());
        assert!(!PaymentMethod::Btc.has_buyer_protection());
    }

    #[test]
    fn labels_are_unique() {
        let mut labels: Vec<&str> = PaymentMethod::all_known().iter().map(|m| m.label()).collect();
        let n = labels.len();
        labels.sort();
        labels.dedup();
        assert_eq!(labels.len(), n);
    }

    #[test]
    fn table3_groups_cover_all_methods() {
        // Every known method falls in one of the 6 non-unknown groups.
        let groups = PaymentCategory::all();
        for m in PaymentMethod::all_known() {
            assert!(groups.contains(&m.category()));
        }
    }
}
