#![warn(missing_docs)]

//! # acctrade-market
//!
//! The marketplaces the paper measures: **11 public marketplaces**
//! (Table 1) serving HTML listing pages on the clearnet, and **8
//! underground forums** (§4.2) reachable only over the simulated Tor
//! overlay.
//!
//! * [`config`] — the eleven public-marketplace configurations (seller
//!   visibility, payment methods, scale) and the full Table 9 channel
//!   inventory;
//! * [`listing`] / [`seller`] — the offer and seller data model;
//! * [`payments`] — payment methods and the Table 3 matrix;
//! * [`lifecycle`] — listing dynamics over the collection window
//!   (sales, delistings, replenishment — Figure 2);
//! * [`site`] — the public marketplace web application (HTML over
//!   [`acctrade_net`], per-market template dialects);
//! * [`underground`] — Tor forums with registration walls, CAPTCHAs, and
//!   link-restricted navigation (why the paper collected them manually).

pub mod config;
pub mod lifecycle;
pub mod listing;
pub mod payments;
pub mod seller;
pub mod site;
pub mod underground;

pub use config::{channel_inventory, MarketplaceConfig, MarketplaceId, ALL_MARKETPLACES};
pub use lifecycle::MarketState;
pub use listing::{Listing, ListingId, ListingState};
pub use payments::{PaymentCategory, PaymentMethod};
pub use seller::{Seller, SellerId};
pub use site::MarketplaceSite;
pub use underground::{UndergroundConfig, UndergroundForum, UndergroundId, UndergroundPost};
