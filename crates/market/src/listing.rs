//! Listings (offers) on public marketplaces.

use crate::config::MarketplaceId;
use crate::seller::SellerId;
use acctrade_social::platform::Platform;
use foundation::{json_codec_enum, json_codec_newtype, json_codec_struct};

/// Marketplace-scoped listing id.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ListingId(pub u64);

/// Lifecycle state of a listing (Figure 2's active/offline dynamics).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ListingState {
    /// Visible and purchasable.
    Active,
    /// Went offline after a (presumed) successful sale.
    Sold,
    /// Taken offline by the seller without a sale.
    Delisted,
}

/// Monetization details some sellers disclose (§4.1 "Account
/// Monetization": 164 accounts report $1–$922/month).
#[derive(Debug, Clone, PartialEq)]
pub struct Monetization {
    /// Claimed monthly revenue in USD.
    pub monthly_revenue_usd: f64,
    /// Income-source narrative ("generic ad-based revenue", "Google
    /// AdSense", ...).
    pub income_source: String,
}

/// One account-for-sale offer.
#[derive(Debug, Clone, PartialEq)]
pub struct Listing {
    /// Id.
    pub id: ListingId,
    /// Marketplace.
    pub marketplace: MarketplaceId,
    /// Platform.
    pub platform: Platform,
    /// Seller.
    pub seller: SellerId,
    /// Offer title shown on the listing page.
    pub title: String,
    /// Optional long description (§4.1: 63% of listings carry one).
    pub description: Option<String>,
    /// Advertised price in USD.
    pub price_usd: f64,
    /// Marketplace category label (§4.1: 212 unique categories; 22% of
    /// listings have none).
    pub category: Option<String>,
    /// Follower count *claimed in the ad* (§4.1: 40% of listings show
    /// one).
    pub claimed_followers: Option<u64>,
    /// Whether the ad claims the account is platform-verified (§4.1: 185
    /// listings, all YouTube, none with profile links).
    pub claims_verified: bool,
    /// Claimed monetization, when disclosed.
    pub monetization: Option<Monetization>,
    /// Link to the account's public profile — present on only ~29% of
    /// listings; the paper's "visible accounts".
    pub profile_link: Option<String>,
    /// The linked account's handle (derivable from `profile_link`; stored
    /// for convenience).
    pub linked_handle: Option<String>,
    /// Unix seconds the listing was posted.
    pub listed_unix: i64,
    /// State.
    pub state: ListingState,
    /// Unix seconds the listing left the market (sold/delisted), if it
    /// did.
    pub closed_unix: Option<i64>,
}

impl Listing {
    /// A minimal active listing; generators fill the rest.
    pub fn new(
        id: ListingId,
        marketplace: MarketplaceId,
        platform: Platform,
        seller: SellerId,
        price_usd: f64,
    ) -> Listing {
        Listing {
            id,
            marketplace,
            platform,
            seller,
            title: String::new(),
            description: None,
            price_usd,
            category: None,
            claimed_followers: None,
            claims_verified: false,
            monetization: None,
            profile_link: None,
            linked_handle: None,
            listed_unix: 0,
            state: ListingState::Active,
            closed_unix: None,
        }
    }

    /// Is the listing visible on the marketplace right now?
    pub fn is_active(&self) -> bool {
        self.state == ListingState::Active
    }

    /// Does the listing link a visible social profile (the paper's 29%
    /// subset)?
    pub fn has_visible_profile(&self) -> bool {
        self.profile_link.is_some()
    }

    /// Offer page path on the marketplace site.
    pub fn offer_path(&self) -> String {
        format!("/offer/{}", self.id.0)
    }

    /// Close the listing at `now_unix`.
    pub fn close(&mut self, state: ListingState, now_unix: i64) {
        debug_assert!(state != ListingState::Active, "close requires a terminal state");
        self.state = state;
        self.closed_unix = Some(now_unix);
    }
}

json_codec_newtype!(ListingId);

json_codec_enum! {
    ListingState { Active, Sold, Delisted }
}

json_codec_struct! {
    Monetization { monthly_revenue_usd, income_source }
    Listing {
        id, marketplace, platform, seller, title, description, price_usd,
        category, claimed_followers, claims_verified, monetization,
        profile_link, linked_handle, listed_unix, state, closed_unix,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Listing {
        let mut l = Listing::new(
            ListingId(9),
            MarketplaceId::FameSwap,
            Platform::Instagram,
            SellerId(2),
            298.0,
        );
        l.title = "IG fashion page, 27k real followers".into();
        l.listed_unix = 100;
        l
    }

    #[test]
    fn lifecycle() {
        let mut l = sample();
        assert!(l.is_active());
        l.close(ListingState::Sold, 500);
        assert!(!l.is_active());
        assert_eq!(l.closed_unix, Some(500));
        assert_eq!(l.state, ListingState::Sold);
    }

    #[test]
    fn offer_path_format() {
        assert_eq!(sample().offer_path(), "/offer/9");
    }

    #[test]
    fn visibility_flag() {
        let mut l = sample();
        assert!(!l.has_visible_profile());
        l.profile_link = Some("http://instagram.example/fashion.page".into());
        assert!(l.has_visible_profile());
    }

    #[test]
    fn serde_roundtrip() {
        let mut l = sample();
        l.monetization = Some(Monetization {
            monthly_revenue_usd: 136.0,
            income_source: "Google AdSense".into(),
        });
        let back: Listing = foundation::json::from_str(&foundation::json::to_string(&l)).unwrap();
        assert_eq!(l, back);
    }
}
