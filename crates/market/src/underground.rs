//! Underground (dark-web) marketplaces — §4.2.
//!
//! The paper inspected eight onion markets; two (ARES Market, MGM Grand)
//! had no accounts for sale, leaving six for analysis. All "required user
//! registration and implemented complex, site-specific, non-standard
//! CAPTCHAs", and "attempts to access pages not linked within the current
//! page resulted in blocks" — which is why the authors collected these
//! markets *manually*.
//!
//! [`UndergroundForum`] reproduces all three frictions:
//!
//! * reachable only over the Tor overlay (`.onion` host);
//! * a CAPTCHA-gated registration wall issuing a session cookie;
//! * link-restricted navigation: a session may only fetch paths that were
//!   linked from a page it has already seen (or found via `/search`).

use acctrade_html::dom::Builder;
use acctrade_net::captcha::{CaptchaGate, CaptchaKind, Challenge};
use acctrade_net::client::{
    captcha_kind_header_value, request_token, CAPTCHA_KIND_HEADER, CAPTCHA_NONCE_HEADER,
};
use acctrade_net::http::{Request, Response, Status};
use acctrade_net::server::{RequestCtx, Service};
use acctrade_net::tor::onion_address;
use acctrade_social::platform::Platform;
use foundation::sync::Mutex;
use std::collections::{HashMap, HashSet};

/// The eight inspected underground markets.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum UndergroundId {
    /// Dark matter.
    DarkMatter,
    /// Kerberos.
    Kerberos,
    /// Nexus.
    Nexus,
    /// Torzon market.
    TorzonMarket,
    /// We the north.
    WeTheNorth,
    /// Black pyramid.
    BlackPyramid,
    /// Ares market.
    AresMarket,
    /// Mgm grand.
    MgmGrand,
}

/// All underground markets in §4.2 order.
pub const ALL_UNDERGROUND: [UndergroundId; 8] = [
    UndergroundId::DarkMatter,
    UndergroundId::Kerberos,
    UndergroundId::Nexus,
    UndergroundId::TorzonMarket,
    UndergroundId::WeTheNorth,
    UndergroundId::BlackPyramid,
    UndergroundId::AresMarket,
    UndergroundId::MgmGrand,
];

/// Static configuration of one underground market.
#[derive(Debug, Clone)]
pub struct UndergroundConfig {
    /// Id.
    pub id: UndergroundId,
    /// Name.
    pub name: &'static str,
    /// Deterministic v3 onion address.
    pub host: String,
    /// Does the market currently list social media accounts? (ARES and
    /// MGM Grand do not — §4.2.)
    pub sells_accounts: bool,
    /// CAPTCHA family at the registration wall.
    pub captcha: CaptchaKind,
    /// Platforms this market's listings cover.
    pub platforms: &'static [Platform],
    /// Account-sale posts observed in the paper.
    pub paper_posts: usize,
    /// Distinct sellers behind those posts.
    pub paper_sellers: usize,
}

impl UndergroundId {
    /// The market's configuration.
    pub fn config(self) -> UndergroundConfig {
        use UndergroundId::*;
        let (name, seed, sells, captcha, platforms, posts, sellers): (
            &'static str,
            u64,
            bool,
            CaptchaKind,
            &'static [Platform],
            usize,
            usize,
        ) = match self {
            DarkMatter => (
                "Dark Matter",
                0xDA2D,
                true,
                CaptchaKind::SitePuzzle,
                &[Platform::YouTube, Platform::TikTok, Platform::X],
                5,
                3,
            ),
            Kerberos => (
                "Kerberos",
                0xCE4B,
                true,
                CaptchaKind::ImageGrid,
                &[Platform::TikTok, Platform::X],
                2,
                2,
            ),
            Nexus => (
                "Nexus",
                0x4E05,
                true,
                CaptchaKind::SitePuzzle,
                &[Platform::Instagram, Platform::X, Platform::TikTok],
                37,
                4,
            ),
            TorzonMarket => (
                "Torzon Market",
                0x7042,
                true,
                CaptchaKind::DistortedText,
                &[Platform::Instagram, Platform::TikTok, Platform::YouTube],
                4,
                2,
            ),
            WeTheNorth => (
                "We The North",
                0x3707,
                true,
                CaptchaKind::SitePuzzle,
                &[Platform::TikTok],
                15,
                1,
            ),
            BlackPyramid => (
                "Black Pyramid",
                0xB1AC,
                true,
                CaptchaKind::ImageGrid,
                &[Platform::YouTube],
                2,
                2,
            ),
            AresMarket => (
                "ARES Market",
                0xA4E5,
                false,
                CaptchaKind::SitePuzzle,
                &[],
                0,
                0,
            ),
            MgmGrand => ("MGM Grand", 0x3636, false, CaptchaKind::ImageGrid, &[], 0, 0),
        };
        UndergroundConfig {
            id: self,
            name,
            host: onion_address(seed),
            sells_accounts: sells,
            captcha,
            platforms,
            paper_posts: posts,
            paper_sellers: sellers,
        }
    }

    /// Display name.
    pub fn name(self) -> &'static str {
        self.config().name
    }
}

/// One forum post advertising accounts.
#[derive(Debug, Clone, PartialEq)]
pub struct UndergroundPost {
    /// Id.
    pub id: u64,
    /// Market.
    pub market: UndergroundId,
    /// Author.
    pub author: String,
    /// Title.
    pub title: String,
    /// Body text — §4.2's similarity analysis runs on this.
    pub body: String,
    /// Platform.
    pub platform: Platform,
    /// Listing price; underground pricing "can be unclear when purchasing
    /// in bulk".
    pub price_usd: Option<f64>,
    /// Accounts in the bundle (bulk sales).
    pub quantity: u32,
    /// Publication date — some forums omit it.
    pub published_unix: Option<i64>,
    /// Replies.
    pub replies: u32,
    /// Off-platform contact (payments are "agreed upon on a different
    /// channel").
    pub contact: String,
}

struct Session {
    /// Paths this session has been shown links to.
    allowed: HashSet<String>,
}

impl Session {
    fn new() -> Session {
        let mut allowed = HashSet::new();
        allowed.insert("/".to_string());
        allowed.insert("/register".to_string());
        allowed.insert("/search".to_string());
        Session { allowed }
    }
}

/// The forum web application for one underground market.
pub struct UndergroundForum {
    config: UndergroundConfig,
    posts: Vec<UndergroundPost>,
    gate: Mutex<CaptchaGate>,
    issued: Mutex<Vec<Challenge>>,
    sessions: Mutex<HashMap<String, Session>>,
    next_session: Mutex<u64>,
    page_size: usize,
}

impl UndergroundForum {
    /// Build a forum from its config and post inventory.
    pub fn new(id: UndergroundId, posts: Vec<UndergroundPost>) -> UndergroundForum {
        let config = id.config();
        assert!(
            posts.iter().all(|p| p.market == id),
            "posts must belong to this market"
        );
        let gate = CaptchaGate::new(config.captcha, 0x6A7E ^ id as u64);
        UndergroundForum {
            config,
            posts,
            gate: Mutex::new(gate),
            issued: Mutex::new(Vec::new()),
            sessions: Mutex::new(HashMap::new()),
            next_session: Mutex::new(1),
            page_size: 10,
        }
    }

    /// The market's configuration.
    pub fn config(&self) -> &UndergroundConfig {
        &self.config
    }

    /// Posts on this forum (ground truth; tests and the workload use it).
    pub fn posts(&self) -> &[UndergroundPost] {
        &self.posts
    }

    fn session_of(&self, req: &Request) -> Option<String> {
        let cookie = req.headers.get("cookie")?;
        cookie
            .split(';')
            .filter_map(|p| p.trim().split_once('='))
            .find(|(k, _)| *k == "sid")
            .map(|(_, v)| v.to_string())
    }

    fn challenge_response(&self) -> Response {
        let ch = self.gate.lock().issue();
        let resp = Response::status(Status::Unauthorized)
            .with_header(CAPTCHA_KIND_HEADER, captcha_kind_header_value(ch.kind))
            .with_header(CAPTCHA_NONCE_HEADER, ch.nonce.to_string())
            .with_text("solve the challenge to register");
        self.issued.lock().push(ch);
        resp
    }

    fn register(&self, req: &Request) -> Response {
        if let Some(token) = request_token(req) {
            let ok = {
                let gate = self.gate.lock();
                self.issued.lock().iter().any(|ch| gate.verify(ch, token))
            };
            if ok {
                let sid = {
                    let mut n = self.next_session.lock();
                    *n += 1;
                    format!("{:016x}", acctrade_net::captcha::splitmix64(*n))
                };
                self.sessions.lock().insert(sid.clone(), Session::new());
                return Response::ok()
                    .with_header("set-cookie", format!("sid={sid}; Path=/"))
                    .with_html("<html><body>welcome to the market</body></html>");
            }
        }
        self.challenge_response()
    }

    /// Record all paths linked from a page into the session's allowed set,
    /// then return the page.
    fn serve_linking(&self, sid: &str, html: String, linked: Vec<String>) -> Response {
        if let Some(session) = self.sessions.lock().get_mut(sid) {
            for path in linked {
                session.allowed.insert(path);
            }
        }
        Response::ok().with_html(html)
    }

    fn index(&self, sid: &str) -> Response {
        let mut b = Builder::new();
        let mut linked = Vec::new();
        b.open("html").open("body");
        b.leaf("h1", self.config.name);
        b.open("ul").attr("class", "sections");
        for section in ["accounts", "social-media", "digital-goods"] {
            let path = format!("/section/{section}");
            b.open("li");
            b.open("a").attr("href", path.clone()).text(section).close();
            b.close();
            linked.push(path);
        }
        b.close().close().close();
        self.serve_linking(sid, b.finish().render(), linked)
    }

    fn section_posts(&self, section: &str) -> Vec<&UndergroundPost> {
        match section {
            // Both dedicated sections list the account posts (forums file
            // them inconsistently; the paper browsed both kinds).
            "accounts" | "social-media" => self.posts.iter().collect(),
            _ => Vec::new(),
        }
    }

    fn section(&self, sid: &str, section: &str, page: usize) -> Response {
        let posts = self.section_posts(section);
        let total_pages = posts.len().div_ceil(self.page_size).max(1);
        if page >= total_pages && page != 0 {
            return Response::not_found("no such page");
        }
        let slice = posts.iter().skip(page * self.page_size).take(self.page_size);
        let mut b = Builder::new();
        let mut linked = Vec::new();
        b.open("html").open("body");
        b.leaf("h2", &format!("{section} — page {}", page + 1));
        b.open("ul").attr("class", "threads");
        for p in slice {
            let path = format!("/thread/{}", p.id);
            b.open("li");
            b.open("a").attr("href", path.clone()).text(&p.title).close();
            b.open("span").attr("class", "author").text(&p.author).close();
            b.close();
            linked.push(path);
        }
        b.close();
        if page + 1 < total_pages {
            let next = format!("/section/{section}?page={}", page + 1);
            b.open("a").attr("class", "next").attr("href", next.clone()).text("older").close();
            linked.push(format!("/section/{section}"));
        }
        b.close().close();
        self.serve_linking(sid, b.finish().render(), linked)
    }

    fn thread(&self, sid: &str, id: u64) -> Response {
        let Some(p) = self.posts.iter().find(|p| p.id == id) else {
            return Response::not_found("thread not found");
        };
        let mut b = Builder::new();
        b.open("html").open("body");
        b.open("div").attr("class", "post");
        b.open("h1").attr("class", "title").text(&p.title).close();
        b.open("span").attr("class", "author").text(&p.author).close();
        b.open("span").attr("class", "platform").text(p.platform.name()).close();
        if let Some(price) = p.price_usd {
            b.open("span").attr("class", "price").text(crate::site::format_price(price)).close();
        }
        b.open("span").attr("class", "quantity").text(p.quantity.to_string()).close();
        if let Some(ts) = p.published_unix {
            b.open("span")
                .attr("class", "date")
                .text(acctrade_net::clock::format_date(ts))
                .close();
        }
        b.open("div").attr("class", "body").text(&p.body).close();
        b.open("span").attr("class", "contact").text(&p.contact).close();
        b.open("span").attr("class", "replies").text(p.replies.to_string()).close();
        b.close().close().close();
        self.serve_linking(sid, b.finish().render(), Vec::new())
    }

    fn search(&self, sid: &str, query: &str) -> Response {
        let q = query.to_ascii_lowercase();
        let hits: Vec<&UndergroundPost> = self
            .posts
            .iter()
            .filter(|p| {
                p.title.to_ascii_lowercase().contains(&q) || p.body.to_ascii_lowercase().contains(&q)
            })
            .collect();
        let mut b = Builder::new();
        let mut linked = Vec::new();
        b.open("html").open("body");
        b.leaf("h2", &format!("search: {query}"));
        b.open("ul").attr("class", "results");
        for p in hits {
            let path = format!("/thread/{}", p.id);
            b.open("li");
            b.open("a").attr("href", path.clone()).text(&p.title).close();
            b.close();
            linked.push(path);
        }
        b.close().close().close();
        self.serve_linking(sid, b.finish().render(), linked)
    }
}

impl Service for UndergroundForum {
    fn handle(&self, req: &Request, _ctx: &RequestCtx) -> Response {
        let path = req.url.path();
        if path == "/register" {
            return self.register(req);
        }
        // Everything else requires a session.
        let Some(sid) = self.session_of(req) else {
            return self.challenge_response();
        };
        if !self.sessions.lock().contains_key(&sid) {
            return self.challenge_response();
        }
        // Link-restricted navigation.
        let allowed = self
            .sessions
            .lock()
            .get(&sid)
            .map(|s| s.allowed.contains(path))
            .unwrap_or(false);
        if !allowed {
            return Response::status(Status::Forbidden)
                .with_text("direct navigation blocked: page not linked from your session");
        }
        if path == "/" {
            return self.index(&sid);
        }
        if let Some(section) = path.strip_prefix("/section/") {
            let page = req
                .url
                .query_param("page")
                .and_then(|p| p.parse().ok())
                .unwrap_or(0usize);
            return self.section(&sid, section, page);
        }
        if let Some(id) = path.strip_prefix("/thread/").and_then(|s| s.parse::<u64>().ok()) {
            return self.thread(&sid, id);
        }
        if path == "/search" {
            let q = req.url.query_param("q").unwrap_or_default();
            return self.search(&sid, &q);
        }
        Response::not_found("no such page")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use acctrade_net::prelude::*;
    use acctrade_net::tor::TorDirectory;
    use foundation::rng::SeedableRng;
    use foundation::rng::ChaCha8Rng;
    use std::sync::Arc;

    fn sample_posts(market: UndergroundId, n: usize) -> Vec<UndergroundPost> {
        (0..n as u64)
            .map(|i| UndergroundPost {
                id: i + 1,
                market,
                author: format!("vendor{}", i % 3),
                title: format!("Selling aged TikTok account #{i}"),
                body: "Aged TikTok account, organic followers, full email access, fast delivery."
                    .to_string(),
                platform: Platform::TikTok,
                price_usd: Some(40.0),
                quantity: 1,
                published_unix: Some(1_710_000_000),
                replies: 2,
                contact: "t.me/vendor_handle".into(),
            })
            .collect()
    }

    fn setup(n_posts: usize) -> (Arc<SimNet>, String, Client) {
        let id = UndergroundId::Nexus;
        let forum = UndergroundForum::new(id, sample_posts(id, n_posts));
        let host = forum.config().host.clone();
        let net = SimNet::new(3);
        net.register(&host, forum);
        let dir = TorDirectory::default_consensus();
        let mut rng = ChaCha8Rng::seed_from_u64(8);
        let client = Client::new(&net, "tor-browser")
            .manual(11)
            .via_tor(dir.build_circuit(&mut rng));
        (net, host, client)
    }

    #[test]
    fn registration_wall_and_session() {
        let (_net, host, client) = setup(3);
        // First contact on any page: challenge.
        let resp = client.get(&format!("http://{host}/register")).unwrap();
        // Manual client solves the captcha in-flight, so we land registered.
        assert_eq!(resp.status, Status::Ok);
        assert!(resp.headers.get("set-cookie").is_some());
        // Now the index is reachable with the cookie.
        let index = client.get(&format!("http://{host}/")).unwrap();
        assert_eq!(index.status, Status::Ok);
        assert!(index.text().contains("Nexus"));
    }

    #[test]
    fn automated_clients_cannot_enter() {
        let id = UndergroundId::Kerberos;
        let forum = UndergroundForum::new(id, sample_posts(id, 1));
        let host = forum.config().host.clone();
        let net = SimNet::new(4);
        net.register(&host, forum);
        let dir = TorDirectory::default_consensus();
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        // Automated persona: rides Tor but won't solve CAPTCHAs.
        let bot = Client::new(&net, "crawler").via_tor(dir.build_circuit(&mut rng));
        let resp = bot.get(&format!("http://{host}/register")).unwrap();
        assert_eq!(resp.status, Status::Unauthorized);
        let resp = bot.get(&format!("http://{host}/")).unwrap();
        assert_eq!(resp.status, Status::Unauthorized);
    }

    #[test]
    fn direct_navigation_blocked_until_linked() {
        let (_net, host, client) = setup(3);
        client.get(&format!("http://{host}/register")).unwrap();
        // Jumping straight to a thread: blocked.
        let resp = client.get(&format!("http://{host}/thread/1")).unwrap();
        assert_eq!(resp.status, Status::Forbidden);
        // Walk the links: index -> section -> thread.
        client.get(&format!("http://{host}/")).unwrap();
        let section = client.get(&format!("http://{host}/section/accounts")).unwrap();
        assert_eq!(section.status, Status::Ok);
        let thread = client.get(&format!("http://{host}/thread/1")).unwrap();
        assert_eq!(thread.status, Status::Ok);
        assert!(thread.text().contains("aged tiktok account") || thread.text().contains("Aged TikTok account"));
    }

    #[test]
    fn section_pagination() {
        let (_net, host, client) = setup(25);
        client.get(&format!("http://{host}/register")).unwrap();
        client.get(&format!("http://{host}/")).unwrap();
        let p0 = client.get(&format!("http://{host}/section/accounts")).unwrap();
        assert!(p0.text().contains("older"));
        let p1 = client.get(&format!("http://{host}/section/accounts?page=1")).unwrap();
        assert_eq!(p1.status, Status::Ok);
        let p2 = client.get(&format!("http://{host}/section/accounts?page=2")).unwrap();
        assert_eq!(p2.status, Status::Ok);
        let p3 = client.get(&format!("http://{host}/section/accounts?page=9")).unwrap();
        assert_eq!(p3.status, Status::NotFound);
    }

    #[test]
    fn search_reveals_threads() {
        let (_net, host, client) = setup(5);
        client.get(&format!("http://{host}/register")).unwrap();
        let results = client.get(&format!("http://{host}/search?q=tiktok")).unwrap();
        assert_eq!(results.status, Status::Ok);
        assert!(results.text().contains("/thread/"));
        // Search results grant access to the found threads.
        let thread = client.get(&format!("http://{host}/thread/2")).unwrap();
        assert_eq!(thread.status, Status::Ok);
    }

    #[test]
    fn inactive_markets_have_no_posts() {
        let cfg = UndergroundId::AresMarket.config();
        assert!(!cfg.sells_accounts);
        assert_eq!(cfg.paper_posts, 0);
        // Six of eight sell accounts.
        let selling = ALL_UNDERGROUND.iter().filter(|m| m.config().sells_accounts).count();
        assert_eq!(selling, 6);
        // Paper total: 65 posts across the six.
        let total: usize = ALL_UNDERGROUND.iter().map(|m| m.config().paper_posts).sum();
        assert_eq!(total, 65);
    }

    #[test]
    fn onion_hosts_are_stable_and_distinct() {
        let mut hosts: Vec<String> = ALL_UNDERGROUND.iter().map(|m| m.config().host).collect();
        assert!(hosts.iter().all(|h| h.ends_with(".onion")));
        let n = hosts.len();
        hosts.sort();
        hosts.dedup();
        assert_eq!(hosts.len(), n);
        assert_eq!(UndergroundId::Nexus.config().host, UndergroundId::Nexus.config().host);
    }
}
