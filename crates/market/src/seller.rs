//! Sellers on public marketplaces.

use foundation::{json_codec_newtype, json_codec_struct};

/// Marketplace-scoped seller id.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SellerId(pub u64);

/// A marketplace seller profile.
///
/// §4.1: 9,949 sellers across the 11 marketplaces; 8,833 disclosed a
/// country (138 countries, US/Ethiopia/Pakistan/UK/Turkey on top); five
/// marketplaces hide seller identity entirely.
#[derive(Debug, Clone, PartialEq)]
pub struct Seller {
    /// Id.
    pub id: SellerId,
    /// Username.
    pub username: String,
    /// ISO-ish country name, when disclosed.
    pub country: Option<String>,
    /// Marketplace reputation score in [0, 5].
    pub rating: f32,
    /// Completed sales shown on the profile.
    pub completed_sales: u32,
    /// Unix seconds of marketplace registration.
    pub joined_unix: i64,
}

impl Seller {
    /// A minimal seller; generators fill the rest.
    pub fn new(id: SellerId, username: impl Into<String>) -> Seller {
        Seller {
            id,
            username: username.into(),
            country: None,
            rating: 0.0,
            completed_sales: 0,
            joined_unix: 0,
        }
    }
}

json_codec_newtype!(SellerId);

json_codec_struct! {
    Seller { id, username, country, rating, completed_sales, joined_unix }
}

/// The §4.1 top-5 seller countries, with their reported counts, used by the
/// workload generator's country prior.
pub const TOP_SELLER_COUNTRIES: &[(&str, u32)] = &[
    ("United States", 2_683),
    ("Ethiopia", 844),
    ("Pakistan", 596),
    ("United Kingdom", 382),
    ("Turkey", 366),
];

/// A pool of further countries for the long tail (the paper counts 138
/// distinct seller countries).
pub const LONG_TAIL_COUNTRIES: &[&str] = &[
    "India", "Bangladesh", "Nigeria", "Indonesia", "Brazil", "Vietnam", "Philippines", "Egypt",
    "Morocco", "Kenya", "Ukraine", "Russia", "Germany", "France", "Spain", "Italy", "Poland",
    "Romania", "Netherlands", "Canada", "Mexico", "Argentina", "Colombia", "Peru", "Chile",
    "South Africa", "Ghana", "Algeria", "Tunisia", "Jordan", "Lebanon", "Iraq", "Iran",
    "Sri Lanka", "Nepal", "Myanmar", "Thailand", "Malaysia", "Singapore", "South Korea", "Japan",
    "China", "Taiwan", "Australia", "New Zealand", "Sweden", "Norway", "Denmark", "Finland",
    "Ireland", "Portugal", "Greece", "Czechia", "Hungary", "Austria", "Switzerland", "Belgium",
    "Serbia", "Croatia", "Bulgaria", "Albania", "Georgia", "Armenia", "Azerbaijan", "Kazakhstan",
    "Uzbekistan", "Belarus", "Moldova", "Latvia", "Lithuania", "Estonia", "Israel", "Saudi Arabia",
    "United Arab Emirates", "Qatar", "Kuwait", "Oman", "Yemen", "Ecuador", "Bolivia", "Paraguay",
    "Uruguay", "Venezuela", "Guatemala", "Honduras", "Panama", "Costa Rica", "Cuba", "Jamaica",
    "Haiti", "Senegal", "Cameroon", "Ivory Coast", "Uganda", "Tanzania", "Zambia", "Zimbabwe",
    "Mozambique", "Angola", "Botswana", "Namibia", "Rwanda", "Somalia", "Sudan", "Libya",
    "Mauritius", "Madagascar", "Iceland", "Luxembourg", "Malta", "Cyprus", "Slovakia", "Slovenia",
    "North Macedonia", "Bosnia", "Montenegro", "Kosovo", "Mongolia", "Cambodia", "Laos", "Brunei",
    "Fiji", "Papua New Guinea", "Maldives", "Bhutan", "Afghanistan", "Syria", "Palestine",
    "Bahrain", "Dominican Republic", "Trinidad", "Barbados", "Bahamas", "Belize", "Nicaragua",
    "El Salvador", "Guyana", "Suriname",
];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn country_pool_supports_138_countries() {
        // Top 5 + long tail must reach the paper's 138 distinct countries.
        assert!(TOP_SELLER_COUNTRIES.len() + LONG_TAIL_COUNTRIES.len() >= 138);
    }

    #[test]
    fn us_is_top_country() {
        assert_eq!(TOP_SELLER_COUNTRIES[0].0, "United States");
        assert!(TOP_SELLER_COUNTRIES.windows(2).all(|w| w[0].1 >= w[1].1));
    }

    #[test]
    fn seller_serde_roundtrip() {
        let mut s = Seller::new(SellerId(3), "fastdeals");
        s.country = Some("Turkey".into());
        s.rating = 4.7;
        let back: Seller = foundation::json::from_str(&foundation::json::to_string(&s)).unwrap();
        assert_eq!(s, back);
    }
}
