//! Marketplace state and listing dynamics over the collection window.
//!
//! Figure 2 of the paper shows cumulative listings growing monotonically
//! while *active* listings dip and recover: sold or delisted accounts leave
//! the market and sellers replenish inventory "to maintain higher stock
//! levels and meet supply and demand needs". [`MarketState`] holds one
//! marketplace's sellers and listings and implements the churn half of that
//! dynamic; the workload generator implements replenishment by inserting
//! new listings between crawl iterations.

use crate::config::MarketplaceId;
use crate::listing::{Listing, ListingId, ListingState};
use crate::seller::{Seller, SellerId};
use acctrade_social::platform::Platform;
use foundation::rng::{Rng, RngExt};
use std::collections::HashMap;

/// Mutable state of one public marketplace.
#[derive(Debug, Clone)]
pub struct MarketState {
    id: MarketplaceId,
    sellers: HashMap<SellerId, Seller>,
    listings: HashMap<ListingId, Listing>,
    /// Listing ids in insertion order (stable pagination).
    order: Vec<ListingId>,
    next_seller: u64,
    next_listing: u64,
}

/// Churn outcome of one lifecycle step.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ChurnReport {
    /// Sold.
    pub sold: usize,
    /// Delisted.
    pub delisted: usize,
}

impl MarketState {
    /// Empty state for a marketplace.
    pub fn new(id: MarketplaceId) -> MarketState {
        MarketState {
            id,
            sellers: HashMap::new(),
            listings: HashMap::new(),
            order: Vec::new(),
            next_seller: 1,
            next_listing: 1,
        }
    }

    /// The marketplace this state belongs to.
    pub fn id(&self) -> MarketplaceId {
        self.id
    }

    /// Allocate a fresh seller id.
    pub fn next_seller_id(&mut self) -> SellerId {
        let id = SellerId(self.next_seller);
        self.next_seller += 1;
        id
    }

    /// Allocate a fresh listing id.
    pub fn next_listing_id(&mut self) -> ListingId {
        let id = ListingId(self.next_listing);
        self.next_listing += 1;
        id
    }

    /// Register a seller.
    pub fn add_seller(&mut self, seller: Seller) -> SellerId {
        let id = seller.id;
        self.sellers.insert(id, seller);
        id
    }

    /// Insert a listing.
    ///
    /// # Panics
    /// Panics if the listing's marketplace differs or its seller is
    /// unknown.
    pub fn add_listing(&mut self, listing: Listing) -> ListingId {
        assert_eq!(listing.marketplace, self.id, "marketplace mismatch");
        assert!(
            self.sellers.contains_key(&listing.seller),
            "unknown seller {:?}",
            listing.seller
        );
        let id = listing.id;
        self.order.push(id);
        self.listings.insert(id, listing);
        id
    }

    /// Look up a seller.
    pub fn seller(&self, id: SellerId) -> Option<&Seller> {
        self.sellers.get(&id)
    }

    /// Look up a listing.
    pub fn listing(&self, id: ListingId) -> Option<&Listing> {
        self.listings.get(&id)
    }

    /// Number of sellers.
    pub fn seller_count(&self) -> usize {
        self.sellers.len()
    }

    /// All listings ever posted (cumulative count — Figure 2's upper
    /// curve).
    pub fn cumulative_count(&self) -> usize {
        self.listings.len()
    }

    /// Currently active listings (Figure 2's lower curve).
    pub fn active_count(&self) -> usize {
        self.listings.values().filter(|l| l.is_active()).count()
    }

    /// Active listings for one platform, in insertion order.
    pub fn active_for_platform(&self, platform: Platform) -> Vec<&Listing> {
        self.order
            .iter()
            .filter_map(|id| self.listings.get(id))
            .filter(|l| l.is_active() && l.platform == platform)
            .collect()
    }

    /// Platforms that currently have active stock, in canonical order.
    pub fn stocked_platforms(&self) -> Vec<Platform> {
        acctrade_social::platform::ALL_PLATFORMS
            .into_iter()
            .filter(|&p| !self.active_for_platform(p).is_empty())
            .collect()
    }

    /// All listings in insertion order (cumulative view).
    pub fn listings_sorted(&self) -> Vec<&Listing> {
        self.order.iter().filter_map(|id| self.listings.get(id)).collect()
    }

    /// Mutable listing access.
    pub fn listing_mut(&mut self, id: ListingId) -> Option<&mut Listing> {
        self.listings.get_mut(&id)
    }

    /// One churn step: each active listing sells with probability
    /// `sale_prob` and is delisted with probability `delist_prob`,
    /// independently, at virtual time `now_unix`. Cheaper listings sell a
    /// little faster (demand skews to affordable accounts).
    pub fn churn<R: Rng + ?Sized>(
        &mut self,
        sale_prob: f64,
        delist_prob: f64,
        now_unix: i64,
        rng: &mut R,
    ) -> ChurnReport {
        let mut report = ChurnReport::default();
        let ids: Vec<ListingId> = self.order.clone();
        for id in ids {
            let Some(l) = self.listings.get_mut(&id) else { continue };
            if !l.is_active() {
                continue;
            }
            // Price elasticity: listings under $100 sell ~1.5x as fast;
            // five-figure listings half as fast.
            let elasticity = if l.price_usd < 100.0 {
                1.5
            } else if l.price_usd > 10_000.0 {
                0.5
            } else {
                1.0
            };
            if rng.random_bool((sale_prob * elasticity).clamp(0.0, 1.0)) {
                l.close(ListingState::Sold, now_unix);
                report.sold += 1;
            } else if rng.random_bool(delist_prob.clamp(0.0, 1.0)) {
                l.close(ListingState::Delisted, now_unix);
                report.delisted += 1;
            }
        }
        report
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use foundation::rng::SeedableRng;
    use foundation::rng::ChaCha8Rng;

    fn state_with_listings(n: usize, price: f64) -> MarketState {
        let mut s = MarketState::new(MarketplaceId::Accsmarket);
        let sid = s.next_seller_id();
        s.add_seller(Seller::new(sid, "bulkseller"));
        for _ in 0..n {
            let lid = s.next_listing_id();
            s.add_listing(Listing::new(
                lid,
                MarketplaceId::Accsmarket,
                Platform::Instagram,
                sid,
                price,
            ));
        }
        s
    }

    #[test]
    fn counts_track_churn() {
        let mut s = state_with_listings(100, 200.0);
        assert_eq!(s.cumulative_count(), 100);
        assert_eq!(s.active_count(), 100);
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let report = s.churn(0.3, 0.1, 1_000, &mut rng);
        assert!(report.sold > 0);
        assert_eq!(s.cumulative_count(), 100, "cumulative never shrinks");
        assert_eq!(s.active_count(), 100 - report.sold - report.delisted);
    }

    #[test]
    fn cheap_listings_sell_faster() {
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let mut cheap = state_with_listings(2000, 50.0);
        let mut pricey = state_with_listings(2000, 50_000.0);
        let rc = cheap.churn(0.2, 0.0, 0, &mut rng);
        let rp = pricey.churn(0.2, 0.0, 0, &mut rng);
        assert!(rc.sold as f64 > rp.sold as f64 * 2.0, "cheap={} pricey={}", rc.sold, rp.sold);
    }

    #[test]
    fn platform_filtering() {
        let mut s = state_with_listings(3, 10.0);
        let sid = SellerId(1);
        let lid = s.next_listing_id();
        s.add_listing(Listing::new(lid, MarketplaceId::Accsmarket, Platform::X, sid, 10.0));
        assert_eq!(s.active_for_platform(Platform::Instagram).len(), 3);
        assert_eq!(s.active_for_platform(Platform::X).len(), 1);
        assert_eq!(s.stocked_platforms(), vec![Platform::Instagram, Platform::X]);
    }

    #[test]
    #[should_panic(expected = "unknown seller")]
    fn listing_requires_registered_seller() {
        let mut s = MarketState::new(MarketplaceId::Z2U);
        let lid = s.next_listing_id();
        s.add_listing(Listing::new(lid, MarketplaceId::Z2U, Platform::X, SellerId(99), 1.0));
    }

    #[test]
    #[should_panic(expected = "marketplace mismatch")]
    fn listing_requires_matching_marketplace() {
        let mut s = MarketState::new(MarketplaceId::Z2U);
        let sid = s.next_seller_id();
        s.add_seller(Seller::new(sid, "x"));
        let lid = s.next_listing_id();
        s.add_listing(Listing::new(lid, MarketplaceId::MidMan, Platform::X, sid, 1.0));
    }

    #[test]
    fn zero_probabilities_are_stable() {
        let mut s = state_with_listings(50, 100.0);
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let report = s.churn(0.0, 0.0, 0, &mut rng);
        assert_eq!(report, ChurnReport::default());
        assert_eq!(s.active_count(), 50);
    }
}
