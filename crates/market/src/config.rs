//! Static configuration of the measured ecosystem: the eleven public
//! marketplaces (Tables 1 and 3) and the full trading-channel inventory
//! (Table 9).

use crate::payments::PaymentMethod;
use acctrade_social::platform::Platform;
use foundation::json_codec_enum;

/// The eleven monitored public marketplaces (Table 1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum MarketplaceId {
    /// Accsmarket.
    Accsmarket,
    /// Fame swap.
    FameSwap,
    /// Z2u.
    Z2U,
    /// Social tradia.
    SocialTradia,
    /// Insta sale.
    InstaSale,
    /// Mid man.
    MidMan,
    /// Too fame.
    TooFame,
    /// Swap socials.
    SwapSocials,
    /// Surge gram.
    SurgeGram,
    /// Buy socia.
    BuySocia,
    /// Fame seller.
    FameSeller,
}

json_codec_enum! {
    MarketplaceId {
        Accsmarket, FameSwap, Z2U, SocialTradia, InstaSale, MidMan, TooFame,
        SwapSocials, SurgeGram, BuySocia, FameSeller,
    }
}

/// All marketplaces in Table 1 order.
pub const ALL_MARKETPLACES: [MarketplaceId; 11] = [
    MarketplaceId::Accsmarket,
    MarketplaceId::FameSwap,
    MarketplaceId::Z2U,
    MarketplaceId::SocialTradia,
    MarketplaceId::InstaSale,
    MarketplaceId::MidMan,
    MarketplaceId::TooFame,
    MarketplaceId::SwapSocials,
    MarketplaceId::SurgeGram,
    MarketplaceId::BuySocia,
    MarketplaceId::FameSeller,
];

/// Static configuration of one public marketplace.
#[derive(Debug, Clone)]
pub struct MarketplaceConfig {
    /// Id.
    pub id: MarketplaceId,
    /// Display name as printed in Table 1.
    pub name: &'static str,
    /// Clearnet hostname the site is served from.
    pub host: &'static str,
    /// Seller counts from Table 1; `None` for the five marketplaces that
    /// hide seller identity.
    pub table1_sellers: Option<u32>,
    /// Advertised-account counts from Table 1.
    pub table1_accounts: u32,
    /// Payment methods from Table 3.
    pub payment_methods: &'static [PaymentMethod],
    /// Relative platform mix of this marketplace's listings — calibrated
    /// so the workload's platform marginals land near Table 2.
    pub platform_weights: &'static [(Platform, f64)],
    /// Offers per listing page (sites paginate differently).
    pub page_size: usize,
}

impl MarketplaceId {
    /// The marketplace's static configuration.
    pub fn config(self) -> &'static MarketplaceConfig {
        &MARKETPLACE_CONFIGS[self as usize]
    }

    /// Display name.
    pub fn name(self) -> &'static str {
        self.config().name
    }

    /// Hostname.
    pub fn host(self) -> &'static str {
        self.config().host
    }

    /// Does the marketplace display seller identities?
    pub fn shows_sellers(self) -> bool {
        self.config().table1_sellers.is_some()
    }
}

use MarketplaceId::*;
use PaymentMethod::*;

const MIX_GENERAL: &[(Platform, f64)] = &[
    (Platform::Instagram, 0.20),
    (Platform::YouTube, 0.22),
    (Platform::TikTok, 0.33),
    (Platform::Facebook, 0.14),
    (Platform::X, 0.11),
];

const MIX_IG_ONLY: &[(Platform, f64)] = &[(Platform::Instagram, 1.0)];

const MIX_IG_HEAVY: &[(Platform, f64)] = &[
    (Platform::Instagram, 0.60),
    (Platform::TikTok, 0.20),
    (Platform::YouTube, 0.15),
    (Platform::X, 0.05),
];

const MIX_YT_HEAVY: &[(Platform, f64)] = &[
    (Platform::YouTube, 0.42),
    (Platform::Instagram, 0.24),
    (Platform::TikTok, 0.18),
    (Platform::Facebook, 0.10),
    (Platform::X, 0.06),
];

const MIX_GAMING: &[(Platform, f64)] = &[
    (Platform::YouTube, 0.28),
    (Platform::TikTok, 0.27),
    (Platform::Facebook, 0.24),
    (Platform::X, 0.16),
    (Platform::Instagram, 0.05),
];

/// Configurations, indexed by `MarketplaceId as usize` (Table 1 order).
static MARKETPLACE_CONFIGS: [MarketplaceConfig; 11] = [
    MarketplaceConfig {
        id: Accsmarket,
        name: "Accsmarket",
        host: "accsmarket.com",
        table1_sellers: Some(2_455),
        table1_accounts: 13_665,
        payment_methods: &[Unknown],
        platform_weights: MIX_GENERAL,
        page_size: 24,
    },
    MarketplaceConfig {
        id: FameSwap,
        name: "FameSwap",
        host: "fameswap.com",
        table1_sellers: Some(6_617),
        table1_accounts: 8_833,
        payment_methods: &[Unknown],
        platform_weights: MIX_YT_HEAVY,
        page_size: 20,
    },
    MarketplaceConfig {
        id: Z2U,
        name: "Z2U",
        host: "z2u.com",
        table1_sellers: Some(240),
        table1_accounts: 6_417,
        payment_methods: &[
            Visa, PayDirekt, NeoSurf, Coinbase, AirWallex, PayPal, Trustly, Skrill, WeChat, AliPay,
        ],
        platform_weights: MIX_GAMING,
        page_size: 30,
    },
    MarketplaceConfig {
        id: SocialTradia,
        name: "SocialTradia",
        host: "socialtradia.com",
        table1_sellers: None,
        table1_accounts: 4_020,
        payment_methods: &[Eth],
        platform_weights: MIX_IG_ONLY,
        page_size: 16,
    },
    MarketplaceConfig {
        id: InstaSale,
        name: "InstaSale",
        host: "insta-sale.com",
        table1_sellers: Some(251),
        table1_accounts: 1_950,
        payment_methods: &[Unknown],
        platform_weights: MIX_IG_ONLY,
        page_size: 25,
    },
    MarketplaceConfig {
        id: MidMan,
        name: "MidMan",
        host: "mid-man.com",
        table1_sellers: Some(304),
        table1_accounts: 1_282,
        payment_methods: &[
            GPayVisa, DLocal, AppotaVisa, Btc, Eth, LiteCoin, Tether, Bnb, Matic, Dash, Payssion,
            Trustap, Payer,
        ],
        platform_weights: MIX_GENERAL,
        page_size: 20,
    },
    MarketplaceConfig {
        id: TooFame,
        name: "TooFame",
        host: "toofame.com",
        table1_sellers: None,
        table1_accounts: 695,
        payment_methods: &[Unknown],
        platform_weights: MIX_IG_HEAVY,
        page_size: 12,
    },
    MarketplaceConfig {
        id: SwapSocials,
        name: "SwapSocials",
        host: "swapsocials.com",
        table1_sellers: None,
        table1_accounts: 530,
        payment_methods: &[Btc, Eth, Matic, Coinbase, Trustap],
        platform_weights: MIX_IG_HEAVY,
        page_size: 15,
    },
    MarketplaceConfig {
        id: SurgeGram,
        name: "SurgeGram",
        host: "surgegram.com",
        table1_sellers: None,
        table1_accounts: 205,
        payment_methods: &[Visa],
        platform_weights: MIX_IG_ONLY,
        page_size: 10,
    },
    MarketplaceConfig {
        id: BuySocia,
        name: "BuySocia",
        host: "buysocia.com",
        table1_sellers: None,
        table1_accounts: 547,
        payment_methods: &[Btc, Eth],
        platform_weights: MIX_IG_HEAVY,
        page_size: 12,
    },
    MarketplaceConfig {
        id: FameSeller,
        name: "FameSeller",
        host: "fameseller.com",
        table1_sellers: Some(77),
        table1_accounts: 109,
        payment_methods: &[PayPal],
        platform_weights: MIX_GENERAL,
        page_size: 10,
    },
];

/// Table 1's total advertised accounts.
// conformance: allow(pub-hygiene) — paper anchor kept as documented API
pub const TABLE1_TOTAL_ACCOUNTS: u32 = 38_253;
/// Table 1's total sellers.
// conformance: allow(pub-hygiene) — paper anchor kept as documented API
pub const TABLE1_TOTAL_SELLERS: u32 = 9_944;
/// Fraction of advertised accounts whose listings link a visible profile
/// (§3.2: 11,457 / 38,253).
// conformance: allow(pub-hygiene) — paper anchor kept as documented API
pub const VISIBLE_PROFILE_FRACTION: f64 = 11_457.0 / 38_253.0;

// ---------------------------------------------------------------------------
// Table 9: the full channel inventory.
// ---------------------------------------------------------------------------

/// Channel category (Table 9 row groups).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChannelCategory {
    /// Public.
    Public,
    /// Underground.
    Underground,
    /// Contact.
    Contact,
}

/// Channel exchange type.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChannelType {
    /// Marketplace.
    Marketplace,
    /// Shop.
    Shop,
    /// Black hat forum.
    BlackHatForum,
    /// Email.
    Email,
    /// Telegram.
    Telegram,
    /// Whatsapp.
    Whatsapp,
    /// Discord.
    Discord,
}

/// One row of Table 9.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChannelRecord {
    /// Channel.
    pub channel: &'static str,
    /// Category.
    pub category: ChannelCategory,
    /// Channel type.
    pub channel_type: ChannelType,
    /// Source.
    pub source: &'static str,
    /// Was the channel selling accounts at inspection time?
    pub selling: bool,
    /// Were account handles publicly visible?
    pub handles_public: bool,
    /// Was the channel monitored in the study?
    pub monitored: bool,
}

macro_rules! chan {
    ($name:expr, $cat:ident, $ty:ident, $src:expr, $sell:expr, $handles:expr, $mon:expr) => {
        ChannelRecord {
            channel: $name,
            category: ChannelCategory::$cat,
            channel_type: ChannelType::$ty,
            source: $src,
            selling: $sell,
            handles_public: $handles,
            monitored: $mon,
        }
    };
}

/// The full Table 9 inventory: 49 websites (40 public + 20 underground,
/// minus duplicates the paper collapses) and 9 personal contact points.
pub fn channel_inventory() -> &'static [ChannelRecord] {
    &CHANNELS
}

static CHANNELS: [ChannelRecord; 69] = [
    // Public — monitored (the eleven of Table 1, plus listing aliases).
    chan!("accs-market.com", Public, Marketplace, "Google Search", true, true, true),
    chan!("fameswap.com", Public, Marketplace, "Google Search", true, true, true),
    chan!("www.z2u.com", Public, Marketplace, "Google Search", true, true, true),
    chan!("fameseller.com", Public, Marketplace, "Google Search", true, true, true),
    chan!("insta-sale.com/listings/", Public, Marketplace, "Google Search", true, true, true),
    chan!("accsmarket.com", Public, Shop, "Google Search", true, true, true),
    chan!("buysocia.com", Public, Shop, "Google Search", true, true, true),
    chan!("mid-man.com", Public, Shop, "Google Search", true, true, true),
    chan!("socialtradia.com", Public, Shop, "Google Search", true, true, true),
    chan!("swapsocials.com", Public, Shop, "Google Search", true, true, true),
    chan!("www.surgegram.com", Public, Shop, "Google Search", true, true, true),
    chan!("www.toofame.com", Public, Shop, "Google Search", true, true, true),
    // Public — selling but no public handles (monitored without automation).
    chan!("cracked.io", Public, Marketplace, "[34]", true, false, true),
    chan!("hackforums.net", Public, BlackHatForum, "Google Search", true, false, true),
    chan!("swapd.co", Public, Marketplace, "Google Search", true, false, true),
    // Public — selling, not monitored (crawling challenges / prerequisites).
    chan!("accszone.com", Public, Shop, "Public BH Forum", true, false, false),
    chan!("agedprofiles.com", Public, Shop, "Public BH Forum", true, false, false),
    chan!("bulkacc.com", Public, Shop, "Public BH Forum", true, false, false),
    chan!("digitalchaining.mysellix.io", Public, Shop, "Public BH Forum", true, false, false),
    chan!("discord.gg/PMJCYxCcCu", Public, Shop, "Public BH Forum", true, false, false),
    chan!("nwarlordyt.sellpass.io", Public, Shop, "Public BH Forum", true, false, false),
    chan!("famousinfluencer.com", Public, Shop, "Public BH Forum", true, false, false),
    chan!("nloaccs.com", Public, Shop, "Public BH Forum", true, false, false),
    chan!("www.smmzone24.com", Public, Shop, "Public BH Forum", true, false, false),
    chan!("acccluster.com", Public, Shop, "Google Search", true, false, false),
    chan!("accsmaster.com", Public, Shop, "Google Search", true, false, false),
    chan!("buyaccs.com", Public, Shop, "[57]", true, false, false),
    chan!("getbulkaccounts.com", Public, Shop, "[57]", true, false, false),
    chan!("bulkye.com", Public, Shop, "[57]", true, false, false),
    chan!("quickaccounts.bigcartel.com", Public, Shop, "[57]", true, false, false),
    // Public — no longer selling accounts.
    chan!("twiends.com", Public, BlackHatForum, "[55]", false, false, false),
    chan!("leakzone.net", Public, BlackHatForum, "Google Search", false, false, false),
    chan!("magicsmm.com", Public, Shop, "Public BH Forum", false, false, false),
    chan!("paneliniz.net", Public, Shop, "Public BH Forum", false, false, false),
    chan!("smmorigins.com", Public, Shop, "Public BH Forum", false, false, false),
    chan!("smmtake.com", Public, Shop, "Public BH Forum", false, false, false),
    chan!("bigfollow.net", Public, Shop, "[55]", false, false, false),
    chan!("intertwitter.com", Public, Shop, "[55]", false, false, false),
    chan!("seguidores.com.br", Public, Shop, "Redirect from bigfollow", false, false, false),
    chan!("scrowise.com", Public, Shop, "Google Search", false, false, false),
    // Underground.
    chan!("Dark Matter", Underground, Marketplace, "Onion Directory", true, false, true),
    chan!("Nexus Market", Underground, Marketplace, "Onion Directory", true, false, true),
    chan!("Torzon Market", Underground, Marketplace, "Onion Directory", true, false, true),
    chan!("Black Pyramid", Underground, Marketplace, "Onion Directory", true, false, true),
    chan!("Kerberos", Underground, Marketplace, "[33]", true, false, true),
    chan!("We The North", Underground, Marketplace, "[33]", true, false, true),
    chan!("MGM Grand", Underground, Marketplace, "[33]", true, false, false),
    chan!("ARES Market", Underground, Marketplace, "Onion Directory", true, false, false),
    chan!("Soza", Underground, Marketplace, "Onion Directory", true, false, false),
    chan!("SuperMarket", Underground, Marketplace, "Onion Directory", false, false, false),
    chan!("Quantum Market", Underground, Marketplace, "Onion Directory", true, false, false),
    chan!("Quest Market", Underground, Marketplace, "Onion Directory", false, false, false),
    chan!("Incognito", Underground, Marketplace, "Onion Directory", false, false, false),
    chan!("Alias Market", Underground, Marketplace, "Onion Directory", false, false, false),
    chan!("Archetyp", Underground, Marketplace, "Onion Directory", false, false, false),
    chan!("City Market", Underground, Marketplace, "Onion Directory", false, false, false),
    chan!("Elysium", Underground, Marketplace, "Onion Directory", false, false, false),
    chan!("Fish Market", Underground, Marketplace, "Onion Directory", false, false, false),
    chan!("Pegasus Market", Underground, Marketplace, "Onion Directory", false, false, false),
    chan!("Abacus", Underground, Marketplace, "[33]", false, false, false),
    // Contact points.
    chan!("Skyisthelimitservice@gmail.com", Contact, Email, "Public BH Forum", true, false, false),
    chan!("t.me/BusinessAts", Contact, Telegram, "Public BH Forum", true, false, false),
    chan!("t.me/sheriff_x", Contact, Telegram, "Public BH Forum", true, false, false),
    chan!("t.me/igexpertbhw", Contact, Telegram, "Public BH Forum", true, false, false),
    chan!("t.me/lulpola", Contact, Telegram, "Public BH Forum", true, false, false),
    chan!("t.me/prudentagency11", Contact, Telegram, "Public BH Forum", true, false, false),
    chan!("t.me/gunnupgrades", Contact, Telegram, "Public BH Forum", true, false, false),
    chan!("+16193762832", Contact, Whatsapp, "Public BH Forum", true, false, false),
    chan!("@gunnupg", Contact, Discord, "Public BH Forum", true, false, false),
];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_counts_sum() {
        let total: u32 = ALL_MARKETPLACES.iter().map(|m| m.config().table1_accounts).sum();
        assert_eq!(total, TABLE1_TOTAL_ACCOUNTS);
        let sellers: u32 = ALL_MARKETPLACES
            .iter()
            .filter_map(|m| m.config().table1_sellers)
            .sum();
        assert_eq!(sellers, TABLE1_TOTAL_SELLERS);
    }

    #[test]
    fn exactly_five_marketplaces_hide_sellers() {
        let hidden = ALL_MARKETPLACES.iter().filter(|m| !m.shows_sellers()).count();
        assert_eq!(hidden, 5);
    }

    #[test]
    fn accsmarket_largest_fameseller_smallest() {
        let max = ALL_MARKETPLACES
            .iter()
            .max_by_key(|m| m.config().table1_accounts)
            .unwrap();
        let min = ALL_MARKETPLACES
            .iter()
            .min_by_key(|m| m.config().table1_accounts)
            .unwrap();
        assert_eq!(*max, Accsmarket);
        assert_eq!(*min, FameSeller);
    }

    #[test]
    fn platform_weights_normalized() {
        for m in ALL_MARKETPLACES {
            let sum: f64 = m.config().platform_weights.iter().map(|&(_, w)| w).sum();
            assert!((sum - 1.0).abs() < 1e-9, "{}: {sum}", m.name());
        }
    }

    #[test]
    fn hosts_are_unique() {
        let mut hosts: Vec<&str> = ALL_MARKETPLACES.iter().map(|m| m.host()).collect();
        let n = hosts.len();
        hosts.sort();
        hosts.dedup();
        assert_eq!(hosts.len(), n);
    }

    #[test]
    fn config_index_matches_id() {
        for m in ALL_MARKETPLACES {
            assert_eq!(m.config().id, m);
        }
    }

    #[test]
    fn inventory_covers_paper_scope() {
        let inv = channel_inventory();
        let websites = inv
            .iter()
            .filter(|c| c.category != ChannelCategory::Contact)
            .count();
        let contacts = inv
            .iter()
            .filter(|c| c.category == ChannelCategory::Contact)
            .count();
        assert!(websites >= 58, "paper found 58 websites, inventory has {websites}");
        assert_eq!(contacts, 9);
        // 11 public channel rows of Table 1 map to 12 monitored public rows
        // (insta-sale's listing alias) — all with public handles.
        let monitored_with_handles = inv
            .iter()
            .filter(|c| c.monitored && c.handles_public)
            .count();
        assert_eq!(monitored_with_handles, 12);
        // Six underground markets were monitored.
        let ug_monitored = inv
            .iter()
            .filter(|c| c.category == ChannelCategory::Underground && c.monitored)
            .count();
        assert_eq!(ug_monitored, 6);
    }

    #[test]
    fn z2u_has_wallets_midman_has_escrow() {
        assert!(Z2U.config().payment_methods.contains(&PaymentMethod::PayPal));
        assert!(MidMan.config().payment_methods.contains(&PaymentMethod::Trustap));
        assert!(Accsmarket.config().payment_methods.contains(&PaymentMethod::Unknown));
    }
}
