//! The public marketplace web application.
//!
//! Each of the eleven marketplaces serves genuine HTML over the fabric, in
//! one of three template *dialects* (card grid, table, flat list) so the
//! crawler needs per-market extraction adapters — as the paper's crawler
//! needed per-market logic for real sites. Routes:
//!
//! * `GET /` — the storefront, linking each platform's listing index;
//! * `GET /listings/<platform>?page=N` — paginated offer links;
//! * `GET /offer/<id>` — one offer's detail page.

use crate::config::MarketplaceId;
use crate::lifecycle::MarketState;
use crate::listing::Listing;
use acctrade_html::dom::Builder;
use acctrade_net::http::{Request, Response, Status};
use acctrade_net::robots::RobotsPolicy;
use acctrade_net::server::{RequestCtx, Service};
use acctrade_social::platform::Platform;
use foundation::sync::RwLock;
use std::sync::Arc;

/// Template dialect a marketplace renders in.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Dialect {
    /// `div.offer-card` grid with classed spans.
    Cards,
    /// `<table id="offers">` rows; offer pages as `<dl>` key/value pairs.
    Table,
    /// `<ul class="listing">`; offer pages with `data-field` attributes.
    List,
}

impl MarketplaceId {
    /// The dialect this marketplace renders in.
    pub fn dialect(self) -> Dialect {
        use MarketplaceId::*;
        match self {
            Accsmarket | SocialTradia | TooFame | SurgeGram => Dialect::Cards,
            FameSwap | MidMan | FameSeller => Dialect::Table,
            Z2U | InstaSale | SwapSocials | BuySocia => Dialect::List,
        }
    }
}

/// Format a USD price the way listing pages show it (`$12,345.67`, cents
/// only when non-zero).
pub fn format_price(usd: f64) -> String {
    let cents = (usd * 100.0).round() as i64;
    let whole = cents / 100;
    let frac = (cents % 100).abs();
    let mut digits = whole.abs().to_string();
    let mut grouped = String::new();
    while digits.len() > 3 {
        let split = digits.len() - 3;
        grouped = format!(",{}{}", &digits[split..], grouped);
        digits.truncate(split);
    }
    let sign = if whole < 0 { "-" } else { "" };
    if frac == 0 {
        format!("{sign}${digits}{grouped}")
    } else {
        format!("{sign}${digits}{grouped}.{frac:02}")
    }
}

/// The web app serving one marketplace's state.
pub struct MarketplaceSite {
    state: Arc<RwLock<MarketState>>,
}

impl MarketplaceSite {
    /// Wrap a shared market state.
    pub fn new(state: Arc<RwLock<MarketState>>) -> MarketplaceSite {
        MarketplaceSite { state }
    }

    /// The shared state handle.
    pub fn state(&self) -> Arc<RwLock<MarketState>> {
        Arc::clone(&self.state)
    }

    fn market(&self) -> MarketplaceId {
        self.state.read().id()
    }

    fn storefront(&self) -> Response {
        let state = self.state.read();
        let market = state.id();
        let mut b = Builder::new();
        b.open("html").open("body");
        b.leaf("h1", market.name());
        b.open("nav").attr("class", "platforms");
        for platform in state.stocked_platforms() {
            b.open("a")
                .attr("class", "platform-link")
                .attr("href", format!("/listings/{}", platform.name().to_ascii_lowercase()))
                .text(format!("{} accounts", platform.name()))
                .close();
        }
        b.close().close().close();
        Response::ok().with_html(b.finish().render())
    }

    fn listing_index(&self, platform: Platform, page: usize) -> Response {
        let state = self.state.read();
        let market = state.id();
        let page_size = market.config().page_size;
        let offers = state.active_for_platform(platform);
        let total_pages = offers.len().div_ceil(page_size).max(1);
        if page >= total_pages && page != 0 {
            return Response::not_found("no such page");
        }
        let slice: Vec<&&Listing> = offers.iter().skip(page * page_size).take(page_size).collect();

        let mut b = Builder::new();
        b.open("html").open("body");
        b.leaf("h1", &format!("{} — {} accounts", market.name(), platform.name()));
        match market.dialect() {
            Dialect::Cards => {
                b.open("div").attr("class", "offer-grid");
                for l in &slice {
                    b.open("div").attr("class", "offer-card");
                    b.open("a")
                        .attr("class", "offer-link")
                        .attr("href", l.offer_path())
                        .text(&l.title)
                        .close();
                    b.open("span").attr("class", "price").text(format_price(l.price_usd)).close();
                    b.close();
                }
                b.close();
            }
            Dialect::Table => {
                b.open("table").attr("id", "offers");
                for l in &slice {
                    b.open("tr").attr("class", "offer-row");
                    b.open("td");
                    b.open("a").attr("href", l.offer_path()).text(&l.title).close();
                    b.close();
                    b.open("td").attr("class", "price").text(format_price(l.price_usd)).close();
                    b.close();
                }
                b.close();
            }
            Dialect::List => {
                b.open("ul").attr("class", "listing");
                for l in &slice {
                    b.open("li").attr("class", "item");
                    b.open("a").attr("href", l.offer_path()).text(&l.title).close();
                    b.open("em").text(format_price(l.price_usd)).close();
                    b.close();
                }
                b.close();
            }
        }
        if page + 1 < total_pages {
            b.open("a")
                .attr("class", "next")
                .attr(
                    "href",
                    format!(
                        "/listings/{}?page={}",
                        platform.name().to_ascii_lowercase(),
                        page + 1
                    ),
                )
                .text("next page")
                .close();
        }
        b.close().close();
        Response::ok().with_html(b.finish().render())
    }

    fn offer_page(&self, id: u64) -> Response {
        let state = self.state.read();
        let market = state.id();
        let Some(l) = state.listing(crate::listing::ListingId(id)) else {
            return Response::not_found("offer not found");
        };
        if !l.is_active() {
            return Response::status(Status::Gone).with_text("offer no longer available");
        }
        let seller_name = market
            .shows_sellers()
            .then(|| state.seller(l.seller).map(|s| s.username.clone()))
            .flatten();
        let seller_country = market
            .shows_sellers()
            .then(|| state.seller(l.seller).and_then(|s| s.country.clone()))
            .flatten();

        let mut b = Builder::new();
        b.open("html").open("body");
        match market.dialect() {
            Dialect::Cards => {
                b.open("div").attr("class", "offer-detail");
                b.open("h1").attr("class", "offer-title").text(&l.title).close();
                b.open("span").attr("class", "price").text(format_price(l.price_usd)).close();
                b.open("span")
                    .attr("class", "platform")
                    .text(l.platform.name())
                    .close();
                if let Some(s) = &seller_name {
                    b.open("div").attr("class", "seller");
                    b.open("a").attr("href", format!("/seller/{}", l.seller.0)).text(s).close();
                    if let Some(c) = &seller_country {
                        b.open("span").attr("class", "country").text(c).close();
                    }
                    b.close();
                }
                if let Some(c) = &l.category {
                    b.open("span").attr("class", "category").text(c).close();
                }
                if let Some(f) = l.claimed_followers {
                    b.open("span").attr("class", "followers").text(f.to_string()).close();
                }
                if l.claims_verified {
                    b.open("span").attr("class", "badge-verified").text("Verified").close();
                }
                if let Some(m) = &l.monetization {
                    b.open("span")
                        .attr("class", "revenue")
                        .text(format!("{}/month", format_price(m.monthly_revenue_usd)))
                        .close();
                    b.open("span").attr("class", "income-source").text(&m.income_source).close();
                }
                if let Some(d) = &l.description {
                    b.open("div").attr("class", "description").text(d).close();
                }
                if let Some(link) = &l.profile_link {
                    b.open("a").attr("class", "profile-link").attr("href", link).text("view profile").close();
                }
                b.close();
            }
            Dialect::Table => {
                b.open("h1").text(&l.title).close();
                b.open("dl").attr("id", "offer-fields");
                let field = |b: &mut Builder, key: &str, val: &str| {
                    b.leaf("dt", key);
                    b.leaf("dd", val);
                };
                field(&mut b, "Price", &format_price(l.price_usd));
                field(&mut b, "Platform", l.platform.name());
                if let Some(s) = &seller_name {
                    field(&mut b, "Seller", s);
                }
                if let Some(c) = &seller_country {
                    field(&mut b, "Country", c);
                }
                if let Some(c) = &l.category {
                    field(&mut b, "Category", c);
                }
                if let Some(f) = l.claimed_followers {
                    field(&mut b, "Followers", &f.to_string());
                }
                if l.claims_verified {
                    field(&mut b, "Verified", "yes");
                }
                if let Some(m) = &l.monetization {
                    field(&mut b, "Monthly revenue", &format_price(m.monthly_revenue_usd));
                    field(&mut b, "Income source", &m.income_source);
                }
                if let Some(d) = &l.description {
                    field(&mut b, "Description", d);
                }
                b.close();
                if let Some(link) = &l.profile_link {
                    b.open("dd");
                    b.open("a").attr("class", "profile").attr("href", link).text("account profile").close();
                    b.close();
                }
            }
            Dialect::List => {
                b.open("div").attr("class", "offer");
                b.open("h1").attr("data-field", "title").text(&l.title).close();
                b.open("span").attr("data-field", "price").text(format_price(l.price_usd)).close();
                b.open("span").attr("data-field", "platform").text(l.platform.name()).close();
                if let Some(s) = &seller_name {
                    b.open("span").attr("data-field", "seller").text(s).close();
                }
                if let Some(c) = &seller_country {
                    b.open("span").attr("data-field", "country").text(c).close();
                }
                if let Some(c) = &l.category {
                    b.open("span").attr("data-field", "category").text(c).close();
                }
                if let Some(f) = l.claimed_followers {
                    b.open("span").attr("data-field", "followers").text(f.to_string()).close();
                }
                if l.claims_verified {
                    b.open("span").attr("data-field", "verified").text("true").close();
                }
                if let Some(m) = &l.monetization {
                    b.open("span")
                        .attr("data-field", "revenue")
                        .text(format_price(m.monthly_revenue_usd))
                        .close();
                    b.open("span").attr("data-field", "income-source").text(&m.income_source).close();
                }
                if let Some(d) = &l.description {
                    b.open("p").attr("data-field", "description").text(d).close();
                }
                if let Some(link) = &l.profile_link {
                    b.open("a").attr("data-field", "profile").attr("href", link).text("profile").close();
                }
                b.close();
            }
        }
        b.close().close();
        Response::ok().with_html(b.finish().render())
    }
}

impl MarketplaceSite {
    /// Route one request to a page renderer (telemetry-free inner body
    /// of [`Service::handle`]).
    fn route_request(&self, req: &Request) -> Response {
        let path = req.url.path();
        if path == "/robots.txt" {
            return Response::ok().with_text(self.robots().render());
        }
        if path == "/" {
            return self.storefront();
        }
        if let Some(rest) = path.strip_prefix("/listings/") {
            let Some(platform) = Platform::parse(rest) else {
                return Response::not_found("unknown platform");
            };
            let page = req
                .url
                .query_param("page")
                .and_then(|p| p.parse().ok())
                .unwrap_or(0usize);
            return self.listing_index(platform, page);
        }
        if let Some(rest) = path.strip_prefix("/offer/") {
            let Some(id) = rest.parse::<u64>().ok() else {
                return Response::not_found("bad offer id");
            };
            return self.offer_page(id);
        }
        if path.starts_with("/seller/") {
            // Seller vanity pages exist but carry nothing the study needs.
            return Response::ok().with_html("<html><body>seller profile</body></html>");
        }
        Response::not_found(&format!("no route for {path} on {}", self.market().name()))
    }
}

impl Service for MarketplaceSite {
    fn handle(&self, req: &Request, _ctx: &RequestCtx) -> Response {
        let resp = self.route_request(req);
        telemetry::with_recorder(|r| {
            let code = resp.status.code().to_string();
            r.incr(
                "market.pages_served",
                &[("marketplace", self.market().name()), ("status", &code)],
                1,
            );
        });
        resp
    }

    fn robots(&self) -> RobotsPolicy {
        // Real marketplaces fence off account areas; the two biggest also
        // ask crawlers to slow down. The study's crawler honours both.
        let market = self.market();
        let delay = match market {
            MarketplaceId::Accsmarket | MarketplaceId::Z2U => "Crawl-delay: 1\n",
            _ => "",
        };
        RobotsPolicy::parse(&format!(
            "User-agent: *\nDisallow: /seller/\nDisallow: /checkout\n{delay}"
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::listing::{Listing, ListingId, Monetization};
    use crate::seller::Seller;
    use acctrade_html::{parse, Selector};
    use acctrade_net::prelude::*;

    fn setup(market: MarketplaceId, n_listings: usize) -> (Arc<RwLock<MarketState>>, Client) {
        let state = Arc::new(RwLock::new(MarketState::new(market)));
        {
            let mut s = state.write();
            let sid = s.next_seller_id();
            let mut seller = Seller::new(sid, "topseller");
            seller.country = Some("United States".into());
            s.add_seller(seller);
            for i in 0..n_listings {
                let lid = s.next_listing_id();
                let mut l = Listing::new(lid, market, Platform::Instagram, sid, 298.0);
                l.title = format!("IG page #{i}");
                l.category = Some("Fashion/Style".into());
                l.claimed_followers = Some(26_998);
                l.description = Some("Fresh and ready account with real users.".into());
                if i == 0 {
                    l.profile_link = Some("http://instagram.example/fashion0".into());
                    l.monetization = Some(Monetization {
                        monthly_revenue_usd: 136.0,
                        income_source: "Google AdSense".into(),
                    });
                }
                s.add_listing(l);
            }
        }
        let net = SimNet::new(9);
        net.register(market.host(), MarketplaceSite::new(Arc::clone(&state)));
        let client = Client::new(&net, "acctrade-crawler/0.1");
        (state, client)
    }

    #[test]
    fn price_formatting() {
        assert_eq!(format_price(7.0), "$7");
        assert_eq!(format_price(157.0), "$157");
        assert_eq!(format_price(1_234.5), "$1,234.50");
        assert_eq!(format_price(50_000_000.0), "$50,000,000");
        assert_eq!(format_price(0.99), "$0.99");
    }

    #[test]
    fn storefront_links_stocked_platforms() {
        let (_state, client) = setup(MarketplaceId::Accsmarket, 3);
        let resp = client.get("http://accsmarket.com/").unwrap();
        let doc = parse(&resp.text());
        let links = doc.select(&Selector::parse("a.platform-link").unwrap());
        assert_eq!(links.len(), 1);
        assert_eq!(links[0].attr("href"), Some("/listings/instagram"));
    }

    #[test]
    fn pagination_produces_next_links_until_exhausted() {
        // 30 listings at page size 24 -> 2 pages.
        let (_state, client) = setup(MarketplaceId::Accsmarket, 30);
        let p0 = client.get("http://accsmarket.com/listings/instagram").unwrap();
        let doc0 = parse(&p0.text());
        assert_eq!(doc0.select(&Selector::parse("a.offer-link").unwrap()).len(), 24);
        let next = doc0.select_first(&Selector::parse("a.next").unwrap()).unwrap();
        let p1 = client
            .get(&format!("http://accsmarket.com{}", next.attr("href").unwrap()))
            .unwrap();
        let doc1 = parse(&p1.text());
        assert_eq!(doc1.select(&Selector::parse("a.offer-link").unwrap()).len(), 6);
        assert!(doc1.select_first(&Selector::parse("a.next").unwrap()).is_none());
    }

    #[test]
    fn offer_page_cards_dialect_has_classed_fields() {
        let (_state, client) = setup(MarketplaceId::Accsmarket, 1);
        let resp = client.get("http://accsmarket.com/offer/1").unwrap();
        let doc = parse(&resp.text());
        let title = doc.select_first(&Selector::parse("h1.offer-title").unwrap()).unwrap();
        assert_eq!(title.text(), "IG page #0");
        let price = doc.select_first(&Selector::parse("span.price").unwrap()).unwrap();
        assert_eq!(price.text(), "$298");
        let profile = doc.select_first(&Selector::parse("a.profile-link").unwrap()).unwrap();
        assert_eq!(profile.attr("href"), Some("http://instagram.example/fashion0"));
        let seller = doc.select_first(&Selector::parse(".seller a").unwrap()).unwrap();
        assert_eq!(seller.text(), "topseller");
    }

    #[test]
    fn table_dialect_uses_dl_fields() {
        let (_state, client) = setup(MarketplaceId::FameSwap, 1);
        let resp = client.get("http://fameswap.com/offer/1").unwrap();
        let doc = parse(&resp.text());
        let dts = doc.select(&Selector::parse("#offer-fields dt").unwrap());
        let keys: Vec<String> = dts.iter().map(|e| e.text()).collect();
        assert!(keys.contains(&"Price".to_string()));
        assert!(keys.contains(&"Seller".to_string()));
        assert!(keys.contains(&"Followers".to_string()));
    }

    #[test]
    fn list_dialect_uses_data_fields() {
        let (_state, client) = setup(MarketplaceId::Z2U, 1);
        let resp = client.get("http://z2u.com/offer/1").unwrap();
        let doc = parse(&resp.text());
        let price = doc
            .select_first(&Selector::parse(r#"[data-field=price]"#).unwrap())
            .unwrap();
        assert_eq!(price.text(), "$298");
    }

    #[test]
    fn hidden_seller_markets_omit_seller() {
        let (_state, client) = setup(MarketplaceId::SocialTradia, 1);
        let resp = client.get("http://socialtradia.com/offer/1").unwrap();
        assert!(!resp.text().contains("topseller"));
    }

    #[test]
    fn closed_offers_are_gone() {
        let (state, client) = setup(MarketplaceId::Accsmarket, 1);
        state
            .write()
            .listing_mut(ListingId(1))
            .unwrap()
            .close(crate::listing::ListingState::Sold, 0);
        let resp = client.get("http://accsmarket.com/offer/1").unwrap();
        assert_eq!(resp.status, Status::Gone);
        // And it disappears from the index.
        let idx = client.get("http://accsmarket.com/listings/instagram").unwrap();
        assert!(!idx.text().contains("/offer/1\""));
    }

    #[test]
    fn robots_block_seller_pages_and_throttle_big_markets() {
        let (_state, client) = setup(MarketplaceId::Accsmarket, 1);
        let robots = client.get("http://accsmarket.com/robots.txt").unwrap();
        assert!(robots.text().contains("Disallow: /seller/"));
        assert!(robots.text().contains("Crawl-delay: 1"));
        // The automated client refuses seller vanity pages outright.
        assert!(client.get("http://accsmarket.com/seller/1").is_err());
        // Small markets set no crawl delay.
        let (_s2, client2) = setup(MarketplaceId::SurgeGram, 1);
        let robots = client2.get("http://surgegram.com/robots.txt").unwrap();
        assert!(!robots.text().contains("Crawl-delay"));
    }

    #[test]
    fn unknown_routes_404() {
        let (_state, client) = setup(MarketplaceId::Accsmarket, 1);
        assert_eq!(
            client.get("http://accsmarket.com/listings/myspace").unwrap().status,
            Status::NotFound
        );
        assert_eq!(
            client.get("http://accsmarket.com/offer/xyz").unwrap().status,
            Status::NotFound
        );
        assert_eq!(
            client.get("http://accsmarket.com/offer/999").unwrap().status,
            Status::NotFound
        );
    }
}
