//! Scenario configuration: which engines run, and how hard.
//!
//! A scenario pack is a named [`EconomyConfig`] — the unit the study
//! builder (`Study::with_economy`) takes, the quickstart's `--scenario`
//! flag selects, and the campaign checkpoint records (resume refuses a
//! scenario mismatch the same way it refuses a seed mismatch).

/// Escrow engine parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EscrowParams {
    /// Buyer population size at scale 1.0 (scaled like listings).
    pub buyers_per_unit_scale: f64,
    /// Probability a quoted order is ever funded (abandoned carts stay
    /// [`Quoted`](crate::order::OrderState::Quoted) forever).
    pub fund_prob: f64,
    /// Days a funded order may wait for delivery before the deadline
    /// fires and the order books as an exit scam.
    pub delivery_deadline_days: u64,
    /// Days a buyer takes (at most) to confirm delivered credentials.
    pub confirm_days: u64,
    /// Baseline probability that a seller is an exit-scammer. The
    /// per-seller propensity is a pure hash of `(seed, market, seller)`,
    /// so it is stable across any event interleaving.
    pub scam_propensity: f64,
    /// Probability a delivered order is disputed instead of confirmed
    /// (modulated per buyer).
    pub dispute_prob: f64,
}

impl Default for EscrowParams {
    fn default() -> EscrowParams {
        EscrowParams {
            buyers_per_unit_scale: 900.0,
            fund_prob: 0.82,
            delivery_deadline_days: 3,
            confirm_days: 2,
            scam_propensity: 0.06,
            dispute_prob: 0.08,
        }
    }
}

/// Price-trajectory engine parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PricingParams {
    /// Days between repricing sweeps of a marketplace.
    pub sweep_interval_days: u64,
    /// Probability an active listing drifts during a sweep.
    pub drift_prob: f64,
    /// Maximum relative drift per tick (uniform in `±max`).
    pub drift_max_pct: f64,
    /// Age (days on market) after which a listing counts as stale.
    pub stale_age_days: u64,
    /// Probability a stale listing is discounted during a sweep.
    pub stale_discount_prob: f64,
    /// Relative discount applied to a stale listing.
    pub stale_discount_pct: f64,
    /// Relative bump applied to a seller's other active listings when
    /// one of theirs settles (demand shock up) — and the symmetric cut
    /// when one of theirs is disputed or exit-scams (shock down).
    pub demand_shock_pct: f64,
}

impl Default for PricingParams {
    fn default() -> PricingParams {
        PricingParams {
            sweep_interval_days: 5,
            drift_prob: 0.12,
            drift_max_pct: 0.05,
            stale_age_days: 30,
            stale_discount_prob: 0.35,
            stale_discount_pct: 0.12,
            demand_shock_pct: 0.06,
        }
    }
}

/// Bot-inventory operator parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BotParams {
    /// Automated accounts registered per marketplace.
    pub bots_per_market: usize,
    /// Days between a bot's scheduled posts.
    pub post_interval_days: u64,
    /// Probability a bot restocks one of its sold listings (next day)
    /// instead of waiting for its next scheduled post.
    pub restock_prob: f64,
    /// Posts after which a bot rotates to its next scam template.
    pub template_churn_every: usize,
}

impl Default for BotParams {
    fn default() -> BotParams {
        BotParams {
            bots_per_market: 2,
            post_interval_days: 3,
            restock_prob: 0.7,
            template_churn_every: 4,
        }
    }
}

/// A named scenario pack: which engines run this study.
#[derive(Debug, Clone, PartialEq)]
pub struct EconomyConfig {
    /// Scenario name (recorded in checkpoints; resume refuses a
    /// mismatch).
    pub name: &'static str,
    /// Escrow/order engine, if enabled.
    pub escrow: Option<EscrowParams>,
    /// Price-trajectory engine, if enabled.
    pub pricing: Option<PricingParams>,
    /// Bot-inventory operator, if enabled.
    pub bots: Option<BotParams>,
}

/// Names of the built-in scenario packs, in canonical order.
pub const SCENARIO_NAMES: [&str; 4] =
    ["escrow-basic", "price-shocks", "bot-inventory", "all"];

impl EconomyConfig {
    /// Look up a built-in scenario pack by name.
    ///
    /// * `escrow-basic` — escrow lifecycle only (funnel + exit scams);
    /// * `price-shocks` — price trajectories only (drift, staleness
    ///   discounts; no orders, so no demand shocks fire);
    /// * `bot-inventory` — bot-operated restocking only;
    /// * `all` — all three engines, fully coupled (sales trigger demand
    ///   shocks and bot restocks).
    pub fn scenario(name: &str) -> Option<EconomyConfig> {
        match name {
            "escrow-basic" => Some(EconomyConfig {
                name: "escrow-basic",
                escrow: Some(EscrowParams::default()),
                pricing: None,
                bots: None,
            }),
            "price-shocks" => Some(EconomyConfig {
                name: "price-shocks",
                escrow: None,
                pricing: Some(PricingParams::default()),
                bots: None,
            }),
            "bot-inventory" => Some(EconomyConfig {
                name: "bot-inventory",
                escrow: None,
                pricing: None,
                bots: Some(BotParams::default()),
            }),
            "all" => Some(EconomyConfig {
                name: "all",
                escrow: Some(EscrowParams::default()),
                pricing: Some(PricingParams::default()),
                bots: Some(BotParams::default()),
            }),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_named_scenario_resolves() {
        for name in SCENARIO_NAMES {
            let cfg = EconomyConfig::scenario(name).unwrap();
            assert_eq!(cfg.name, name);
        }
        assert!(EconomyConfig::scenario("nope").is_none());
    }

    #[test]
    fn all_enables_every_engine() {
        let cfg = EconomyConfig::scenario("all").unwrap();
        assert!(cfg.escrow.is_some() && cfg.pricing.is_some() && cfg.bots.is_some());
    }
}
