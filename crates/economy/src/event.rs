//! The append-only economy event stream.
//!
//! Every engine mutation is emitted as one flat [`EconomyEvent`] record,
//! stamped with the virtual time it happened at, the entity it concerns,
//! and a global sequence number. The stream is the subsystem's durable
//! truth: it is persisted through the campaign WAL, replayed by
//! [`crate::ledger::Ledger`], and every analysis table is a pure function
//! of it.
//!
//! Ordering rule: engines execute scheduled actions in the total order
//! `(virtual_time, entity_id, schedule_seq)`, and emitted events inherit
//! that order through their monotonic `seq` — which is why same-seed
//! streams are byte-identical at any crawl worker count.

use crate::order::OrderState;
use acctrade_market::payments::PaymentMethod;
use foundation::{json, json_codec_enum, json_codec_struct};

/// What an [`EconomyEvent`] records.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum EventKind {
    /// A buyer opened an order (state [`OrderState::Quoted`]).
    OrderOpened,
    /// An order moved through the state machine.
    OrderTransition,
    /// A listing was repriced (one tick of its `PriceTick` series).
    PriceTick,
    /// A bot inventory account was registered with a marketplace.
    BotRegistered,
    /// A bot posted (or restocked) a listing.
    BotPost,
}

json_codec_enum! {
    EventKind { OrderOpened, OrderTransition, PriceTick, BotRegistered, BotPost }
}

/// One record of the append-only economy event stream.
///
/// The record is deliberately flat (a fixed field set with `None` where a
/// kind has no use for a column) so it round-trips the WAL as plain JSON
/// like every other campaign record kind.
#[derive(Debug, Clone, PartialEq)]
pub struct EconomyEvent {
    /// Global emission sequence (0-based, dense, strictly increasing).
    pub seq: u64,
    /// Virtual unix seconds the event happened at.
    pub at_unix: i64,
    /// Entity the scheduled action belonged to (the ordering tiebreak).
    pub entity: u64,
    /// Kind.
    pub kind: EventKind,
    /// Marketplace display name.
    pub marketplace: String,
    /// Order id, for order events.
    pub order: Option<u64>,
    /// Listing id, when the event concerns one.
    pub listing: Option<u64>,
    /// Seller id, when the event concerns one.
    pub seller: Option<u64>,
    /// Buyer id, for order events.
    pub buyer: Option<u64>,
    /// Platform of the listing concerned.
    pub platform: Option<String>,
    /// Price after the event (order price, new listing price, ...).
    pub price_usd: Option<f64>,
    /// Price before a [`EventKind::PriceTick`].
    pub prev_price_usd: Option<f64>,
    /// Payment method of the order.
    pub method: Option<PaymentMethod>,
    /// State before an [`EventKind::OrderTransition`].
    pub from_state: Option<OrderState>,
    /// State after an [`EventKind::OrderTransition`] (also set to
    /// [`OrderState::Quoted`] on [`EventKind::OrderOpened`]).
    pub to_state: Option<OrderState>,
    /// Cause tag: the order event name, the tick cause, or the bot
    /// template label.
    pub cause: Option<String>,
}

json_codec_struct! {
    EconomyEvent {
        seq, at_unix, entity, kind, marketplace, order, listing, seller,
        buyer, platform, price_usd, prev_price_usd, method, from_state,
        to_state, cause,
    }
}

/// Cause tag of a drift repricing tick.
pub const CAUSE_DRIFT: &str = "drift";
/// Cause tag of a discount applied to a stale listing.
pub const CAUSE_STALE_DISCOUNT: &str = "stale_discount";
/// Cause tag of a demand shock following a settled sale.
pub const CAUSE_SHOCK_SALE: &str = "demand_shock_sale";
/// Cause tag of a demand shock following a dispute or exit scam.
pub const CAUSE_SHOCK_DISPUTE: &str = "demand_shock_dispute";

impl EconomyEvent {
    /// A blank event of `kind`; engines fill the relevant columns.
    pub fn blank(seq: u64, at_unix: i64, entity: u64, kind: EventKind) -> EconomyEvent {
        EconomyEvent {
            seq,
            at_unix,
            entity,
            kind,
            marketplace: String::new(),
            order: None,
            listing: None,
            seller: None,
            buyer: None,
            platform: None,
            price_usd: None,
            prev_price_usd: None,
            method: None,
            from_state: None,
            to_state: None,
            cause: None,
        }
    }

    /// Compact single-line JSON (the WAL payload and the `.jsonl`
    /// artifact line format).
    pub fn to_json_line(&self) -> String {
        json::to_string(self)
    }

    /// Parse one event back from JSON text.
    pub fn parse(text: &str) -> Result<EconomyEvent, json::JsonError> {
        json::from_str(text)
    }
}

/// Deterministic digest of a whole event stream (provenance for the
/// study report: two runs with equal digests replayed equal economies).
pub fn stream_digest(events: &[EconomyEvent]) -> String {
    let mut buf = String::new();
    for e in events {
        buf.push_str(&e.to_json_line());
        buf.push('\n');
    }
    telemetry::digest64(&buf)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn event_json_roundtrip() {
        let mut e = EconomyEvent::blank(7, 1_706_745_600, 42, EventKind::OrderTransition);
        e.marketplace = "Z2U".into();
        e.order = Some(3);
        e.seller = Some(12);
        e.buyer = Some(5);
        e.price_usd = Some(149.99);
        e.method = Some(PaymentMethod::PayPal);
        e.from_state = Some(OrderState::Funded);
        e.to_state = Some(OrderState::CredentialsDelivered);
        e.cause = Some("Deliver".into());
        let back = EconomyEvent::parse(&e.to_json_line()).unwrap();
        assert_eq!(back, e);
    }

    #[test]
    fn stream_digest_is_order_sensitive() {
        let a = EconomyEvent::blank(0, 0, 1, EventKind::PriceTick);
        let b = EconomyEvent::blank(1, 0, 2, EventKind::PriceTick);
        assert_ne!(
            stream_digest(&[a.clone(), b.clone()]),
            stream_digest(&[b, a]),
            "stream digest must see ordering"
        );
    }
}
