//! The escrow order state machine.
//!
//! Every purchase moves through the same lifecycle the related escrow
//! marketplaces implement: a buyer gets a quote, funds the escrow, the
//! seller hands over credentials, and the escrow either releases to the
//! seller or — after a dispute — refunds the buyer. A seller who takes
//! the funds and never delivers is an exit scam:
//!
//! ```text
//! Quoted ──Fund──▶ Funded ──Deliver──▶ CredentialsDelivered ──Confirm──▶ Released
//!                    │                        │
//!            DeliveryTimeout               Dispute
//!                    ▼                        ▼
//!                ExitScam                 Disputed ──Refund──▶ Refunded
//! ```
//!
//! [`OrderState::apply`] is a *pure* transition function: every engine,
//! the replay [`crate::ledger`], and the property tests share it, so an
//! illegal transition can neither be simulated nor replayed.

use foundation::json_codec_enum;

/// Lifecycle state of an escrow order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum OrderState {
    /// The buyer asked for a quote; escrow not yet funded.
    Quoted,
    /// Escrow holds the buyer's funds.
    Funded,
    /// The seller delivered the account credentials.
    CredentialsDelivered,
    /// The buyer confirmed; funds released to the seller. Terminal.
    Released,
    /// The buyer disputed the delivery.
    Disputed,
    /// The mediator refunded the buyer. Terminal.
    Refunded,
    /// The seller took the funds and never delivered. Terminal.
    ExitScam,
}

/// An event the state machine consumes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum OrderEvent {
    /// The buyer funds the escrow.
    Fund,
    /// The seller delivers credentials.
    Deliver,
    /// The buyer confirms the goods; escrow releases.
    Confirm,
    /// The buyer disputes the delivery.
    Dispute,
    /// The mediator refunds a disputed order.
    Refund,
    /// The delivery deadline lapsed with escrow still funded.
    DeliveryTimeout,
}

json_codec_enum! {
    OrderState { Quoted, Funded, CredentialsDelivered, Released, Disputed, Refunded, ExitScam }
    OrderEvent { Fund, Deliver, Confirm, Dispute, Refund, DeliveryTimeout }
}

/// A transition the machine does not admit. The state is unchanged.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IllegalTransition {
    /// State the order was in.
    pub state: OrderState,
    /// Event that was rejected.
    pub event: OrderEvent,
}

impl std::fmt::Display for IllegalTransition {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "illegal order transition: {:?} in state {:?}", self.event, self.state)
    }
}

impl OrderState {
    /// The single transition table. Returns the successor state, or an
    /// [`IllegalTransition`] (leaving the order unchanged) for every
    /// `(state, event)` pair outside the lifecycle diagram.
    pub fn apply(self, event: OrderEvent) -> Result<OrderState, IllegalTransition> {
        use OrderEvent::*;
        use OrderState::*;
        match (self, event) {
            (Quoted, Fund) => Ok(Funded),
            (Funded, Deliver) => Ok(CredentialsDelivered),
            (Funded, DeliveryTimeout) => Ok(ExitScam),
            (CredentialsDelivered, Confirm) => Ok(Released),
            (CredentialsDelivered, Dispute) => Ok(Disputed),
            (Disputed, Refund) => Ok(Refunded),
            (state, event) => Err(IllegalTransition { state, event }),
        }
    }

    /// Terminal states absorb every event.
    pub fn is_terminal(self) -> bool {
        matches!(self, OrderState::Released | OrderState::Refunded | OrderState::ExitScam)
    }

    /// Did money change hands in the seller's favour?
    pub fn seller_was_paid(self) -> bool {
        matches!(self, OrderState::Released | OrderState::ExitScam)
    }
}

impl OrderEvent {
    /// Every event, in canonical order (for exhaustive property tests).
    pub fn all() -> [OrderEvent; 6] {
        use OrderEvent::*;
        [Fund, Deliver, Confirm, Dispute, Refund, DeliveryTimeout]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use OrderEvent::*;
    use OrderState::*;

    #[test]
    fn happy_path_releases() {
        let mut s = Quoted;
        for ev in [Fund, Deliver, Confirm] {
            s = s.apply(ev).unwrap();
        }
        assert_eq!(s, Released);
        assert!(s.is_terminal());
        assert!(s.seller_was_paid());
    }

    #[test]
    fn dispute_path_refunds() {
        let mut s = Quoted;
        for ev in [Fund, Deliver, Dispute, Refund] {
            s = s.apply(ev).unwrap();
        }
        assert_eq!(s, Refunded);
        assert!(!s.seller_was_paid());
    }

    #[test]
    fn timeout_is_exit_scam() {
        let s = Quoted.apply(Fund).unwrap().apply(DeliveryTimeout).unwrap();
        assert_eq!(s, ExitScam);
        assert!(s.seller_was_paid());
    }

    #[test]
    fn terminals_absorb_everything() {
        for terminal in [Released, Refunded, ExitScam] {
            for ev in OrderEvent::all() {
                assert_eq!(
                    terminal.apply(ev),
                    Err(IllegalTransition { state: terminal, event: ev })
                );
            }
        }
    }

    #[test]
    fn exactly_six_legal_edges() {
        let states = [Quoted, Funded, CredentialsDelivered, Released, Disputed, Refunded, ExitScam];
        let legal: usize = states
            .iter()
            .map(|&s| OrderEvent::all().iter().filter(|&&e| s.apply(e).is_ok()).count())
            .sum();
        assert_eq!(legal, 6, "the lifecycle diagram has exactly six edges");
    }
}
