//! Replay: rebuild the economy's final state from its event stream.
//!
//! [`Ledger::replay`] is a *pure* function of a persisted
//! [`EconomyEvent`] slice — it shares the [`OrderState::apply`]
//! transition table with the live engines, so a stream containing an
//! illegal transition (corruption, a hand-edited WAL, a buggy engine)
//! is rejected rather than silently absorbed. Every analysis table the
//! study report renders is computed from a replayed ledger, which makes
//! the WAL stream the subsystem's provenance: equal streams ⇒ equal
//! ledgers ⇒ equal tables, byte for byte.

use crate::event::{EconomyEvent, EventKind};
use crate::order::{OrderEvent, OrderState};
use std::collections::{BTreeMap, BTreeSet};

/// Why a stream failed to replay.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReplayError {
    /// Sequence number of the offending event (if it had one).
    pub seq: Option<u64>,
    /// Human-readable reason.
    pub message: String,
}

impl std::fmt::Display for ReplayError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self.seq {
            Some(seq) => write!(f, "economy replay failed at seq {}: {}", seq, self.message),
            None => write!(f, "economy replay failed: {}", self.message),
        }
    }
}

fn fail(seq: Option<u64>, message: String) -> ReplayError {
    ReplayError { seq, message }
}

/// Final state of one order after replay.
#[derive(Debug, Clone, PartialEq)]
pub struct LedgerOrder {
    /// Marketplace display name.
    pub marketplace: String,
    /// Final machine state.
    pub state: OrderState,
    /// Payment method the buyer chose.
    pub method: crate::PaymentMethod,
    /// Order price at quote time (USD).
    pub price_usd: f64,
    /// Seller id.
    pub seller: u64,
    /// Buyer id.
    pub buyer: u64,
    /// Platform of the purchased listing.
    pub platform: String,
    /// Listing id the order was for.
    pub listing: u64,
    /// Virtual time the order was opened.
    pub opened_unix: i64,
    /// Virtual time the order reached a terminal state, if it did.
    pub settled_unix: Option<i64>,
}

/// One replayed repricing tick.
#[derive(Debug, Clone, PartialEq)]
pub struct LedgerTick {
    /// Marketplace display name.
    pub marketplace: String,
    /// Listing that was repriced.
    pub listing: u64,
    /// Platform of the listing.
    pub platform: String,
    /// Price before the tick.
    pub prev_usd: f64,
    /// Price after the tick.
    pub new_usd: f64,
    /// Cause tag (see the [`crate::event`] constants).
    pub cause: String,
    /// Virtual time of the tick.
    pub at_unix: i64,
}

/// One replayed bot posting.
#[derive(Debug, Clone, PartialEq)]
pub struct LedgerBotPost {
    /// Marketplace display name.
    pub marketplace: String,
    /// Bot seller id.
    pub seller: u64,
    /// Listing the bot created.
    pub listing: u64,
    /// Virtual time of the post.
    pub at_unix: i64,
    /// Scam template tag the post used.
    pub template: String,
}

/// The replayed end state of an economy event stream.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Ledger {
    /// Every order ever opened, by id.
    pub orders: BTreeMap<u64, LedgerOrder>,
    /// Every repricing tick, in stream order.
    pub ticks: Vec<LedgerTick>,
    /// Every bot posting, in stream order.
    pub bot_posts: Vec<LedgerBotPost>,
    /// Bot seller ids per marketplace name.
    pub bot_sellers: BTreeMap<String, BTreeSet<u64>>,
    /// Bot-created listing ids per marketplace name.
    pub bot_listings: BTreeMap<String, BTreeSet<u64>>,
    /// Events consumed.
    pub events_replayed: usize,
    /// Timespan covered by the stream `(first, last)` virtual time.
    pub span_unix: Option<(i64, i64)>,
}

impl Ledger {
    /// Replay `events` from scratch, enforcing the same legality the
    /// live engines obey. Errors on gaps in `seq`, unknown orders, or
    /// transitions [`OrderState::apply`] rejects.
    pub fn replay(events: &[EconomyEvent]) -> Result<Ledger, ReplayError> {
        let mut ledger = Ledger::default();
        for (i, e) in events.iter().enumerate() {
            if e.seq != i as u64 {
                return Err(fail(
                    Some(e.seq),
                    format!("sequence gap: expected seq {i}, found {}", e.seq),
                ));
            }
            ledger.span_unix = Some(match ledger.span_unix {
                None => (e.at_unix, e.at_unix),
                Some((first, _)) => (first, e.at_unix),
            });
            match e.kind {
                EventKind::OrderOpened => ledger.order_opened(e)?,
                EventKind::OrderTransition => ledger.order_transition(e)?,
                EventKind::PriceTick => ledger.price_tick(e)?,
                EventKind::BotRegistered => {
                    let seller = required(e, e.seller, "seller")?;
                    ledger
                        .bot_sellers
                        .entry(e.marketplace.clone())
                        .or_default()
                        .insert(seller);
                }
                EventKind::BotPost => ledger.bot_post(e)?,
            }
            ledger.events_replayed += 1;
        }
        Ok(ledger)
    }

    /// Deterministic digest of the replayed state (not the stream):
    /// equal ledgers hash equal even if derived from different `Vec`
    /// capacities or replay batching.
    pub fn state_digest(&self) -> String {
        telemetry::digest64(&format!("{self:?}"))
    }

    /// Orders that reached a terminal state.
    pub fn settled(&self) -> impl Iterator<Item = (&u64, &LedgerOrder)> {
        self.orders.iter().filter(|(_, o)| o.state.is_terminal())
    }

    fn order_opened(&mut self, e: &EconomyEvent) -> Result<(), ReplayError> {
        let order = required(e, e.order, "order")?;
        if self.orders.contains_key(&order) {
            return Err(fail(Some(e.seq), format!("order {order} opened twice")));
        }
        let method = match e.method {
            Some(m) => m,
            None => return Err(fail(Some(e.seq), format!("order {order} opened without method"))),
        };
        self.orders.insert(
            order,
            LedgerOrder {
                marketplace: e.marketplace.clone(),
                state: OrderState::Quoted,
                method,
                price_usd: e.price_usd.unwrap_or(0.0),
                seller: required(e, e.seller, "seller")?,
                buyer: required(e, e.buyer, "buyer")?,
                platform: e.platform.clone().unwrap_or_default(),
                listing: required(e, e.listing, "listing")?,
                opened_unix: e.at_unix,
                settled_unix: None,
            },
        );
        Ok(())
    }

    fn order_transition(&mut self, e: &EconomyEvent) -> Result<(), ReplayError> {
        let order = required(e, e.order, "order")?;
        let event = match e.cause.as_deref().and_then(parse_order_event) {
            Some(ev) => ev,
            None => {
                return Err(fail(
                    Some(e.seq),
                    format!("transition of order {order} has no parseable cause"),
                ))
            }
        };
        let Some(entry) = self.orders.get_mut(&order) else {
            return Err(fail(Some(e.seq), format!("transition of unknown order {order}")));
        };
        if e.from_state != Some(entry.state) {
            return Err(fail(
                Some(e.seq),
                format!(
                    "order {order}: stream says from {:?}, ledger is at {:?}",
                    e.from_state, entry.state
                ),
            ));
        }
        let next = match entry.state.apply(event) {
            Ok(next) => next,
            Err(ill) => return Err(fail(Some(e.seq), ill.to_string())),
        };
        if e.to_state != Some(next) {
            return Err(fail(
                Some(e.seq),
                format!(
                    "order {order}: stream says to {:?}, machine computes {next:?}",
                    e.to_state
                ),
            ));
        }
        entry.state = next;
        if next.is_terminal() {
            entry.settled_unix = Some(e.at_unix);
        }
        Ok(())
    }

    fn price_tick(&mut self, e: &EconomyEvent) -> Result<(), ReplayError> {
        self.ticks.push(LedgerTick {
            marketplace: e.marketplace.clone(),
            listing: required(e, e.listing, "listing")?,
            platform: e.platform.clone().unwrap_or_default(),
            prev_usd: match e.prev_price_usd {
                Some(p) => p,
                None => return Err(fail(Some(e.seq), "price tick without prev price".into())),
            },
            new_usd: match e.price_usd {
                Some(p) => p,
                None => return Err(fail(Some(e.seq), "price tick without new price".into())),
            },
            cause: e.cause.clone().unwrap_or_default(),
            at_unix: e.at_unix,
        });
        Ok(())
    }

    fn bot_post(&mut self, e: &EconomyEvent) -> Result<(), ReplayError> {
        let seller = required(e, e.seller, "seller")?;
        let listing = required(e, e.listing, "listing")?;
        let known = self
            .bot_sellers
            .get(&e.marketplace)
            .is_some_and(|s| s.contains(&seller));
        if !known {
            return Err(fail(
                Some(e.seq),
                format!("bot post by unregistered seller {seller} on {}", e.marketplace),
            ));
        }
        self.bot_listings
            .entry(e.marketplace.clone())
            .or_default()
            .insert(listing);
        self.bot_posts.push(LedgerBotPost {
            marketplace: e.marketplace.clone(),
            seller,
            listing,
            at_unix: e.at_unix,
            template: e.cause.clone().unwrap_or_default(),
        });
        Ok(())
    }
}

fn required(e: &EconomyEvent, field: Option<u64>, name: &str) -> Result<u64, ReplayError> {
    match field {
        Some(v) => Ok(v),
        None => Err(fail(Some(e.seq), format!("{:?} event missing `{name}`", e.kind))),
    }
}

/// Parse a transition cause tag back into its [`OrderEvent`].
fn parse_order_event(cause: &str) -> Option<OrderEvent> {
    OrderEvent::all().into_iter().find(|ev| format!("{ev:?}") == cause)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::EconomyEvent;
    use crate::PaymentMethod;

    fn opened(seq: u64, order: u64) -> EconomyEvent {
        let mut e = EconomyEvent::blank(seq, 100, 2_000_000 + order, EventKind::OrderOpened);
        e.marketplace = "Z2U".into();
        e.order = Some(order);
        e.listing = Some(10 + order);
        e.seller = Some(3);
        e.buyer = Some(1_000_001);
        e.platform = Some("Instagram".into());
        e.price_usd = Some(80.0);
        e.method = Some(PaymentMethod::PayPal);
        e.to_state = Some(OrderState::Quoted);
        e
    }

    fn step(seq: u64, order: u64, from: OrderState, ev: OrderEvent, to: OrderState) -> EconomyEvent {
        let mut e =
            EconomyEvent::blank(seq, 200 + seq as i64, 2_000_000 + order, EventKind::OrderTransition);
        e.marketplace = "Z2U".into();
        e.order = Some(order);
        e.from_state = Some(from);
        e.to_state = Some(to);
        e.cause = Some(format!("{ev:?}"));
        e
    }

    #[test]
    fn replays_a_full_lifecycle() {
        use OrderEvent::*;
        use OrderState::*;
        let events = vec![
            opened(0, 1),
            step(1, 1, Quoted, Fund, Funded),
            step(2, 1, Funded, Deliver, CredentialsDelivered),
            step(3, 1, CredentialsDelivered, Confirm, Released),
        ];
        let ledger = Ledger::replay(&events).unwrap();
        assert_eq!(ledger.orders[&1].state, Released);
        assert_eq!(ledger.orders[&1].settled_unix, Some(203));
        assert_eq!(ledger.settled().count(), 1);
    }

    #[test]
    fn rejects_illegal_transition() {
        use OrderEvent::*;
        use OrderState::*;
        let events = vec![opened(0, 1), step(1, 1, Quoted, Refund, Refunded)];
        let err = Ledger::replay(&events).unwrap_err();
        assert!(err.message.contains("illegal order transition"), "{err}");
    }

    #[test]
    fn rejects_sequence_gap() {
        let events = vec![opened(0, 1), opened(7, 2)];
        let err = Ledger::replay(&events).unwrap_err();
        assert!(err.message.contains("sequence gap"), "{err}");
    }

    #[test]
    fn rejects_mismatched_from_state() {
        use OrderEvent::*;
        use OrderState::*;
        let events = vec![opened(0, 1), step(1, 1, Funded, Deliver, CredentialsDelivered)];
        let err = Ledger::replay(&events).unwrap_err();
        assert!(err.message.contains("ledger is at"), "{err}");
    }

    #[test]
    fn rejects_unregistered_bot_post() {
        let mut e = EconomyEvent::blank(0, 50, 4_000_000, EventKind::BotPost);
        e.marketplace = "Z2U".into();
        e.seller = Some(99);
        e.listing = Some(5);
        let err = Ledger::replay(&[e]).unwrap_err();
        assert!(err.message.contains("unregistered"), "{err}");
    }
}
