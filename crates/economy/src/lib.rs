//! acctrade-economy: the deterministic marketplace economy.
//!
//! The crawler measures the *supply side* of the account trade — what
//! the escrow marketplaces list. This crate simulates the *transaction*
//! side the paper can only infer: escrowed purchases (and their failure
//! modes, up to exit scams), listing price trajectories, and the
//! automated inventory accounts that keep shops stocked. Three engines
//! share one virtual-clock event loop:
//!
//! * **escrow** ([`order`], the escrow half of [`sim`]) — buyers fund
//!   orders that move through the [`OrderState`] machine; per-seller
//!   scam propensity decides who exit-scams; deadlines time out;
//! * **pricing** — per-listing repricing ticks: random drift, staleness
//!   discounts, and demand shocks coupled to sales and disputes;
//! * **bots** — inventory accounts posting on a cadence, restocking
//!   sold listings, and churning through scam ad templates.
//!
//! Everything lands in one append-only [`EconomyEvent`] stream with a
//! total order `(virtual_time, entity, seq)` — byte-identical for a
//! given seed at any crawl worker count, persisted through the campaign
//! WAL, and replayable from scratch by [`Ledger::replay`]. The study's
//! economy tables are computed from the replayed ledger, never from
//! live engine state, so the persisted stream is the provenance.
//!
//! The crate is inert unless a scenario pack ([`EconomyConfig`]) is
//! attached to a study: with no scenario, no RNG substream is drawn, no
//! event is emitted, and every baseline artifact stays byte-identical.

pub mod config;
pub mod event;
pub mod ledger;
pub mod order;
pub mod sim;

pub use config::{BotParams, EconomyConfig, EscrowParams, PricingParams, SCENARIO_NAMES};
pub use event::{stream_digest, EconomyEvent, EventKind};
pub use ledger::{Ledger, ReplayError};
pub use order::{IllegalTransition, OrderEvent, OrderState};
pub use sim::EconomySim;

// Re-exported so ledger consumers don't need a direct market dependency
// for the method column.
pub use acctrade_market::payments::PaymentMethod;
