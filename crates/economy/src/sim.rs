//! The deterministic economy event loop.
//!
//! [`EconomySim`] owns a scheduled-action queue keyed by the total order
//! `(virtual_time, entity_id, schedule_seq)` — a `BTreeMap`, so draining
//! it is a canonical walk no matter how actions were inserted. All three
//! engines (escrow, pricing, bots) execute inside that single loop with
//! one seeded RNG substream (`seed ^ 0x0EC0_0EC0_0000_0001`, independent
//! of the fabric and world streams), which is what makes same-seed
//! economies byte-identical at any crawl worker count: the engines run
//! in the campaign's sequential section, never on worker threads.
//!
//! The loop is driven at crawl-iteration boundaries: the study calls
//! [`EconomySim::advance_to`] with the post-step virtual timestamp, the
//! sim drains every scheduled action up to it, and each mutation lands in
//! the append-only [`EconomyEvent`] stream (persisted through the
//! campaign WAL; replayable via [`crate::ledger`]).

use crate::config::EconomyConfig;
use crate::event::{
    EconomyEvent, EventKind, CAUSE_DRIFT, CAUSE_SHOCK_DISPUTE, CAUSE_SHOCK_SALE,
    CAUSE_STALE_DISCOUNT,
};
use crate::order::{OrderEvent, OrderState};
use acctrade_market::config::{MarketplaceId, ALL_MARKETPLACES};
use acctrade_market::listing::{Listing, ListingId, ListingState};
use acctrade_market::payments::PaymentMethod;
use acctrade_market::seller::{Seller, SellerId};
use acctrade_social::platform::Platform;
use acctrade_workload::buyers::Buyer;
use acctrade_workload::prices;
use acctrade_workload::world::World;
use foundation::rng::{ChaCha8Rng, IndexedRandom, RngExt, SeedableRng};
use std::collections::BTreeMap;
use std::sync::Arc;

const HOUR: i64 = 3_600;
const DAY_S: i64 = 86_400;

/// Entity-id namespaces for the scheduling order (disjoint, so the
/// `(time, entity, seq)` total order never collides across engines).
const ENTITY_BUYER: u64 = 1_000_000;
const ENTITY_ORDER: u64 = 2_000_000;
const ENTITY_SWEEP: u64 = 3_000_000;
const ENTITY_BOT: u64 = 4_000_000;

/// Scam-ad templates the bot operator cycles through (`(tag, body)`).
const BOT_TEMPLATES: [(&str, &str); 5] = [
    ("aged-stock", "Aged {platform} account, original email included, instant delivery after escrow."),
    ("bulk-verified", "Bulk {platform} accounts in stock, phone verified, replacement warranty."),
    ("monetized-ready", "Monetization-ready {platform} page, clean history, guided transfer."),
    ("cheap-flip", "Cheapest {platform} accounts online, trusted seller, vouches in profile."),
    ("premium-handle", "Premium short handle on {platform}, secure escrow only, serious buyers."),
];

/// A scheduled engine action.
#[derive(Debug, Clone)]
enum Action {
    /// A buyer shops for a listing and opens an order.
    BuyerArrive { buyer: usize },
    /// A scheduled order transition fires.
    OrderStep { order: u64, event: OrderEvent },
    /// The pricing engine sweeps one marketplace.
    PricingSweep { market: MarketplaceId },
    /// A bot posts a listing (fresh cadence post, or a restock of a
    /// sold one).
    BotPost { market: MarketplaceId, bot: usize, restock: bool },
}

/// A live (non-abandoned) order's context.
#[derive(Debug, Clone)]
struct LiveOrder {
    market: MarketplaceId,
    listing: ListingId,
    seller: SellerId,
    buyer_ix: usize,
    price_usd: f64,
    method: PaymentMethod,
    platform: Platform,
    state: OrderState,
}

/// One registered bot inventory account (its marketplace rides along in
/// every scheduled [`Action::BotPost`]).
#[derive(Debug, Clone)]
struct Bot {
    seller: SellerId,
    posts: usize,
}

/// The three-engine economy simulator. See the module docs.
pub struct EconomySim {
    cfg: EconomyConfig,
    seed: u64,
    rng: ChaCha8Rng,
    buyers: Vec<Buyer>,
    queue: BTreeMap<(i64, u64, u64), Action>,
    sched_seq: u64,
    next_order: u64,
    orders: BTreeMap<u64, LiveOrder>,
    bots: Vec<Bot>,
    bot_by_seller: BTreeMap<(MarketplaceId, u64), usize>,
    events: Vec<EconomyEvent>,
    persisted: usize,
    now_unix: i64,
    primed: bool,
}

impl EconomySim {
    /// Build a simulator for `cfg` on its own RNG substream. The buyer
    /// population is derived from `(seed, scale)` exactly like the
    /// world's listing population.
    pub fn new(seed: u64, scale: f64, cfg: EconomyConfig) -> EconomySim {
        let buyers = match cfg.escrow {
            Some(ep) => acctrade_workload::buyers::buyer_population(
                seed,
                scale,
                ep.buyers_per_unit_scale,
            ),
            None => Vec::new(),
        };
        EconomySim {
            cfg,
            seed,
            rng: ChaCha8Rng::seed_from_u64(seed ^ 0x0EC0_0EC0_0000_0001),
            buyers,
            queue: BTreeMap::new(),
            sched_seq: 0,
            next_order: 1,
            orders: BTreeMap::new(),
            bots: Vec::new(),
            bot_by_seller: BTreeMap::new(),
            events: Vec::new(),
            persisted: 0,
            now_unix: 0,
            primed: false,
        }
    }

    /// The scenario this sim runs.
    pub fn config(&self) -> &EconomyConfig {
        &self.cfg
    }

    /// The full event stream emitted so far, in emission order.
    pub fn events(&self) -> &[EconomyEvent] {
        &self.events
    }

    /// Events not yet marked persisted (the WAL-append cursor).
    pub fn unpersisted(&self) -> &[EconomyEvent] {
        &self.events[self.persisted..]
    }

    /// Advance the WAL-append cursor past every current event.
    pub fn mark_all_persisted(&mut self) {
        self.persisted = self.events.len();
    }

    /// Virtual time of the last [`EconomySim::advance_to`].
    pub fn now(&self) -> i64 {
        self.now_unix
    }

    /// Live buyer population size.
    pub fn buyer_count(&self) -> usize {
        self.buyers.len()
    }

    /// One-time setup at campaign start (`t0`): register bot sellers
    /// with their marketplaces and seed every engine's first scheduled
    /// action. Runs in the study's sequential section, both on live runs
    /// and (gagged) during resume rebuilds — at the same virtual instant.
    pub fn prime(&mut self, world: &mut World, t0_unix: i64) {
        if self.primed {
            return;
        }
        self.primed = true;
        self.now_unix = t0_unix;

        if let Some(bp) = self.cfg.bots {
            for market in ALL_MARKETPLACES {
                let state = Arc::clone(&world.markets[&market]);
                let mut state = state.write();
                for n in 0..bp.bots_per_market {
                    let global = self.bots.len() as u64;
                    let sid = state.next_seller_id();
                    let mut seller =
                        Seller::new(sid, format!("autostock_{:02}_{}", n + 1, market.config().host));
                    seller.rating = 4.6;
                    seller.completed_sales = 150;
                    seller.joined_unix = t0_unix - 200 * DAY_S;
                    state.add_seller(seller);
                    self.bot_by_seller.insert((market, sid.0), self.bots.len());
                    self.bots.push(Bot { seller: sid, posts: 0 });

                    let mut e = self.blank(t0_unix, ENTITY_BOT + global, EventKind::BotRegistered);
                    e.marketplace = market.name().to_string();
                    e.seller = Some(sid.0);
                    self.events.push(e);
                    count("economy.bots_registered");

                    // Staggered first posts so bots never share a slot.
                    let first = t0_unix + DAY_S / 2 + global as i64 * 7 * HOUR;
                    self.schedule(
                        first,
                        ENTITY_BOT + global,
                        Action::BotPost { market, bot: self.bots.len() - 1, restock: false },
                    );
                }
            }
        }

        if let Some(pp) = self.cfg.pricing {
            for market in ALL_MARKETPLACES {
                self.schedule(
                    t0_unix + pp.sweep_interval_days as i64 * DAY_S,
                    ENTITY_SWEEP + market as u64,
                    Action::PricingSweep { market },
                );
            }
        }

        if self.cfg.escrow.is_some() {
            for b in 0..self.buyers.len() {
                let first =
                    t0_unix + (self.buyers[b].first_delay_days * DAY_S as f64) as i64;
                self.schedule(first, ENTITY_BUYER + b as u64, Action::BuyerArrive { buyer: b });
            }
        }
    }

    /// Drain every scheduled action with `at <= now_unix`, in the
    /// `(time, entity, seq)` total order, mutating `world`'s market
    /// states and appending to the event stream.
    pub fn advance_to(&mut self, world: &mut World, now_unix: i64) {
        loop {
            let due = match self.queue.first_key_value() {
                Some((&(at, _, _), _)) => at <= now_unix,
                None => false,
            };
            if !due {
                break;
            }
            let Some(((at, entity, _), action)) = self.queue.pop_first() else { break };
            self.now_unix = at;
            self.handle(world, at, entity, action);
        }
        self.now_unix = now_unix;
    }

    // -- internals ---------------------------------------------------------

    fn schedule(&mut self, at: i64, entity: u64, action: Action) {
        let seq = self.sched_seq;
        self.sched_seq += 1;
        self.queue.insert((at, entity, seq), action);
    }

    fn blank(&self, at: i64, entity: u64, kind: EventKind) -> EconomyEvent {
        EconomyEvent::blank(self.events.len() as u64, at, entity, kind)
    }

    /// Per-seller exit-scam propensity: a pure hash of
    /// `(seed, market, seller)`, stable under any event interleaving
    /// (no RNG draw, so scheduling order cannot perturb it).
    fn seller_is_scammer(&self, market: MarketplaceId, seller: SellerId) -> bool {
        let Some(ep) = self.cfg.escrow else { return false };
        let digest =
            telemetry::digest64(&format!("scam:{}:{}:{}", self.seed, market.name(), seller.0));
        let word = u64::from_str_radix(&digest, 16).unwrap_or(0);
        (word as f64 / u64::MAX as f64) < ep.scam_propensity
    }

    /// Buyers prefer methods with buyer protection when the marketplace
    /// offers any (the Table 3 method matrix is the menu).
    fn pick_method(&mut self, market: MarketplaceId) -> PaymentMethod {
        let methods = market.config().payment_methods;
        let protected: Vec<PaymentMethod> =
            methods.iter().copied().filter(|m| m.has_buyer_protection()).collect();
        let pool: &[PaymentMethod] = if !protected.is_empty() && self.rng.random_bool(0.7) {
            &protected
        } else {
            methods
        };
        pool.choose(&mut self.rng).copied().unwrap_or(PaymentMethod::Unknown)
    }

    fn handle(&mut self, world: &mut World, at: i64, entity: u64, action: Action) {
        match action {
            Action::BuyerArrive { buyer } => self.buyer_arrive(world, at, buyer),
            Action::OrderStep { order, event } => self.order_step(world, at, order, event),
            Action::PricingSweep { market } => self.pricing_sweep(world, at, entity, market),
            Action::BotPost { market, bot, restock } => {
                self.bot_post(world, at, market, bot, restock)
            }
        }
    }

    fn buyer_arrive(&mut self, world: &mut World, at: i64, buyer: usize) {
        let Some(ep) = self.cfg.escrow else { return };

        // The buyer returns to shop again regardless of today's outcome.
        let gap = self.buyers[buyer].mean_gap_days * self.rng.random_range(0.6..1.4);
        self.schedule(
            at + (gap * DAY_S as f64) as i64,
            ENTITY_BUYER + buyer as u64,
            Action::BuyerArrive { buyer },
        );

        // Pick a marketplace weighted by current stock, then a listing.
        let mut stocked: Vec<(MarketplaceId, usize)> = Vec::new();
        for market in ALL_MARKETPLACES {
            let active = world.markets[&market].read().active_count();
            if active > 0 {
                stocked.push((market, active));
            }
        }
        let total: usize = stocked.iter().map(|&(_, n)| n).sum();
        if total == 0 {
            return;
        }
        let mut pick = self.rng.random_range(0..total);
        let mut market = stocked[0].0;
        for &(m, n) in &stocked {
            if pick < n {
                market = m;
                break;
            }
            pick -= n;
        }

        let state = Arc::clone(&world.markets[&market]);
        let state = state.read();
        let active: Vec<(ListingId, f64, Platform, SellerId)> = state
            .listings_sorted()
            .iter()
            .filter(|l| l.is_active())
            .map(|l| (l.id, l.price_usd, l.platform, l.seller))
            .collect();
        drop(state);
        if active.is_empty() {
            return;
        }
        let (listing, price_usd, platform, seller) =
            active[self.rng.random_range(0..active.len())];

        let method = self.pick_method(market);
        let order = self.next_order;
        self.next_order += 1;
        self.orders.insert(
            order,
            LiveOrder {
                market,
                listing,
                seller,
                buyer_ix: buyer,
                price_usd,
                method,
                platform,
                state: OrderState::Quoted,
            },
        );

        let mut e = self.blank(at, ENTITY_ORDER + order, EventKind::OrderOpened);
        e.marketplace = market.name().to_string();
        e.order = Some(order);
        e.listing = Some(listing.0);
        e.seller = Some(seller.0);
        e.buyer = Some(self.buyers[buyer].id);
        e.platform = Some(platform.name().to_string());
        e.price_usd = Some(price_usd);
        e.method = Some(method);
        e.to_state = Some(OrderState::Quoted);
        self.events.push(e);
        count("economy.orders_opened");

        let fund_prob = (ep.fund_prob * self.buyers[buyer].fund_bias).clamp(0.0, 1.0);
        if self.rng.random_bool(fund_prob) {
            let delay = self.rng.random_range(1..36) * HOUR;
            self.schedule(
                at + delay,
                ENTITY_ORDER + order,
                Action::OrderStep { order, event: OrderEvent::Fund },
            );
        }
        // Unfunded quotes simply lapse: the funnel's abandoned-cart gap.
    }

    fn order_step(&mut self, world: &mut World, at: i64, order: u64, event: OrderEvent) {
        let Some(ep) = self.cfg.escrow else { return };
        let Some(live) = self.orders.get(&order) else { return };
        let Ok(next) = live.state.apply(event) else { return };
        let (from, live) = {
            let prev = live.state;
            let mut updated = live.clone();
            updated.state = next;
            self.orders.insert(order, updated.clone());
            (prev, updated)
        };

        let mut e = self.blank(at, ENTITY_ORDER + order, EventKind::OrderTransition);
        e.marketplace = live.market.name().to_string();
        e.order = Some(order);
        e.listing = Some(live.listing.0);
        e.seller = Some(live.seller.0);
        e.buyer = Some(self.buyers[live.buyer_ix].id);
        e.platform = Some(live.platform.name().to_string());
        e.price_usd = Some(live.price_usd);
        e.method = Some(live.method);
        e.from_state = Some(from);
        e.to_state = Some(next);
        e.cause = Some(format!("{event:?}"));
        self.events.push(e);

        match event {
            OrderEvent::Fund => {
                count("economy.orders_funded");
                if self.seller_is_scammer(live.market, live.seller) {
                    self.schedule(
                        at + ep.delivery_deadline_days as i64 * DAY_S,
                        ENTITY_ORDER + order,
                        Action::OrderStep { order, event: OrderEvent::DeliveryTimeout },
                    );
                } else {
                    let window = (ep.delivery_deadline_days as i64 * 24 - 4).max(2);
                    let delay = self.rng.random_range(2..window) * HOUR;
                    self.schedule(
                        at + delay,
                        ENTITY_ORDER + order,
                        Action::OrderStep { order, event: OrderEvent::Deliver },
                    );
                }
            }
            OrderEvent::Deliver => {
                count("economy.orders_delivered");
                {
                    let state = Arc::clone(&world.markets[&live.market]);
                    let mut state = state.write();
                    if let Some(l) = state.listing_mut(live.listing) {
                        if l.is_active() {
                            l.close(ListingState::Sold, at);
                        }
                    }
                }
                self.demand_shock(world, at, live.market, live.seller, true);
                if let Some(bp) = self.cfg.bots {
                    if let Some(&bix) = self.bot_by_seller.get(&(live.market, live.seller.0)) {
                        if self.rng.random_bool(bp.restock_prob) {
                            self.schedule(
                                at + DAY_S,
                                ENTITY_BOT + bix as u64,
                                Action::BotPost { market: live.market, bot: bix, restock: true },
                            );
                        }
                    }
                }
                let dispute_prob =
                    (ep.dispute_prob * self.buyers[live.buyer_ix].dispute_bias).clamp(0.0, 1.0);
                let (next_event, max_hours) = if self.rng.random_bool(dispute_prob) {
                    (OrderEvent::Dispute, 48)
                } else {
                    (OrderEvent::Confirm, (ep.confirm_days * 24).max(2) as i64)
                };
                let delay = self.rng.random_range(1..max_hours) * HOUR;
                self.schedule(
                    at + delay,
                    ENTITY_ORDER + order,
                    Action::OrderStep { order, event: next_event },
                );
            }
            OrderEvent::Confirm => count("economy.orders_released"),
            OrderEvent::Dispute => {
                count("economy.orders_disputed");
                self.demand_shock(world, at, live.market, live.seller, false);
                self.schedule(
                    at + DAY_S,
                    ENTITY_ORDER + order,
                    Action::OrderStep { order, event: OrderEvent::Refund },
                );
            }
            OrderEvent::Refund => count("economy.orders_refunded"),
            OrderEvent::DeliveryTimeout => {
                count("economy.exit_scams");
                self.demand_shock(world, at, live.market, live.seller, false);
            }
        }
    }

    /// A settled sale nudges the seller's remaining stock up; a dispute
    /// or exit scam forces it down (reputation discount).
    fn demand_shock(
        &mut self,
        world: &mut World,
        at: i64,
        market: MarketplaceId,
        seller: SellerId,
        up: bool,
    ) {
        let Some(pp) = self.cfg.pricing else { return };
        let factor =
            if up { 1.0 + pp.demand_shock_pct } else { 1.0 - pp.demand_shock_pct };
        let cause = if up { CAUSE_SHOCK_SALE } else { CAUSE_SHOCK_DISPUTE };
        let state = Arc::clone(&world.markets[&market]);
        let mut state = state.write();
        let targets: Vec<(ListingId, f64, Platform)> = state
            .listings_sorted()
            .iter()
            .filter(|l| l.is_active() && l.seller == seller)
            .map(|l| (l.id, l.price_usd, l.platform))
            .collect();
        for (lid, prev, platform) in targets {
            let new = round_cents((prev * factor).max(1.0));
            if (new - prev).abs() < 0.005 {
                continue;
            }
            if let Some(l) = state.listing_mut(lid) {
                l.price_usd = new;
            }
            let mut e = self.blank(at, ENTITY_SWEEP + market as u64, EventKind::PriceTick);
            e.marketplace = market.name().to_string();
            e.listing = Some(lid.0);
            e.seller = Some(seller.0);
            e.platform = Some(platform.name().to_string());
            e.prev_price_usd = Some(prev);
            e.price_usd = Some(new);
            e.cause = Some(cause.to_string());
            self.events.push(e);
            count("economy.price_ticks");
        }
    }

    fn pricing_sweep(&mut self, world: &mut World, at: i64, entity: u64, market: MarketplaceId) {
        let Some(pp) = self.cfg.pricing else { return };
        self.schedule(
            at + pp.sweep_interval_days as i64 * DAY_S,
            entity,
            Action::PricingSweep { market },
        );

        let state = Arc::clone(&world.markets[&market]);
        let mut state = state.write();
        let snapshot: Vec<(ListingId, f64, Platform, i64)> = state
            .listings_sorted()
            .iter()
            .filter(|l| l.is_active())
            .map(|l| (l.id, l.price_usd, l.platform, l.listed_unix))
            .collect();
        for (lid, prev, platform, listed_unix) in snapshot {
            let mut cause = None;
            let mut new = prev;
            if self.rng.random_bool(pp.drift_prob) {
                let drift = self.rng.random_range(-pp.drift_max_pct..pp.drift_max_pct);
                new = prev * (1.0 + drift);
                cause = Some(CAUSE_DRIFT);
            } else if at - listed_unix > pp.stale_age_days as i64 * DAY_S
                && self.rng.random_bool(pp.stale_discount_prob)
            {
                new = prev * (1.0 - pp.stale_discount_pct);
                cause = Some(CAUSE_STALE_DISCOUNT);
            }
            let Some(cause) = cause else { continue };
            let new = round_cents(new.max(1.0));
            if (new - prev).abs() < 0.005 {
                continue;
            }
            if let Some(l) = state.listing_mut(lid) {
                l.price_usd = new;
            }
            let mut e = self.blank(at, ENTITY_SWEEP + market as u64, EventKind::PriceTick);
            e.marketplace = market.name().to_string();
            e.listing = Some(lid.0);
            e.platform = Some(platform.name().to_string());
            e.prev_price_usd = Some(prev);
            e.price_usd = Some(new);
            e.cause = Some(cause.to_string());
            self.events.push(e);
            count("economy.price_ticks");
        }
    }

    fn bot_post(&mut self, world: &mut World, at: i64, market: MarketplaceId, bot: usize, restock: bool) {
        let Some(bp) = self.cfg.bots else { return };
        let Some(&Bot { seller, posts, .. }) = self.bots.get(bot) else { return };

        if !restock {
            // Cadence posts reschedule themselves; restocks are one-shot.
            let jitter = self.rng.random_range(0.75..1.25);
            let next = at + (bp.post_interval_days as f64 * jitter * DAY_S as f64) as i64;
            self.schedule(
                next,
                ENTITY_BOT + bot as u64,
                Action::BotPost { market, bot, restock: false },
            );
        }

        let platform = weighted_platform(market.config().platform_weights, &mut self.rng);
        let price = round_cents(prices::sample_price(platform, &mut self.rng));
        let churn = bp.template_churn_every.max(1);
        let (tag, body) = BOT_TEMPLATES[(posts / churn) % BOT_TEMPLATES.len()];

        let state = Arc::clone(&world.markets[&market]);
        let mut state = state.write();
        let lid = state.next_listing_id();
        let mut listing = Listing::new(lid, market, platform, seller, price);
        listing.listed_unix = at;
        listing.title = format!("{} account | {}", platform.name(), tag);
        listing.description = Some(body.replace("{platform}", platform.name()));
        state.add_listing(listing);
        drop(state);
        if let Some(b) = self.bots.get_mut(bot) {
            b.posts += 1;
        }

        let mut e = self.blank(at, ENTITY_BOT + bot as u64, EventKind::BotPost);
        e.marketplace = market.name().to_string();
        e.listing = Some(lid.0);
        e.seller = Some(seller.0);
        e.platform = Some(platform.name().to_string());
        e.price_usd = Some(price);
        e.cause = Some(tag.to_string());
        self.events.push(e);
        count("economy.bot_posts");
        if restock {
            count("economy.bot_restocks");
        }
    }
}

/// Round a price to whole cents, the way listing pages display it —
/// the crawler re-parses displayed prices, so the ground truth must not
/// carry sub-cent precision the sites cannot render.
fn round_cents(usd: f64) -> f64 {
    (usd * 100.0).round() / 100.0
}

/// Weighted platform draw over a marketplace's configured listing mix.
fn weighted_platform<R: foundation::rng::Rng + ?Sized>(
    weights: &[(Platform, f64)],
    rng: &mut R,
) -> Platform {
    let total: f64 = weights.iter().map(|&(_, w)| w).sum();
    let mut pick = rng.random_range(0.0..total);
    for &(p, w) in weights {
        if pick < w {
            return p;
        }
        pick -= w;
    }
    weights.last().map(|&(p, _)| p).unwrap_or(Platform::Instagram)
}

/// Counter shorthand (all economy counters share the `economy.` prefix).
fn count(name: &'static str) {
    telemetry::with_recorder(|r| r.incr(name, &[], 1));
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::stream_digest;
    use acctrade_workload::world::WorldParams;

    fn sim_world(seed: u64) -> World {
        World::generate(WorldParams { seed, scale: 0.01 })
    }

    fn run_scenario(seed: u64, name: &str) -> Vec<EconomyEvent> {
        let mut world = sim_world(seed);
        let cfg = EconomyConfig::scenario(name).unwrap();
        let mut sim = EconomySim::new(seed, 0.01, cfg);
        let t0 = 1_706_745_600;
        sim.prime(&mut world, t0);
        for step in 1..=4 {
            let at = t0 + step * 15 * DAY_S;
            world.step_iteration(at);
            sim.advance_to(&mut world, at);
        }
        sim.events().to_vec()
    }

    #[test]
    fn all_scenario_exercises_every_engine() {
        let events = run_scenario(2024, "all");
        let kinds: std::collections::BTreeSet<EventKind> =
            events.iter().map(|e| e.kind).collect();
        assert!(kinds.contains(&EventKind::OrderOpened), "no orders opened");
        assert!(kinds.contains(&EventKind::OrderTransition), "no transitions");
        assert!(kinds.contains(&EventKind::PriceTick), "no price ticks");
        assert!(kinds.contains(&EventKind::BotRegistered), "no bots registered");
        assert!(kinds.contains(&EventKind::BotPost), "no bot posts");
        // Sequence numbers are dense and ordered.
        for (i, e) in events.iter().enumerate() {
            assert_eq!(e.seq, i as u64);
        }
        // Virtual time never goes backwards along the stream.
        assert!(events.windows(2).all(|w| w[0].at_unix <= w[1].at_unix));
    }

    #[test]
    fn same_seed_streams_are_byte_identical() {
        let a = run_scenario(7, "all");
        let b = run_scenario(7, "all");
        assert_eq!(stream_digest(&a), stream_digest(&b));
        assert_eq!(a, b);
    }

    #[test]
    fn different_seeds_diverge() {
        let a = run_scenario(7, "all");
        let b = run_scenario(8, "all");
        assert_ne!(stream_digest(&a), stream_digest(&b));
    }

    #[test]
    fn escrow_reaches_terminal_states() {
        let events = run_scenario(2024, "escrow-basic");
        let released = events
            .iter()
            .filter(|e| e.to_state == Some(OrderState::Released))
            .count();
        assert!(released > 0, "no order ever settled");
        // escrow-basic runs without the pricing engine: no ticks.
        assert!(events.iter().all(|e| e.kind != EventKind::PriceTick));
    }

    #[test]
    fn disabled_config_emits_nothing() {
        let seed = 11;
        let mut world = sim_world(seed);
        let cfg = EconomyConfig { name: "none", escrow: None, pricing: None, bots: None };
        let mut sim = EconomySim::new(seed, 0.01, cfg);
        sim.prime(&mut world, 0);
        sim.advance_to(&mut world, 10_000 * DAY_S);
        assert!(sim.events().is_empty());
    }
}
