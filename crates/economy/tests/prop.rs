//! Property tests for the economy subsystem.
//!
//! Two contracts from the issue, plus the codec bridge between them:
//! no event permutation can drive the order machine through an illegal
//! transition, and a persisted (serialized) event stream replays to a
//! byte-identical final state.

use economy::event::{EconomyEvent, EventKind, CAUSE_DRIFT};
use economy::{EconomySim, EconomyConfig, Ledger, OrderEvent, OrderState, PaymentMethod};
use foundation::check::vec as vec_of;
use foundation::prop_check;

fn opened(seq: u64, order: u64, at: i64) -> EconomyEvent {
    let mut e = EconomyEvent::blank(seq, at, 2_000_000 + order, EventKind::OrderOpened);
    e.marketplace = "Z2U".into();
    e.order = Some(order);
    e.listing = Some(100 + order);
    e.seller = Some(1 + order % 7);
    e.buyer = Some(1_000_000 + order);
    e.platform = Some("Instagram".into());
    e.price_usd = Some(25.0 + order as f64);
    e.method = Some(PaymentMethod::PayPal);
    e.to_state = Some(OrderState::Quoted);
    e
}

fn transition(
    seq: u64,
    order: u64,
    at: i64,
    from: OrderState,
    ev: OrderEvent,
    to: OrderState,
) -> EconomyEvent {
    let mut e = EconomyEvent::blank(seq, at, 2_000_000 + order, EventKind::OrderTransition);
    e.marketplace = "Z2U".into();
    e.order = Some(order);
    e.from_state = Some(from);
    e.to_state = Some(to);
    e.cause = Some(format!("{ev:?}"));
    e
}

prop_check! {
    /// Feeding the order machine ANY event permutation can never
    /// produce an illegal transition: rejected events leave the state
    /// untouched, accepted ones traverse only the six lifecycle edges,
    /// terminals absorb everything — and the accepted subsequence
    /// replays cleanly through the ledger to the same final state.
    fn no_event_permutation_breaks_the_machine(walk in vec_of(0usize..6, 1..40)) {
        use OrderEvent::*;
        use OrderState::*;
        let legal = [
            (Quoted, Fund, Funded),
            (Funded, Deliver, CredentialsDelivered),
            (Funded, DeliveryTimeout, ExitScam),
            (CredentialsDelivered, Confirm, Released),
            (CredentialsDelivered, Dispute, Disputed),
            (Disputed, Refund, Refunded),
        ];
        let mut state = Quoted;
        let mut stream = vec![opened(0, 1, 100)];
        for &ix in &walk {
            let ev = OrderEvent::all()[ix];
            let was_terminal = state.is_terminal();
            match state.apply(ev) {
                Ok(next) => {
                    assert!(!was_terminal, "terminal state {state:?} accepted {ev:?}");
                    assert!(
                        legal.contains(&(state, ev, next)),
                        "{state:?} --{ev:?}--> {next:?} is not a lifecycle edge"
                    );
                    let seq = stream.len() as u64;
                    let at = 100 + seq as i64;
                    stream.push(transition(seq, 1, at, state, ev, next));
                    state = next;
                }
                Err(ill) => {
                    assert_eq!((ill.state, ill.event), (state, ev));
                }
            }
        }
        let ledger = Ledger::replay(&stream).expect("accepted subsequence must replay");
        assert_eq!(ledger.orders[&1].state, state);
        assert_eq!(
            ledger.orders[&1].settled_unix.is_some(),
            state.is_terminal(),
        );
    }

    /// Serialize → parse → replay is lossless: a synthetic multi-order
    /// stream survives the WAL text round trip byte-for-byte, and the
    /// parsed copy replays to a ledger with the identical state digest.
    fn persisted_stream_replays_byte_identically(
        walks in vec_of(vec_of(0usize..6, 1..8), 1..6),
    ) {
        let mut stream: Vec<EconomyEvent> = Vec::new();
        for (i, walk) in walks.iter().enumerate() {
            let order = i as u64 + 1;
            let mut state = OrderState::Quoted;
            stream.push(opened(stream.len() as u64, order, 100 + i as i64));
            for &ix in walk {
                let ev = OrderEvent::all()[ix];
                if let Ok(next) = state.apply(ev) {
                    let seq = stream.len() as u64;
                    stream.push(transition(seq, order, 100 + seq as i64, state, ev, next));
                    state = next;
                }
            }
            // A repricing tick between orders, to mix record shapes.
            let seq = stream.len() as u64;
            let mut tick = EconomyEvent::blank(seq, 200 + seq as i64, 3_000_000, EventKind::PriceTick);
            tick.marketplace = "Z2U".into();
            tick.listing = Some(100 + order);
            tick.platform = Some("Instagram".into());
            tick.prev_price_usd = Some(25.0 + order as f64);
            tick.price_usd = Some(24.0 + order as f64);
            tick.cause = Some(CAUSE_DRIFT.into());
            stream.push(tick);
        }

        let lines: Vec<String> = stream.iter().map(|e| e.to_json_line()).collect();
        let parsed: Vec<EconomyEvent> = lines
            .iter()
            .map(|l| EconomyEvent::parse(l).expect("wal line must parse"))
            .collect();
        assert_eq!(parsed, stream, "text round trip altered the stream");
        let relines: Vec<String> = parsed.iter().map(|e| e.to_json_line()).collect();
        assert_eq!(relines, lines, "re-serialization is not byte-identical");

        let a = Ledger::replay(&stream).expect("original stream replays");
        let b = Ledger::replay(&parsed).expect("parsed stream replays");
        assert_eq!(a.state_digest(), b.state_digest());
        assert_eq!(a, b);
    }
}

/// End-to-end: a real simulated economy, serialized the way the WAL
/// persists it, parses back and replays to the identical ledger.
#[test]
fn simulated_stream_survives_persistence_roundtrip() {
    use acctrade_workload::world::{World, WorldParams};

    let seed = 2024;
    let mut world = World::generate(WorldParams { seed, scale: 0.01 });
    let cfg = EconomyConfig::scenario("all").expect("builtin scenario");
    let mut sim = EconomySim::new(seed, 0.01, cfg);
    let t0 = 1_706_745_600;
    sim.prime(&mut world, t0);
    for step in 1..=3i64 {
        let at = t0 + step * 15 * 86_400;
        world.step_iteration(at);
        sim.advance_to(&mut world, at);
    }
    assert!(!sim.events().is_empty(), "the all scenario must emit events");

    let lines: Vec<String> = sim.events().iter().map(|e| e.to_json_line()).collect();
    let parsed: Vec<EconomyEvent> = lines
        .iter()
        .map(|l| EconomyEvent::parse(l).expect("wal line parses"))
        .collect();
    assert_eq!(parsed.as_slice(), sim.events());

    let live = Ledger::replay(sim.events()).expect("live stream replays");
    let replayed = Ledger::replay(&parsed).expect("persisted stream replays");
    assert_eq!(live.state_digest(), replayed.state_digest());
    assert!(live.settled().count() > 0, "some order should settle in 45 days");
    assert!(!live.ticks.is_empty(), "pricing engine should tick");
    assert!(!live.bot_posts.is_empty(), "bots should post");
}
