//! The advertised-price model.
//!
//! §4.1's price facts: per-platform medians (Facebook $14 … YouTube $759),
//! a grand total of $64.2M over 38,253 listings (mean ≈ $1,679 — a heavy
//! tail), 345 listings above $20k with median $45k and max $5M.
//!
//! The model is a two-component mixture per platform:
//!
//! * **base** — log-normal centered on the platform's median;
//! * **premium** — with small probability, a log-normal centered on $45k,
//!   clamped to $5M (the paper's observed premium segment).

use acctrade_social::platform::Platform;
use foundation::rng::{Rng, RngExt};

/// Probability a listing belongs to the premium segment
/// (345 / 38,253 ≈ 0.9%).
pub(crate) const PREMIUM_PROB: f64 = 345.0 / 38_253.0;

/// Sample a standard normal via Box–Muller.
fn standard_normal<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    let u1: f64 = rng.random_range(f64::MIN_POSITIVE..1.0);
    let u2: f64 = rng.random_range(0.0..1.0);
    (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

/// Sample a log-normal with the given *median* and log-space sigma.
pub fn lognormal_with_median<R: Rng + ?Sized>(median: f64, sigma: f64, rng: &mut R) -> f64 {
    debug_assert!(median > 0.0 && sigma >= 0.0);
    (median.ln() + sigma * standard_normal(rng)).exp()
}

/// Log-space sigma of the base price component per platform. Tuned so the
/// all-platform mean lands near the paper's ≈ $1.7k with the premium
/// mixture included.
fn base_sigma(platform: Platform) -> f64 {
    match platform {
        // Cheap commodity accounts with occasional big pages.
        Platform::Facebook | Platform::X => 1.9,
        Platform::Instagram => 1.5,
        Platform::TikTok | Platform::YouTube => 1.4,
    }
}

/// Sample one advertised price for a listing on `platform`.
pub fn sample_price<R: Rng + ?Sized>(platform: Platform, rng: &mut R) -> f64 {
    let price = if rng.random_bool(PREMIUM_PROB) {
        // Premium segment: lognormal(median $20k, σ 1.2) *truncated*
        // below $20k — the conditional median of that distribution is the
        // paper's $45k. Roughly one listing per full-scale run is the $5M
        // whale itself (the paper's observed maximum).
        if rng.random_bool(1.0 / 300.0) {
            5_000_000.0
        } else {
            loop {
                let draw = lognormal_with_median(20_000.0, 1.2, rng);
                if draw > 20_050.0 {
                    break draw.min(4_900_000.0);
                }
            }
        }
    } else {
        let median = platform.median_advertised_price_usd();
        lognormal_with_median(median, base_sigma(platform), rng).clamp(1.0, 19_999.0)
    };
    // Listings price in whole dollars under $1k, round numbers above.
    if price < 1_000.0 {
        price.round().max(1.0)
    } else {
        (price / 50.0).round() * 50.0
    }
}

/// Sample a claimed monthly revenue for a monetized listing (§4.1: $1–$922,
/// median $136).
pub fn sample_monthly_revenue<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    lognormal_with_median(136.0, 0.9, rng).clamp(1.0, 922.0).round()
}

#[cfg(test)]
mod tests {
    use super::*;
    use acctrade_social::platform::ALL_PLATFORMS;
    use foundation::rng::SeedableRng;
    use foundation::rng::ChaCha8Rng;

    fn median(mut v: Vec<f64>) -> f64 {
        v.sort_by(|a, b| a.partial_cmp(b).unwrap());
        v[v.len() / 2]
    }

    #[test]
    fn per_platform_medians_near_paper() {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        for p in ALL_PLATFORMS {
            let samples: Vec<f64> = (0..20_000).map(|_| sample_price(p, &mut rng)).collect();
            let m = median(samples);
            let target = p.median_advertised_price_usd();
            assert!(
                (m - target).abs() / target < 0.25,
                "{p}: median {m} vs target {target}"
            );
        }
    }

    #[test]
    fn price_ordering_matches_paper() {
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let med = |p: Platform, rng: &mut ChaCha8Rng| {
            median((0..10_000).map(|_| sample_price(p, rng)).collect())
        };
        let fb = med(Platform::Facebook, &mut rng);
        let x = med(Platform::X, &mut rng);
        let ig = med(Platform::Instagram, &mut rng);
        let tt = med(Platform::TikTok, &mut rng);
        assert!(fb < x && x < ig && ig < tt, "fb={fb} x={x} ig={ig} tt={tt}");
    }

    #[test]
    fn premium_segment_frequency_and_range() {
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let n = 100_000;
        let mut premium = Vec::new();
        for _ in 0..n {
            let price = sample_price(Platform::Instagram, &mut rng);
            assert!(price >= 1.0);
            assert!(price <= 5_000_000.0);
            if price > 20_000.0 {
                premium.push(price);
            }
        }
        let rate = premium.len() as f64 / n as f64;
        assert!((rate - PREMIUM_PROB).abs() < 0.004, "premium rate {rate}");
        let m = median(premium);
        assert!((m - 45_000.0).abs() / 45_000.0 < 0.35, "premium median {m}");
    }

    #[test]
    fn total_value_shape_is_tens_of_millions() {
        // 38,253 listings mixed across platforms should total $40M–$90M.
        let mut rng = ChaCha8Rng::seed_from_u64(4);
        let mut total = 0.0;
        for i in 0..38_253 {
            let p = ALL_PLATFORMS[i % 5];
            total += sample_price(p, &mut rng);
        }
        assert!(
            (40_000_000.0..90_000_000.0).contains(&total),
            "total ${total:.0}"
        );
    }

    #[test]
    fn revenue_band_respected() {
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        let samples: Vec<f64> = (0..5_000).map(|_| sample_monthly_revenue(&mut rng)).collect();
        assert!(samples.iter().all(|&r| (1.0..=922.0).contains(&r)));
        let m = median(samples);
        assert!((m - 136.0).abs() < 30.0, "revenue median {m}");
    }
}
