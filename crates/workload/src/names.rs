//! Handle, display-name, and seller-username generation.
//!
//! §8 notes that blocked accounts "frequently featured names associated
//! with trends like crypto, NFTs, beauty, luxury, animals, or
//! miscellaneous word combinations" — so the generator builds names from
//! themed word pools, with trend-themed pools used for farmed and scam
//! accounts.

use foundation::rng::IndexedRandom;
use foundation::rng::Rng;
#[allow(unused_imports)]
use foundation::rng::RngExt;

/// Name theme — picks the word pools.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NameTheme {
    /// Trending-topic names (crypto/NFT/luxury/beauty/animals).
    Trending,
    /// Niche-content names (memes, fashion, games, travel, ...).
    Niche,
    /// Person-like names (organic accounts).
    Personal,
}

const TREND_WORDS: &[&str] = &[
    "crypto", "nft", "bitcoin", "luxury", "beauty", "animals", "pets", "forex", "trading",
    "giveaway", "wealth", "rich", "gold", "diamond", "millionaire",
];

const NICHE_WORDS: &[&str] = &[
    "memes", "humor", "fashion", "style", "games", "gaming", "travel", "fitness", "food",
    "cars", "music", "dance", "art", "photo", "nature", "quotes", "sports", "anime", "movies",
    "tech",
];

const SUFFIX_WORDS: &[&str] = &[
    "daily", "hub", "world", "zone", "central", "official", "page", "club", "life", "vibes",
    "nation", "source", "spot", "haven", "feed",
];

const FIRST_NAMES: &[&str] = &[
    "alex", "maria", "james", "sofia", "david", "emma", "omar", "aisha", "liam", "chloe", "noah",
    "fatima", "ethan", "nina", "lucas", "sara", "daniel", "leila", "ryan", "anna", "karim",
    "julia", "victor", "amira", "oscar", "diana", "felix", "laura", "ivan", "maya",
];

const LAST_NAMES: &[&str] = &[
    "smith", "garcia", "khan", "chen", "mueller", "rossi", "silva", "novak", "petrov", "tanaka",
    "owens", "berg", "costa", "ali", "jones", "walker", "reed", "ortiz", "kaya", "young",
];

/// Generate a handle (lowercase, platform-safe) for a theme. `salt`
/// guarantees cross-account uniqueness.
pub fn handle<R: Rng + ?Sized>(theme: NameTheme, salt: u64, rng: &mut R) -> String {
    let core = match theme {
        NameTheme::Trending => format!(
            "{}_{}",
            TREND_WORDS.choose(rng).expect("non-empty"), // conformance: allow(panic-policy) — static non-empty word pool
            SUFFIX_WORDS.choose(rng).expect("non-empty")
        ),
        NameTheme::Niche => format!(
            "{}.{}",
            NICHE_WORDS.choose(rng).expect("non-empty"), // conformance: allow(panic-policy) — static non-empty word pool
            SUFFIX_WORDS.choose(rng).expect("non-empty")
        ),
        NameTheme::Personal => format!(
            "{}{}",
            FIRST_NAMES.choose(rng).expect("non-empty"), // conformance: allow(panic-policy) — static non-empty word pool
            LAST_NAMES.choose(rng).expect("non-empty")
        ),
    };
    // Append a short salt-derived tag; real bulk registration does the
    // same (Thomas et al.'s naming-pattern observation).
    format!("{core}{}", salt % 10_000)
}

/// Generate a display name matching the handle's theme.
pub fn display_name<R: Rng + ?Sized>(theme: NameTheme, rng: &mut R) -> String {
    fn cap(s: &str) -> String {
        let mut c = s.chars();
        match c.next() {
            Some(f) => f.to_uppercase().collect::<String>() + c.as_str(),
            None => String::new(),
        }
    }
    match theme {
        NameTheme::Trending => format!(
            "{} {}",
            cap(TREND_WORDS.choose(rng).expect("non-empty")), // conformance: allow(panic-policy) — static non-empty word pool
            cap(SUFFIX_WORDS.choose(rng).expect("non-empty"))
        ),
        NameTheme::Niche => format!(
            "{} {}",
            cap(NICHE_WORDS.choose(rng).expect("non-empty")), // conformance: allow(panic-policy) — static non-empty word pool
            cap(SUFFIX_WORDS.choose(rng).expect("non-empty"))
        ),
        NameTheme::Personal => format!(
            "{} {}",
            cap(FIRST_NAMES.choose(rng).expect("non-empty")), // conformance: allow(panic-policy) — static non-empty word pool
            cap(LAST_NAMES.choose(rng).expect("non-empty"))
        ),
    }
}

/// Generate a marketplace seller username.
pub fn seller_username<R: Rng + ?Sized>(salt: u64, rng: &mut R) -> String {
    // Every style carries the salt so usernames are unique per
    // marketplace (Table 1 counts distinct sellers).
    let styles = [
        format!("{}{}", FIRST_NAMES.choose(rng).expect("x"), salt % 100_000), // conformance: allow(panic-policy) — static non-empty word pool
        format!(
            "{}_{}{}",
            NICHE_WORDS.choose(rng).expect("x"), // conformance: allow(panic-policy) — static non-empty word pool
            ["seller", "store", "deals", "shop", "trade"].choose(rng).expect("x"),
            salt % 100_000
        ),
        format!("vendor_{}", salt % 100_000),
    ];
    styles.choose(rng).expect("non-empty").clone() // conformance: allow(panic-policy) — `styles` is a non-empty literal array
}

/// Does the name mention a trending topic (the moderation engine's
/// keyword signal)?
// conformance: allow(pub-hygiene) — tested keyword-signal surface kept as public API
pub fn is_trending_name(name: &str) -> bool {
    let lower = name.to_ascii_lowercase();
    TREND_WORDS.iter().any(|w| lower.contains(w))
}

#[cfg(test)]
mod tests {
    use super::*;
    use foundation::rng::SeedableRng;
    use foundation::rng::ChaCha8Rng;

    #[test]
    fn handles_are_lowercase_and_salted() {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        for theme in [NameTheme::Trending, NameTheme::Niche, NameTheme::Personal] {
            let h = handle(theme, 1234, &mut rng);
            assert!(h.chars().all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '_' || c == '.'));
            assert!(h.ends_with("1234"));
        }
    }

    #[test]
    fn trending_handles_carry_trend_words() {
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        for i in 0..50 {
            let h = handle(NameTheme::Trending, i, &mut rng);
            assert!(is_trending_name(&h), "handle {h} lacks trend word");
        }
    }

    #[test]
    fn personal_names_avoid_trend_words_mostly() {
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let trendy = (0..200)
            .filter(|&i| is_trending_name(&handle(NameTheme::Personal, i, &mut rng)))
            .count();
        assert!(trendy < 10, "{trendy} personal names look trending");
    }

    #[test]
    fn display_names_are_capitalized() {
        let mut rng = ChaCha8Rng::seed_from_u64(4);
        let n = display_name(NameTheme::Niche, &mut rng);
        assert!(n.chars().next().unwrap().is_uppercase());
        assert!(n.contains(' '));
    }

    #[test]
    fn seller_usernames_nonempty_and_varied() {
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        let names: std::collections::HashSet<String> =
            (0..100).map(|i| seller_username(i, &mut rng)).collect();
        assert!(names.len() > 50, "too few distinct usernames: {}", names.len());
    }
}
