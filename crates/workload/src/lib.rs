#![warn(missing_docs)]

//! # acctrade-workload
//!
//! The calibrated world generator: instantiates the entire measured
//! ecosystem — sellers, listings, accounts, posts, underground forums —
//! with marginal distributions matching the paper's published statistics,
//! so the measurement pipeline can *rediscover* those statistics through
//! the same noisy channels the authors faced.
//!
//! * [`buyers`] — the demand-side population the economy subsystem
//!   draws escrow orders from;
//! * [`calibration`] — every constant from the paper's tables and text;
//! * [`categories`] — marketplace categories (212), platform profile
//!   categories (288), locations (140 across 3,236 profiles);
//! * [`names`] — handle / display-name / seller-username generation;
//! * [`prices`] — the per-platform price model (medians + heavy tail);
//! * [`textgen`] — post text: 16 scam template families (Table 6's
//!   taxonomy), dozens of benign topics, and non-English decoys;
//! * [`world`] — [`world::World`]: generate, deploy on a fabric, and
//!   evolve across crawl iterations (Figure 2's replenishment).

pub mod buyers;
pub mod calibration;
pub mod categories;
pub mod names;
pub mod prices;
pub mod textgen;
pub mod world;

pub use textgen::{ScamCategory, ScamSubcategory};
pub use world::{World, WorldParams, WorldTruth};
