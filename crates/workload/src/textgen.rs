//! Post-text generation: the §6 scam taxonomy and the benign background.
//!
//! The paper's topic model found **86 clusters**, of which **16** were
//! scam-related, rolling up into **six scam categories** (Table 6). We
//! generate text from exactly that structure: 16 scam template families
//! (one per scam cluster) and 70 benign topic families, each family a set
//! of slot-filled templates sharing a distinctive lexical core — which is
//! what makes the downstream embedding + density-clustering pipeline
//! meaningful rather than decorative.
//!
//! Non-English decoy posts exercise the language filter the same way the
//! real corpus exercised CLD2.

use foundation::rng::IndexedRandom;
use foundation::rng::Rng;
#[allow(unused_imports)]
use foundation::rng::RngExt;

/// The six §6 scam categories (Table 6 rows).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum ScamCategory {
    /// Financial.
    Financial,
    /// Phishing.
    Phishing,
    /// Product fraud.
    ProductFraud,
    /// Adult content.
    AdultContent,
    /// Impersonation.
    Impersonation,
    /// Engagement bait.
    EngagementBait,
}

impl ScamCategory {
    /// Category label as printed in Table 6.
    pub fn label(self) -> &'static str {
        match self {
            ScamCategory::Financial => "Financial Scams",
            ScamCategory::Phishing => "Phishing",
            ScamCategory::ProductFraud => "Product/Service Fraud",
            ScamCategory::AdultContent => "Adult Content",
            ScamCategory::Impersonation => "Impersonation",
            ScamCategory::EngagementBait => "Engagement Bait",
        }
    }

    /// All categories in Table 6 order.
    pub fn all() -> [ScamCategory; 6] {
        [
            ScamCategory::Financial,
            ScamCategory::Phishing,
            ScamCategory::ProductFraud,
            ScamCategory::AdultContent,
            ScamCategory::Impersonation,
            ScamCategory::EngagementBait,
        ]
    }

    /// Keywords the manual-vetting oracle uses to decide whether a cluster
    /// belongs to this category (the stand-in for the authors' manual
    /// analysis of 25 sampled posts per cluster).
    pub fn vetting_keywords(self) -> &'static [&'static str] {
        match self {
            ScamCategory::Financial => {
                &["bitcoin", "crypto", "wallet", "profit", "invest", "nft", "donate", "charity", "portfolio", "consultant", "consulting", "wealth"]
            }
            ScamCategory::Phishing => &["click", "link", "verify", "login", "claim", "dm", "password"],
            ScamCategory::ProductFraud => {
                &["order", "shipping", "deal", "discount", "booking", "rental", "merch", "course", "betting", "picks", "book", "deposit", "enroll", "scholarship", "selling"]
            }
            ScamCategory::AdultContent => &["lonely", "chat", "private", "photos", "date", "meet"],
            ScamCategory::Impersonation => {
                &["official", "support", "celebrity", "helpdesk", "agent", "management"]
            }
            ScamCategory::EngagementBait => {
                &["follow", "like", "subscribe", "share", "goodmorning", "blessed", "motivation"]
            }
        }
    }
}

/// The sixteen §6 scam clusters (Table 6 sub-rows).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum ScamSubcategory {
    /// Crypto scams.
    CryptoScams,
    /// Nft giveaway.
    NftGiveaway,
    /// Financial consulting.
    FinancialConsulting,
    /// Charity exploitation.
    CharityExploitation,
    /// Phishing trends.
    PhishingTrends,
    /// Phishing chat.
    PhishingChat,
    /// Product promotion.
    ProductPromotion,
    /// Fake travel.
    FakeTravel,
    /// Vehicle fraud.
    VehicleFraud,
    /// Sports betting.
    SportsBetting,
    /// Fake education.
    FakeEducation,
    /// Catphishing.
    Catphishing,
    /// Public figure impersonation.
    PublicFigureImpersonation,
    /// Fake tech support.
    FakeTechSupport,
    /// Like follow requests.
    LikeFollowRequests,
    /// Greetings motivation.
    GreetingsMotivation,
}

/// All sixteen subcategories in Table 6 order.
pub const ALL_SUBCATEGORIES: [ScamSubcategory; 16] = [
    ScamSubcategory::CryptoScams,
    ScamSubcategory::NftGiveaway,
    ScamSubcategory::FinancialConsulting,
    ScamSubcategory::CharityExploitation,
    ScamSubcategory::PhishingTrends,
    ScamSubcategory::PhishingChat,
    ScamSubcategory::ProductPromotion,
    ScamSubcategory::FakeTravel,
    ScamSubcategory::VehicleFraud,
    ScamSubcategory::SportsBetting,
    ScamSubcategory::FakeEducation,
    ScamSubcategory::Catphishing,
    ScamSubcategory::PublicFigureImpersonation,
    ScamSubcategory::FakeTechSupport,
    ScamSubcategory::LikeFollowRequests,
    ScamSubcategory::GreetingsMotivation,
];

impl ScamSubcategory {
    /// Parent category.
    pub fn category(self) -> ScamCategory {
        use ScamSubcategory::*;
        match self {
            CryptoScams | NftGiveaway | FinancialConsulting | CharityExploitation => {
                ScamCategory::Financial
            }
            PhishingTrends | PhishingChat => ScamCategory::Phishing,
            ProductPromotion | FakeTravel | VehicleFraud | SportsBetting | FakeEducation => {
                ScamCategory::ProductFraud
            }
            Catphishing => ScamCategory::AdultContent,
            PublicFigureImpersonation | FakeTechSupport => ScamCategory::Impersonation,
            LikeFollowRequests | GreetingsMotivation => ScamCategory::EngagementBait,
        }
    }

    /// Sub-row label as printed in Table 6.
    pub fn label(self) -> &'static str {
        use ScamSubcategory::*;
        match self {
            CryptoScams => "Crypto Scams",
            NftGiveaway => "NFT and Giveaway Scams",
            FinancialConsulting => "Financial Consulting",
            CharityExploitation => "Emotional Exploitation (Charity)",
            PhishingTrends => "Through Popular Content/Challenges/Trends",
            PhishingChat => "Through Chat Communication",
            ProductPromotion => "Product Promotion Scams",
            FakeTravel => "Fake Travel Deals",
            VehicleFraud => "Vehicle Sale/Rental Fraud",
            SportsBetting => "Sports Betting and Merchandise Scams",
            FakeEducation => "Fake Education-related Offers",
            Catphishing => "Provocative and Catphishing Lures",
            PublicFigureImpersonation => "Public Figures",
            FakeTechSupport => "Fake Tech Support",
            LikeFollowRequests => "Like/Follow/Subscribe Requests",
            GreetingsMotivation => "Greetings and Motivational Phrases",
        }
    }

    /// Table 6's (accounts, posts) for this subcategory.
    pub fn paper_counts(self) -> (u32, u32) {
        use ScamSubcategory::*;
        match self {
            CryptoScams => (2_352, 8_218),
            NftGiveaway => (163, 389),
            FinancialConsulting => (81, 133),
            CharityExploitation => (53, 163),
            PhishingTrends => (725, 1_749),
            PhishingChat => (208, 544),
            ProductPromotion => (296, 739),
            FakeTravel => (131, 357),
            VehicleFraud => (101, 279),
            SportsBetting => (129, 451),
            FakeEducation => (44, 183),
            Catphishing => (244, 466),
            PublicFigureImpersonation => (53, 133),
            FakeTechSupport => (135, 259),
            LikeFollowRequests => (1_509, 2_999),
            GreetingsMotivation => (791, 1_598),
        }
    }
}

// --- slot pools -----------------------------------------------------------

const COINS: &[&str] = &["bitcoin", "ethereum", "solana", "dogecoin", "tether"];
const PCT: &[&str] = &["200", "300", "500", "150", "1000"];
const HOURS: &[&str] = &["24", "48", "12", "72"];
const CELEBS: &[&str] = &["the ceo", "a famous founder", "a top influencer", "a tv billionaire"];
const PLACES: &[&str] = &["bali", "dubai", "maldives", "paris", "cancun", "santorini"];
const CARS: &[&str] = &["bmw", "mercedes", "tesla", "audi", "lexus"];
const TEAMS: &[&str] = &["united", "madrid", "lakers", "yankees", "city"];
const NUMS: &[&str] = &["50", "100", "250", "500", "1000", "5000"];

fn fill<R: Rng + ?Sized>(template: &str, rng: &mut R) -> String {
    let mut out = template.to_string();
    let slots: &[(&str, &[&str])] = &[
        ("{coin}", COINS),
        ("{pct}", PCT),
        ("{hours}", HOURS),
        ("{celeb}", CELEBS),
        ("{place}", PLACES),
        ("{car}", CARS),
        ("{team}", TEAMS),
        ("{num}", NUMS),
    ];
    for (slot, pool) in slots {
        while out.contains(slot) {
            out = out.replacen(slot, pool.choose(rng).expect("non-empty pool"), 1); // conformance: allow(panic-policy) — every template pool is a non-empty static table
        }
    }
    out
}

fn scam_templates(sub: ScamSubcategory) -> &'static [&'static str] {
    use ScamSubcategory::*;
    match sub {
        CryptoScams => &[
            "huge {coin} giveaway today send any amount to my wallet and receive {pct} percent back guaranteed profit",
            "i turned {num} dollars into {num} thousand trading {coin} join my vip signals and copy my trades for guaranteed profit",
            "limited {coin} investment pool closes in {hours} hours double your wallet deposit with zero risk",
            "my mentor manages {coin} portfolios with {pct} percent monthly returns dm the word profit to invest now",
        ],
        NftGiveaway => &[
            "free nft mint for the first {num} wallets connect now and claim your giveaway spot",
            "massive nft giveaway to celebrate {num} holders tag friends and connect your wallet to claim",
            "whitelist giveaway live rare nft drops for {num} lucky winners claim before the timer ends",
            "exclusive nft airdrop for {num} early wallets connect and mint your free giveaway piece",
        ],
        FinancialConsulting => &[
            "certified financial consultant helping families build wealth book a free portfolio review today",
            "your savings are losing value every day let my consulting desk restructure your portfolio dm plan",
            "tax free offshore investment strategies my consulting clients average {pct} percent yearly dm invest",
            "my consulting desk rebalanced {num} portfolios this quarter book your free wealth review",
        ],
        CharityExploitation => &[
            "urgent appeal little mia needs surgery in {hours} hours every donation counts please donate and share",
            "we are building a shelter for {num} orphans donate what you can and god will repay you tenfold",
            "flood victims need food and blankets tonight donate to the wallet below and share this post",
            "only {num} dollars feeds a child for a week donate now and share with everyone you know",
        ],
        PhishingTrends => &[
            "the viral {num} challenge is here click the link to see if you qualify before it closes",
            "everyone is checking who viewed their profile try the new tool click the link and verify your account",
            "trend alert claim the limited badge for your profile click the link and login to activate",
            "the {num} second trend filter is blowing up click the link login and unlock it first",
        ],
        PhishingChat => &[
            "hey i saw your profile please verify your account in dm there is a problem with your login",
            "security notice we detected unusual activity from {num} locations send your verification code in chat to keep access",
            "congratulations you won our weekly draw of {num} dollars dm your details and claim the prize before it expires in {hours} hours",
            "your account will be limited in {hours} hours unless you verify dm the security code now",
        ],
        ProductPromotion => &[
            "designer bags {pct} percent off warehouse clearance order today shipping is free for {hours} hours",
            "miracle skincare serum clears skin in {hours} hours order now stock is almost gone",
            "new smartwatch deal only {num} units left order from the link and get a second one free",
        ],
        FakeTravel => &[
            "all inclusive {place} vacation for {num} dollars flights and hotel included book the deal today",
            "we booked {num} travelers to {place} last month grab the last discount seats book now",
            "dream honeymoon in {place} five star resort at {pct} off limited booking window",
        ],
        VehicleFraud => &[
            "selling my {car} urgently moving abroad price {num} dollars shipping arranged after deposit",
            "rent a {car} for {num} a week no credit check small deposit reserves your rental today",
            "military officer selling {car} before deployment price below market deposit holds the car",
        ],
        SportsBetting => &[
            "fixed match tonight {team} guaranteed win odds {num} join the vip betting group before kickoff",
            "official {team} merch at {pct} percent off order the jersey today limited stock",
            "my betting model hit {num} straight wins join premium picks and bet with confidence",
        ],
        FakeEducation => &[
            "get an accredited diploma in {hours} days no classes no exams enroll with the course link",
            "free scholarship applications close in {hours} hours pay the small processing fee and enroll",
            "learn day trading with our academy course {pct} percent discount for the first {num} students",
        ],
        Catphishing => &[
            "feeling lonely tonight i share private photos with people who chat with me dm me babe",
            "i just moved to {place} and need a date who wants to meet check my private page link",
            "my public page is too strict the real photos are on my private chat come say hi",
            "only the first {num} people get access to my private photos tonight dm me before i log off babe",
        ],
        PublicFigureImpersonation => &[
            "this is the official page of {celeb} i am giving back to fans send {coin} and i double it",
            "hello fans {celeb} here my management opened a private investment round for followers only",
            "official announcement from {celeb} claim your fan reward through the link before {hours} hours",
            "{celeb} appreciation event the management team doubles the first {num} fan deposits",
        ],
        FakeTechSupport => &[
            "your device shows signs of infection our certified support agents can fix it remotely call the helpdesk now",
            "microsoft certified support here your license expired {hours} hours ago renew through our agent to avoid data loss",
            "account locked contact the official support helpdesk in dm and our agent restores access in {num} minutes",
            "we detected {num} threats on your device the helpdesk agent can clean it remotely today",
        ],
        LikeFollowRequests => &[
            "follow this page and like the last {num} posts to enter the giveaway winners announced tonight",
            "like share and subscribe we drop exclusive content when we hit {num} followers",
            "follow back train active now follow everyone who likes this and gain {num} followers fast",
            "tag {num} friends like this post and subscribe to win the exclusive drop this weekend",
        ],
        GreetingsMotivation => &[
            "good morning beautiful people stay blessed stay humble and keep grinding",
            "good morning champions monday motivation stay blessed and keep grinding toward your dreams",
            "sending blessed morning vibes and motivation to everyone stay humble and keep grinding",
            "rise and grind family good morning stay blessed positive vibes and motivation today",
            "good morning winners stay blessed gratitude and motivation will keep you grinding all week",
        ],
    }
}

/// Generate one scam post for a subcategory.
pub fn scam_post_text<R: Rng + ?Sized>(sub: ScamSubcategory, rng: &mut R) -> String {
    let t = scam_templates(sub).choose(rng).expect("templates exist"); // conformance: allow(panic-policy) — every subcategory has templates
    fill(t, rng)
}

// --- benign topics ---------------------------------------------------------

/// Benign topic families: 86 total clusters − 16 scam = 70.
pub const BENIGN_TOPIC_COUNT: usize = 70;

const BENIGN_KEYWORDS: [(&str, &str, &str); BENIGN_TOPIC_COUNT] = [
    ("sunset", "photography", "golden"),
    ("recipe", "pasta", "kitchen"),
    ("workout", "gym", "reps"),
    ("puppy", "rescue", "adoption"),
    ("makeup", "tutorial", "palette"),
    ("sneaker", "collection", "drop"),
    ("guitar", "cover", "acoustic"),
    ("hiking", "trail", "summit"),
    ("coffee", "roast", "espresso"),
    ("garden", "tomatoes", "harvest"),
    ("painting", "canvas", "brush"),
    ("chess", "opening", "endgame"),
    ("cycling", "ride", "kilometers"),
    ("baking", "sourdough", "crumb"),
    ("astronomy", "telescope", "nebula"),
    ("poetry", "verse", "stanza"),
    ("vintage", "thrift", "finds"),
    ("surfing", "waves", "swell"),
    ("keyboard", "mechanical", "switches"),
    ("aquarium", "reef", "coral"),
    ("origami", "paper", "fold"),
    ("birdwatching", "warbler", "binoculars"),
    ("pottery", "wheel", "glaze"),
    ("running", "marathon", "pace"),
    ("skincare", "routine", "moisturizer"),
    ("lego", "build", "bricks"),
    ("camping", "tent", "campfire"),
    ("knitting", "yarn", "pattern"),
    ("drone", "aerial", "footage"),
    ("yoga", "flow", "breath"),
    ("comics", "issue", "panel"),
    ("fishing", "bass", "lure"),
    ("woodworking", "joinery", "sawdust"),
    ("skateboard", "kickflip", "park"),
    ("tea", "oolong", "steep"),
    ("calligraphy", "ink", "nib"),
    ("climbing", "boulder", "crimp"),
    ("vinyl", "records", "turntable"),
    ("gaming", "speedrun", "boss"),
    ("anime", "episode", "season"),
    ("crochet", "stitches", "blanket"),
    ("barbecue", "brisket", "smoker"),
    ("language", "vocabulary", "fluent"),
    ("minimalism", "declutter", "simple"),
    ("houseplants", "monstera", "propagate"),
    ("triathlon", "swim", "transition"),
    ("beekeeping", "hive", "honey"),
    ("magic", "card", "sleight"),
    ("cosplay", "costume", "convention"),
    ("journaling", "notebook", "spread"),
    ("snowboarding", "powder", "slope"),
    ("podcast", "episode", "interview"),
    ("watchmaking", "movement", "dial"),
    ("ramen", "broth", "noodles"),
    ("architecture", "facade", "brutalist"),
    ("trains", "locomotive", "railway"),
    ("succulents", "cactus", "terrarium"),
    ("pilates", "core", "mat"),
    ("embroidery", "hoop", "thread"),
    ("kayaking", "paddle", "rapids"),
    ("film", "cinematography", "director"),
    ("typography", "font", "serif"),
    ("meteorology", "storm", "forecast"),
    ("salsa", "dance", "rhythm"),
    ("homebrew", "hops", "ferment"),
    ("falconry", "hawk", "perch"),
    ("quilting", "patchwork", "batting"),
    ("parkour", "vault", "rooftop"),
    ("mushrooms", "foraging", "spores"),
    ("stargazing", "constellation", "meteor"),
];

const BENIGN_PATTERNS: &[&str] = &[
    "daily {a} update more {a} and {b} experiments with the {c} and the {b} today",
    "my {b} keeps getting better new {a} and {c} moments from todays {a} and {c} session",
    "obsessed with {a} lately the {b} and the {c} made this {a} week my best {b} yet",
    "sharing todays {a} highlights that {b} with the {c} was unreal more {a} and {b} soon",
    "weekend {a} diary from the {b} to the {c} and back to {a} with a bonus {c}",
];

/// Generate one benign post for topic `idx` (`0..BENIGN_TOPIC_COUNT`).
pub fn benign_post_text<R: Rng + ?Sized>(idx: usize, rng: &mut R) -> String {
    let (a, b, c) = BENIGN_KEYWORDS[idx % BENIGN_TOPIC_COUNT];
    let pattern = BENIGN_PATTERNS.choose(rng).expect("patterns exist"); // conformance: allow(panic-policy) — static non-empty pattern table
    pattern.replace("{a}", a).replace("{b}", b).replace("{c}", c)
}

// --- non-English decoys -----------------------------------------------------

const FOREIGN_POSTS: &[&str] = &[
    // Spanish
    "vendo esta cuenta con seguidores reales y mucha actividad escríbeme antes de comprar por favor amigos",
    "nueva publicación del día comparte y sigue la página para más contenido increíble cada semana",
    // French
    "je partage aujourd'hui une nouvelle photo merci à tous les abonnés pour votre soutien incroyable",
    "nouveau contenu chaque semaine abonnez vous à la page pour ne rien manquer mes amis",
    // German
    "heute gibt es neue inhalte auf der seite danke an alle follower für die tolle unterstützung",
    "folgt der seite für tägliche beiträge und teilt den post mit euren freunden bitte",
    // Portuguese
    "conteúdo novo toda semana sigam a página e compartilhem com os amigos muito obrigado pessoal",
    "hoje trago mais uma publicação incrível obrigado a todos os seguidores pelo carinho de sempre",
    // Russian
    "новый пост каждый день подписывайтесь на страницу и делитесь с друзьями спасибо за поддержку",
    "сегодня делюсь новым контентом спасибо всем подписчикам за вашу невероятную поддержку друзья",
];

/// Generate one non-English decoy post.
pub fn foreign_post_text<R: Rng + ?Sized>(rng: &mut R) -> String {
    (*FOREIGN_POSTS.choose(rng).expect("non-empty")).to_string() // conformance: allow(panic-policy) — static non-empty post table
}

#[cfg(test)]
mod tests {
    use super::*;
    use acctrade_text::langdetect::{detect_language, Lang};
    use foundation::rng::SeedableRng;
    use foundation::rng::ChaCha8Rng;

    #[test]
    fn taxonomy_counts_match_table6() {
        // Category accounts = sum of sub accounts.
        let cat_accounts = |c: ScamCategory| -> u32 {
            ALL_SUBCATEGORIES
                .iter()
                .filter(|s| s.category() == c)
                .map(|s| s.paper_counts().0)
                .sum()
        };
        assert_eq!(cat_accounts(ScamCategory::Financial), 2_649);
        assert_eq!(cat_accounts(ScamCategory::Phishing), 933);
        assert_eq!(cat_accounts(ScamCategory::ProductFraud), 701);
        assert_eq!(cat_accounts(ScamCategory::AdultContent), 244);
        assert_eq!(cat_accounts(ScamCategory::Impersonation), 188);
        assert_eq!(cat_accounts(ScamCategory::EngagementBait), 2_300);

        let cat_posts = |c: ScamCategory| -> u32 {
            ALL_SUBCATEGORIES
                .iter()
                .filter(|s| s.category() == c)
                .map(|s| s.paper_counts().1)
                .sum()
        };
        assert_eq!(cat_posts(ScamCategory::Financial), 8_903);
        assert_eq!(cat_posts(ScamCategory::Phishing), 2_293);
        assert_eq!(cat_posts(ScamCategory::ProductFraud), 2_009);
        assert_eq!(cat_posts(ScamCategory::EngagementBait), 4_597);
    }

    #[test]
    fn sixteen_scam_plus_seventy_benign_is_86() {
        assert_eq!(
            ALL_SUBCATEGORIES.len() + BENIGN_TOPIC_COUNT,
            crate::calibration::TOPIC_CLUSTERS
        );
    }

    #[test]
    fn scam_posts_are_english_and_slotted() {
        // The trigram language filter is imperfect on short domain text
        // (CLD2 is too); require >= 90% of scam posts to pass as English.
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let mut total = 0;
        let mut english = 0;
        for sub in ALL_SUBCATEGORIES {
            for _ in 0..10 {
                let text = scam_post_text(sub, &mut rng);
                assert!(!text.contains('{'), "unfilled slot in {text:?}");
                total += 1;
                if detect_language(&text) == Lang::English {
                    english += 1;
                }
            }
        }
        assert!(
            english as f64 / total as f64 >= 0.9,
            "only {english}/{total} scam posts detected as English"
        );
    }

    #[test]
    fn scam_posts_carry_vetting_keywords() {
        // Sampling several posts per subcategory must surface at least one
        // of the parent category's vetting keywords.
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        for sub in ALL_SUBCATEGORIES {
            let kws = sub.category().vetting_keywords();
            let hits = (0..20)
                .filter(|_| {
                    let t = scam_post_text(sub, &mut rng);
                    kws.iter().any(|k| t.contains(k))
                })
                .count();
            assert!(hits >= 10, "{sub:?}: only {hits}/20 posts carry keywords");
        }
    }

    #[test]
    fn benign_topics_are_lexically_distinct() {
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let a = benign_post_text(0, &mut rng);
        let b = benign_post_text(1, &mut rng);
        assert!(a.contains("sunset"));
        assert!(b.contains("recipe") || b.contains("pasta"));
    }

    #[test]
    fn foreign_posts_fail_english_filter() {
        let mut rng = ChaCha8Rng::seed_from_u64(4);
        for _ in 0..20 {
            let t = foreign_post_text(&mut rng);
            assert_ne!(detect_language(&t), Lang::English, "{t:?}");
        }
    }

    #[test]
    fn keyword_triples_are_unique() {
        let mut firsts: Vec<&str> = BENIGN_KEYWORDS.iter().map(|&(a, _, _)| a).collect();
        let n = firsts.len();
        firsts.sort();
        firsts.dedup();
        assert_eq!(firsts.len(), n, "duplicate benign topics");
    }
}
