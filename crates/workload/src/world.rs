//! The world generator: instantiate the whole measured ecosystem.
//!
//! [`World::generate`] builds, from one seed and a scale factor:
//!
//! * eleven [`MarketState`]s populated with sellers and listings whose
//!   marginals follow Tables 1–4 and §4.1's in-text statistics;
//! * five [`PlatformStore`]s holding every *visible* advertised account —
//!   profiles tailored per §5 (creation dates, followers, locations,
//!   categories, account types) — plus their timelines (scam posts per
//!   Tables 5/6, benign posts per Table 2, non-English decoys);
//! * Table 7's coordinated clusters (accounts sharing names / biographies
//!   / contact attributes);
//! * the eight underground forums with §4.2's 65 posts, including the
//!   template-reuse families behind the 88–100% similarity findings.
//!
//! [`World::deploy`] registers everything on a [`SimNet`];
//! [`World::step_iteration`] advances the listing lifecycle between crawl
//! iterations (Figure 2's churn + replenishment);
//! [`World::run_moderation`] executes the calibrated platform sweeps
//! behind Table 8.

use crate::calibration as cal;
use crate::categories;
use crate::names::{self, NameTheme};
use crate::prices;
use crate::textgen::{self, ScamSubcategory, ALL_SUBCATEGORIES};
use acctrade_market::config::{MarketplaceId, ALL_MARKETPLACES};
use acctrade_market::lifecycle::MarketState;
use acctrade_market::listing::{Listing, ListingId, Monetization};
use acctrade_market::seller::{Seller, SellerId, LONG_TAIL_COUNTRIES, TOP_SELLER_COUNTRIES};
use acctrade_market::site::MarketplaceSite;
use acctrade_market::underground::{UndergroundForum, UndergroundId, UndergroundPost, ALL_UNDERGROUND};
use acctrade_net::clock::{unix_from_ymd, COLLECTION_START_UNIX};
use acctrade_net::latency::LatencyModel;
use acctrade_net::sim::SimNet;
use acctrade_social::account::{AccountDisposition, AccountId, AccountProfile, AccountType};
use acctrade_social::engagement::sample_post_engagement;
use acctrade_social::moderation::ModerationEngine;
use acctrade_social::platform::{Platform, ALL_PLATFORMS};
use acctrade_social::post::Post;
use acctrade_social::store::PlatformStore;
use foundation::sync::RwLock;
use foundation::rng::IndexedRandom;
use foundation::rng::{RngExt, SeedableRng};
use foundation::rng::ChaCha8Rng;
use std::collections::BTreeMap;
use std::sync::Arc;

/// Parameters of a world.
#[derive(Debug, Clone, Copy)]
pub struct WorldParams {
    /// Master seed; every random decision derives from it.
    pub seed: u64,
    /// Scale factor on the paper's population sizes (1.0 = full scale:
    /// 38,253 listings, ~205K posts).
    pub scale: f64,
}

impl WorldParams {
    /// Full paper scale.
    pub fn full(seed: u64) -> WorldParams {
        WorldParams { seed, scale: 1.0 }
    }

    /// A small world for tests and quick examples.
    pub fn small(seed: u64) -> WorldParams {
        WorldParams { seed, scale: 0.05 }
    }

    fn scaled(&self, n: u32) -> usize {
        ((f64::from(n) * self.scale).round() as usize).max(if n > 0 { 1 } else { 0 })
    }
}

/// Ground truth the generator records (never exposed to the pipeline).
#[derive(Debug, Clone, Default)]
pub struct WorldTruth {
    /// Primary + secondary scam categories per (platform, account id).
    pub scam_accounts: BTreeMap<(Platform, u64), Vec<ScamSubcategory>>,
    /// Scam posts generated per subcategory.
    pub scam_posts_by_sub: BTreeMap<ScamSubcategory, u32>,
    /// Coordinated clusters planted per platform: account-id groups.
    pub clusters: Vec<(Platform, Vec<u64>)>,
    /// Totals.
    pub listings_total: usize,
    /// Visible total.
    pub visible_total: usize,
    /// Posts total.
    pub posts_total: usize,
    /// Foreign posts.
    pub foreign_posts: usize,
    /// Scam posts total.
    pub scam_posts_total: usize,
}

/// A fully generated world.
///
/// ```
/// use acctrade_workload::world::{World, WorldParams};
/// use acctrade_net::sim::SimNet;
///
/// let world = World::generate(WorldParams { seed: 7, scale: 0.01 });
/// let net = SimNet::new(7);
/// world.deploy(&net);
/// assert!(net.knows_host("accsmarket.com"));
/// assert!(world.truth.visible_total > 0);
/// ```
pub struct World {
    /// Params.
    pub params: WorldParams,
    /// Stores.
    pub stores: BTreeMap<Platform, Arc<RwLock<PlatformStore>>>,
    /// Markets.
    pub markets: BTreeMap<MarketplaceId, Arc<RwLock<MarketState>>>,
    /// Forums.
    pub forums: Vec<Arc<UndergroundForum>>,
    /// Truth.
    pub truth: WorldTruth,
    rng: ChaCha8Rng,
    category_pool: Vec<String>,
    platform_category_pool: Vec<String>,
    location_pool: Vec<&'static str>,
}

impl World {
    /// Generate a world. At full scale this creates ~38K listings, ~11.5K
    /// platform accounts, and ~205K posts; it stays comfortably in memory.
    pub fn generate(params: WorldParams) -> World {
        let mut world = World {
            params,
            stores: ALL_PLATFORMS
                .into_iter()
                .map(|p| (p, Arc::new(RwLock::new(PlatformStore::new(p)))))
                .collect(),
            markets: ALL_MARKETPLACES
                .into_iter()
                .map(|m| (m, Arc::new(RwLock::new(MarketState::new(m)))))
                .collect(),
            forums: Vec::new(),
            truth: WorldTruth::default(),
            rng: ChaCha8Rng::seed_from_u64(params.seed ^ 0x0A11_D00D_0000_0001),
            category_pool: categories::marketplace_categories(),
            platform_category_pool: categories::platform_categories(),
            location_pool: categories::locations(),
        };
        world.generate_sellers();
        world.generate_initial_listings();
        world.plant_clusters();
        world.generate_posts();
        world.generate_underground();
        world
    }

    /// Register every site, API, and forum on a fabric.
    pub fn deploy(&self, net: &Arc<SimNet>) {
        for (&market, state) in &self.markets {
            net.register_with(
                market.host(),
                MarketplaceSite::new(Arc::clone(state)),
                LatencyModel::clearnet(),
                None,
            );
        }
        for (&platform, store) in &self.stores {
            net.register_with(
                platform.api_host(),
                acctrade_social::api::PlatformApi::new(Arc::clone(store)),
                LatencyModel::api(),
                None,
            );
        }
        for forum in &self.forums {
            net.register(&forum.config().host.clone(), Arc::clone(forum));
        }
        telemetry::with_recorder(|r| {
            r.event(
                "world.deployed",
                format!(
                    "markets={} platforms={} forums={}",
                    self.markets.len(),
                    self.stores.len(),
                    self.forums.len()
                ),
            );
            r.gauge_set("world.hosts", &[], net.hosts().len() as f64);
        });
    }

    // -- sellers ------------------------------------------------------------

    fn generate_sellers(&mut self) {
        let country_head_total: u32 = TOP_SELLER_COUNTRIES.iter().map(|&(_, c)| c).sum();
        for market in ALL_MARKETPLACES {
            let cfg = market.config();
            // Hidden-seller marketplaces still *have* sellers internally;
            // the site just never renders them.
            let n = self
                .params
                .scaled(cfg.table1_sellers.unwrap_or(cfg.table1_accounts / 8).max(1));
            let state = Arc::clone(&self.markets[&market]);
            let mut state = state.write();
            for i in 0..n {
                let id = state.next_seller_id();
                let mut seller = Seller::new(id, names::seller_username(id.0, &mut self.rng));
                // §4.1: ~23% of sellers disclose a country.
                if self.rng.random_bool(0.23) {
                    seller.country = Some(self.sample_seller_country(country_head_total));
                }
                seller.rating = self.rng.random_range(2.5f32..5.0);
                seller.completed_sales = self.rng.random_range(0..400);
                seller.joined_unix =
                    unix_from_ymd(self.rng.random_range(2018..2024), self.rng.random_range(1..13), 15);
                let _ = i;
                state.add_seller(seller);
            }
        }
    }

    fn sample_seller_country(&mut self, head_total: u32) -> String {
        // Top-5 carry ~55% of disclosed countries.
        if self.rng.random_bool(0.55) {
            let mut pick = self.rng.random_range(0..head_total);
            for &(name, c) in TOP_SELLER_COUNTRIES {
                if pick < c {
                    return name.to_string();
                }
                pick -= c;
            }
        }
        (*LONG_TAIL_COUNTRIES.choose(&mut self.rng).expect("non-empty")).to_string() // conformance: allow(panic-policy) — static non-empty country table
    }

    // -- listings -------------------------------------------------------------

    fn generate_initial_listings(&mut self) {
        for market in ALL_MARKETPLACES {
            let cfg = market.config();
            let total = self.params.scaled(cfg.table1_accounts);
            let initial = ((total as f64) * cal::INITIAL_STOCK_FRACTION).round() as usize;
            for _ in 0..initial {
                self.add_one_listing(market, COLLECTION_START_UNIX - 86_400 * 30);
            }
        }
    }

    /// Create one listing (and, if visible, its platform account). Used
    /// for both initial stock and replenishment.
    pub fn add_one_listing(&mut self, market: MarketplaceId, listed_unix: i64) -> ListingId {
        let cfg = market.config();
        let platform = self.sample_platform(cfg.platform_weights);
        let state = Arc::clone(&self.markets[&market]);
        let mut state = state.write();
        let seller = {
            // Mixture: most listings walk the seller roster (real
            // marketplaces show ~1.3 listings/seller on FameSwap), a
            // minority concentrate on power sellers (Accsmarket's 5.6).
            let n = state.seller_count() as u64;
            let lid_next = state.cumulative_count() as u64;
            if self.rng.random_bool(0.72) {
                SellerId(1 + lid_next % n)
            } else {
                let r: f64 = self.rng.random_range(0.0..1.0);
                SellerId(1 + ((r * r) * n as f64) as u64)
            }
        };
        let lid = state.next_listing_id();
        let price = prices::sample_price(platform, &mut self.rng);
        let mut listing = Listing::new(lid, market, platform, seller, price);
        listing.listed_unix = listed_unix + self.rng.random_range(0..86_400 * 7);

        // Category (§4.1: 22% uncategorized).
        if !self.rng.random_bool(cal::UNCATEGORIZED_FRACTION) {
            listing.category =
                Some(categories::sample_marketplace_category(&self.category_pool, &mut self.rng));
        }
        // Followers shown in the ad (§4.1: 40%).
        let claimed_followers = self.sample_followers(platform);
        if self.rng.random_bool(cal::FOLLOWERS_SHOWN_FRACTION) {
            listing.claimed_followers = Some(claimed_followers);
        }
        // Description (§4.1: 63%).
        if self.rng.random_bool(cal::DESCRIBED_FRACTION) {
            listing.description = Some(self.listing_description(platform, claimed_followers));
        }
        // Monetization (§4.1: 164 / 38,253).
        if self.rng.random_bool(f64::from(cal::MONETIZED_LISTINGS) / 38_253.0) {
            listing.monetization = Some(Monetization {
                monthly_revenue_usd: prices::sample_monthly_revenue(&mut self.rng),
                income_source: self.sample_income_source(),
            });
        }

        // Visible profile link (§3.2: per-platform fraction).
        if self.rng.random_bool(cal::visible_fraction(platform)) {
            let handle = self.create_platform_account(platform, listing.listed_unix);
            listing.profile_link = Some(format!("http://{}/{}", platform.web_host(), handle));
            listing.linked_handle = Some(handle);
            self.truth.visible_total += 1;
        } else if platform == Platform::YouTube
            && self.rng.random_bool(
                f64::from(cal::VERIFIED_CLAIMS)
                    / (9_087.0 * (1.0 - cal::visible_fraction(Platform::YouTube))),
            )
        {
            // §4.1: verified claims appear only on YouTube listings that
            // do NOT link their channels.
            listing.claims_verified = true;
        }

        listing.title = self.listing_title(platform, &listing);
        state.add_listing(listing);
        self.truth.listings_total += 1;
        lid
    }

    fn sample_platform(&mut self, weights: &[(Platform, f64)]) -> Platform {
        let total: f64 = weights.iter().map(|&(_, w)| w).sum();
        let mut pick = self.rng.random_range(0.0..total);
        for &(p, w) in weights {
            if pick < w {
                return p;
            }
            pick -= w;
        }
        weights.last().expect("non-empty weights").0 // conformance: allow(panic-policy) — static non-empty weight table
    }

    fn listing_title(&mut self, platform: Platform, listing: &Listing) -> String {
        let category = listing.category.as_deref().unwrap_or("niche");
        match listing.claimed_followers {
            Some(f) if f > 0 => format!(
                "{} {} account — {} followers",
                platform.name(),
                category,
                f
            ),
            _ => format!("{} {} account for sale", platform.name(), category),
        }
    }

    fn listing_description(&mut self, platform: Platform, followers: u64) -> String {
        // §4.1: of 24,293 descriptions only ~1,280 carry one of the eight
        // keyword-identifiable strategies; the rest are free-form pitches.
        let strategy_total: u32 = cal::DESCRIPTION_STRATEGIES.iter().map(|&(_, c)| c).sum();
        if self.rng.random_bool(f64::from(strategy_total) / 24_293.0) {
            let mut pick = self.rng.random_range(0..strategy_total);
            for &(label, c) in cal::DESCRIPTION_STRATEGIES {
                if pick < c {
                    return self.strategy_description(label, platform, followers);
                }
                pick -= c;
            }
        }
        let generic = [
            format!(
                "Selling {} account with {} followers and viral content. The account averages strong views per post and has proven highly engaging. Feel free to make an offer.",
                platform.name(),
                followers
            ),
            format!(
                "Great {} page in a growing niche. Consistent posting schedule, audience insights available on request.",
                platform.name()
            ),
            "Moving on to other projects so letting this one go. Serious buyers only, price slightly negotiable.".to_string(),
            format!(
                "Page has {} followers and steady reach. Will help with the transfer and answer questions for a week after the sale.",
                followers
            ),
            "Handled everything myself from day one. Clean history, no strikes, no purchased engagement.".to_string(),
            format!(
                "One of the better {} accounts you will find at this price point. Check the metrics and decide for yourself.",
                platform.name()
            ),
        ];
        generic.choose(&mut self.rng).expect("non-empty").clone() // conformance: allow(panic-policy) — `generic` is a non-empty literal array
    }

    /// A description carrying one of §4.1's eight keyword-identifiable
    /// strategies.
    fn strategy_description(&mut self, label: &str, platform: Platform, followers: u64) -> String {
        match label {
            "authentic" => format!(
                "100% authentic {} account with real history, built by hand since day one.",
                platform.name()
            ),
            "fresh and ready" => "No shout outs have ever been done on the account. The account is fresh and ready for whatever purposes you need - CPA, product promotion, drop shipping, or traffic generation.".to_string(),
            "business adaptability" => "Perfect for business adaptability: rebrand it, plug in your store, and start selling from day one.".to_string(),
            "real users with activity" => format!(
                "Real and active users: {followers} followers that actually engage with every post."
            ),
            _ => format!(
                "Comes with the original email included, so you get full ownership of the {} account forever.",
                platform.name()
            ),
        }
    }

    fn sample_income_source(&mut self) -> String {
        let total: u32 = cal::INCOME_SOURCES.iter().map(|&(_, c)| c).sum();
        let mut pick = self.rng.random_range(0..total);
        for &(label, c) in cal::INCOME_SOURCES {
            if pick < c {
                return label.to_string();
            }
            pick -= c;
        }
        cal::INCOME_SOURCES[0].0.to_string()
    }

    // -- platform accounts ---------------------------------------------------

    fn create_platform_account(&mut self, platform: Platform, _listed_unix: i64) -> String {
        let store = Arc::clone(&self.stores[&platform]);
        let mut store = store.write();
        let id = store.next_account_id();

        let disposition = self.sample_disposition(platform);
        let theme = match disposition {
            AccountDisposition::Organic => NameTheme::Personal,
            AccountDisposition::Harvested => {
                if self.rng.random_bool(0.5) {
                    NameTheme::Personal
                } else {
                    NameTheme::Niche
                }
            }
            AccountDisposition::Farmed | AccountDisposition::ScamOperator => {
                if self.rng.random_bool(0.45) {
                    NameTheme::Trending
                } else {
                    NameTheme::Niche
                }
            }
        };
        let handle = names::handle(theme, id.0, &mut self.rng);
        let mut profile = AccountProfile::new(id, platform, handle.clone());
        // Names and bios carry an account-specific token so that *only*
        // the deliberately planted Table 7 clusters share attributes —
        // organic attribute collisions would otherwise swamp the network
        // analysis (template pools are small).
        profile.name = format!("{} {}", names::display_name(theme, &mut self.rng), id.0 % 100_000);
        profile.description =
            format!("{} · est{}", self.profile_description(theme), id.0 % 100_000);
        profile.created_unix = self.sample_creation_date(platform);
        profile.followers = self.sample_followers(platform);
        profile.following = (profile.followers as f64 * self.rng.random_range(0.01..1.5)) as u64;
        profile.disposition = disposition;

        // §5 quotas over 11,457 visible accounts.
        profile.account_type = self.sample_account_type();
        if self.rng.random_bool(f64::from(cal::LOCATED_PROFILES) / 11_457.0) {
            profile.location =
                Some(categories::sample_location(&self.location_pool, &mut self.rng).to_string());
        }
        if self.rng.random_bool(f64::from(cal::PLATFORM_CATEGORIZED_ACCOUNTS) / 11_457.0) {
            profile.category = Some(
                self.platform_category_pool
                    .choose(&mut self.rng)
                    .expect("non-empty") // conformance: allow(panic-policy) — category pool is seeded non-empty at construction
                    .clone(),
            );
        }
        // Business contact attributes (Facebook clustering keys in Table 7).
        if profile.account_type == AccountType::Business || self.rng.random_bool(0.08) {
            profile.email = Some(format!("contact.{}@mail.example", id.0));
            if self.rng.random_bool(0.4) {
                profile.phone = Some(format!("+1555{:07}", id.0 % 10_000_000));
            }
            if self.rng.random_bool(0.3) {
                profile.website = Some(format!("http://biz{}.example/", id.0));
            }
        }

        store.insert_account(profile);
        handle
    }

    fn sample_disposition(&mut self, platform: Platform) -> AccountDisposition {
        // Scam-operator share per platform = Table 5 scam / Table 2 visible.
        let (scam, _) = cal::table5(platform);
        let (vis, _, _) = cal::table2(platform);
        let p_scam = f64::from(scam) / f64::from(vis);
        if self.rng.random_bool(p_scam) {
            return AccountDisposition::ScamOperator;
        }
        // The rest: mostly farmed/harvested inventory, some organic resales.
        let r: f64 = self.rng.random_range(0.0..1.0);
        if r < 0.5 {
            AccountDisposition::Farmed
        } else if r < 0.8 {
            AccountDisposition::Harvested
        } else {
            AccountDisposition::Organic
        }
    }

    fn profile_description(&mut self, theme: NameTheme) -> String {
        let bios = match theme {
            NameTheme::Trending => [
                "Daily crypto and NFT alpha. Not financial advice. DM for promos.",
                "Luxury lifestyle and wealth motivation. Collabs open.",
                "Giveaways every week. Follow to never miss a drop.",
            ],
            NameTheme::Niche => [
                "Your daily dose of the best content in the niche.",
                "Curated posts every day. Turn on notifications.",
                "The home of this community since day one. DM for features.",
            ],
            NameTheme::Personal => [
                "Just sharing my life and things I love.",
                "Coffee first. Opinions my own.",
                "Trying to post more this year.",
            ],
        };
        bios.choose(&mut self.rng).expect("non-empty").to_string() // conformance: allow(panic-policy) — `bios` is a non-empty literal array
    }

    fn sample_creation_date(&mut self, platform: Platform) -> i64 {
        let earliest = platform.earliest_creation_year();
        if self.rng.random_bool(cal::CREATED_PRE_2020) {
            // Pre-2020 cohort.
            let year = if platform == Platform::YouTube
                && self.rng.random_bool(cal::YT_ANCIENT_FRACTION / cal::CREATED_PRE_2020)
            {
                self.rng.random_range(2006..2011)
            } else if platform == Platform::YouTube {
                // Keep 2010 out of the ordinary branch so the 2006-2010
                // cohort stays under the paper's 0.5% (Figure 4).
                self.rng.random_range(2011..2020)
            } else {
                self.rng.random_range(earliest.clamp(2010, 2019)..2020)
            };
            unix_from_ymd(year, self.rng.random_range(1..13), self.rng.random_range(1..28))
        } else {
            // Within 3.5 years of the collection window.
            let start = unix_from_ymd(2020, 8, 1);
            let end = COLLECTION_START_UNIX;
            self.rng.random_range(start..end)
        }
    }

    fn sample_followers(&mut self, platform: Platform) -> u64 {
        let median = platform.table4_median_followers().max(1) as f64;
        let sigma = match platform {
            Platform::TikTok => 2.4,
            Platform::X => 1.5,
            Platform::Facebook => 1.6,
            Platform::Instagram => 1.7,
            Platform::YouTube => 2.0,
        };
        let raw = prices::lognormal_with_median(median, sigma, &mut self.rng);
        let clamped = raw.clamp(
            platform.table4_min_followers() as f64,
            platform.table4_max_followers() as f64,
        ) as u64;
        // TikTok's advertised accounts are mostly fresh (median 1): shift
        // the low end toward zero.
        if platform == Platform::TikTok && clamped <= 2 && self.rng.random_bool(0.4) {
            0
        } else {
            clamped
        }
    }

    fn sample_account_type(&mut self) -> AccountType {
        let total = 11_457.0;
        let r: f64 = self.rng.random_range(0.0..1.0);
        let verified = f64::from(cal::VERIFIED_ACCOUNTS) / total;
        let business = f64::from(cal::BUSINESS_ACCOUNTS) / total;
        let private = f64::from(cal::PRIVATE_ACCOUNTS) / total;
        let protected = f64::from(cal::PROTECTED_ACCOUNTS) / total;
        if r < verified {
            AccountType::Verified
        } else if r < verified + business {
            AccountType::Business
        } else if r < verified + business + private {
            AccountType::Private
        } else if r < verified + business + private + protected {
            AccountType::Protected
        } else {
            AccountType::Standard
        }
    }

    // -- clusters (Table 7) ---------------------------------------------------

    fn plant_clusters(&mut self) {
        for platform in ALL_PLATFORMS {
            let (n_clusters, n_accounts, max_size, _) = cal::table7(platform);
            let n_clusters = self.params.scaled(n_clusters);
            let n_accounts = self.params.scaled(n_accounts);
            if n_clusters == 0 || n_accounts < 2 {
                continue;
            }
            let store = Arc::clone(&self.stores[&platform]);
            let mut store = store.write();
            let mut ids = store.account_ids();
            if ids.len() < n_accounts {
                continue;
            }
            // Deterministic shuffle to pick cluster members.
            for i in (1..ids.len()).rev() {
                let j = self.rng.random_range(0..=i);
                ids.swap(i, j);
            }
            let mut pool = ids.into_iter().take(n_accounts);
            let mut remaining = n_accounts;
            for c in 0..n_clusters {
                if remaining < 2 {
                    break;
                }
                // One oversized cluster per platform (Instagram's 46-member
                // cluster at full scale); the rest near the median of 2.
                let size = if c == 0 {
                    (max_size as usize).min(remaining.saturating_sub((n_clusters - 1 - c) * 2)).max(2)
                } else {
                    2 + usize::from(self.rng.random_bool(0.2))
                }
                .min(remaining);
                let members: Vec<AccountId> = pool.by_ref().take(size).collect();
                if members.len() < 2 {
                    break;
                }
                remaining -= members.len();
                self.apply_cluster_attributes(platform, &mut store, &members, c);
                self.truth
                    .clusters
                    .push((platform, members.iter().map(|a| a.0).collect()));
            }
        }
    }

    fn apply_cluster_attributes(
        &mut self,
        platform: Platform,
        store: &mut PlatformStore,
        members: &[AccountId],
        cluster_idx: usize,
    ) {
        let tag = self.rng.random_range(1000u32..9999);
        for &id in members {
            let Some(p) = store.account_mut(id) else { continue };
            match platform {
                Platform::TikTok => {
                    p.description = format!(
                        "Harvesting {}00 accounts with 100K followers each. Contact us on Telegram @supplier{tag} for bulk deals.",
                        cluster_idx + 1
                    );
                }
                Platform::YouTube => {
                    p.name = format!("Media Network {tag}");
                }
                Platform::Instagram => {
                    p.description = format!(
                        "Free NFT giveaways for the community! Join the movement, link in bio. Official partner network {tag}."
                    );
                }
                Platform::Facebook => {
                    p.email = Some(format!("sales.network{tag}@mail.example"));
                    p.phone = Some(format!("+1555{tag:04}000"));
                    p.website = Some(format!("http://network{tag}.example/"));
                }
                Platform::X => {
                    p.name = format!("Growth Agency {tag}");
                    p.description = format!(
                        "High quality profiles for businesses and entities. Agency {tag}, serious inquiries only."
                    );
                }
            }
        }
    }

    // -- posts ----------------------------------------------------------------

    fn generate_posts(&mut self) {
        for platform in ALL_PLATFORMS {
            self.generate_platform_posts(platform);
        }
    }

    fn generate_platform_posts(&mut self, platform: Platform) {
        let store = Arc::clone(&self.stores[&platform]);
        let mut store = store.write();
        let ids = store.account_ids();
        if ids.is_empty() {
            return;
        }

        let (_, table2_posts, _) = cal::table2(platform);
        let (_, scam_posts) = cal::table5(platform);
        let scam_post_target = self.params.scaled(scam_posts);
        let benign_post_target = self.params.scaled(table2_posts.saturating_sub(scam_posts));

        // Identify scam operators and assign their category mix.
        let scam_ids: Vec<AccountId> = ids
            .iter()
            .copied()
            .filter(|&id| {
                store.account(id).map(|a| a.disposition == AccountDisposition::ScamOperator)
                    == Some(true)
            })
            .collect();
        let sub_weights: Vec<(ScamSubcategory, u32)> =
            ALL_SUBCATEGORIES.iter().map(|&s| (s, s.paper_counts().0)).collect();
        let weight_total: u32 = sub_weights.iter().map(|&(_, w)| w).sum();
        for &id in &scam_ids {
            let mut cats = vec![self.weighted_sub(&sub_weights, weight_total)];
            // Table 6's per-category account sums exceed Table 5's total by
            // ~1.86x: accounts work multiple scam lines.
            if self.rng.random_bool(0.6) {
                cats.push(self.weighted_sub(&sub_weights, weight_total));
            }
            if self.rng.random_bool(0.26) {
                cats.push(self.weighted_sub(&sub_weights, weight_total));
            }
            cats.dedup();
            self.truth.scam_accounts.insert((platform, id.0), cats);
        }

        // Scam posts: round-robin over scam accounts until the target is
        // met (YouTube naturally gets ~1 post per scam account).
        if !scam_ids.is_empty() {
            for k in 0..scam_post_target {
                let id = scam_ids[k % scam_ids.len()];
                let cats = self.truth.scam_accounts[&(platform, id.0)].clone();
                let sub = *cats.choose(&mut self.rng).expect("scam account has categories"); // conformance: allow(panic-policy) — ground truth records >= 1 category per scam account
                let text = textgen::scam_post_text(sub, &mut self.rng);
                self.push_post(&mut store, platform, id, text);
                *self.truth.scam_posts_by_sub.entry(sub).or_insert(0) += 1;
                self.truth.scam_posts_total += 1;
            }
        }

        // Benign posts: heavy-tailed across all accounts (X's 814 accounts
        // produced 165K posts; YouTube's 6,271 produced 3,411).
        let foreign_account_rate = 0.06;
        let foreign: Vec<bool> = ids
            .iter()
            .map(|_| self.rng.random_bool(foreign_account_rate))
            .collect();
        let topics: Vec<usize> = ids
            .iter()
            .map(|_| self.rng.random_range(0..textgen::BENIGN_TOPIC_COUNT))
            .collect();
        for k in 0..benign_post_target {
            // Zipf-ish author pick: square a uniform to skew to low ranks.
            let r: f64 = self.rng.random_range(0.0..1.0);
            let idx = ((r * r) * ids.len() as f64) as usize;
            let idx = idx.min(ids.len() - 1);
            let id = ids[idx];
            let text = if foreign[idx] {
                self.truth.foreign_posts += 1;
                textgen::foreign_post_text(&mut self.rng)
            } else {
                let topic = if self.rng.random_bool(0.8) {
                    topics[idx]
                } else {
                    self.rng.random_range(0..textgen::BENIGN_TOPIC_COUNT)
                };
                textgen::benign_post_text(topic, &mut self.rng)
            };
            self.push_post(&mut store, platform, id, text);
            let _ = k;
        }
    }

    fn weighted_sub(
        &mut self,
        weights: &[(ScamSubcategory, u32)],
        total: u32,
    ) -> ScamSubcategory {
        let mut pick = self.rng.random_range(0..total);
        for &(s, w) in weights {
            if pick < w {
                return s;
            }
            pick -= w;
        }
        weights.last().expect("non-empty").0 // conformance: allow(panic-policy) — static non-empty weight table
    }

    fn push_post(
        &mut self,
        store: &mut PlatformStore,
        platform: Platform,
        author: AccountId,
        text: String,
    ) {
        let followers = store.account(author).map(|a| a.followers).unwrap_or(0);
        let pid = store.next_post_id();
        let created = COLLECTION_START_UNIX - self.rng.random_range(0..86_400 * 365);
        let mut post = Post::new(pid, platform, author, text, created);
        let virality = self.rng.random_range(0.0..0.05);
        let (views, likes, replies, shares) =
            sample_post_engagement(followers, virality, &mut self.rng);
        post.views = views;
        post.likes = likes;
        post.replies = replies;
        post.shares = shares;
        store.add_post(post);
        self.truth.posts_total += 1;
    }

    // -- underground ------------------------------------------------------------

    fn generate_underground(&mut self) {
        let mut post_id = 1u64;
        for market in ALL_UNDERGROUND {
            let cfg = market.config();
            let mut posts = Vec::new();
            if cfg.sells_accounts && cfg.paper_posts > 0 {
                let mut authors: Vec<String> = (0..cfg.paper_sellers.max(1))
                    .map(|i| format!("{}_vendor{}", cfg.name.to_ascii_lowercase().replace(' ', ""), i))
                    .collect();
                // §4.2: two sellers operate under the same username across
                // markets ("cross-platform operations to maximize
                // visibility").
                match market {
                    UndergroundId::DarkMatter | UndergroundId::Nexus => {
                        authors[0] = "ghostdealer".to_string();
                    }
                    UndergroundId::TorzonMarket | UndergroundId::BlackPyramid => {
                        authors[0] = "accplug".to_string();
                    }
                    _ => {}
                }
                // Planted reuse families reproduce §4.2's similarity
                // findings: TikTok 12/42 near-duplicates (Nexus, three
                // authors), Instagram 2/13 (Nexus), YouTube 3/7 (one body
                // across three markets), X 1/3 (two markets); everything
                // else gets a combinatorially varied body.
                let mut tiktok_seen = 0usize;
                let mut instagram_seen = 0usize;
                let mut youtube_seen = 0usize;
                let mut x_seen = 0usize;
                for i in 0..cfg.paper_posts {
                    let platform = cfg.platforms[i % cfg.platforms.len()];
                    let author = authors[i % authors.len()].clone();
                    match platform {
                        Platform::TikTok => tiktok_seen += 1,
                        Platform::Instagram => instagram_seen += 1,
                        Platform::YouTube => youtube_seen += 1,
                        Platform::X => x_seen += 1,
                        Platform::Facebook => {}
                    }
                    let body = if market == UndergroundId::Nexus
                        && platform == Platform::TikTok
                        && tiktok_seen <= 12
                    {
                        // Near-identical template with a cosmetic numeric edit.
                        format!(
                            "Selling aged TikTok accounts with organic followers, {}k+ each. Full email access included, instant delivery after payment, escrow accepted. Message on Telegram for bulk pricing.",
                            10 + (i % 3)
                        )
                    } else if market == UndergroundId::Nexus
                        && platform == Platform::Instagram
                        && instagram_seen <= 2
                    {
                        // Two Instagram posts on Nexus share one body.
                        "Instagram pages with real niche audiences, handover with original email, buyer pays escrow fee, serious offers only on Telegram.".to_string()
                    } else if platform == Platform::YouTube
                        && matches!(
                            market,
                            UndergroundId::DarkMatter
                                | UndergroundId::BlackPyramid
                                | UndergroundId::TorzonMarket
                        )
                        && youtube_seen == 1
                    {
                        // One YouTube body reused across three markets.
                        "Monetized YouTube channel with clean strikes history, full access transfer including email, payment through escrow only, message for proof.".to_string()
                    } else if platform == Platform::X
                        && matches!(market, UndergroundId::DarkMatter | UndergroundId::Kerberos)
                        && x_seen == 1
                    {
                        // One X body reused across two markets.
                        "Aged Twitter accounts with followers included, credentials delivered instantly, no refunds after handover, contact on Telegram for stock.".to_string()
                    } else {
                        self.underground_body(platform)
                    };
                    let quantity = if market == UndergroundId::Kerberos {
                        // Two bulk posts covering 51 accounts.
                        if i == 0 { 26 } else { 25 }
                    } else {
                        1
                    };
                    posts.push(UndergroundPost {
                        id: post_id,
                        market,
                        author: author.clone(),
                        title: format!("[{}] {} account{} for sale", cfg.name, platform.name(), if quantity > 1 { "s" } else { "" }),
                        body,
                        platform,
                        price_usd: if self.rng.random_bool(0.8) {
                            Some(self.rng.random_range(15.0f64..400.0).round())
                        } else {
                            None
                        },
                        quantity,
                        published_unix: if self.rng.random_bool(0.7) {
                            Some(COLLECTION_START_UNIX + self.rng.random_range(0..86_400 * 60))
                        } else {
                            None
                        },
                        replies: self.rng.random_range(0..9),
                        contact: format!("t.me/{author}"),
                    });
                    post_id += 1;
                }
            }
            self.forums.push(Arc::new(UndergroundForum::new(market, posts)));
        }
    }

    /// A combinatorially varied listing body: opening x detail x closing,
    /// so unplanned posts stay *below* the 88% similarity threshold while
    /// still reading like real forum boilerplate.
    fn underground_body(&mut self, platform: Platform) -> String {
        let openings = [
            format!("{} account for sale, aged and warmed with an organic audience.", platform.name()),
            format!("Fresh {} profiles available, bot-grown but stable under daily use.", platform.name()),
            format!("Premium {} account populated with content and real engagement.", platform.name()),
            format!("Clean {} login ready to flip, niche audience already attached.", platform.name()),
        ];
        let details = [
            "Comes with the original email and recovery codes, nothing rented.",
            "Bulk discounts apply on larger orders, stock rotates weekly.",
            "Handover happens via session transfer once the payment clears.",
            "Screenshots of analytics available on request before any deal.",
            "Warmed on residential proxies for months, zero flags so far.",
            "Old enough to pass checks, activity logs look human throughout.",
        ];
        let closings = [
            "No refunds after credentials are delivered, test before you pay.",
            "Escrow friendly, reach out on Telegram to reserve yours.",
            "Price negotiable for serious buyers, lowballers get blocked.",
            "First come first served, vouches pinned in my profile thread.",
            "Deal goes through middleman if you cover the fee yourself.",
            "Ask for the proof pack before sending anything, no exceptions.",
        ];
        let signoffs = ["Cheers.", "Stay safe out there.", "PGP on request.", "Vouch thread open."];
        format!(
            "{} {} {} {}",
            openings.choose(&mut self.rng).expect("non-empty"), // conformance: allow(panic-policy) — static non-empty phrase pools
            details.choose(&mut self.rng).expect("non-empty"),
            closings.choose(&mut self.rng).expect("non-empty"), // conformance: allow(panic-policy) — static non-empty phrase pools
            signoffs.choose(&mut self.rng).expect("non-empty"),
        )
    }

    // -- dynamics ----------------------------------------------------------------

    /// Advance one crawl-iteration step: churn active listings and
    /// replenish inventory (Figure 2).
    pub fn step_iteration(&mut self, now_unix: i64) {
        for market in ALL_MARKETPLACES {
            let state = Arc::clone(&self.markets[&market]);
            state.write().churn(
                cal::SALE_PROB_PER_ITERATION,
                cal::DELIST_PROB_PER_ITERATION,
                now_unix,
                &mut self.rng,
            );
            let replenish =
                ((f64::from(market.config().table1_accounts) * self.params.scale
                    * cal::REPLENISH_FRACTION)
                    .round() as usize)
                    .max(1);
            for _ in 0..replenish {
                self.add_one_listing(market, now_unix);
            }
        }
    }

    /// Run the calibrated moderation sweep on every platform (the §8
    /// actions the efficacy audit then measures).
    pub fn run_moderation(&mut self, now_unix: i64) {
        for platform in ALL_PLATFORMS {
            let engine = ModerationEngine::calibrated(platform);
            let store = Arc::clone(&self.stores[&platform]);
            engine.sweep(&mut store.write(), now_unix, &mut self.rng);
        }
    }

    /// Convenience: total accounts across platform stores.
    pub fn platform_account_total(&self) -> usize {
        self.stores.values().map(|s| s.read().account_count()).sum()
    }

    /// Convenience: total posts across platform stores.
    pub fn platform_post_total(&self) -> usize {
        self.stores.values().map(|s| s.read().post_count()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_world() -> World {
        World::generate(WorldParams::small(42))
    }

    #[test]
    fn scaled_listing_counts_match_table1() {
        let w = small_world();
        for market in ALL_MARKETPLACES {
            let scaled = (f64::from(market.config().table1_accounts) * 0.05).round();
            let expected = (scaled * cal::INITIAL_STOCK_FRACTION).round() as usize;
            let got = w.markets[&market].read().cumulative_count();
            assert_eq!(got, expected, "{}", market.name());
        }
    }

    #[test]
    fn visible_fraction_near_29_percent() {
        let w = small_world();
        let frac = w.truth.visible_total as f64 / w.truth.listings_total as f64;
        assert!((frac - 0.30).abs() < 0.05, "visible fraction {frac}");
        assert_eq!(w.platform_account_total(), w.truth.visible_total);
    }

    #[test]
    fn posts_generated_at_scale() {
        let w = small_world();
        // ~205K * 0.05 ≈ 10K posts.
        let posts = w.platform_post_total();
        assert!((8_000..13_000).contains(&posts), "posts={posts}");
        assert!(w.truth.foreign_posts > 0);
        assert!(w.truth.scam_posts_total > 0);
    }

    #[test]
    fn x_accounts_post_most_per_capita() {
        let w = small_world();
        let per_capita = |p: Platform| {
            let s = w.stores[&p].read();
            s.post_count() as f64 / s.account_count().max(1) as f64
        };
        assert!(per_capita(Platform::X) > 10.0 * per_capita(Platform::YouTube));
    }

    #[test]
    fn scam_accounts_match_table5_shape() {
        let w = small_world();
        let scam_yt = w
            .truth
            .scam_accounts
            .keys()
            .filter(|(p, _)| *p == Platform::YouTube)
            .count();
        let scam_fb = w
            .truth
            .scam_accounts
            .keys()
            .filter(|(p, _)| *p == Platform::Facebook)
            .count();
        // YouTube has by far the most scam accounts (1,661 vs 512 at full
        // scale).
        assert!(scam_yt > scam_fb, "yt={scam_yt} fb={scam_fb}");
    }

    #[test]
    fn clusters_planted_per_platform() {
        let w = small_world();
        assert!(!w.truth.clusters.is_empty());
        for (platform, members) in &w.truth.clusters {
            assert!(members.len() >= 2, "{platform}: cluster too small");
        }
        // YouTube has the most clusters (97 at full scale).
        let count = |p: Platform| w.truth.clusters.iter().filter(|(q, _)| *q == p).count();
        assert!(count(Platform::YouTube) >= count(Platform::TikTok));
    }

    #[test]
    fn underground_posts_match_paper_counts() {
        let w = small_world(); // underground is never scaled
        let total: usize = w.forums.iter().map(|f| f.posts().len()).sum();
        assert_eq!(total, cal::UNDERGROUND_POSTS);
        let nexus = w
            .forums
            .iter()
            .find(|f| f.config().id == UndergroundId::Nexus)
            .unwrap();
        assert_eq!(nexus.posts().len(), 37);
        // Kerberos: 2 bulk posts covering 51 accounts.
        let kerberos = w
            .forums
            .iter()
            .find(|f| f.config().id == UndergroundId::Kerberos)
            .unwrap();
        let qty: u32 = kerberos.posts().iter().map(|p| p.quantity).sum();
        assert_eq!(qty, 51);
    }

    #[test]
    fn nexus_tiktok_posts_contain_near_duplicates() {
        let w = small_world();
        let nexus = w
            .forums
            .iter()
            .find(|f| f.config().id == UndergroundId::Nexus)
            .unwrap();
        let tiktok_bodies: Vec<String> = nexus
            .posts()
            .iter()
            .filter(|p| p.platform == Platform::TikTok)
            .map(|p| p.body.clone())
            .collect();
        let pairs = acctrade_text::similarity::similar_pairs(&tiktok_bodies, 0.88);
        assert!(!pairs.is_empty(), "expected near-duplicate TikTok posts on Nexus");
    }

    #[test]
    fn step_iteration_churns_and_replenishes() {
        let mut w = small_world();
        let market = MarketplaceId::Accsmarket;
        let before_cum = w.markets[&market].read().cumulative_count();
        let before_active = w.markets[&market].read().active_count();
        for it in 0..10 {
            w.step_iteration(COLLECTION_START_UNIX + (it + 1) * 86_400 * 14);
        }
        let after_cum = w.markets[&market].read().cumulative_count();
        let after_active = w.markets[&market].read().active_count();
        assert!(after_cum > before_cum, "cumulative must grow");
        assert!(after_active < after_cum, "churn must retire listings");
        assert!(before_active <= before_cum);
    }

    #[test]
    fn moderation_changes_statuses() {
        let mut w = small_world();
        w.run_moderation(COLLECTION_START_UNIX + 86_400 * 120);
        let inactive: usize = w
            .stores
            .values()
            .map(|s| {
                let s = s.read();
                s.account_count() - s.count_by_status(acctrade_social::account::AccountStatus::Active)
            })
            .sum();
        let total = w.platform_account_total();
        let rate = inactive as f64 / total as f64;
        assert!((0.12..0.30).contains(&rate), "overall inactive rate {rate}");
    }

    #[test]
    fn generation_is_deterministic() {
        let a = World::generate(WorldParams::small(7));
        let b = World::generate(WorldParams::small(7));
        assert_eq!(a.truth.listings_total, b.truth.listings_total);
        assert_eq!(a.truth.posts_total, b.truth.posts_total);
        assert_eq!(a.truth.visible_total, b.truth.visible_total);
        // Post totals are calibration-fixed, so compare seed-dependent
        // content instead: the per-subcategory scam-post distribution.
        let c = World::generate(WorldParams::small(8));
        assert_ne!(a.truth.scam_posts_by_sub, c.truth.scam_posts_by_sub);
    }

    #[test]
    fn deploy_registers_all_hosts() {
        let w = small_world();
        let net = SimNet::new(1);
        w.deploy(&net);
        for m in ALL_MARKETPLACES {
            assert!(net.knows_host(m.host()), "{}", m.name());
        }
        for p in ALL_PLATFORMS {
            assert!(net.knows_host(p.api_host()), "{p}");
        }
        let onions = net.hosts().iter().filter(|h| h.ends_with(".onion")).count();
        assert_eq!(onions, 8);
    }
}
