//! The simulated buyer population.
//!
//! Buyers are demand-side actors the crawler never observes directly:
//! they exist so the economy subsystem (`acctrade-economy`) has someone
//! to open escrow orders. Each buyer carries small multiplicative
//! biases around the scenario's baseline probabilities — some buyers
//! abandon carts more, some dispute more, some shop weekly and some
//! monthly — drawn once from a dedicated RNG substream so the
//! population is a pure function of `(seed, scale)`, exactly like the
//! listing population.

use foundation::rng::{ChaCha8Rng, RngExt, SeedableRng};

/// One simulated demand-side actor.
#[derive(Debug, Clone, PartialEq)]
pub struct Buyer {
    /// Stable id (dense from `1_000_000`, the buyer entity namespace).
    pub id: u64,
    /// Multiplier on the scenario's baseline funding probability.
    pub fund_bias: f64,
    /// Multiplier on the scenario's baseline dispute probability.
    pub dispute_bias: f64,
    /// Mean days between this buyer's shopping visits.
    pub mean_gap_days: f64,
    /// Days after campaign start before the first visit.
    pub first_delay_days: f64,
}

/// Generate the buyer population for `(seed, scale)`.
///
/// `per_unit_scale` is the population size at scale 1.0; the floor of
/// six keeps tiny smoke-test scales economically alive.
pub fn buyer_population(seed: u64, scale: f64, per_unit_scale: f64) -> Vec<Buyer> {
    let count = ((per_unit_scale * scale).round() as usize).max(6);
    let mut rng = ChaCha8Rng::seed_from_u64(seed ^ 0x0B0D_E0B0_D000_0002);
    let mut buyers = Vec::with_capacity(count);
    for i in 0..count {
        buyers.push(Buyer {
            id: 1_000_000 + i as u64,
            fund_bias: rng.random_range(0.75..1.2),
            dispute_bias: rng.random_range(0.4..2.2),
            mean_gap_days: rng.random_range(4.0..28.0),
            first_delay_days: rng.random_range(0.25..12.0),
        });
    }
    buyers
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn population_is_deterministic_and_scaled() {
        let a = buyer_population(42, 0.1, 900.0);
        let b = buyer_population(42, 0.1, 900.0);
        assert_eq!(a, b);
        assert_eq!(a.len(), 90);
        assert_eq!(a[0].id, 1_000_000);
        assert_eq!(a[89].id, 1_000_089);
        // Different seeds produce different biases.
        let c = buyer_population(43, 0.1, 900.0);
        assert_ne!(a, c);
    }

    #[test]
    fn tiny_scales_keep_a_floor_population() {
        assert_eq!(buyer_population(1, 0.0001, 900.0).len(), 6);
    }

    #[test]
    fn biases_stay_in_band() {
        for b in buyer_population(7, 1.0, 900.0) {
            assert!((0.75..1.2).contains(&b.fund_bias));
            assert!((0.4..2.2).contains(&b.dispute_bias));
            assert!((4.0..28.0).contains(&b.mean_gap_days));
            assert!((0.25..12.0).contains(&b.first_delay_days));
        }
    }
}
