//! Category and location pools.
//!
//! §4.1 found 212 distinct *marketplace* categories (top-5: Humor/Memes,
//! Luxury/Motivation, Fashion/Style, Reviews/How-to, Games); §5 found 288
//! distinct *platform* profile categories (top-5: Brand and Business,
//! Entities, Digital Assets & Crypto, Interests and Hobbies, Events) and
//! 140 distinct profile locations (US, India, Pakistan, South Korea,
//! Bangladesh on top).

use foundation::rng::{Rng, RngExt};

/// The heads of the marketplace-category distribution, with paper counts
/// (per-category listing counts from §4.1).
pub(crate) const TOP_MARKET_CATEGORIES: &[(&str, u32)] = &[
    ("Humor/Memes", 5_056),
    ("Luxury/Motivation", 2_292),
    ("Fashion/Style", 1_678),
    ("Reviews/How-to", 1_420),
    ("Games", 1_062),
];

const MARKET_SUBJECTS: &[&str] = &[
    "Travel", "Fitness", "Food", "Cars", "Crypto", "NFT", "Pets", "Animals", "Beauty", "Makeup",
    "Sports", "Football", "Basketball", "Music", "Dance", "Art", "Photography", "Nature",
    "Quotes", "Motivation", "Business", "Finance", "Investing", "Tech", "Gadgets", "Anime",
    "Movies", "Celebrities", "Gossip", "News", "Politics", "Science", "History", "Books",
    "Education", "DIY", "Crafts", "Gardening", "Parenting", "Relationships", "Astrology",
    "Memes", "Comedy", "Pranks", "Gaming", "Esports", "Streetwear", "Sneakers", "Watches",
    "Jewelry", "RealEstate",
];

const MARKET_MODIFIERS: &[&str] = &[
    "Daily", "Hub", "Central", "World", "Nation", "Life", "Vibes", "Zone", "Page", "Club",
];

/// Deterministic pool of marketplace category names: the top-5 plus
/// Subject/Modifier combinations, 212 in total.
pub fn marketplace_categories() -> Vec<String> {
    let mut cats: Vec<String> = TOP_MARKET_CATEGORIES.iter().map(|&(n, _)| n.to_string()).collect();
    'outer: for subject in MARKET_SUBJECTS {
        for modifier in MARKET_MODIFIERS {
            if cats.len() >= crate::calibration::MARKETPLACE_CATEGORY_COUNT {
                break 'outer;
            }
            cats.push(format!("{subject}/{modifier}"));
        }
    }
    cats
}

/// Sample a marketplace category with the paper's head-heavy skew: the
/// top-5 carry ~39% of categorized listings, the tail is near-uniform.
pub fn sample_marketplace_category<R: Rng + ?Sized>(pool: &[String], rng: &mut R) -> String {
    debug_assert!(pool.len() >= 6, "pool must include head and tail");
    let head_total: u32 = TOP_MARKET_CATEGORIES.iter().map(|&(_, c)| c).sum();
    // Categorized listings in the paper: 29,478. Head share:
    let head_share = f64::from(head_total) / 29_478.0;
    if rng.random_bool(head_share) {
        let mut pick = rng.random_range(0..head_total);
        for (i, &(_, c)) in TOP_MARKET_CATEGORIES.iter().enumerate() {
            if pick < c {
                return pool[i].clone();
            }
            pick -= c;
        }
        unreachable!("weights cover the range");
    }
    pool[rng.random_range(5..pool.len())].clone()
}

/// The heads of the platform profile-category distribution (§5).
pub(crate) const TOP_PLATFORM_CATEGORIES: &[(&str, u32)] = &[
    ("Brand and Business", 751),
    ("Entities", 349),
    ("Digital Assets & Crypto", 334),
    ("Interests and Hobbies", 322),
    ("Events", 219),
];

/// Deterministic pool of 288 platform profile categories.
pub fn platform_categories() -> Vec<String> {
    let mut cats: Vec<String> =
        TOP_PLATFORM_CATEGORIES.iter().map(|&(n, _)| n.to_string()).collect();
    let domains = [
        "Creators", "Retail", "Media", "Health", "Wellness", "Legal", "Consulting", "Nonprofit",
        "Restaurants", "Travel", "Automotive", "Beauty", "Gaming", "Sports", "Music", "Film",
        "Education", "Technology", "Finance", "Insurance", "RealEstate", "Crafts", "Events",
        "Photography",
    ];
    let kinds = [
        "Agency", "Studio", "Shop", "Community", "Network", "Collective", "Services", "Brand",
        "Official", "Group", "Channel", "Page",
    ];
    'outer: for d in domains {
        for k in kinds {
            if cats.len() >= crate::calibration::PLATFORM_CATEGORY_COUNT {
                break 'outer;
            }
            cats.push(format!("{d} {k}"));
        }
    }
    cats
}

/// Location pool: the §5 top-5 plus a long tail reaching 140 distinct
/// locations.
pub fn locations() -> Vec<&'static str> {
    let mut locs: Vec<&'static str> = crate::calibration::TOP_LOCATIONS
        .iter()
        .map(|&(n, _)| n)
        .collect();
    locs.extend_from_slice(&[
        "Indonesia", "Brazil", "Nigeria", "United Kingdom", "Turkey", "Egypt", "Vietnam",
        "Philippines", "Mexico", "Germany", "France", "Italy", "Spain", "Canada", "Australia",
        "Russia", "Ukraine", "Poland", "Netherlands", "Sweden", "Norway", "Japan", "China",
        "Thailand", "Malaysia", "Singapore", "Argentina", "Colombia", "Chile", "Peru",
        "South Africa", "Kenya", "Ghana", "Morocco", "Algeria", "Saudi Arabia", "UAE", "Qatar",
        "Israel", "Jordan", "Lebanon", "Iraq", "Iran", "Afghanistan", "Sri Lanka", "Nepal",
        "Myanmar", "Cambodia", "Laos", "Mongolia", "Kazakhstan", "Uzbekistan", "Georgia",
        "Armenia", "Azerbaijan", "Belarus", "Romania", "Bulgaria", "Greece", "Serbia", "Croatia",
        "Hungary", "Austria", "Switzerland", "Belgium", "Ireland", "Portugal", "Denmark",
        "Finland", "Iceland", "Estonia", "Latvia", "Lithuania", "Czechia", "Slovakia", "Slovenia",
        "Albania", "Bosnia", "Montenegro", "Moldova", "Cyprus", "Malta", "Luxembourg", "Ecuador",
        "Bolivia", "Paraguay", "Uruguay", "Venezuela", "Guatemala", "Honduras", "Nicaragua",
        "Panama", "Costa Rica", "Cuba", "Jamaica", "Haiti", "Dominican Republic", "Trinidad",
        "Senegal", "Ivory Coast", "Cameroon", "Uganda", "Tanzania", "Ethiopia", "Zambia",
        "Zimbabwe", "Mozambique", "Angola", "Botswana", "Namibia", "Rwanda", "Sudan", "Libya",
        "Tunisia", "Mauritius", "Madagascar", "New Zealand", "Fiji", "Taiwan", "Hong Kong",
        "South Sudan", "Bahrain", "Kuwait", "Oman", "Yemen", "Syria", "Palestine", "Brunei",
        "Maldives", "Bhutan", "Somalia", "Niger", "Mali", "Chad", "Benin", "Togo", "Gabon",
    ]);
    locs.truncate(crate::calibration::DISTINCT_LOCATIONS);
    locs
}

/// Sample a location with the paper's skew (top-5 carry ~68% of located
/// profiles).
pub fn sample_location<R: Rng + ?Sized>(pool: &[&'static str], rng: &mut R) -> &'static str {
    let head_total: u32 = crate::calibration::TOP_LOCATIONS.iter().map(|&(_, c)| c).sum();
    let head_share = f64::from(head_total) / f64::from(crate::calibration::LOCATED_PROFILES);
    if rng.random_bool(head_share) {
        let mut pick = rng.random_range(0..head_total);
        for (i, &(_, c)) in crate::calibration::TOP_LOCATIONS.iter().enumerate() {
            if pick < c {
                return pool[i];
            }
            pick -= c;
        }
    }
    pool[rng.random_range(5..pool.len())]
}

#[cfg(test)]
mod tests {
    use super::*;
    use foundation::rng::SeedableRng;
    use foundation::rng::ChaCha8Rng;

    #[test]
    fn pools_have_paper_cardinalities() {
        let m = marketplace_categories();
        assert_eq!(m.len(), 212);
        let mut uniq = m.clone();
        uniq.sort();
        uniq.dedup();
        assert_eq!(uniq.len(), 212, "duplicate marketplace categories");

        let p = platform_categories();
        assert_eq!(p.len(), 288);

        let l = locations();
        assert_eq!(l.len(), 140);
        let mut lu = l.clone();
        lu.sort();
        lu.dedup();
        assert_eq!(lu.len(), 140, "duplicate locations");
    }

    #[test]
    fn category_sampling_is_head_heavy() {
        let pool = marketplace_categories();
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let n = 20_000;
        let mut memes = 0;
        for _ in 0..n {
            if sample_marketplace_category(&pool, &mut rng) == "Humor/Memes" {
                memes += 1;
            }
        }
        let share = memes as f64 / n as f64;
        let expect = 5_056.0 / 29_478.0;
        assert!((share - expect).abs() < 0.02, "share={share} expect={expect}");
    }

    #[test]
    fn location_sampling_prefers_us() {
        let pool = locations();
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let n = 10_000;
        let us = (0..n)
            .filter(|_| sample_location(&pool, &mut rng) == "United States")
            .count();
        let share = us as f64 / n as f64;
        let expect = 1_242.0 / 3_236.0;
        assert!((share - expect).abs() < 0.03, "share={share} expect={expect}");
    }
}
