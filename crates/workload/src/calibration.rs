//! Every calibration constant from the paper, in one place.
//!
//! These numbers are the *generative priors* of the synthetic world. The
//! pipeline never reads them at analysis time — it measures the world
//! through the crawler and the platform APIs and must rediscover them
//! (within sampling noise). Integration tests assert shape, not identity.

use acctrade_social::platform::Platform;

/// Table 2, per-platform: (visible accounts, visible-account posts, all
/// advertised accounts).
pub fn table2(platform: Platform) -> (u32, u32, u32) {
    match platform {
        Platform::Instagram => (2_023, 4_207, 12_658),
        Platform::YouTube => (6_271, 3_411, 9_087),
        Platform::TikTok => (1_700, 25_131, 8_973),
        Platform::Facebook => (649, 7_407, 4_216),
        Platform::X => (814, 165_427, 3_319),
    }
}

/// Fraction of a platform's advertised accounts whose listings link the
/// profile (Table 2 visible / all).
pub fn visible_fraction(platform: Platform) -> f64 {
    let (vis, _, all) = table2(platform);
    f64::from(vis) / f64::from(all)
}

/// Table 5, per-platform: (scam accounts, scam posts).
pub fn table5(platform: Platform) -> (u32, u32) {
    match platform {
        Platform::Facebook => (512, 3_838),
        Platform::Instagram => (525, 3_271),
        Platform::TikTok => (461, 3_034),
        Platform::X => (610, 6_988),
        Platform::YouTube => (1_661, 1_661),
    }
}

/// §3.2 / Table 2 totals.
// conformance: allow(pub-hygiene) — paper anchor kept as documented API
pub const TOTAL_VISIBLE_ACCOUNTS: u32 = 11_457;
/// Total posts collected from visible accounts.
// conformance: allow(pub-hygiene) — paper anchor kept as documented API
pub const TOTAL_POSTS: u32 = 205_583;
/// §6 totals.
// conformance: allow(pub-hygiene) — paper anchor kept as documented API
pub const TOTAL_SCAM_ACCOUNTS: u32 = 3_769;
/// Total scam posts.
// conformance: allow(pub-hygiene) — paper anchor kept as documented API
pub const TOTAL_SCAM_POSTS: u32 = 18_792;

/// §4.1 pricing: grand total of advertised prices.
// conformance: allow(pub-hygiene) — paper anchor kept as documented API
pub const TOTAL_PRICE_SUM_USD: f64 = 64_228_836.0;
/// §4.1: listings priced above $20,000.
// conformance: allow(pub-hygiene) — paper anchor kept as documented API
pub const PREMIUM_LISTINGS: u32 = 345;
/// §4.1: median price among the premium listings.
// conformance: allow(pub-hygiene) — paper anchor kept as documented API
pub const PREMIUM_MEDIAN_USD: f64 = 45_000.0;
/// §4.1: maximum price among the premium listings.
// conformance: allow(pub-hygiene) — paper anchor kept as documented API
pub const PREMIUM_MAX_USD: f64 = 5_000_000.0;
/// Abstract-level median price per advertised account.
// conformance: allow(pub-hygiene) — paper anchor kept as documented API
pub const OVERALL_MEDIAN_PRICE_USD: f64 = 157.0;

/// §4.1 categories: listings with no category.
pub const UNCATEGORIZED_FRACTION: f64 = 8_775.0 / 38_253.0;
/// §4.1: distinct marketplace categories.
pub const MARKETPLACE_CATEGORY_COUNT: usize = 212;

/// §4.1 monetization: listings disclosing monthly revenue.
pub const MONETIZED_LISTINGS: u32 = 164;
/// Monthly revenue range and median among them.
// conformance: allow(pub-hygiene) — paper anchor kept as documented API
pub const MONETIZATION_RANGE_USD: (f64, f64) = (1.0, 922.0);
/// Monetization median usd.
// conformance: allow(pub-hygiene) — paper anchor kept as documented API
pub const MONETIZATION_MEDIAN_USD: f64 = 136.0;

/// §4.1: fraction of listings with a description.
pub const DESCRIBED_FRACTION: f64 = 24_293.0 / 38_253.0;
/// §4.1: fraction of listings showing a follower count.
pub const FOLLOWERS_SHOWN_FRACTION: f64 = 15_358.0 / 38_253.0;
/// §4.1: listings claiming verified status (all YouTube, none with
/// profile links).
pub const VERIFIED_CLAIMS: u32 = 185;

/// §5 locations: profiles listing one, distinct locations, and the top-5
/// with counts.
pub const LOCATED_PROFILES: u32 = 3_236;
/// Distinct locations.
pub const DISTINCT_LOCATIONS: usize = 140;
/// Top locations.
pub const TOP_LOCATIONS: &[(&str, u32)] = &[
    ("United States", 1_242),
    ("India", 470),
    ("Pakistan", 222),
    ("South Korea", 156),
    ("Bangladesh", 114),
];

/// §5 affiliated platform categories: tagged accounts and distinct tags.
pub const PLATFORM_CATEGORIZED_ACCOUNTS: u32 = 1_171;
/// Platform category count.
pub const PLATFORM_CATEGORY_COUNT: usize = 288;

/// §5 account types among visible accounts.
pub const BUSINESS_ACCOUNTS: u32 = 193;
/// Verified accounts.
pub const VERIFIED_ACCOUNTS: u32 = 669;
/// Private accounts.
pub const PRIVATE_ACCOUNTS: u32 = 65;
/// Protected accounts.
pub const PROTECTED_ACCOUNTS: u32 = 5;

/// Figure 4 creation-date anchors: fraction created before 2020 and the
/// fraction created within the last 3.5 years of the collection window.
pub const CREATED_PRE_2020: f64 = 0.30;
/// Created last 3 5 years.
// conformance: allow(pub-hygiene) — paper anchor kept as documented API
pub const CREATED_LAST_3_5_YEARS: f64 = 0.70;
/// YouTube accounts created 2006–2010 (<0.5%).
pub const YT_ANCIENT_FRACTION: f64 = 0.004;

/// Table 7 network clusters, per platform: (clusters, clustered accounts,
/// max cluster size, attribute description).
pub fn table7(platform: Platform) -> (u32, u32, u32, &'static str) {
    match platform {
        Platform::TikTok => (3, 26, 22, "Description"),
        Platform::YouTube => (97, 195, 3, "Name"),
        Platform::Instagram => (31, 152, 46, "Biography"),
        Platform::Facebook => (37, 81, 4, "Email/Phone/Website"),
        Platform::X => (35, 89, 7, "Name/Description"),
    }
}

/// §8: overall blocking efficacy across all platforms.
// conformance: allow(pub-hygiene) — paper anchor kept as documented API
pub const OVERALL_EFFICACY_PCT: f64 = 19.71;

/// §3.1/Figure 2: crawl iterations across the Feb–Jun 2024 window.
// conformance: allow(pub-hygiene) — paper anchor kept as documented API
pub const CRAWL_ITERATIONS: usize = 10;
/// Fraction of the final cumulative stock present at the first crawl.
pub const INITIAL_STOCK_FRACTION: f64 = 0.80;
/// New listings per iteration, as a fraction of final cumulative stock.
pub const REPLENISH_FRACTION: f64 = 0.02;
/// Per-iteration sale and delist probabilities for active listings.
pub const SALE_PROB_PER_ITERATION: f64 = 0.035;
/// Delist prob per iteration.
pub const DELIST_PROB_PER_ITERATION: f64 = 0.012;

/// §4.1 description strategies: (label, listing count) from the paper's
/// keyword analysis.
pub const DESCRIPTION_STRATEGIES: &[(&str, u32)] = &[
    ("authentic", 784),
    ("fresh and ready", 157),
    ("business adaptability", 122),
    ("real users with activity", 116),
    ("original email included", 98),
];

/// §4.1 income-source narratives: (label, seller count).
pub const INCOME_SOURCES: &[(&str, u32)] = &[
    ("generic ad-based revenue", 335),
    ("Google AdSense", 73),
    ("premium memberships / channel monetization", 73),
    ("promotion plans for NFT and crypto projects", 52),
    ("selling promo videos and watermarked shorts", 41),
];

/// §6: total clusters the topic model produced, and how many were
/// scam-related.
pub const TOPIC_CLUSTERS: usize = 86;
/// Scam clusters.
// conformance: allow(pub-hygiene) — paper anchor kept as documented API
pub const SCAM_CLUSTERS: usize = 16;

/// §4.2 underground: total posts across the six active markets.
pub const UNDERGROUND_POSTS: usize = 65;
/// §4.2: similarity band reported across near-duplicate listings.
// conformance: allow(pub-hygiene) — paper anchor kept as documented API
pub const UNDERGROUND_SIMILARITY_BAND: (f64, f64) = (0.88, 1.0);
/// §4.2: of the 42 TikTok-related posts, 12 were near-duplicates tied to
/// three authors.
// conformance: allow(pub-hygiene) — paper anchor kept as documented API
pub const TIKTOK_NEAR_DUP_POSTS: usize = 12;

#[cfg(test)]
mod tests {
    use super::*;
    use acctrade_social::platform::ALL_PLATFORMS;

    #[test]
    fn table2_sums_match_totals() {
        let (mut vis, mut posts, mut all) = (0u32, 0u32, 0u32);
        for p in ALL_PLATFORMS {
            let (v, ps, a) = table2(p);
            vis += v;
            posts += ps;
            all += a;
        }
        assert_eq!(vis, TOTAL_VISIBLE_ACCOUNTS);
        assert_eq!(posts, TOTAL_POSTS);
        assert_eq!(all, 38_253);
    }

    #[test]
    fn table5_sums_match_totals() {
        let (mut accts, mut posts) = (0u32, 0u32);
        for p in ALL_PLATFORMS {
            let (a, ps) = table5(p);
            accts += a;
            posts += ps;
        }
        assert_eq!(accts, TOTAL_SCAM_ACCOUNTS);
        assert_eq!(posts, TOTAL_SCAM_POSTS);
    }

    #[test]
    fn scam_accounts_fit_within_visible() {
        for p in ALL_PLATFORMS {
            let (vis, _, _) = table2(p);
            let (scam, _) = table5(p);
            assert!(scam <= vis, "{p}: {scam} scam > {vis} visible");
        }
    }

    #[test]
    fn visible_fractions_bracket_29_percent() {
        let overall = f64::from(TOTAL_VISIBLE_ACCOUNTS) / 38_253.0;
        assert!((overall - 0.2995).abs() < 0.01);
        assert!(visible_fraction(Platform::YouTube) > 0.6);
        assert!(visible_fraction(Platform::Facebook) < 0.2);
    }

    #[test]
    fn table7_totals() {
        let clusters: u32 = ALL_PLATFORMS.iter().map(|&p| table7(p).0).sum();
        let accounts: u32 = ALL_PLATFORMS.iter().map(|&p| table7(p).1).sum();
        assert_eq!(clusters, 203);
        assert_eq!(accounts, 543);
    }

    #[test]
    fn replenishment_reaches_full_stock() {
        let end = INITIAL_STOCK_FRACTION + REPLENISH_FRACTION * CRAWL_ITERATIONS as f64;
        assert!((end - 1.0).abs() < 1e-9);
    }
}
