//! Prometheus text exposition over the live [`Registry`] state.
//!
//! The ops virtual host's `/metrics` endpoint renders one or more
//! recorders into the Prometheus text format (`# TYPE` headers, sorted
//! sample lines, a `source` label distinguishing the campaign registry
//! from the server-side one). Rendering the same registry state twice
//! yields byte-identical text — the exposition golden test and the
//! campaign/manifest reconciliation gate both rest on that.
//!
//! Histograms are exported summary-style: `_count`/`_sum`/`_min`/`_max`
//! plus `quantile`-labelled sample lines at the registry's log-bucket
//! resolution.
//!
//! [`Registry`]: crate::metrics::Registry

use crate::metrics::Key;
use crate::recorder::Recorder;
use std::collections::BTreeMap;

/// Sanitize a metric name into the Prometheus grammar
/// (`[a-zA-Z_:][a-zA-Z0-9_:]*`): dots and other separators become
/// underscores.
pub(crate) fn sanitize_name(name: &str) -> String {
    let mut out = String::with_capacity(name.len());
    for (i, ch) in name.chars().enumerate() {
        let ok = ch.is_ascii_alphabetic() || ch == '_' || ch == ':' || (i > 0 && ch.is_ascii_digit());
        out.push(if ok { ch } else { '_' });
    }
    if out.is_empty() {
        out.push('_');
    }
    out
}

fn escape_label_value(value: &str) -> String {
    let mut out = String::with_capacity(value.len());
    for ch in value.chars() {
        match ch {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            other => out.push(other),
        }
    }
    out
}

/// Render a label set (plus optional extra pairs) as `{k="v",...}`.
fn render_labels(key: &Key, extra: &[(&str, &str)]) -> String {
    let mut pairs: Vec<(String, String)> = key
        .labels
        .iter()
        .map(|(k, v)| (sanitize_name(k), escape_label_value(v)))
        .collect();
    for (k, v) in extra {
        pairs.push((sanitize_name(k), escape_label_value(v)));
    }
    pairs.sort();
    if pairs.is_empty() {
        return String::new();
    }
    let body: Vec<String> = pairs.iter().map(|(k, v)| format!("{k}=\"{v}\"")).collect();
    format!("{{{}}}", body.join(","))
}

/// Format a sample value the way Prometheus expects: integral values
/// without a fraction, everything else in shortest-roundtrip form.
fn format_value(v: f64) -> String {
    if v.fract() == 0.0 && v.abs() < 9e15 {
        format!("{}", v as i64)
    } else {
        format!("{v}")
    }
}

/// One metric family accumulated across sources.
#[derive(Default)]
struct Family {
    kind: &'static str,
    /// Fully rendered sample lines, collected then sorted.
    lines: Vec<String>,
}

/// Render one or more recorders as one Prometheus text exposition.
///
/// Each `(source, recorder)` pair contributes its counters, gauges, and
/// histograms with a `source="<name>"` label, so the campaign registry
/// and the server-side registry stay distinguishable in one scrape.
/// Families and samples are emitted in sorted order: same registry
/// state, same bytes.
pub fn render_prometheus(sources: &[(&str, &Recorder)]) -> String {
    let mut families: BTreeMap<String, Family> = BTreeMap::new();
    let mut add = |name: String, kind: &'static str, line: String| {
        let fam = families.entry(name).or_default();
        fam.kind = kind;
        fam.lines.push(line);
    };

    for (source, rec) in sources {
        let extra = [("source", *source)];
        for (key, value) in rec.counters() {
            let name = sanitize_name(&key.name);
            let labels = render_labels(&key, &extra);
            add(name.clone(), "counter", format!("{name}{labels} {}", format_value(value as f64)));
        }
        for (key, value) in rec.gauges() {
            let name = sanitize_name(&key.name);
            let labels = render_labels(&key, &extra);
            add(name.clone(), "gauge", format!("{name}{labels} {}", format_value(value)));
        }
        for (key, hist) in rec.histograms() {
            let name = sanitize_name(&key.name);
            let fam = name.clone();
            for (suffix, value) in [
                ("_count", hist.count()),
                ("_sum", hist.sum()),
                ("_min", hist.min()),
                ("_max", hist.max()),
            ] {
                let labels = render_labels(&key, &extra);
                add(
                    fam.clone(),
                    "summary",
                    format!("{name}{suffix}{labels} {}", format_value(value as f64)),
                );
            }
            for (q, label) in [(0.5, "0.5"), (0.9, "0.9"), (0.99, "0.99")] {
                let value = if hist.count() == 0 { 0 } else { hist.quantile(q) };
                let labels = render_labels(&key, &[("source", source), ("quantile", label)]);
                add(fam.clone(), "summary", format!("{name}{labels} {}", format_value(value as f64)));
            }
        }
    }

    let mut out = String::new();
    for (name, mut family) in families {
        out.push_str(&format!("# TYPE {name} {}\n", family.kind));
        family.lines.sort();
        for line in family.lines {
            out.push_str(&line);
            out.push('\n');
        }
    }
    out
}

/// Parse an exposition back into `sample line prefix → value` — the
/// reconciliation side of the `/metrics` contract. Keys are the full
/// `name{labels}` prefix exactly as rendered; `# `-comment lines are
/// skipped.
pub fn parse_exposition(text: &str) -> BTreeMap<String, f64> {
    let mut out = BTreeMap::new();
    for line in text.lines() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        // The value is everything after the last space; label values
        // may contain spaces, so split from the right.
        let Some(split) = line.rfind(' ') else { continue };
        let (key, value) = line.split_at(split);
        if let Ok(v) = value.trim().parse::<f64>() {
            out.insert(key.to_string(), v);
        }
    }
    out
}

/// The sample-line prefix [`render_prometheus`] emits for one counter
/// key under `source` — the join key for manifest reconciliation.
pub fn counter_sample_key(key: &Key, source: &str) -> String {
    let name = sanitize_name(&key.name);
    let labels = render_labels(key, &[("source", source)]);
    format!("{name}{labels}")
}

/// Parse a manifest-rendered key (`Key::render` form, i.e.
/// `name{label=value,...}` or a bare `name`) back into a [`Key`] so a
/// scraped exposition can be joined against `TELEMETRY_report.json`
/// counter entries. Label values in this workspace never contain `,`,
/// `=`, or `}` — the renderer's grammar is unambiguous for them.
pub fn parse_rendered_key(rendered: &str) -> Key {
    let Some((name, rest)) = rendered.split_once('{') else {
        return Key { name: rendered.to_string(), labels: Vec::new() };
    };
    let body = rest.strip_suffix('}').unwrap_or(rest);
    let mut labels: Vec<(String, String)> = body
        .split(',')
        .filter(|pair| !pair.is_empty())
        .map(|pair| match pair.split_once('=') {
            Some((k, v)) => (k.to_string(), v.to_string()),
            None => (pair.to_string(), String::new()),
        })
        .collect();
    labels.sort();
    Key { name: name.to_string(), labels }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_recorder() -> Recorder {
        let rec = Recorder::new();
        rec.incr("crawl.pages", &[("marketplace", "Accsmarket")], 12);
        rec.incr("net.requests", &[], 70);
        rec.gauge_set("crawl.frontier_peak", &[], 17.5);
        rec.observe("net.latency_us", &[], 300);
        rec.observe("net.latency_us", &[], 700);
        rec
    }

    #[test]
    fn exposition_is_sorted_and_byte_stable() {
        let rec = sample_recorder();
        let a = render_prometheus(&[("campaign", &rec)]);
        let b = render_prometheus(&[("campaign", &rec)]);
        assert_eq!(a, b);
        let lines: Vec<&str> = a.lines().collect();
        assert!(lines[0].starts_with("# TYPE "));
        // Families arrive in sorted order.
        let families: Vec<&str> = lines
            .iter()
            .filter(|l| l.starts_with("# TYPE "))
            .map(|l| l.split_whitespace().nth(2).unwrap())
            .collect();
        let mut sorted = families.clone();
        sorted.sort();
        assert_eq!(families, sorted);
    }

    #[test]
    fn counter_lines_round_trip_through_parse() {
        let rec = sample_recorder();
        let text = render_prometheus(&[("campaign", &rec)]);
        let parsed = parse_exposition(&text);
        let key = Key::new("crawl.pages", &[("marketplace", "Accsmarket")]);
        assert_eq!(parsed.get(&counter_sample_key(&key, "campaign")), Some(&12.0));
        let key = Key::new("net.requests", &[]);
        assert_eq!(parsed.get(&counter_sample_key(&key, "campaign")), Some(&70.0));
    }

    #[test]
    fn histograms_export_summary_style() {
        let rec = sample_recorder();
        let text = render_prometheus(&[("campaign", &rec)]);
        assert!(text.contains("# TYPE net_latency_us summary"));
        assert!(text.contains("net_latency_us_count{source=\"campaign\"} 2"));
        assert!(text.contains("net_latency_us_sum{source=\"campaign\"} 1000"));
        assert!(text.contains("quantile=\"0.5\""));
    }

    #[test]
    fn two_sources_stay_distinguishable() {
        let campaign = Recorder::new();
        campaign.incr("net.requests", &[], 3);
        let server = Recorder::new();
        server.incr("net.requests", &[], 9);
        let text = render_prometheus(&[("campaign", &campaign), ("server", &server)]);
        let parsed = parse_exposition(&text);
        let key = Key::new("net.requests", &[]);
        assert_eq!(parsed.get(&counter_sample_key(&key, "campaign")), Some(&3.0));
        assert_eq!(parsed.get(&counter_sample_key(&key, "server")), Some(&9.0));
    }

    #[test]
    fn rendered_keys_round_trip_through_parse() {
        for key in [
            Key::new("net.requests", &[]),
            Key::new("crawl.pages", &[("marketplace", "Accsmarket")]),
            Key::new("api.calls", &[("platform", "x"), ("outcome", "ok")]),
        ] {
            assert_eq!(parse_rendered_key(&key.render()), key);
        }
    }

    #[test]
    fn sanitization_and_escaping() {
        assert_eq!(sanitize_name("crawl.pages"), "crawl_pages");
        assert_eq!(sanitize_name("9lives"), "_lives");
        assert_eq!(escape_label_value("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
    }
}
