//! Structured tracing: per-thread lock-free rings drained into Chrome
//! `trace_event` JSON.
//!
//! The live ops plane needs span-level provenance *while a campaign
//! runs*, without perturbing the hot paths it observes. A [`Tracer`]
//! hands every recording thread its own bounded single-producer /
//! single-consumer ring ([`TraceRing`]): the owning thread pushes
//! [`TraceRecord`]s with two atomic stores and no locks, and the drainer
//! (the `/tracez` handler, or the end-of-run exporter) consumes them
//! under a drain lock that producers never touch. A full ring sheds the
//! newest record and counts it — tracing degrades, the traced system
//! does not.
//!
//! Every record is stamped with **both** clocks:
//!
//! * wall microseconds since the tracer's epoch — the operator view,
//!   exported by [`Tracer::chrome_json`] as a flamegraph-viewable Chrome
//!   `trace_event` document (`chrome://tracing`, Perfetto);
//! * virtual microseconds from the simulation clock — the deterministic
//!   view. [`virtual_trace`] renders the same span/event data from a
//!   finished [`RunManifest`], whose virtual fields are a pure function
//!   of the seed, so the resulting `TRACE_report.json` is byte-identical
//!   across same-seed runs at any worker count.
//!
//! [`validate_trace`] is the CI-side schema check for both variants.

// conformance: atomics(relaxed, acquire, release) — slot seq uses acquire/release pairs; counters and cursors are relaxed

use crate::manifest::RunManifest;
use foundation::json::Json;
use foundation::sync::Mutex;
use std::cell::RefCell;
use std::cell::UnsafeCell;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// Trace schema identifier (top-level `schema` key of both variants).
pub const TRACE_SCHEMA: &str = "acctrade-trace/v1";

/// Default trace file name.
pub const TRACE_FILE: &str = "TRACE_report.json";

/// Default per-thread ring capacity (records).
pub(crate) const DEFAULT_RING_CAPACITY: usize = 8192;

/// Default retained-record cap across all drained rings.
pub(crate) const DEFAULT_RETAIN_CAPACITY: usize = 65_536;

/// Default slow-span threshold (wall µs) for the `/tracez` slow log.
pub(crate) const DEFAULT_SLOW_THRESHOLD_US: u64 = 10_000;

/// Category of a trace record (Chrome's `cat` field).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceCat {
    /// A pipeline stage span (recorder bridge).
    Stage,
    /// An instant breadcrumb (recorder bridge).
    Event,
    /// A server-side request phase (`httpd`).
    Http,
}

impl TraceCat {
    /// The `cat` string rendered into the trace document.
    pub fn as_str(self) -> &'static str {
        match self {
            TraceCat::Stage => "stage",
            TraceCat::Event => "event",
            TraceCat::Http => "http",
        }
    }
}

/// One record in a trace ring.
#[derive(Debug, Clone, PartialEq)]
pub enum TraceRecord {
    /// A closed span (Chrome phase `X`): duration known at record time.
    Complete {
        /// Span name (stage name, or `http.request`).
        name: String,
        /// Category.
        cat: TraceCat,
        /// Wall start, µs since the tracer epoch.
        wall_start_us: u64,
        /// Wall duration, µs.
        wall_dur_us: u64,
        /// Virtual start, µs since the simulation epoch.
        virtual_start_us: u64,
        /// Virtual duration, µs.
        virtual_dur_us: u64,
        /// Free-form detail (span path, `host path -> status`).
        detail: String,
    },
    /// An instant event (Chrome phase `i`).
    Instant {
        /// Event name.
        name: String,
        /// Category.
        cat: TraceCat,
        /// Wall timestamp, µs since the tracer epoch.
        wall_us: u64,
        /// Virtual timestamp, µs since the simulation epoch.
        virtual_us: u64,
        /// Free-form detail.
        detail: String,
    },
}

impl TraceRecord {
    /// The record's span/event name.
    pub fn name(&self) -> &str {
        match self {
            TraceRecord::Complete { name, .. } | TraceRecord::Instant { name, .. } => name,
        }
    }

    /// Wall start (or instant) timestamp, µs since the tracer epoch.
    pub fn wall_start_us(&self) -> u64 {
        match self {
            TraceRecord::Complete { wall_start_us, .. } => *wall_start_us,
            TraceRecord::Instant { wall_us, .. } => *wall_us,
        }
    }

    /// Wall duration in µs (zero for instants) — `/tracez` rendering.
    pub fn wall_dur_us(&self) -> u64 {
        match self {
            TraceRecord::Complete { wall_dur_us, .. } => *wall_dur_us,
            TraceRecord::Instant { .. } => 0,
        }
    }

    /// Render as one Chrome `trace_event` object for the wall view.
    fn chrome_event(&self, tid: u64) -> Json {
        let mut fields: Vec<(String, Json)> = Vec::with_capacity(8);
        match self {
            TraceRecord::Complete {
                name,
                cat,
                wall_start_us,
                wall_dur_us,
                virtual_start_us,
                virtual_dur_us,
                detail,
            } => {
                fields.push(("name".into(), Json::Str(name.clone())));
                fields.push(("cat".into(), Json::Str(cat.as_str().into())));
                fields.push(("ph".into(), Json::Str("X".into())));
                fields.push(("ts".into(), Json::Num(*wall_start_us as f64)));
                fields.push(("dur".into(), Json::Num(*wall_dur_us as f64)));
                fields.push(("pid".into(), Json::Num(1.0)));
                fields.push(("tid".into(), Json::Num(tid as f64)));
                fields.push((
                    "args".into(),
                    Json::Obj(vec![
                        ("detail".into(), Json::Str(detail.clone())),
                        ("virtual_start_us".into(), Json::Num(*virtual_start_us as f64)),
                        ("virtual_dur_us".into(), Json::Num(*virtual_dur_us as f64)),
                    ]),
                ));
            }
            TraceRecord::Instant { name, cat, wall_us, virtual_us, detail } => {
                fields.push(("name".into(), Json::Str(name.clone())));
                fields.push(("cat".into(), Json::Str(cat.as_str().into())));
                fields.push(("ph".into(), Json::Str("i".into())));
                fields.push(("ts".into(), Json::Num(*wall_us as f64)));
                fields.push(("s".into(), Json::Str("t".into())));
                fields.push(("pid".into(), Json::Num(1.0)));
                fields.push(("tid".into(), Json::Num(tid as f64)));
                fields.push((
                    "args".into(),
                    Json::Obj(vec![
                        ("detail".into(), Json::Str(detail.clone())),
                        ("virtual_us".into(), Json::Num(*virtual_us as f64)),
                    ]),
                ));
            }
        }
        Json::Obj(fields)
    }
}

/// One slot of a [`TraceRing`]: a sequence gate plus the payload cell.
struct Slot {
    /// Vyukov-style sequence: `== pos` means writable by the producer,
    /// `== pos + 1` means readable by the consumer.
    seq: AtomicU64,
    value: UnsafeCell<Option<TraceRecord>>,
}

/// A bounded single-producer / single-consumer ring of trace records.
///
/// The producer is structurally unique: each ring is owned by exactly
/// one thread through the tracer's thread-local registry, and only that
/// thread calls [`TraceRing::push`]. The consumer side is serialized by
/// the tracer's drain lock. Under that discipline the per-slot sequence
/// protocol makes every push two atomic ops and zero locks.
pub struct TraceRing {
    slots: Box<[Slot]>,
    /// Next position the producer writes (monotonic, mod capacity).
    tail: AtomicU64,
    /// Next position the consumer reads (monotonic, mod capacity).
    head: AtomicU64,
    /// Records shed because the ring was full.
    dropped: AtomicU64,
}

// SAFETY: the only non-Sync member is the UnsafeCell payload, and the
// sequence protocol guarantees exclusive access — a slot is touched by
// the producer only while `seq == pos` and by the consumer only while
// `seq == pos + 1`, with the acquire/release pair ordering the payload
// write before the flag flip.
unsafe impl Sync for TraceRing {}
// SAFETY: sending the ring transfers only atomics and heap-owned slots;
// no thread-affine state exists, so Send follows from Sync plus owned data.
unsafe impl Send for TraceRing {}

impl TraceRing {
    /// A ring holding up to `capacity` records (rounded up to 2).
    pub fn with_capacity(capacity: usize) -> TraceRing {
        let capacity = capacity.max(2);
        let slots: Vec<Slot> = (0..capacity)
            .map(|i| Slot { seq: AtomicU64::new(i as u64), value: UnsafeCell::new(None) })
            .collect();
        TraceRing {
            slots: slots.into_boxed_slice(),
            tail: AtomicU64::new(0),
            head: AtomicU64::new(0),
            dropped: AtomicU64::new(0),
        }
    }

    /// Producer side: push one record, shedding (and counting) it when
    /// the ring is full. Must only be called by the owning thread — the
    /// tracer enforces this by handing each thread its own ring.
    fn push(&self, record: TraceRecord) {
        let pos = self.tail.load(Ordering::Relaxed);
        let slot = &self.slots[(pos % self.slots.len() as u64) as usize];
        if slot.seq.load(Ordering::Acquire) != pos {
            // The consumer has not freed this slot yet: ring full.
            self.dropped.fetch_add(1, Ordering::Relaxed);
            return;
        }
        // SAFETY: `seq == pos` grants the producer exclusive slot access
        // (see the Sync impl note); only the owning thread produces.
        unsafe { *slot.value.get() = Some(record) };
        slot.seq.store(pos + 1, Ordering::Release);
        self.tail.store(pos + 1, Ordering::Release);
    }

    /// Consumer side: pop the oldest record, if any. Callers serialize
    /// through the tracer's drain lock.
    fn pop(&self) -> Option<TraceRecord> {
        let pos = self.head.load(Ordering::Relaxed);
        let slot = &self.slots[(pos % self.slots.len() as u64) as usize];
        if slot.seq.load(Ordering::Acquire) != pos + 1 {
            return None; // empty
        }
        // SAFETY: `seq == pos + 1` grants the consumer exclusive slot
        // access; consumers are serialized by the drain lock.
        let record = unsafe { (*slot.value.get()).take() };
        slot.seq.store(pos + self.slots.len() as u64, Ordering::Release);
        self.head.store(pos + 1, Ordering::Release);
        record
    }

    /// Records shed because the ring was full.
    pub fn dropped(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }
}

/// One retained entry: the record plus the tracer-assigned thread id.
#[derive(Debug, Clone, PartialEq)]
pub struct RetainedRecord {
    /// Tracer-assigned thread id (registration order, stable per run).
    pub tid: u64,
    /// The record.
    pub record: TraceRecord,
}

/// A slow-span log entry (`/tracez`).
#[derive(Debug, Clone, PartialEq)]
pub struct SlowEntry {
    /// Span name.
    pub name: String,
    /// Wall duration, µs.
    pub wall_dur_us: u64,
    /// Wall start, µs since the tracer epoch.
    pub wall_start_us: u64,
    /// Detail string.
    pub detail: String,
}

struct TracerInner {
    id: u64,
    epoch: Instant,
    ring_capacity: usize,
    /// Registered rings in registration order (index = tid).
    rings: Mutex<Vec<Arc<TraceRing>>>,
    /// Drained records, oldest first, bounded by `retain_capacity`.
    retained: Mutex<VecDeque<RetainedRecord>>,
    retain_capacity: usize,
    /// Records evicted from the retained buffer (not ring sheds).
    evicted: AtomicU64,
    slow_threshold_us: AtomicU64,
    slow: Mutex<VecDeque<SlowEntry>>,
}

/// A shareable tracing handle: clones share rings, retained records,
/// and the slow log.
#[derive(Clone)]
pub struct Tracer {
    inner: Arc<TracerInner>,
}

impl Default for Tracer {
    fn default() -> Self {
        Tracer::new()
    }
}

thread_local! {
    /// (tracer id, this thread's ring) pairs; linear scan — a thread
    /// rarely records into more than one tracer.
    static THREAD_RINGS: RefCell<Vec<(u64, Arc<TraceRing>)>> = const { RefCell::new(Vec::new()) };
}

static NEXT_TRACER_ID: AtomicUsize = AtomicUsize::new(1);

impl Tracer {
    /// A tracer with default ring and retention capacities.
    pub fn new() -> Tracer {
        Tracer::with_capacities(DEFAULT_RING_CAPACITY, DEFAULT_RETAIN_CAPACITY)
    }

    /// A tracer with explicit per-thread ring and retained-buffer sizes.
    pub fn with_capacities(ring_capacity: usize, retain_capacity: usize) -> Tracer {
        Tracer {
            inner: Arc::new(TracerInner {
                id: NEXT_TRACER_ID.fetch_add(1, Ordering::Relaxed) as u64,
                epoch: Instant::now(),
                ring_capacity: ring_capacity.max(2),
                rings: Mutex::new(Vec::new()),
                retained: Mutex::new(VecDeque::new()),
                retain_capacity: retain_capacity.max(16),
                evicted: AtomicU64::new(0),
                slow_threshold_us: AtomicU64::new(DEFAULT_SLOW_THRESHOLD_US),
                slow: Mutex::new(VecDeque::new()),
            }),
        }
    }

    /// Wall microseconds since this tracer was created.
    pub fn wall_now_us(&self) -> u64 {
        self.inner.epoch.elapsed().as_micros() as u64
    }

    /// Set the slow-span threshold (wall µs) for the `/tracez` slow log.
    pub fn set_slow_threshold_us(&self, us: u64) {
        self.inner.slow_threshold_us.store(us, Ordering::Relaxed);
    }

    /// Current slow-span threshold (wall µs).
    pub fn slow_threshold_us(&self) -> u64 {
        self.inner.slow_threshold_us.load(Ordering::Relaxed)
    }

    /// Record into the calling thread's ring (registering the thread
    /// with this tracer on first use). Lock-free after registration.
    pub fn record(&self, record: TraceRecord) {
        THREAD_RINGS.with(|cell| {
            let mut rings = cell.borrow_mut();
            if let Some((_, ring)) = rings.iter().find(|(id, _)| *id == self.inner.id) {
                ring.push(record);
                return;
            }
            let ring = Arc::new(TraceRing::with_capacity(self.inner.ring_capacity));
            self.inner.rings.lock().push(Arc::clone(&ring));
            ring.push(record);
            rings.push((self.inner.id, ring));
        });
    }

    /// Convenience: record a completed span.
    #[allow(clippy::too_many_arguments)]
    pub fn record_complete(
        &self,
        name: &str,
        cat: TraceCat,
        wall_start_us: u64,
        wall_dur_us: u64,
        virtual_start_us: u64,
        virtual_dur_us: u64,
        detail: impl Into<String>,
    ) {
        let record = TraceRecord::Complete {
            name: name.to_string(),
            cat,
            wall_start_us,
            wall_dur_us,
            virtual_start_us,
            virtual_dur_us,
            detail: detail.into(),
        };
        if wall_dur_us >= self.slow_threshold_us() {
            let mut slow = self.inner.slow.lock();
            if slow.len() >= 256 {
                slow.pop_front();
            }
            slow.push_back(SlowEntry {
                name: name.to_string(),
                wall_dur_us,
                wall_start_us,
                detail: match &record {
                    TraceRecord::Complete { detail, .. } => detail.clone(),
                    TraceRecord::Instant { .. } => String::new(),
                },
            });
        }
        self.record(record);
    }

    /// Convenience: record an instant event.
    pub fn record_instant(
        &self,
        name: &str,
        cat: TraceCat,
        virtual_us: u64,
        detail: impl Into<String>,
    ) {
        self.record(TraceRecord::Instant {
            name: name.to_string(),
            cat,
            wall_us: self.wall_now_us(),
            virtual_us,
            detail: detail.into(),
        });
    }

    /// Drain every registered ring into the retained buffer. Consumers
    /// (this method, `recent`, `chrome_json`) serialize on the retained
    /// lock; producers never block on it.
    pub fn drain(&self) {
        let rings: Vec<Arc<TraceRing>> = self.inner.rings.lock().clone();
        let mut retained = self.inner.retained.lock();
        for (tid, ring) in rings.iter().enumerate() {
            while let Some(record) = ring.pop() {
                if retained.len() >= self.inner.retain_capacity {
                    retained.pop_front();
                    self.inner.evicted.fetch_add(1, Ordering::Relaxed);
                }
                retained.push_back(RetainedRecord { tid: tid as u64, record });
            }
        }
    }

    /// The most recent `n` drained records, oldest first.
    pub fn recent(&self, n: usize) -> Vec<RetainedRecord> {
        self.drain();
        let retained = self.inner.retained.lock();
        retained.iter().skip(retained.len().saturating_sub(n)).cloned().collect()
    }

    /// Total records currently retained.
    pub fn retained_len(&self) -> usize {
        self.inner.retained.lock().len()
    }

    /// The slow-span log, oldest first.
    pub fn slow_entries(&self) -> Vec<SlowEntry> {
        self.inner.slow.lock().iter().cloned().collect()
    }

    /// Records shed at the ring stage plus evictions from the retained
    /// buffer — how much the wall view is missing.
    pub fn dropped(&self) -> u64 {
        let rings = self.inner.rings.lock();
        let shed: u64 = rings.iter().map(|r| r.dropped()).sum();
        shed + self.inner.evicted.load(Ordering::Relaxed)
    }

    /// Number of threads that have registered a ring.
    pub fn threads(&self) -> usize {
        self.inner.rings.lock().len()
    }

    /// The wall-clock Chrome `trace_event` document: every retained
    /// record, sorted by wall start for stable rendering. Operator
    /// artifact — **not** byte-stable across runs (wall time).
    pub fn chrome_json(&self) -> Json {
        self.drain();
        let retained = self.inner.retained.lock();
        let mut entries: Vec<&RetainedRecord> = retained.iter().collect();
        entries.sort_by(|a, b| {
            (a.record.wall_start_us(), a.tid, a.record.name())
                .cmp(&(b.record.wall_start_us(), b.tid, b.record.name()))
        });
        let events: Vec<Json> = entries.iter().map(|r| r.record.chrome_event(r.tid)).collect();
        Json::Obj(vec![
            ("schema".into(), Json::Str(TRACE_SCHEMA.into())),
            ("mode".into(), Json::Str("wall".into())),
            ("displayTimeUnit".into(), Json::Str("ms".into())),
            ("dropped".into(), Json::Num(self.dropped() as f64)),
            ("traceEvents".into(), Json::Arr(events)),
        ])
    }
}

/// The deterministic virtual-time trace: stage spans and retained
/// events from a finished [`RunManifest`], rendered as Chrome
/// `trace_event` objects on the virtual clock with `tid 0`.
///
/// Every input field is part of the manifest's deterministic view, so
/// the rendered document is byte-identical across same-seed runs and
/// worker counts — the CI trace gate `cmp`s two of these.
pub fn virtual_trace(manifest: &RunManifest) -> Json {
    let mut events: Vec<Json> = Vec::with_capacity(manifest.stages.len() + manifest.events.len());
    for stage in &manifest.stages {
        events.push(Json::Obj(vec![
            ("name".into(), Json::Str(stage.name.clone())),
            ("cat".into(), Json::Str(TraceCat::Stage.as_str().into())),
            ("ph".into(), Json::Str("X".into())),
            ("ts".into(), Json::Num(stage.virtual_start_us as f64)),
            ("dur".into(), Json::Num(stage.virtual_us as f64)),
            ("pid".into(), Json::Num(1.0)),
            ("tid".into(), Json::Num(0.0)),
            (
                "args".into(),
                Json::Obj(vec![
                    ("path".into(), Json::Str(stage.path.clone())),
                    ("depth".into(), Json::Num(stage.depth as f64)),
                ]),
            ),
        ]));
    }
    for event in &manifest.events {
        events.push(Json::Obj(vec![
            ("name".into(), Json::Str(event.name.clone())),
            ("cat".into(), Json::Str(TraceCat::Event.as_str().into())),
            ("ph".into(), Json::Str("i".into())),
            ("ts".into(), Json::Num(event.at_virtual_us as f64)),
            ("s".into(), Json::Str("t".into())),
            ("pid".into(), Json::Num(1.0)),
            ("tid".into(), Json::Num(0.0)),
            (
                "args".into(),
                Json::Obj(vec![("detail".into(), Json::Str(event.detail.clone()))]),
            ),
        ]));
    }
    Json::Obj(vec![
        ("schema".into(), Json::Str(TRACE_SCHEMA.into())),
        ("mode".into(), Json::Str("virtual".into())),
        ("run".into(), Json::Str(manifest.run.clone())),
        ("seed".into(), Json::Num(manifest.seed as f64)),
        ("displayTimeUnit".into(), Json::Str("ms".into())),
        ("traceEvents".into(), Json::Arr(events)),
    ])
}

/// Schema-check a trace document (either variant). Returns a one-line
/// summary on success.
pub fn validate_trace(text: &str) -> Result<String, String> {
    let doc = Json::parse(text).map_err(|e| format!("bad JSON: {e}"))?;
    let schema = doc.get("schema").and_then(Json::as_str).unwrap_or("");
    if schema != TRACE_SCHEMA {
        return Err(format!("unknown trace schema {schema:?}"));
    }
    let mode = doc.get("mode").and_then(Json::as_str).unwrap_or("");
    if mode != "wall" && mode != "virtual" {
        return Err(format!("unknown trace mode {mode:?}"));
    }
    let Some(events) = doc.get("traceEvents").and_then(Json::as_arr) else {
        return Err("missing traceEvents array".into());
    };
    let mut complete = 0usize;
    let mut instant = 0usize;
    for (i, ev) in events.iter().enumerate() {
        let ph = ev.get("ph").and_then(Json::as_str).unwrap_or("");
        match ph {
            "X" => {
                complete += 1;
                if ev.get("dur").and_then(Json::as_num).is_none() {
                    return Err(format!("event {i}: complete span without dur"));
                }
            }
            "i" => instant += 1,
            other => return Err(format!("event {i}: unsupported phase {other:?}")),
        }
        for key in ["name", "ts", "pid", "tid"] {
            if ev.get(key).is_none() {
                return Err(format!("event {i}: missing {key:?}"));
            }
        }
        if ev.get("ts").and_then(Json::as_num).map(|t| t < 0.0).unwrap_or(true) {
            return Err(format!("event {i}: non-numeric or negative ts"));
        }
    }
    // The pretty renderer is the canonical on-disk form; a re-encode
    // must reproduce the input bytes (sorted, stable formatting).
    let reencoded = doc.render_pretty() + "\n";
    if reencoded != text && doc.render_pretty() != text {
        return Err("trace is not in canonical pretty-rendered form".into());
    }
    Ok(format!("mode={mode} events={} (complete={complete} instant={instant})", events.len()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::recorder::{Recorder, VirtualClock};
    use std::sync::Arc;

    struct FixedClock(u64);
    impl VirtualClock for FixedClock {
        fn now_us(&self) -> u64 {
            self.0
        }
    }

    #[test]
    fn ring_push_pop_fifo() {
        let ring = TraceRing::with_capacity(4);
        for i in 0..3u64 {
            ring.push(TraceRecord::Instant {
                name: format!("e{i}"),
                cat: TraceCat::Event,
                wall_us: i,
                virtual_us: i,
                detail: String::new(),
            });
        }
        let mut names = Vec::new();
        while let Some(r) = ring.pop() {
            names.push(r.name().to_string());
        }
        assert_eq!(names, ["e0", "e1", "e2"]);
        assert_eq!(ring.dropped(), 0);
    }

    #[test]
    fn full_ring_sheds_and_counts() {
        let ring = TraceRing::with_capacity(2);
        for i in 0..5u64 {
            ring.push(TraceRecord::Instant {
                name: format!("e{i}"),
                cat: TraceCat::Event,
                wall_us: i,
                virtual_us: i,
                detail: String::new(),
            });
        }
        assert_eq!(ring.dropped(), 3);
        // The two oldest records survive; the shed ones were newest.
        assert_eq!(ring.pop().unwrap().name(), "e0");
        assert_eq!(ring.pop().unwrap().name(), "e1");
        assert!(ring.pop().is_none());
        // Freed slots accept new records again.
        ring.push(TraceRecord::Instant {
            name: "e5".into(),
            cat: TraceCat::Event,
            wall_us: 5,
            virtual_us: 5,
            detail: String::new(),
        });
        assert_eq!(ring.pop().unwrap().name(), "e5");
    }

    #[test]
    fn tracer_drains_across_threads() {
        let tracer = Tracer::with_capacities(128, 4096);
        let handles: Vec<_> = (0..4)
            .map(|t| {
                let tracer = tracer.clone();
                std::thread::spawn(move || {
                    for i in 0..50 {
                        tracer.record_instant(
                            &format!("t{t}e{i}"),
                            TraceCat::Event,
                            i,
                            "stress",
                        );
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        tracer.drain();
        assert_eq!(tracer.retained_len(), 200);
        assert_eq!(tracer.dropped(), 0);
        assert_eq!(tracer.threads(), 4);
    }

    #[test]
    fn slow_log_captures_over_threshold_spans() {
        let tracer = Tracer::new();
        tracer.set_slow_threshold_us(1_000);
        tracer.record_complete("fast", TraceCat::Http, 0, 10, 0, 0, "GET /");
        tracer.record_complete("slow", TraceCat::Http, 0, 5_000, 0, 0, "GET /heavy");
        let slow = tracer.slow_entries();
        assert_eq!(slow.len(), 1);
        assert_eq!(slow[0].name, "slow");
        assert_eq!(slow[0].wall_dur_us, 5_000);
    }

    #[test]
    fn chrome_json_validates_and_counts() {
        let tracer = Tracer::new();
        tracer.record_complete("stage_one", TraceCat::Stage, 5, 100, 0, 40, "stage_one");
        tracer.record_instant("tick", TraceCat::Event, 7, "x");
        let text = tracer.chrome_json().render_pretty();
        let summary = validate_trace(&text).expect("wall trace validates");
        assert!(summary.contains("complete=1"));
        assert!(summary.contains("instant=1"));
    }

    #[test]
    fn virtual_trace_is_pure_function_of_manifest() {
        let rec = Recorder::new();
        rec.set_virtual_clock(Arc::new(FixedClock(9_000)));
        {
            let _s = rec.span("stage_one");
        }
        rec.incr("crawl.pages", &[("marketplace", "m")], 1);
        rec.event("tick", "detail");
        let m = rec.manifest("unit", 11, &crate::manifest::digest64("cfg"));
        let a = virtual_trace(&m).render_pretty();
        let b = virtual_trace(&m).render_pretty();
        assert_eq!(a, b);
        let summary = validate_trace(&a).expect("virtual trace validates");
        assert!(summary.contains("mode=virtual"));
        assert!(!a.contains("wall_"), "virtual trace carries no wall fields");
    }

    #[test]
    fn validate_trace_rejects_malformed_documents() {
        assert!(validate_trace("not json").is_err());
        assert!(validate_trace("{\"schema\": \"bogus\"}").is_err());
        let missing_dur = Json::Obj(vec![
            ("schema".into(), Json::Str(TRACE_SCHEMA.into())),
            ("mode".into(), Json::Str("wall".into())),
            (
                "traceEvents".into(),
                Json::Arr(vec![Json::Obj(vec![
                    ("name".into(), Json::Str("x".into())),
                    ("ph".into(), Json::Str("X".into())),
                    ("ts".into(), Json::Num(1.0)),
                    ("pid".into(), Json::Num(1.0)),
                    ("tid".into(), Json::Num(0.0)),
                ])]),
            ),
        ]);
        assert!(validate_trace(&missing_dur.render_pretty()).is_err());
    }
}
