//! CI gate: parse and schema-check the workspace's JSON artifacts.
//!
//! ```sh
//! cargo run -p acctrade-telemetry --bin validate_manifest -- target/TELEMETRY_report.json
//! cargo run -p acctrade-telemetry --bin validate_manifest -- target/BENCH_report.json
//! cargo run -p acctrade-telemetry --bin validate_manifest -- target/gate-econ-a/ECONOMY_report.json
//! cargo run -p acctrade-telemetry --bin validate_manifest -- target/gate-ops-a/TRACE_report.json
//! ```
//!
//! The artifact kind is inferred from the file name:
//!
//! * `TELEMETRY*` — full [`telemetry::RunManifest`] structural
//!   validation, plus a stability check: the deterministic view must
//!   re-render byte-identically (sorted keys, canonical formatting);
//! * `BENCH*` — every entry must carry the harness's stats keys (or the
//!   known hand-merged shapes), all values numeric and ordered;
//! * `ECONOMY*` — the E1–E3 analysis document's required keys;
//! * `TRACE*` — Chrome `trace_event` schema via
//!   [`telemetry::validate_trace`].
//!
//! All kinds additionally require the canonical pretty-rendered form:
//! parsing and re-rendering must reproduce the input bytes, which is
//! what lets CI `cmp` artifacts across runs instead of grepping them.
//!
//! Exits 0 when valid; exits 1 (with a reason on stderr) otherwise.

use foundation::json::Json;
use telemetry::RunManifest;

fn main() {
    let path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| format!("target/{}", telemetry::REPORT_FILE));
    match check(&path) {
        Ok(summary) => println!("artifact OK: {summary}"),
        Err(err) => {
            eprintln!("artifact INVALID ({path}): {err}");
            std::process::exit(1);
        }
    }
}

fn check(path: &str) -> Result<String, String> {
    let text =
        std::fs::read_to_string(path).map_err(|e| format!("cannot read file: {e}"))?;
    let file = path.rsplit('/').next().unwrap_or(path);
    if file.starts_with("BENCH") {
        check_bench(&text)
    } else if file.starts_with("ECONOMY") {
        check_economy(&text)
    } else if file.starts_with("TRACE") {
        telemetry::validate_trace(&text)
    } else {
        check_telemetry(&text)
    }
}

fn check_telemetry(text: &str) -> Result<String, String> {
    let manifest = RunManifest::parse(text).map_err(|e| format!("bad JSON: {e}"))?;
    manifest.validate()?;
    // The deterministic view must be stable: normalize, re-render,
    // re-normalize — same bytes. This is the property every CI `cmp`
    // of TELEMETRY_deterministic.txt artifacts rests on.
    let det = manifest.deterministic_string();
    let reparsed = Json::parse(&det).map_err(|e| format!("deterministic view unparsable: {e}"))?;
    if telemetry::normalize_for_determinism(&reparsed).render_pretty() != det {
        return Err("deterministic view is not canonically rendered".into());
    }
    Ok(format!(
        "kind=telemetry run={} seed={} stages={} counters={} crawl_rows={} api_rows={}",
        manifest.run,
        manifest.seed,
        manifest.stages.len(),
        manifest.counters.len(),
        manifest.crawl.len(),
        manifest.api.len(),
    ))
}

/// Keys the `foundation::bench` harness writes for every timed entry.
const STATS_KEYS: [&str; 6] = ["samples", "mean_ns", "median_ns", "p95_ns", "min_ns", "max_ns"];

fn check_bench(text: &str) -> Result<String, String> {
    let doc = Json::parse(text).map_err(|e| format!("bad JSON: {e}"))?;
    let Json::Obj(entries) = &doc else {
        return Err("top level must be an object of bench entries".into());
    };
    if entries.is_empty() {
        return Err("no bench entries recorded".into());
    }
    check_stable_reencode(&doc, text)?;
    let mut timed = 0usize;
    for (id, value) in entries {
        let Json::Obj(fields) = value else {
            return Err(format!("entry {id:?} is not an object"));
        };
        let has = |k: &str| value.get(k).and_then(Json::as_num);
        if value.get("samples").is_some() {
            timed += 1;
            for key in STATS_KEYS {
                let v = has(key).ok_or_else(|| format!("entry {id:?}: missing numeric {key:?}"))?;
                if v < 0.0 {
                    return Err(format!("entry {id:?}: negative {key:?}"));
                }
            }
            let (min, median, p95, max) = (
                has("min_ns").unwrap(),
                has("median_ns").unwrap(),
                has("p95_ns").unwrap(),
                has("max_ns").unwrap(),
            );
            if !(min <= median && median <= p95 && p95 <= max) {
                return Err(format!("entry {id:?}: percentile ordering violated"));
            }
        } else {
            // Hand-merged trajectory entries: every field must still be
            // a non-negative number.
            for (key, field) in fields {
                let v = field
                    .as_num()
                    .ok_or_else(|| format!("entry {id:?}: non-numeric field {key:?}"))?;
                if v < 0.0 {
                    return Err(format!("entry {id:?}: negative field {key:?}"));
                }
            }
        }
    }
    Ok(format!("kind=bench entries={} timed={timed}", entries.len()))
}

/// Required top-level keys of `ECONOMY_report.json` (the E1–E3 tables
/// plus the payment reconciliation verdict).
const ECONOMY_KEYS: [&str; 9] = [
    "scenario",
    "events",
    "stream_digest",
    "funnel",
    "funnel_all",
    "prices",
    "cadence",
    "payment_mix",
    "reconciliation_ok",
];

fn check_economy(text: &str) -> Result<String, String> {
    let doc = Json::parse(text).map_err(|e| format!("bad JSON: {e}"))?;
    check_stable_reencode(&doc, text)?;
    for key in ECONOMY_KEYS {
        if doc.get(key).is_none() {
            return Err(format!("missing required key {key:?}"));
        }
    }
    let scenario = doc.get("scenario").and_then(Json::as_str).unwrap_or_default();
    if scenario.is_empty() {
        return Err("empty scenario name".into());
    }
    let events = doc.get("events").and_then(Json::as_num).unwrap_or(-1.0);
    if events < 0.0 {
        return Err("events must be a non-negative number".into());
    }
    let funnel = doc.get("funnel").and_then(Json::as_arr).ok_or("funnel must be an array")?;
    if doc.get("reconciliation_ok").and_then(Json::as_bool).is_none() {
        return Err("reconciliation_ok must be a boolean".into());
    }
    Ok(format!(
        "kind=economy scenario={scenario} events={events} funnel_rows={}",
        funnel.len()
    ))
}

/// Parse → re-render must reproduce the input: artifacts are written in
/// canonical pretty form so CI can byte-compare them across runs.
fn check_stable_reencode(doc: &Json, text: &str) -> Result<(), String> {
    let rendered = doc.render_pretty();
    if rendered != text && rendered + "\n" != text {
        return Err("not in canonical pretty-rendered form (unstable key order or formatting)".into());
    }
    Ok(())
}
