//! CI gate: parse and validate a `TELEMETRY_report.json` manifest.
//!
//! ```sh
//! cargo run -p acctrade-telemetry --bin validate_manifest -- target/TELEMETRY_report.json
//! ```
//!
//! Exits 0 when the file exists, parses as a [`telemetry::RunManifest`],
//! and passes structural validation; exits 1 (with a reason on stderr)
//! otherwise.

use telemetry::RunManifest;

fn main() {
    let path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| format!("target/{}", telemetry::REPORT_FILE));
    match check(&path) {
        Ok(summary) => println!("manifest OK: {summary}"),
        Err(err) => {
            eprintln!("manifest INVALID ({path}): {err}");
            std::process::exit(1);
        }
    }
}

fn check(path: &str) -> Result<String, String> {
    let text = std::fs::read_to_string(path)
        .map_err(|e| format!("cannot read file: {e}"))?;
    let manifest = RunManifest::parse(&text).map_err(|e| format!("bad JSON: {e}"))?;
    manifest.validate()?;
    Ok(format!(
        "run={} seed={} stages={} counters={} crawl_rows={} api_rows={}",
        manifest.run,
        manifest.seed,
        manifest.stages.len(),
        manifest.counters.len(),
        manifest.crawl.len(),
        manifest.api.len(),
    ))
}
