//! CI gate: parse and schema-check the workspace's JSON artifacts.
//!
//! ```sh
//! cargo run -p acctrade-telemetry --bin validate_manifest -- target/TELEMETRY_report.json
//! cargo run -p acctrade-telemetry --bin validate_manifest -- target/BENCH_report.json
//! cargo run -p acctrade-telemetry --bin validate_manifest -- target/gate-econ-a/ECONOMY_report.json
//! cargo run -p acctrade-telemetry --bin validate_manifest -- target/gate-ops-a/TRACE_report.json
//! ```
//!
//! The artifact kind is inferred from the file name:
//!
//! * `TELEMETRY*` — full [`telemetry::RunManifest`] structural
//!   validation, plus a stability check: the deterministic view must
//!   re-render byte-identically (sorted keys, canonical formatting);
//! * `BENCH*` — every entry must carry the harness's stats keys (or the
//!   known hand-merged shapes), all values numeric and ordered;
//! * `ECONOMY*` — the E1–E3 analysis document's required keys;
//! * `TRACE*` — Chrome `trace_event` schema via
//!   [`telemetry::validate_trace`];
//! * `LINT*` — the conformance analyzer's `acctrade-lint/v2` report:
//!   schema tag, per-rule tallies, the unsafe inventory, and the
//!   16-hex architecture digest, all in canonical sorted order;
//! * `ARCH*` — the committed `acctrade-arch/v1` baseline: sorted
//!   crates, string-only dependency edges.
//!
//! All kinds additionally require the canonical pretty-rendered form:
//! parsing and re-rendering must reproduce the input bytes, which is
//! what lets CI `cmp` artifacts across runs instead of grepping them.
//!
//! Exits 0 when valid; exits 1 (with a reason on stderr) otherwise.

use foundation::json::Json;
use telemetry::RunManifest;

fn main() {
    let path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| format!("target/{}", telemetry::REPORT_FILE));
    match check(&path) {
        Ok(summary) => println!("artifact OK: {summary}"),
        Err(err) => {
            eprintln!("artifact INVALID ({path}): {err}");
            std::process::exit(1);
        }
    }
}

fn check(path: &str) -> Result<String, String> {
    let text =
        std::fs::read_to_string(path).map_err(|e| format!("cannot read file: {e}"))?;
    let file = path.rsplit('/').next().unwrap_or(path);
    if file.starts_with("BENCH") {
        check_bench(&text)
    } else if file.starts_with("ECONOMY") {
        check_economy(&text)
    } else if file.starts_with("TRACE") {
        telemetry::validate_trace(&text)
    } else if file.starts_with("LINT") {
        check_lint(&text)
    } else if file.starts_with("ARCH") {
        check_arch(&text)
    } else {
        check_telemetry(&text)
    }
}

fn check_telemetry(text: &str) -> Result<String, String> {
    let manifest = RunManifest::parse(text).map_err(|e| format!("bad JSON: {e}"))?;
    manifest.validate()?;
    // The deterministic view must be stable: normalize, re-render,
    // re-normalize — same bytes. This is the property every CI `cmp`
    // of TELEMETRY_deterministic.txt artifacts rests on.
    let det = manifest.deterministic_string();
    let reparsed = Json::parse(&det).map_err(|e| format!("deterministic view unparsable: {e}"))?;
    if telemetry::normalize_for_determinism(&reparsed).render_pretty() != det {
        return Err("deterministic view is not canonically rendered".into());
    }
    Ok(format!(
        "kind=telemetry run={} seed={} stages={} counters={} crawl_rows={} api_rows={}",
        manifest.run,
        manifest.seed,
        manifest.stages.len(),
        manifest.counters.len(),
        manifest.crawl.len(),
        manifest.api.len(),
    ))
}

/// Keys the `foundation::bench` harness writes for every timed entry.
const STATS_KEYS: [&str; 6] = ["samples", "mean_ns", "median_ns", "p95_ns", "min_ns", "max_ns"];

fn check_bench(text: &str) -> Result<String, String> {
    let doc = Json::parse(text).map_err(|e| format!("bad JSON: {e}"))?;
    let Json::Obj(entries) = &doc else {
        return Err("top level must be an object of bench entries".into());
    };
    if entries.is_empty() {
        return Err("no bench entries recorded".into());
    }
    check_stable_reencode(&doc, text)?;
    let mut timed = 0usize;
    for (id, value) in entries {
        let Json::Obj(fields) = value else {
            return Err(format!("entry {id:?} is not an object"));
        };
        let has = |k: &str| value.get(k).and_then(Json::as_num);
        if value.get("samples").is_some() {
            timed += 1;
            for key in STATS_KEYS {
                let v = has(key).ok_or_else(|| format!("entry {id:?}: missing numeric {key:?}"))?;
                if v < 0.0 {
                    return Err(format!("entry {id:?}: negative {key:?}"));
                }
            }
            let (min, median, p95, max) = (
                has("min_ns").unwrap(),
                has("median_ns").unwrap(),
                has("p95_ns").unwrap(),
                has("max_ns").unwrap(),
            );
            if !(min <= median && median <= p95 && p95 <= max) {
                return Err(format!("entry {id:?}: percentile ordering violated"));
            }
        } else {
            // Hand-merged trajectory entries: every field must still be
            // a non-negative number.
            for (key, field) in fields {
                let v = field
                    .as_num()
                    .ok_or_else(|| format!("entry {id:?}: non-numeric field {key:?}"))?;
                if v < 0.0 {
                    return Err(format!("entry {id:?}: negative field {key:?}"));
                }
            }
        }
    }
    Ok(format!("kind=bench entries={} timed={timed}", entries.len()))
}

/// Required top-level keys of `ECONOMY_report.json` (the E1–E3 tables
/// plus the payment reconciliation verdict).
const ECONOMY_KEYS: [&str; 9] = [
    "scenario",
    "events",
    "stream_digest",
    "funnel",
    "funnel_all",
    "prices",
    "cadence",
    "payment_mix",
    "reconciliation_ok",
];

fn check_economy(text: &str) -> Result<String, String> {
    let doc = Json::parse(text).map_err(|e| format!("bad JSON: {e}"))?;
    check_stable_reencode(&doc, text)?;
    for key in ECONOMY_KEYS {
        if doc.get(key).is_none() {
            return Err(format!("missing required key {key:?}"));
        }
    }
    let scenario = doc.get("scenario").and_then(Json::as_str).unwrap_or_default();
    if scenario.is_empty() {
        return Err("empty scenario name".into());
    }
    let events = doc.get("events").and_then(Json::as_num).unwrap_or(-1.0);
    if events < 0.0 {
        return Err("events must be a non-negative number".into());
    }
    let funnel = doc.get("funnel").and_then(Json::as_arr).ok_or("funnel must be an array")?;
    if doc.get("reconciliation_ok").and_then(Json::as_bool).is_none() {
        return Err("reconciliation_ok must be a boolean".into());
    }
    Ok(format!(
        "kind=economy scenario={scenario} events={events} funnel_rows={}",
        funnel.len()
    ))
}

/// Required top-level keys of `LINT_report.json` (schema
/// `acctrade-lint/v2`).
const LINT_KEYS: [&str; 8] = [
    "schema",
    "files_scanned",
    "manifests_scanned",
    "suppressed",
    "arch_digest",
    "rule_counts",
    "unsafe_inventory",
    "findings",
];

fn check_lint(text: &str) -> Result<String, String> {
    let doc = Json::parse(text).map_err(|e| format!("bad JSON: {e}"))?;
    check_stable_reencode(&doc, text)?;
    for key in LINT_KEYS {
        if doc.get(key).is_none() {
            return Err(format!("missing required key {key:?}"));
        }
    }
    let schema = doc.get("schema").and_then(Json::as_str).unwrap_or_default();
    if schema != "acctrade-lint/v2" {
        return Err(format!("unexpected schema {schema:?} (want \"acctrade-lint/v2\")"));
    }
    for key in ["files_scanned", "manifests_scanned", "suppressed"] {
        let v = doc.get(key).and_then(Json::as_num).unwrap_or(-1.0);
        if v < 0.0 {
            return Err(format!("{key} must be a non-negative number"));
        }
    }
    let digest = doc.get("arch_digest").and_then(Json::as_str).unwrap_or_default();
    if digest.len() != 16 || !digest.chars().all(|c| c.is_ascii_hexdigit()) {
        return Err(format!("arch_digest {digest:?} is not 16 hex digits"));
    }
    let counts =
        doc.get("rule_counts").and_then(Json::as_arr).ok_or("rule_counts must be an array")?;
    let mut prev_rule = String::new();
    for entry in counts {
        let rule = entry
            .get("rule")
            .and_then(Json::as_str)
            .ok_or("rule_counts entry missing string \"rule\"")?;
        if rule <= prev_rule.as_str() && !prev_rule.is_empty() {
            return Err(format!("rule_counts not sorted at {rule:?}"));
        }
        prev_rule = rule.to_string();
        for key in ["findings", "suppressed"] {
            if entry.get(key).and_then(Json::as_num).unwrap_or(-1.0) < 0.0 {
                return Err(format!("rule_counts entry {rule:?}: bad {key:?}"));
            }
        }
    }
    let inventory = doc
        .get("unsafe_inventory")
        .and_then(Json::as_arr)
        .ok_or("unsafe_inventory must be an array")?;
    for site in inventory {
        for key in ["file", "kind"] {
            if site.get(key).and_then(Json::as_str).is_none() {
                return Err(format!("unsafe_inventory entry missing string {key:?}"));
            }
        }
        if site.get("line").and_then(Json::as_num).unwrap_or(-1.0) < 1.0 {
            return Err("unsafe_inventory entry with line < 1".into());
        }
    }
    let findings =
        doc.get("findings").and_then(Json::as_arr).ok_or("findings must be an array")?;
    for finding in findings {
        for key in ["rule", "file", "message"] {
            if finding.get(key).and_then(Json::as_str).is_none() {
                return Err(format!("finding missing string {key:?}"));
            }
        }
    }
    Ok(format!(
        "kind=lint files={} manifests={} findings={} suppressed={} unsafe={} arch={digest}",
        doc.get("files_scanned").and_then(Json::as_num).unwrap_or(0.0),
        doc.get("manifests_scanned").and_then(Json::as_num).unwrap_or(0.0),
        findings.len(),
        doc.get("suppressed").and_then(Json::as_num).unwrap_or(0.0),
        inventory.len(),
    ))
}

fn check_arch(text: &str) -> Result<String, String> {
    let doc = Json::parse(text).map_err(|e| format!("bad JSON: {e}"))?;
    check_stable_reencode(&doc, text)?;
    let schema = doc.get("schema").and_then(Json::as_str).unwrap_or_default();
    if schema != "acctrade-arch/v1" {
        return Err(format!("unexpected schema {schema:?} (want \"acctrade-arch/v1\")"));
    }
    let crates = doc.get("crates").and_then(Json::as_arr).ok_or("crates must be an array")?;
    if crates.is_empty() {
        return Err("no crates in the baseline".into());
    }
    let mut prev_pkg = String::new();
    let mut edges = 0usize;
    for entry in crates {
        let package = entry
            .get("package")
            .and_then(Json::as_str)
            .ok_or("crate entry missing string \"package\"")?;
        if package <= prev_pkg.as_str() && !prev_pkg.is_empty() {
            return Err(format!("crates not sorted at {package:?}"));
        }
        prev_pkg = package.to_string();
        if entry.get("lib_name").and_then(Json::as_str).is_none() {
            return Err(format!("crate {package:?} missing string \"lib_name\""));
        }
        for key in ["deps", "dev_deps"] {
            let deps = entry
                .get(key)
                .and_then(Json::as_arr)
                .ok_or_else(|| format!("crate {package:?}: {key} must be an array"))?;
            edges += deps.len();
            if deps.iter().any(|d| d.as_str().is_none()) {
                return Err(format!("crate {package:?}: non-string edge in {key}"));
            }
        }
    }
    Ok(format!("kind=arch crates={} edges={edges}", crates.len()))
}

/// Parse → re-render must reproduce the input: artifacts are written in
/// canonical pretty form so CI can byte-compare them across runs.
fn check_stable_reencode(doc: &Json, text: &str) -> Result<(), String> {
    let rendered = doc.render_pretty();
    if rendered != text && rendered + "\n" != text {
        return Err("not in canonical pretty-rendered form (unstable key order or formatting)".into());
    }
    Ok(())
}
