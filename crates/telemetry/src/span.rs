//! Hierarchical tracing spans.
//!
//! A span measures one named phase of the pipeline and records **two**
//! clocks:
//!
//! * **virtual time** — the `net::clock` discrete-event clock the whole
//!   study runs on. Virtual durations are deterministic for a fixed
//!   seed and are the numbers the run manifest compares across runs.
//! * **wall time** — the host monotonic clock, for "how long did this
//!   stage really take". Wall fields are *excluded* from the manifest's
//!   deterministic view by design.
//!
//! Spans nest: starting a span while another is open records the child
//! with a `parent/child` path and a depth, which the stage-timing table
//! uses for indentation. The open-span stack is per-tracker (one study
//! pipeline runs single-threaded through its stages; concurrent tests use
//! scoped recorders, each with its own tracker).

use foundation::sync::Mutex;

/// A completed span.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FinishedSpan {
    /// Span name (`crawl_campaign`).
    pub name: String,
    /// Slash-joined path from the root span (`study/crawl_campaign`).
    pub path: String,
    /// Nesting depth (0 = top level).
    pub depth: usize,
    /// Order in which the span *started* (stable sort key for reports).
    pub start_seq: u64,
    /// Virtual time at start (µs since epoch).
    pub virtual_start_us: u64,
    /// Virtual time at end (µs since epoch).
    pub virtual_end_us: u64,
    /// Wall-clock duration in nanoseconds (non-deterministic).
    pub wall_ns: u64,
}

impl FinishedSpan {
    /// Virtual duration in microseconds.
    pub fn virtual_us(&self) -> u64 {
        self.virtual_end_us.saturating_sub(self.virtual_start_us)
    }
}

/// Ticket handed out when a span starts; closed via
/// [`SpanTracker::finish`].
#[derive(Debug, Clone)]
pub struct SpanTicket {
    /// Span name.
    pub name: String,
    /// Full path at start time.
    pub path: String,
    /// Depth at start time.
    pub depth: usize,
    /// Start ordinal.
    pub start_seq: u64,
}

/// Tracks the open-span stack and the finished-span list.
#[derive(Default)]
pub struct SpanTracker {
    state: Mutex<TrackerState>,
}

#[derive(Default)]
struct TrackerState {
    stack: Vec<String>,
    finished: Vec<FinishedSpan>,
    next_seq: u64,
}

impl SpanTracker {
    /// Open a span named `name`, nesting under any currently open span.
    pub fn start(&self, name: &str) -> SpanTicket {
        let mut st = self.state.lock();
        let depth = st.stack.len();
        let path = if depth == 0 {
            name.to_string()
        } else {
            format!("{}/{}", st.stack.join("/"), name)
        };
        st.stack.push(name.to_string());
        let seq = st.next_seq;
        st.next_seq += 1;
        SpanTicket { name: name.to_string(), path, depth, start_seq: seq }
    }

    /// Close a span, recording both clocks.
    pub fn finish(
        &self,
        ticket: SpanTicket,
        virtual_start_us: u64,
        virtual_end_us: u64,
        wall_ns: u64,
    ) {
        let mut st = self.state.lock();
        // Pop the matching frame (tolerate out-of-order drops: remove the
        // deepest frame with this name).
        if let Some(pos) = st.stack.iter().rposition(|n| n == &ticket.name) {
            st.stack.remove(pos);
        }
        st.finished.push(FinishedSpan {
            name: ticket.name,
            path: ticket.path,
            depth: ticket.depth,
            start_seq: ticket.start_seq,
            virtual_start_us,
            virtual_end_us,
            wall_ns,
        });
    }

    /// Finished spans sorted by start order (parents before children).
    pub fn finished(&self) -> Vec<FinishedSpan> {
        let mut spans = self.state.lock().finished.clone();
        spans.sort_by_key(|s| s.start_seq);
        spans
    }

    /// Number of spans currently open.
    pub fn open_count(&self) -> usize {
        self.state.lock().stack.len()
    }

    /// The next start ordinal **not counting currently open spans**. An
    /// open span has already consumed its ordinal but will re-consume it
    /// when reopened after a checkpoint restore, so snapshots record this
    /// value rather than the raw counter.
    pub fn next_seq_excluding_open(&self) -> u64 {
        let st = self.state.lock();
        st.next_seq - st.stack.len() as u64
    }

    /// Replace the tracker's state with previously finished spans and a
    /// start ordinal (checkpoint restore). The open-span stack is cleared;
    /// the caller reopens any span that was live at snapshot time.
    pub fn restore(&self, finished: Vec<FinishedSpan>, next_seq: u64) {
        let mut st = self.state.lock();
        st.stack.clear();
        st.finished = finished;
        st.next_seq = next_seq;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nesting_builds_paths_and_depths() {
        let t = SpanTracker::default();
        let outer = t.start("study");
        let inner = t.start("crawl");
        assert_eq!(inner.path, "study/crawl");
        assert_eq!(inner.depth, 1);
        t.finish(inner, 10, 30, 5);
        t.finish(outer, 0, 100, 9);
        assert_eq!(t.open_count(), 0);
        let spans = t.finished();
        assert_eq!(spans.len(), 2);
        // Start order: parent first.
        assert_eq!(spans[0].name, "study");
        assert_eq!(spans[1].name, "crawl");
        assert_eq!(spans[1].virtual_us(), 20);
    }

    #[test]
    fn sibling_spans_share_depth() {
        let t = SpanTracker::default();
        let root = t.start("root");
        let a = t.start("a");
        t.finish(a, 0, 1, 1);
        let b = t.start("b");
        assert_eq!(b.depth, 1);
        assert_eq!(b.path, "root/b");
        t.finish(b, 1, 2, 1);
        t.finish(root, 0, 2, 2);
        assert_eq!(t.finished().len(), 3);
    }

    #[test]
    fn saturating_virtual_duration() {
        let s = FinishedSpan {
            name: "x".into(),
            path: "x".into(),
            depth: 0,
            start_seq: 0,
            virtual_start_us: 10,
            virtual_end_us: 5,
            wall_ns: 0,
        };
        assert_eq!(s.virtual_us(), 0);
    }
}
