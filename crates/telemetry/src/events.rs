//! A bounded, virtual-time-stamped event log.
//!
//! Events are breadcrumbs ("iteration 3 finished", "marketplace X
//! deployed") kept in a fixed-capacity ring buffer: recording never
//! allocates beyond the cap and never blocks progress — the oldest events
//! are evicted first. Timestamps are *virtual* microseconds only, so the
//! exported log is deterministic for a fixed seed.

use foundation::sync::Mutex;
use std::collections::VecDeque;

/// Default ring capacity.
pub(crate) const DEFAULT_CAPACITY: usize = 1024;

/// One recorded event.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Event {
    /// Virtual time (microseconds since epoch) the event was recorded at.
    pub at_virtual_us: u64,
    /// Event name (`crawl.iteration`).
    pub name: String,
    /// Free-form detail string.
    pub detail: String,
}

/// The fixed-capacity event ring.
pub struct EventLog {
    inner: Mutex<Ring>,
}

struct Ring {
    buf: VecDeque<Event>,
    capacity: usize,
    total: u64,
}

impl EventLog {
    /// A ring with the given capacity (minimum 1).
    pub fn with_capacity(capacity: usize) -> EventLog {
        EventLog {
            inner: Mutex::new(Ring {
                buf: VecDeque::with_capacity(capacity.max(1)),
                capacity: capacity.max(1),
                total: 0,
            }),
        }
    }

    /// Record one event, evicting the oldest if the ring is full.
    pub fn push(&self, at_virtual_us: u64, name: &str, detail: String) {
        let mut ring = self.inner.lock();
        if ring.buf.len() == ring.capacity {
            ring.buf.pop_front();
        }
        ring.buf.push_back(Event {
            at_virtual_us,
            name: name.to_string(),
            detail,
        });
        ring.total += 1;
    }

    /// Events currently retained, oldest first.
    pub fn snapshot(&self) -> Vec<Event> {
        self.inner.lock().buf.iter().cloned().collect()
    }

    /// Total events ever recorded (including evicted ones).
    pub fn total_recorded(&self) -> u64 {
        self.inner.lock().total
    }

    /// Events currently retained.
    pub fn len(&self) -> usize {
        self.inner.lock().buf.len()
    }

    /// True when nothing has been retained.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl Default for EventLog {
    fn default() -> Self {
        EventLog::with_capacity(DEFAULT_CAPACITY)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn retains_in_order() {
        let log = EventLog::with_capacity(8);
        log.push(10, "a", "one".into());
        log.push(20, "b", "two".into());
        let snap = log.snapshot();
        assert_eq!(snap.len(), 2);
        assert_eq!(snap[0].name, "a");
        assert_eq!(snap[1].at_virtual_us, 20);
        assert_eq!(log.total_recorded(), 2);
    }

    #[test]
    fn evicts_oldest_at_capacity() {
        let log = EventLog::with_capacity(3);
        for i in 0..10u64 {
            log.push(i, "e", i.to_string());
        }
        let snap = log.snapshot();
        assert_eq!(snap.len(), 3);
        assert_eq!(snap[0].detail, "7");
        assert_eq!(snap[2].detail, "9");
        assert_eq!(log.total_recorded(), 10);
        assert!(!log.is_empty());
    }

    #[test]
    fn zero_capacity_clamped_to_one() {
        let log = EventLog::with_capacity(0);
        log.push(1, "x", String::new());
        log.push(2, "y", String::new());
        assert_eq!(log.len(), 1);
        assert_eq!(log.snapshot()[0].name, "y");
    }
}
