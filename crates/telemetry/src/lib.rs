#![warn(missing_docs)]

//! # acctrade-telemetry
//!
//! Virtual-clock-aware tracing, metrics, and crawl-provenance manifests
//! for the `acctrade` workspace — zero-dependency (std + `foundation`).
//!
//! The reproduced paper's credibility rests on *pipeline provenance*:
//! pages crawled, offers parsed, API calls issued, error vocabularies
//! observed, CAPTCHA/robots refusals honoured (§3.2). This crate makes
//! that provenance first-class:
//!
//! * [`metrics`] — a lock-sharded registry of counters, gauges, and
//!   log-bucketed histograms, cheap enough for per-request hot paths;
//! * [`span`] — hierarchical spans that record **both** wall time and
//!   the simulation's virtual time;
//! * [`events`] — a bounded ring buffer of virtual-time-stamped
//!   breadcrumbs;
//! * [`recorder`] — the pluggable [`Recorder`] handle: a global default,
//!   thread-scoped overrides for tests and concurrent studies, and a
//!   no-op-cheap disabled fallback;
//! * [`manifest`] — the [`RunManifest`] exporter behind
//!   `TELEMETRY_report.json`: seed, config digest, per-stage timings,
//!   per-marketplace crawl stats, per-platform API outcome tallies;
//! * [`trace`] — per-thread lock-free trace rings drained into Chrome
//!   `trace_event` JSON (`TRACE_report.json`), wall view for operators
//!   plus a deterministic virtual-time variant;
//! * [`prom`] — Prometheus text exposition over live registry state
//!   (the ops vhost's `/metrics` endpoint).
//!
//! ## Instrumentation idiom
//!
//! Library code records through the *current* recorder and never pays
//! more than a thread-local read when telemetry is off:
//!
//! ```
//! telemetry::with_recorder(|r| r.incr("net.requests", &[("host", "x.com")], 1));
//! ```
//!
//! Pipelines opt in by scoping a recorder:
//!
//! ```
//! let rec = telemetry::Recorder::new();
//! {
//!     let _scope = rec.enter();
//!     let _stage = telemetry::span("crawl_campaign");
//!     // ... run the pipeline; every instrumented crate records into `rec`
//!     telemetry::with_recorder(|r| r.incr("crawl.pages", &[("marketplace", "swapd")], 1));
//! }
//! let manifest = rec.manifest("study", 42, &telemetry::digest64("config"));
//! assert!(manifest.validate().is_ok());
//! ```
//!
//! ## Determinism
//!
//! Counters, histograms, events, and span *virtual* times are pure
//! functions of the seed; wall-clock fields are clearly named `wall_*`
//! and stripped by [`RunManifest::deterministic_json`], which the
//! determinism suite compares byte-for-byte across same-seed runs.

pub mod events;
pub mod manifest;
pub mod metrics;
pub mod prom;
pub mod recorder;
pub mod snapshot;
pub mod span;
pub mod trace;

pub use manifest::{digest64, normalize_for_determinism, RunManifest, REPORT_FILE};
pub use prom::{counter_sample_key, parse_exposition, parse_rendered_key, render_prometheus};
pub use snapshot::TelemetrySnapshot;
pub use metrics::{Histogram, Key, Registry};
pub use recorder::{
    clear_global, event, install_global, recorder, span, with_recorder, Recorder, RecorderScope,
    Span, VirtualClock,
};
pub use trace::{
    validate_trace, virtual_trace, SlowEntry, TraceCat, TraceRecord, Tracer, TRACE_FILE,
    TRACE_SCHEMA,
};
