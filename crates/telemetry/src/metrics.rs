//! The lock-sharded metrics registry: counters, gauges, and log-bucketed
//! histograms.
//!
//! Hot paths (one increment per simulated HTTP request) need a registry
//! that is cheap under concurrent writers. Keys are hashed (FNV-1a) onto
//! a fixed set of shards, each shard guarded by its own
//! [`foundation::sync::Mutex`]; two threads recording different metrics
//! almost never contend. Snapshots merge the shards into sorted maps so
//! every export is deterministic regardless of shard layout.

use foundation::sync::Mutex;
use std::collections::BTreeMap;

/// Number of shards. A power of two so the hash maps onto shards with a
/// mask; 16 is plenty for the 8-thread test workloads while keeping the
/// snapshot merge cheap.
pub(crate) const SHARD_COUNT: usize = 16;

/// FNV-1a 64-bit hash (the same tiny hash `foundation` favours).
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// A metric identity: a name plus a (small, sorted) label set.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Key {
    /// Metric name, dot-separated (`net.requests`).
    pub name: String,
    /// Label pairs, kept sorted by label key for canonical identity.
    pub labels: Vec<(String, String)>,
}

impl Key {
    /// Build a key from a name and label slice (labels get sorted).
    pub fn new(name: &str, labels: &[(&str, &str)]) -> Key {
        let mut labels: Vec<(String, String)> = labels
            .iter()
            .map(|(k, v)| (k.to_string(), v.to_string()))
            .collect();
        labels.sort();
        Key { name: name.to_string(), labels }
    }

    /// Canonical rendering: `name` or `name{k=v,k2=v2}`.
    pub fn render(&self) -> String {
        if self.labels.is_empty() {
            return self.name.clone();
        }
        let body: Vec<String> =
            self.labels.iter().map(|(k, v)| format!("{k}={v}")).collect();
        format!("{}{{{}}}", self.name, body.join(","))
    }

    /// The value of one label, if present.
    pub fn label(&self, key: &str) -> Option<&str> {
        self.labels.iter().find(|(k, _)| k == key).map(|(_, v)| v.as_str())
    }

    fn shard(&self) -> usize {
        let mut h = fnv1a64(self.name.as_bytes());
        for (k, v) in &self.labels {
            h ^= fnv1a64(k.as_bytes()).rotate_left(17);
            h ^= fnv1a64(v.as_bytes()).rotate_left(31);
        }
        (h as usize) & (SHARD_COUNT - 1)
    }
}

/// A log-bucketed histogram over `u64` samples (virtual microseconds,
/// queue depths, ...). Bucket `i` holds values whose bit length is `i`,
/// i.e. `[2^(i-1), 2^i)`; bucket 0 holds zero. Quantiles are resolved to
/// the bucket upper bound and clamped into `[min, max]`, which keeps them
/// deterministic and within one power of two of the true value.
#[derive(Debug, Clone)]
pub struct Histogram {
    counts: [u64; 65],
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram { counts: [0; 65], count: 0, sum: 0, min: u64::MAX, max: 0 }
    }
}

impl Histogram {
    /// Record one sample.
    pub fn observe(&mut self, value: u64) {
        let bucket = (64 - value.leading_zeros()) as usize; // 0 for value 0
        self.counts[bucket] += 1;
        self.count += 1;
        self.sum = self.sum.saturating_add(value);
        self.min = self.min.min(value);
        self.max = self.max.max(value);
    }

    /// Samples recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all samples (saturating).
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Smallest sample (0 when empty).
    pub fn min(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min
        }
    }

    /// Largest sample.
    pub fn max(&self) -> u64 {
        self.max
    }

    /// The `q`-quantile (`0.0..=1.0`), resolved to a bucket upper bound
    /// and clamped to the observed range. 0 when empty.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let q = q.clamp(0.0, 1.0);
        let target = ((q * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= target {
                let upper = if i == 0 {
                    0
                } else if i >= 64 {
                    u64::MAX
                } else {
                    (1u64 << i) - 1
                };
                return upper.clamp(self.min(), self.max);
            }
        }
        self.max
    }

    /// Raw per-bucket counts (65 log₂ buckets; see the type docs for the
    /// bucket layout). Exposed so checkpoints can serialize a histogram
    /// exactly and rebuild it with [`Histogram::from_parts`].
    pub fn bucket_counts(&self) -> &[u64; 65] {
        &self.counts
    }

    /// Rebuild a histogram from exported parts — the inverse of the
    /// accessors ([`Histogram::bucket_counts`], [`Histogram::count`],
    /// [`Histogram::sum`], [`Histogram::min`], [`Histogram::max`]).
    /// `buckets` holds `(bucket index, count)` pairs; out-of-range indices
    /// are ignored. `min` is ignored when `count` is 0 (the empty-histogram
    /// sentinel is restored instead).
    pub fn from_parts(
        buckets: &[(usize, u64)],
        count: u64,
        sum: u64,
        min: u64,
        max: u64,
    ) -> Histogram {
        let mut h = Histogram::default();
        for &(i, n) in buckets {
            if i < h.counts.len() {
                h.counts[i] = n;
            }
        }
        h.count = count;
        h.sum = sum;
        h.min = if count == 0 { u64::MAX } else { min };
        h.max = max;
        h
    }

    /// Merge another histogram into this one.
    pub fn merge(&mut self, other: &Histogram) {
        for (a, b) in self.counts.iter_mut().zip(other.counts.iter()) {
            *a += b;
        }
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

#[derive(Default)]
struct Shard {
    counters: Mutex<BTreeMap<Key, u64>>,
    gauges: Mutex<BTreeMap<Key, f64>>,
    histograms: Mutex<BTreeMap<Key, Histogram>>,
}

/// The sharded registry. All methods take `&self`; interior mutability is
/// per-shard.
pub struct Registry {
    shards: Vec<Shard>,
}

impl Default for Registry {
    fn default() -> Self {
        Registry::new()
    }
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Registry {
        Registry { shards: (0..SHARD_COUNT).map(|_| Shard::default()).collect() }
    }

    fn shard_for(&self, key: &Key) -> &Shard {
        &self.shards[key.shard()]
    }

    /// Add `delta` to a counter.
    pub fn incr(&self, name: &str, labels: &[(&str, &str)], delta: u64) {
        let key = Key::new(name, labels);
        *self.shard_for(&key).counters.lock().entry(key).or_insert(0) += delta;
    }

    /// Set a gauge to `value`.
    pub fn gauge_set(&self, name: &str, labels: &[(&str, &str)], value: f64) {
        let key = Key::new(name, labels);
        self.shard_for(&key).gauges.lock().insert(key, value);
    }

    /// Record one histogram sample.
    pub fn observe(&self, name: &str, labels: &[(&str, &str)], value: u64) {
        let key = Key::new(name, labels);
        self.shard_for(&key)
            .histograms
            .lock()
            .entry(key)
            .or_default()
            .observe(value);
    }

    /// Insert a fully-formed histogram under `key`, replacing any existing
    /// entry (checkpoint restore; normal recording goes through
    /// [`Registry::observe`]).
    pub fn insert_histogram(&self, key: Key, histogram: Histogram) {
        self.shard_for(&key).histograms.lock().insert(key, histogram);
    }

    /// Current value of one counter (0 when absent).
    pub fn counter(&self, name: &str, labels: &[(&str, &str)]) -> u64 {
        let key = Key::new(name, labels);
        self.shard_for(&key).counters.lock().get(&key).copied().unwrap_or(0)
    }

    /// Sum of every counter with the given name, across all label sets.
    pub fn counter_total(&self, name: &str) -> u64 {
        self.shards
            .iter()
            .map(|s| {
                s.counters
                    .lock()
                    .iter()
                    .filter(|(k, _)| k.name == name)
                    .map(|(_, v)| v)
                    .sum::<u64>()
            })
            .sum()
    }

    /// Sorted snapshot of all counters.
    pub fn counters(&self) -> BTreeMap<Key, u64> {
        let mut out = BTreeMap::new();
        for shard in &self.shards {
            for (k, v) in shard.counters.lock().iter() {
                out.insert(k.clone(), *v);
            }
        }
        out
    }

    /// Sorted snapshot of all gauges.
    pub fn gauges(&self) -> BTreeMap<Key, f64> {
        let mut out = BTreeMap::new();
        for shard in &self.shards {
            for (k, v) in shard.gauges.lock().iter() {
                out.insert(k.clone(), *v);
            }
        }
        out
    }

    /// Sorted snapshot of all histograms (cloned).
    pub fn histograms(&self) -> BTreeMap<Key, Histogram> {
        let mut out = BTreeMap::new();
        for shard in &self.shards {
            for (k, v) in shard.histograms.lock().iter() {
                out.insert(k.clone(), v.clone());
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_per_label_set() {
        let r = Registry::new();
        r.incr("req", &[("host", "a")], 2);
        r.incr("req", &[("host", "a")], 3);
        r.incr("req", &[("host", "b")], 1);
        assert_eq!(r.counter("req", &[("host", "a")]), 5);
        assert_eq!(r.counter("req", &[("host", "b")]), 1);
        assert_eq!(r.counter("req", &[("host", "c")]), 0);
        assert_eq!(r.counter_total("req"), 6);
    }

    #[test]
    fn label_order_is_canonical() {
        let r = Registry::new();
        r.incr("x", &[("b", "2"), ("a", "1")], 1);
        r.incr("x", &[("a", "1"), ("b", "2")], 1);
        assert_eq!(r.counter("x", &[("b", "2"), ("a", "1")]), 2);
        let keys: Vec<String> = r.counters().keys().map(Key::render).collect();
        assert_eq!(keys, vec!["x{a=1,b=2}".to_string()]);
    }

    #[test]
    fn gauges_overwrite() {
        let r = Registry::new();
        r.gauge_set("depth", &[], 4.0);
        r.gauge_set("depth", &[], 7.0);
        assert_eq!(r.gauges().values().copied().collect::<Vec<_>>(), vec![7.0]);
    }

    #[test]
    fn histogram_buckets_and_quantiles() {
        let mut h = Histogram::default();
        for v in [0u64, 1, 1, 2, 3, 1000, 1_000_000] {
            h.observe(v);
        }
        assert_eq!(h.count(), 7);
        assert_eq!(h.sum(), 1_001_007);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 1_000_000);
        assert_eq!(h.quantile(0.0), 0);
        assert!(h.quantile(0.5) <= 3);
        assert_eq!(h.quantile(1.0), 1_000_000);
    }

    #[test]
    fn histogram_quantile_is_within_one_power_of_two() {
        let mut h = Histogram::default();
        for v in 1..=1024u64 {
            h.observe(v);
        }
        let p50 = h.quantile(0.5);
        assert!((256..=1023).contains(&p50), "p50={p50}");
    }

    #[test]
    fn histogram_merge_conserves_counts() {
        let mut a = Histogram::default();
        let mut b = Histogram::default();
        for v in 0..100u64 {
            a.observe(v);
            b.observe(v * 17);
        }
        let (ca, cb) = (a.count(), b.count());
        a.merge(&b);
        assert_eq!(a.count(), ca + cb);
        assert_eq!(a.max(), 99 * 17);
    }

    #[test]
    fn empty_histogram_is_all_zero() {
        let h = Histogram::default();
        assert_eq!(h.count(), 0);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 0);
        assert_eq!(h.quantile(0.99), 0);
    }

    #[test]
    fn key_render_without_labels() {
        assert_eq!(Key::new("plain", &[]).render(), "plain");
        assert_eq!(Key::new("a", &[("k", "v")]).label("k"), Some("v"));
        assert_eq!(Key::new("a", &[("k", "v")]).label("z"), None);
    }

    #[test]
    fn snapshot_is_sorted_and_complete() {
        let r = Registry::new();
        // Enough keys that several shards are exercised (zero-padded so
        // label order and rendered order agree).
        for i in 0..200 {
            r.incr("bulk", &[("i", &format!("{i:03}"))], 1);
        }
        let snap = r.counters();
        assert_eq!(snap.len(), 200);
        assert_eq!(snap.values().sum::<u64>(), 200);
        let rendered: Vec<String> = snap.keys().map(Key::render).collect();
        let mut sorted = rendered.clone();
        sorted.sort();
        assert_eq!(rendered, sorted);
    }
}
