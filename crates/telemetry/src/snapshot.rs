//! Checkpointable recorder state.
//!
//! A [`TelemetrySnapshot`] is a JSON-serializable, *lossless* export of
//! everything deterministic a [`Recorder`] holds — counters, gauges, raw
//! histogram buckets, retained events, finished spans, and the span
//! start-ordinal — so a crawl campaign can persist its telemetry alongside
//! a checkpoint and a resumed run can rebuild a recorder
//! ([`Recorder::from_snapshot`]) whose eventual [`RunManifest`] is
//! byte-identical (in its deterministic view) to an uninterrupted run.
//!
//! Two deliberate asymmetries versus the live recorder:
//!
//! * **Wall clocks are not restored.** `wall_ns` on restored spans is 0 —
//!   wall fields are stripped from the manifest's deterministic view
//!   anyway, and pretending a resumed process inherited the dead
//!   process's wall time would be a lie.
//! * **Open spans are not snapshotted.** The snapshot stores
//!   [`SpanTracker::next_seq_excluding_open`], and the resuming pipeline
//!   reopens its live stage span via [`Recorder::span_starting_at`] so the
//!   span re-consumes the same start ordinal and start stamp it had.
//!
//! [`RunManifest`]: crate::manifest::RunManifest

use crate::metrics::{Histogram, Key};
use crate::recorder::Recorder;
use crate::span::FinishedSpan;
use foundation::json_codec_struct;

/// Snapshot schema identifier.
pub(crate) const SNAPSHOT_SCHEMA: &str = "acctrade-telemetry-snapshot/v1";

/// One metric label (`k=v`). A struct rather than a tuple because the
/// snapshot is framed through `foundation::json`, which has no tuple
/// codec.
#[derive(Debug, Clone, PartialEq)]
pub struct LabelPair {
    /// Label key.
    pub k: String,
    /// Label value.
    pub v: String,
}

/// One counter.
#[derive(Debug, Clone, PartialEq)]
pub struct CounterSnap {
    /// Metric name.
    pub name: String,
    /// Sorted labels.
    pub labels: Vec<LabelPair>,
    /// Current value.
    pub value: u64,
}

/// One gauge.
#[derive(Debug, Clone, PartialEq)]
pub struct GaugeSnap {
    /// Metric name.
    pub name: String,
    /// Sorted labels.
    pub labels: Vec<LabelPair>,
    /// Last value set.
    pub value: f64,
}

/// One occupied histogram bucket (sparse encoding: empty buckets are
/// omitted).
#[derive(Debug, Clone, PartialEq)]
pub struct BucketSnap {
    /// Bucket index (0..=64; see [`Histogram`] for the layout).
    pub idx: u64,
    /// Samples in the bucket.
    pub n: u64,
}

/// One histogram, with raw buckets so the restore is exact (not a
/// quantile summary like the manifest's `HistogramReport`).
#[derive(Debug, Clone, PartialEq)]
pub struct HistogramSnap {
    /// Metric name.
    pub name: String,
    /// Sorted labels.
    pub labels: Vec<LabelPair>,
    /// Occupied buckets, ascending by index.
    pub buckets: Vec<BucketSnap>,
    /// Total samples.
    pub count: u64,
    /// Sum of samples.
    pub sum: u64,
    /// Smallest sample.
    pub min: u64,
    /// Largest sample.
    pub max: u64,
}

/// One retained event.
#[derive(Debug, Clone, PartialEq)]
pub struct EventSnap {
    /// Virtual timestamp (µs since epoch).
    pub at_virtual_us: u64,
    /// Event name.
    pub name: String,
    /// Detail string.
    pub detail: String,
}

/// One finished span (wall duration intentionally dropped; see the
/// module docs).
#[derive(Debug, Clone, PartialEq)]
pub struct SpanSnap {
    /// Span name.
    pub name: String,
    /// Slash-joined path.
    pub path: String,
    /// Nesting depth.
    pub depth: usize,
    /// Start ordinal.
    pub start_seq: u64,
    /// Virtual time at start (µs since epoch).
    pub virtual_start_us: u64,
    /// Virtual time at end (µs since epoch).
    pub virtual_end_us: u64,
}

/// The full deterministic state of a [`Recorder`] at one instant.
#[derive(Debug, Clone, PartialEq)]
pub struct TelemetrySnapshot {
    /// Schema identifier ([`SNAPSHOT_SCHEMA`]).
    pub schema: String,
    /// All counters, sorted by key.
    pub counters: Vec<CounterSnap>,
    /// All gauges, sorted by key.
    pub gauges: Vec<GaugeSnap>,
    /// All histograms, sorted by key.
    pub histograms: Vec<HistogramSnap>,
    /// Retained events, oldest first.
    pub events: Vec<EventSnap>,
    /// Finished spans in start order.
    pub spans: Vec<SpanSnap>,
    /// Next span start ordinal, excluding spans open at snapshot time
    /// (they re-consume their ordinal when reopened on resume).
    pub next_seq: u64,
}

json_codec_struct! {
    LabelPair { k, v }
    CounterSnap { name, labels, value }
    GaugeSnap { name, labels, value }
    BucketSnap { idx, n }
    HistogramSnap { name, labels, buckets, count, sum, min, max }
    EventSnap { at_virtual_us, name, detail }
    SpanSnap { name, path, depth, start_seq, virtual_start_us, virtual_end_us }
    TelemetrySnapshot { schema, counters, gauges, histograms, events, spans, next_seq }
}

fn labels_of(key: &Key) -> Vec<LabelPair> {
    key.labels
        .iter()
        .map(|(k, v)| LabelPair { k: k.clone(), v: v.clone() })
        .collect()
}

fn key_of(name: &str, labels: &[LabelPair]) -> Key {
    let pairs: Vec<(&str, &str)> =
        labels.iter().map(|l| (l.k.as_str(), l.v.as_str())).collect();
    Key::new(name, &pairs)
}

impl TelemetrySnapshot {
    /// Structural sanity checks (run before trusting a snapshot read off
    /// disk).
    pub fn validate(&self) -> Result<(), String> {
        if self.schema != SNAPSHOT_SCHEMA {
            return Err(format!("unknown snapshot schema {:?}", self.schema));
        }
        for h in &self.histograms {
            let bucket_total: u64 = h.buckets.iter().map(|b| b.n).sum();
            if bucket_total != h.count {
                return Err(format!(
                    "histogram {:?}: bucket total {} != count {}",
                    h.name, bucket_total, h.count
                ));
            }
            if h.count > 0 && h.min > h.max {
                return Err(format!("histogram {:?}: min > max", h.name));
            }
        }
        Ok(())
    }
}

impl Recorder {
    /// Export this recorder's deterministic state as a
    /// [`TelemetrySnapshot`]. See the module docs for what is and is not
    /// captured.
    pub fn snapshot(&self) -> TelemetrySnapshot {
        let counters = self
            .counters()
            .iter()
            .map(|(k, &v)| CounterSnap { name: k.name.clone(), labels: labels_of(k), value: v })
            .collect();
        let gauges = self
            .gauges()
            .iter()
            .map(|(k, &v)| GaugeSnap { name: k.name.clone(), labels: labels_of(k), value: v })
            .collect();
        let histograms = self
            .histograms()
            .iter()
            .filter(|(_, h)| h.count() > 0)
            .map(|(k, h)| HistogramSnap {
                name: k.name.clone(),
                labels: labels_of(k),
                buckets: h
                    .bucket_counts()
                    .iter()
                    .enumerate()
                    .filter(|(_, &n)| n > 0)
                    .map(|(i, &n)| BucketSnap { idx: i as u64, n })
                    .collect(),
                count: h.count(),
                sum: h.sum(),
                min: h.min(),
                max: h.max(),
            })
            .collect();
        let events = self
            .events()
            .into_iter()
            .map(|e| EventSnap { at_virtual_us: e.at_virtual_us, name: e.name, detail: e.detail })
            .collect();
        let spans = self
            .finished_spans()
            .into_iter()
            .map(|s| SpanSnap {
                name: s.name,
                path: s.path,
                depth: s.depth,
                start_seq: s.start_seq,
                virtual_start_us: s.virtual_start_us,
                virtual_end_us: s.virtual_end_us,
            })
            .collect();
        TelemetrySnapshot {
            schema: SNAPSHOT_SCHEMA.to_string(),
            counters,
            gauges,
            histograms,
            events,
            spans,
            next_seq: self.spans_ref().next_seq_excluding_open(),
        }
    }

    /// Rebuild a fresh, enabled recorder from a snapshot. The virtual
    /// clock is *not* restored — the caller installs one (typically the
    /// resumed simulation's clock) via [`Recorder::set_virtual_clock`]
    /// before recording continues.
    pub fn from_snapshot(snap: &TelemetrySnapshot) -> Recorder {
        let rec = Recorder::new();
        for c in &snap.counters {
            let pairs: Vec<(&str, &str)> =
                c.labels.iter().map(|l| (l.k.as_str(), l.v.as_str())).collect();
            rec.incr(&c.name, &pairs, c.value);
        }
        for g in &snap.gauges {
            let pairs: Vec<(&str, &str)> =
                g.labels.iter().map(|l| (l.k.as_str(), l.v.as_str())).collect();
            rec.gauge_set(&g.name, &pairs, g.value);
        }
        for h in &snap.histograms {
            let buckets: Vec<(usize, u64)> =
                h.buckets.iter().map(|b| (b.idx as usize, b.n)).collect();
            rec.registry_ref().insert_histogram(
                key_of(&h.name, &h.labels),
                Histogram::from_parts(&buckets, h.count, h.sum, h.min, h.max),
            );
        }
        for e in &snap.events {
            rec.events_ref().push(e.at_virtual_us, &e.name, e.detail.clone());
        }
        let finished: Vec<FinishedSpan> = snap
            .spans
            .iter()
            .map(|s| FinishedSpan {
                name: s.name.clone(),
                path: s.path.clone(),
                depth: s.depth,
                start_seq: s.start_seq,
                virtual_start_us: s.virtual_start_us,
                virtual_end_us: s.virtual_end_us,
                wall_ns: 0,
            })
            .collect();
        rec.spans_ref().restore(finished, snap.next_seq);
        rec
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use foundation::json::{from_str, to_string};

    fn populated() -> Recorder {
        let rec = Recorder::new();
        rec.incr("crawl.pages", &[("marketplace", "swapd")], 7);
        rec.incr("crawl.pages", &[("marketplace", "fameswap")], 3);
        rec.gauge_set("campaign.active_offers", &[], 42.0);
        for v in [0u64, 1, 5, 900, 1_000_000] {
            rec.observe("net.latency_us", &[("host", "x.com")], v);
        }
        rec.event("campaign.iteration", "iteration=0");
        {
            let _s = rec.span("deploy");
        }
        rec
    }

    #[test]
    fn snapshot_roundtrips_through_json() {
        let snap = populated().snapshot();
        assert!(snap.validate().is_ok());
        let text = to_string(&snap);
        let back: TelemetrySnapshot = from_str(&text).expect("snapshot parses");
        assert_eq!(back, snap);
    }

    #[test]
    fn restore_reproduces_manifest_exactly() {
        let rec = populated();
        let restored = Recorder::from_snapshot(&rec.snapshot());
        let a = rec.manifest("t", 1, &crate::digest64("cfg"));
        let b = restored.manifest("t", 1, &crate::digest64("cfg"));
        assert_eq!(a.deterministic_string(), b.deterministic_string());
    }

    #[test]
    fn histogram_restore_is_exact_not_summarized() {
        let rec = Recorder::new();
        for v in 0..200u64 {
            rec.observe("h", &[], v * 13);
        }
        let restored = Recorder::from_snapshot(&rec.snapshot());
        let orig = rec.histograms();
        let back = restored.histograms();
        assert_eq!(orig.len(), back.len());
        for (k, h) in &orig {
            let r = &back[k];
            assert_eq!(h.bucket_counts(), r.bucket_counts());
            assert_eq!((h.count(), h.sum(), h.min(), h.max()),
                       (r.count(), r.sum(), r.min(), r.max()));
            assert_eq!(h.quantile(0.5), r.quantile(0.5));
        }
    }

    #[test]
    fn open_span_reopens_with_same_ordinal_and_start() {
        // Original: finish "deploy" (seq 0), open "campaign" (seq 1),
        // snapshot mid-flight, then finish.
        let rec = populated(); // deploy = seq 0
        let campaign = rec.span_starting_at("campaign", 5_000);
        let snap = rec.snapshot();
        assert_eq!(snap.next_seq, 1, "open span's ordinal is excluded");
        drop(campaign);
        let orig = rec.finished_spans();

        // Resume: restore, reopen the live span at its original stamp.
        let restored = Recorder::from_snapshot(&snap);
        let reopened = restored.span_starting_at("campaign", 5_000);
        drop(reopened);
        let back = restored.finished_spans();
        assert_eq!(orig.len(), back.len());
        for (a, b) in orig.iter().zip(back.iter()) {
            assert_eq!(a.start_seq, b.start_seq);
            assert_eq!(a.path, b.path);
            assert_eq!(a.depth, b.depth);
            assert_eq!(a.virtual_start_us, b.virtual_start_us);
        }
    }

    #[test]
    fn bad_schema_rejected() {
        let mut snap = populated().snapshot();
        snap.schema = "bogus".into();
        assert!(snap.validate().is_err());
        let mut snap2 = populated().snapshot();
        if let Some(h) = snap2.histograms.first_mut() {
            h.count += 1;
            assert!(snap2.validate().is_err());
        }
    }
}
