//! The [`Recorder`] handle and the global/scoped recorder plumbing.
//!
//! Instrumentation call sites throughout the workspace go through
//! [`with_recorder`], which resolves, in order:
//!
//! 1. the innermost **scoped** recorder on the current thread (tests and
//!    `Study::run` install one with [`Recorder::enter`], so concurrent
//!    runs never share state);
//! 2. the **global** recorder, if one was installed with
//!    [`install_global`];
//! 3. a process-wide **disabled** recorder whose write methods return
//!    immediately.
//!
//! The disabled path is the default for library users who never opt in:
//! one thread-local read plus one relaxed atomic load, no locks, no
//! allocation — cheap enough to leave instrumentation in every hot path.

// conformance: atomics(acquire, release) — epoch swaps publish with release and load with acquire

use crate::events::{Event, EventLog};
use crate::metrics::{Histogram, Key, Registry};
use crate::span::{FinishedSpan, SpanTicket, SpanTracker};
use crate::trace::{TraceCat, Tracer};
use foundation::sync::Mutex;
use std::cell::RefCell;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, OnceLock};
use std::time::Instant;

/// A source of virtual time (implemented by `acctrade_net`'s `SimClock`).
pub trait VirtualClock: Send + Sync {
    /// Current virtual time in microseconds since the epoch.
    fn now_us(&self) -> u64;
}

struct Inner {
    enabled: bool,
    registry: Registry,
    events: EventLog,
    spans: SpanTracker,
    virtual_clock: Mutex<Option<Arc<dyn VirtualClock>>>,
    started_wall: Instant,
    /// Optional live-trace sink: finished spans and events are mirrored
    /// into its per-thread rings for the ops plane's wall-clock view.
    trace: Mutex<Option<Tracer>>,
}

/// A cheaply cloneable telemetry handle. All clones share one registry,
/// event ring, and span tracker.
#[derive(Clone)]
pub struct Recorder {
    inner: Arc<Inner>,
}

impl Recorder {
    /// A fresh, enabled recorder with empty state.
    pub fn new() -> Recorder {
        Recorder {
            inner: Arc::new(Inner {
                enabled: true,
                registry: Registry::new(),
                events: EventLog::default(),
                spans: SpanTracker::default(),
                virtual_clock: Mutex::new(None),
                started_wall: Instant::now(),
                trace: Mutex::new(None),
            }),
        }
    }

    /// The process-wide disabled recorder (every write is a no-op).
    pub fn disabled() -> Recorder {
        static DISABLED: OnceLock<Recorder> = OnceLock::new();
        DISABLED
            .get_or_init(|| Recorder {
                inner: Arc::new(Inner {
                    enabled: false,
                    registry: Registry::new(),
                    events: EventLog::with_capacity(1),
                    spans: SpanTracker::default(),
                    virtual_clock: Mutex::new(None),
                    started_wall: Instant::now(),
                    trace: Mutex::new(None),
                }),
            })
            .clone()
    }

    /// Does this recorder record anything?
    pub fn is_enabled(&self) -> bool {
        self.inner.enabled
    }

    /// Install the virtual-time source spans and events read. The fabric
    /// (`SimNet`) calls this at construction so telemetry timestamps ride
    /// the same clock as the simulation.
    pub fn set_virtual_clock(&self, clock: Arc<dyn VirtualClock>) {
        if !self.inner.enabled {
            return;
        }
        *self.inner.virtual_clock.lock() = Some(clock);
    }

    /// Current virtual time (0 when no clock was installed).
    pub fn virtual_now(&self) -> u64 {
        self.inner
            .virtual_clock
            .lock()
            .as_ref()
            .map(|c| c.now_us())
            .unwrap_or(0)
    }

    /// Wall-clock milliseconds since this recorder was created.
    pub fn wall_elapsed_ms(&self) -> f64 {
        self.inner.started_wall.elapsed().as_secs_f64() * 1e3
    }

    /// Mirror finished spans and events into a live [`Tracer`] (the ops
    /// plane's trace ring). The manifest path is unaffected: the sink
    /// only feeds the wall-clock operator view.
    pub fn set_trace_sink(&self, tracer: Tracer) {
        if !self.inner.enabled {
            return;
        }
        *self.inner.trace.lock() = Some(tracer);
    }

    /// The currently attached trace sink, if any.
    pub fn trace_sink(&self) -> Option<Tracer> {
        self.inner.trace.lock().clone()
    }

    // ---- writes -------------------------------------------------------

    /// Add `delta` to a counter.
    pub fn incr(&self, name: &str, labels: &[(&str, &str)], delta: u64) {
        if !self.inner.enabled {
            return;
        }
        self.inner.registry.incr(name, labels, delta);
    }

    /// Set a gauge.
    pub fn gauge_set(&self, name: &str, labels: &[(&str, &str)], value: f64) {
        if !self.inner.enabled {
            return;
        }
        self.inner.registry.gauge_set(name, labels, value);
    }

    /// Record one histogram sample.
    pub fn observe(&self, name: &str, labels: &[(&str, &str)], value: u64) {
        if !self.inner.enabled {
            return;
        }
        self.inner.registry.observe(name, labels, value);
    }

    /// Record one event into the ring buffer (virtual timestamp).
    pub fn event(&self, name: &str, detail: impl Into<String>) {
        if !self.inner.enabled {
            return;
        }
        let detail = detail.into();
        let at = self.virtual_now();
        if let Some(tracer) = self.trace_sink() {
            tracer.record_instant(name, TraceCat::Event, at, detail.clone());
        }
        self.inner.events.push(at, name, detail);
    }

    /// Open a span; it closes (and records) when the guard drops.
    pub fn span(&self, name: &str) -> Span {
        if !self.inner.enabled {
            return Span { live: None };
        }
        let ticket = self.inner.spans.start(name);
        Span {
            live: Some(LiveSpan {
                rec: self.clone(),
                ticket,
                virtual_start_us: self.virtual_now(),
                wall_start: Instant::now(),
            }),
        }
    }

    /// Open a span whose *virtual* start stamp is `virtual_start_us`
    /// instead of "now". Used when resuming a checkpointed run: the stage
    /// span that was live at snapshot time is reopened with its original
    /// start, so the resumed manifest's stage table matches an
    /// uninterrupted run exactly.
    pub fn span_starting_at(&self, name: &str, virtual_start_us: u64) -> Span {
        if !self.inner.enabled {
            return Span { live: None };
        }
        let ticket = self.inner.spans.start(name);
        Span {
            live: Some(LiveSpan {
                rec: self.clone(),
                ticket,
                virtual_start_us,
                wall_start: Instant::now(),
            }),
        }
    }

    // ---- reads --------------------------------------------------------

    /// Current value of one counter.
    pub fn counter(&self, name: &str, labels: &[(&str, &str)]) -> u64 {
        self.inner.registry.counter(name, labels)
    }

    /// Sum over every label set of one counter name.
    pub fn counter_total(&self, name: &str) -> u64 {
        self.inner.registry.counter_total(name)
    }

    /// Sorted counter snapshot.
    pub fn counters(&self) -> BTreeMap<Key, u64> {
        self.inner.registry.counters()
    }

    /// Sorted gauge snapshot.
    pub fn gauges(&self) -> BTreeMap<Key, f64> {
        self.inner.registry.gauges()
    }

    /// Sorted histogram snapshot.
    pub fn histograms(&self) -> BTreeMap<Key, Histogram> {
        self.inner.registry.histograms()
    }

    /// Retained events, oldest first.
    pub fn events(&self) -> Vec<Event> {
        self.inner.events.snapshot()
    }

    /// Finished spans in start order.
    pub fn finished_spans(&self) -> Vec<FinishedSpan> {
        self.inner.spans.finished()
    }

    // ---- internal state hooks (snapshot/restore) ----------------------

    pub(crate) fn registry_ref(&self) -> &Registry {
        &self.inner.registry
    }

    pub(crate) fn events_ref(&self) -> &EventLog {
        &self.inner.events
    }

    pub(crate) fn spans_ref(&self) -> &SpanTracker {
        &self.inner.spans
    }

    // ---- scoping ------------------------------------------------------

    /// Make this recorder the current one for the calling thread until
    /// the returned guard drops. Scopes nest.
    pub fn enter(&self) -> RecorderScope {
        CURRENT.with(|c| c.borrow_mut().push(self.clone()));
        RecorderScope { _not_send: std::marker::PhantomData }
    }
}

impl Default for Recorder {
    fn default() -> Self {
        Recorder::new()
    }
}

impl std::fmt::Debug for Recorder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "Recorder(enabled={}, spans={})",
            self.inner.enabled,
            self.inner.spans.open_count()
        )
    }
}

/// RAII guard for an open span (see [`Recorder::span`]).
pub struct Span {
    live: Option<LiveSpan>,
}

struct LiveSpan {
    rec: Recorder,
    ticket: SpanTicket,
    virtual_start_us: u64,
    wall_start: Instant,
}

impl Drop for Span {
    fn drop(&mut self) {
        if let Some(live) = self.live.take() {
            let virtual_end = live.rec.virtual_now();
            let wall_ns = live.wall_start.elapsed().as_nanos() as u64;
            if let Some(tracer) = live.rec.trace_sink() {
                let wall_dur_us = wall_ns / 1_000;
                let wall_end_us = tracer.wall_now_us();
                tracer.record_complete(
                    &live.ticket.name,
                    TraceCat::Stage,
                    wall_end_us.saturating_sub(wall_dur_us),
                    wall_dur_us,
                    live.virtual_start_us,
                    virtual_end.saturating_sub(live.virtual_start_us),
                    live.ticket.path.clone(),
                );
            }
            live.rec.inner.spans.finish(
                live.ticket,
                live.virtual_start_us,
                virtual_end,
                wall_ns,
            );
        }
    }
}

/// RAII guard for a thread-scoped recorder (see [`Recorder::enter`]).
pub struct RecorderScope {
    _not_send: std::marker::PhantomData<*const ()>,
}

impl Drop for RecorderScope {
    fn drop(&mut self) {
        CURRENT.with(|c| {
            c.borrow_mut().pop();
        });
    }
}

thread_local! {
    static CURRENT: RefCell<Vec<Recorder>> = const { RefCell::new(Vec::new()) };
}

static GLOBAL_SET: AtomicBool = AtomicBool::new(false);

fn global_slot() -> &'static Mutex<Option<Recorder>> {
    static GLOBAL: OnceLock<Mutex<Option<Recorder>>> = OnceLock::new();
    GLOBAL.get_or_init(|| Mutex::new(None))
}

/// Install a process-global recorder (used by long-running binaries; tests
/// prefer [`Recorder::enter`] scopes).
pub fn install_global(rec: Recorder) {
    *global_slot().lock() = Some(rec);
    GLOBAL_SET.store(true, Ordering::Release);
}

/// Remove the global recorder.
pub fn clear_global() {
    GLOBAL_SET.store(false, Ordering::Release);
    *global_slot().lock() = None;
}

/// Run `f` against the current recorder (scoped → global → disabled).
///
/// This is the instrumentation entry point: when no recorder is active it
/// costs a thread-local read plus one atomic load and `f` sees the
/// disabled recorder, whose writes return immediately.
pub fn with_recorder<T>(f: impl FnOnce(&Recorder) -> T) -> T {
    let scoped = CURRENT.with(|c| c.borrow().last().cloned());
    if let Some(rec) = scoped {
        return f(&rec);
    }
    if GLOBAL_SET.load(Ordering::Acquire) {
        if let Some(rec) = global_slot().lock().clone() {
            return f(&rec);
        }
    }
    f(&Recorder::disabled())
}

/// Clone the current recorder handle (scoped → global → disabled).
pub fn recorder() -> Recorder {
    with_recorder(Clone::clone)
}

/// Open a span on the current recorder.
pub fn span(name: &str) -> Span {
    with_recorder(|r| r.span(name))
}

/// Record an event on the current recorder.
pub fn event(name: &str, detail: impl Into<String>) {
    with_recorder(|r| r.event(name, detail.into()));
}

#[cfg(test)]
mod tests {
    use super::*;

    struct FixedClock(u64);
    impl VirtualClock for FixedClock {
        fn now_us(&self) -> u64 {
            self.0
        }
    }

    #[test]
    fn disabled_recorder_records_nothing() {
        let r = Recorder::disabled();
        r.incr("x", &[], 5);
        r.observe("h", &[], 1);
        r.event("e", "detail");
        let _s = r.span("dead");
        drop(_s);
        assert!(!r.is_enabled());
        assert_eq!(r.counter_total("x"), 0);
        assert!(r.events().is_empty());
        assert!(r.finished_spans().is_empty());
    }

    #[test]
    fn scoped_recorder_shadows_outer_scopes() {
        let rec = Recorder::new();
        let inner = Recorder::new();
        {
            let _scope = rec.enter();
            with_recorder(|r| r.incr("scoped.hits", &[], 1));
            // Nested scope wins.
            {
                let _scope2 = inner.enter();
                with_recorder(|r| r.incr("scoped.hits", &[], 10));
            }
            with_recorder(|r| r.incr("scoped.hits", &[], 1));
        }
        assert_eq!(rec.counter_total("scoped.hits"), 2);
        assert_eq!(inner.counter_total("scoped.hits"), 10);
    }

    #[test]
    fn spans_record_virtual_and_wall_time() {
        let rec = Recorder::new();
        let clock = Arc::new(foundation::sync::Mutex::new(100u64));
        struct Shared(Arc<foundation::sync::Mutex<u64>>);
        impl VirtualClock for Shared {
            fn now_us(&self) -> u64 {
                *self.0.lock()
            }
        }
        rec.set_virtual_clock(Arc::new(Shared(Arc::clone(&clock))));
        {
            let _outer = rec.span("outer");
            *clock.lock() = 250;
            {
                let _inner = rec.span("inner");
                *clock.lock() = 400;
            }
        }
        let spans = rec.finished_spans();
        assert_eq!(spans.len(), 2);
        assert_eq!(spans[0].name, "outer");
        assert_eq!(spans[0].virtual_us(), 300);
        assert_eq!(spans[1].path, "outer/inner");
        assert_eq!(spans[1].virtual_us(), 150);
    }

    #[test]
    fn fixed_clock_stamps_events() {
        let rec = Recorder::new();
        rec.set_virtual_clock(Arc::new(FixedClock(777)));
        rec.event("tick", "x");
        assert_eq!(rec.events()[0].at_virtual_us, 777);
        assert_eq!(rec.virtual_now(), 777);
    }

    #[test]
    fn global_install_and_clear() {
        // Keep this test self-contained: install, observe, clear.
        let rec = Recorder::new();
        install_global(rec.clone());
        with_recorder(|r| r.incr("global.hits", &[], 3));
        clear_global();
        with_recorder(|r| assert!(!r.is_enabled()));
        assert_eq!(rec.counter_total("global.hits"), 3);
    }
}
