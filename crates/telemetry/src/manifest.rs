//! The exportable run manifest (`TELEMETRY_report.json`).
//!
//! A [`RunManifest`] is the auditable record of one pipeline run: the
//! seed, a digest of the configuration, per-stage timings on both clocks,
//! every counter/gauge/histogram, the crawl-provenance table (pages and
//! offers per marketplace), the per-platform API outcome tallies, and the
//! retained event log.
//!
//! **Determinism contract:** every field except the `wall_*` ones is a
//! pure function of the seed. [`RunManifest::deterministic_json`] strips
//! the wall fields, and the determinism suite asserts two same-seed runs
//! render that view byte-identically.

use crate::metrics::{fnv1a64, Histogram, Key};
use crate::recorder::Recorder;
use foundation::json::{Json, JsonCodec};
use foundation::json_codec_struct;

/// Manifest schema identifier.
pub(crate) const SCHEMA: &str = "acctrade-telemetry/v1";

/// Default manifest file name.
pub const REPORT_FILE: &str = "TELEMETRY_report.json";

/// One pipeline stage (a finished top-level or nested span).
#[derive(Debug, Clone, PartialEq)]
pub struct StageReport {
    /// Stage name.
    pub name: String,
    /// Slash-joined span path.
    pub path: String,
    /// Nesting depth.
    pub depth: usize,
    /// Virtual time at stage start (µs since epoch).
    pub virtual_start_us: u64,
    /// Virtual duration (µs).
    pub virtual_us: u64,
    /// Wall-clock duration (ms) — excluded from the deterministic view.
    pub wall_ms: f64,
}

/// One counter entry (canonical key → value).
#[derive(Debug, Clone, PartialEq)]
pub struct CounterEntry {
    /// Canonical key (`net.requests{host=x.com,status=200}`).
    pub key: String,
    /// Count.
    pub value: u64,
}

/// One gauge entry.
#[derive(Debug, Clone, PartialEq)]
pub struct GaugeEntry {
    /// Canonical key.
    pub key: String,
    /// Last value set.
    pub value: f64,
}

/// Summary of one histogram.
#[derive(Debug, Clone, PartialEq)]
pub struct HistogramReport {
    /// Canonical key.
    pub key: String,
    /// Samples.
    pub count: u64,
    /// Sum of samples.
    pub sum: u64,
    /// Minimum.
    pub min: u64,
    /// Maximum.
    pub max: u64,
    /// Median (log-bucket resolution).
    pub p50: u64,
    /// 90th percentile.
    pub p90: u64,
    /// 99th percentile.
    pub p99: u64,
}

/// Crawl provenance for one marketplace.
#[derive(Debug, Clone, PartialEq)]
pub struct CrawlStat {
    /// Marketplace name.
    pub marketplace: String,
    /// Pages fetched.
    pub pages: u64,
    /// Offers collected.
    pub offers: u64,
    /// Fetch errors.
    pub fetch_errors: u64,
    /// Offers that answered 410 Gone.
    pub gone_offers: u64,
}

/// API outcome tally for one platform.
#[derive(Debug, Clone, PartialEq)]
pub struct ApiStat {
    /// Platform name.
    pub platform: String,
    /// Outcome label (`ok`, `forbidden`, `not_found`, `bad_request`).
    pub outcome: String,
    /// Calls with this outcome.
    pub calls: u64,
}

/// One retained event.
#[derive(Debug, Clone, PartialEq)]
pub struct EventReport {
    /// Virtual timestamp (µs since epoch).
    pub at_virtual_us: u64,
    /// Event name.
    pub name: String,
    /// Detail string.
    pub detail: String,
}

/// The run manifest.
#[derive(Debug, Clone, PartialEq)]
pub struct RunManifest {
    /// Schema identifier ([`SCHEMA`]).
    pub schema: String,
    /// Run label (`study`, `quickstart`).
    pub run: String,
    /// Seed the run derives from.
    pub seed: u64,
    /// FNV-1a digest of the rendered configuration.
    pub config_digest: String,
    /// Virtual time when the earliest stage started (µs since epoch).
    pub virtual_start_us: u64,
    /// Virtual time at export (µs since epoch).
    pub virtual_end_us: u64,
    /// Wall-clock ms since the recorder was created — excluded from the
    /// deterministic view.
    pub wall_ms: f64,
    /// Stage timing table.
    pub stages: Vec<StageReport>,
    /// All counters, sorted by key.
    pub counters: Vec<CounterEntry>,
    /// All gauges, sorted by key.
    pub gauges: Vec<GaugeEntry>,
    /// All histogram summaries, sorted by key.
    pub histograms: Vec<HistogramReport>,
    /// Per-marketplace crawl provenance.
    pub crawl: Vec<CrawlStat>,
    /// Per-platform × outcome API tallies.
    pub api: Vec<ApiStat>,
    /// Retained events, oldest first.
    pub events: Vec<EventReport>,
}

json_codec_struct! {
    StageReport { name, path, depth, virtual_start_us, virtual_us, wall_ms }
    CounterEntry { key, value }
    GaugeEntry { key, value }
    HistogramReport { key, count, sum, min, max, p50, p90, p99 }
    CrawlStat { marketplace, pages, offers, fetch_errors, gone_offers }
    ApiStat { platform, outcome, calls }
    EventReport { at_virtual_us, name, detail }
    RunManifest {
        schema, run, seed, config_digest, virtual_start_us, virtual_end_us,
        wall_ms, stages, counters, gauges, histograms, crawl, api, events,
    }
}

/// 16-hex-digit FNV-1a digest of a string (config fingerprints).
pub fn digest64(s: &str) -> String {
    format!("{:016x}", fnv1a64(s.as_bytes()))
}

fn histogram_report(key: &Key, h: &Histogram) -> HistogramReport {
    // An empty histogram (possible after a checkpoint restore inserts a
    // merged-but-never-observed key) has no defined min or quantiles;
    // export an explicit all-zero row rather than sentinel garbage.
    if h.count() == 0 {
        return HistogramReport {
            key: key.render(),
            count: 0,
            sum: 0,
            min: 0,
            max: 0,
            p50: 0,
            p90: 0,
            p99: 0,
        };
    }
    HistogramReport {
        key: key.render(),
        count: h.count(),
        sum: h.sum(),
        min: h.min(),
        max: h.max(),
        p50: h.quantile(0.50),
        p90: h.quantile(0.90),
        p99: h.quantile(0.99),
    }
}

impl Recorder {
    /// Export everything this recorder saw as a [`RunManifest`].
    pub fn manifest(&self, run: &str, seed: u64, config_digest: &str) -> RunManifest {
        let counters = self.counters();
        let stages: Vec<StageReport> = self
            .finished_spans()
            .into_iter()
            .map(|s| StageReport {
                name: s.name.clone(),
                path: s.path.clone(),
                depth: s.depth,
                virtual_start_us: s.virtual_start_us,
                virtual_us: s.virtual_us(),
                wall_ms: s.wall_ns as f64 / 1e6,
            })
            .collect();
        let virtual_start_us = stages
            .iter()
            .map(|s| s.virtual_start_us)
            .min()
            .unwrap_or_else(|| self.virtual_now());

        // Crawl provenance, keyed by the `marketplace` label on the
        // crawler's counters.
        let mut marketplaces: Vec<String> = counters
            .keys()
            .filter(|k| k.name.starts_with("crawl."))
            .filter_map(|k| k.label("marketplace"))
            .map(str::to_string)
            .collect();
        marketplaces.sort();
        marketplaces.dedup();
        let mlabel = |name: &str, m: &str| {
            self.counter(name, &[("marketplace", m)])
        };
        let crawl: Vec<CrawlStat> = marketplaces
            .iter()
            .map(|m| CrawlStat {
                marketplace: m.clone(),
                pages: mlabel("crawl.pages", m),
                offers: mlabel("crawl.offers", m),
                fetch_errors: mlabel("crawl.fetch_errors", m),
                gone_offers: mlabel("crawl.gone_offers", m),
            })
            .collect();

        // API outcome tallies, keyed off `api.calls{platform,outcome}`.
        let api: Vec<ApiStat> = counters
            .iter()
            .filter(|(k, _)| k.name == "api.calls")
            .filter_map(|(k, &v)| {
                Some(ApiStat {
                    platform: k.label("platform")?.to_string(),
                    outcome: k.label("outcome")?.to_string(),
                    calls: v,
                })
            })
            .collect();

        RunManifest {
            schema: SCHEMA.to_string(),
            run: run.to_string(),
            seed,
            config_digest: config_digest.to_string(),
            virtual_start_us,
            virtual_end_us: self.virtual_now(),
            wall_ms: self.wall_elapsed_ms(),
            stages,
            counters: counters
                .iter()
                .map(|(k, &v)| CounterEntry { key: k.render(), value: v })
                .collect(),
            gauges: self
                .gauges()
                .iter()
                .map(|(k, &v)| GaugeEntry { key: k.render(), value: v })
                .collect(),
            histograms: self
                .histograms()
                .iter()
                .map(|(k, h)| histogram_report(k, h))
                .collect(),
            crawl,
            api,
            events: self
                .events()
                .into_iter()
                .map(|e| EventReport {
                    at_virtual_us: e.at_virtual_us,
                    name: e.name,
                    detail: e.detail,
                })
                .collect(),
        }
    }
}

/// Strip every `wall_*` key from a JSON tree (recursively) — the one
/// normalization every deterministic comparison in the workspace uses.
///
/// The determinism contract names wall-clock fields with a `wall_`
/// prefix precisely so this pass can erase them mechanically; anything
/// left after normalization must be a pure function of the seed.
/// [`RunManifest::deterministic_json`], the determinism/parity test
/// suites, and the `validate_manifest` stability checks all route
/// through here rather than re-implementing the filter.
pub fn normalize_for_determinism(v: &Json) -> Json {
    match v {
        Json::Obj(entries) => Json::Obj(
            entries
                .iter()
                .filter(|(k, _)| !k.starts_with("wall_"))
                .map(|(k, val)| (k.clone(), normalize_for_determinism(val)))
                .collect(),
        ),
        Json::Arr(items) => {
            Json::Arr(items.iter().map(normalize_for_determinism).collect())
        }
        other => other.clone(),
    }
}

impl RunManifest {
    /// Compact JSON.
    pub fn to_json_string(&self) -> String {
        foundation::json::to_string(self)
    }

    /// Pretty JSON (the on-disk `TELEMETRY_report.json` format).
    pub fn to_json_pretty(&self) -> String {
        foundation::json::to_string_pretty(self)
    }

    /// Parse a manifest back from JSON text.
    pub fn parse(text: &str) -> Result<RunManifest, foundation::json::JsonError> {
        foundation::json::from_str(text)
    }

    /// The manifest minus every `wall_*` field — byte-identical across
    /// same-seed runs.
    pub fn deterministic_json(&self) -> Json {
        normalize_for_determinism(&self.to_json())
    }

    /// Pretty rendering of [`RunManifest::deterministic_json`].
    pub fn deterministic_string(&self) -> String {
        self.deterministic_json().render_pretty()
    }

    /// Structural sanity checks (the CI validator gate).
    pub fn validate(&self) -> Result<(), String> {
        if self.schema != SCHEMA {
            return Err(format!("unknown schema {:?}", self.schema));
        }
        if self.run.is_empty() {
            return Err("empty run label".into());
        }
        if self.config_digest.len() != 16
            || !self.config_digest.bytes().all(|b| b.is_ascii_hexdigit())
        {
            return Err(format!("malformed config digest {:?}", self.config_digest));
        }
        if self.virtual_end_us < self.virtual_start_us {
            return Err("virtual_end_us precedes virtual_start_us".into());
        }
        if self.stages.is_empty() {
            return Err("no stages recorded".into());
        }
        if self.counters.is_empty() {
            return Err("no counters recorded".into());
        }
        Ok(())
    }

    /// Render the per-stage timing table (virtual + wall columns).
    pub fn render_stage_table(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "{:<40} {:>14} {:>12}\n",
            "stage", "virtual", "wall"
        ));
        out.push_str(&format!("{}\n", "-".repeat(68)));
        for s in &self.stages {
            let label = format!("{}{}", "  ".repeat(s.depth), s.name);
            out.push_str(&format!(
                "{:<40} {:>14} {:>12}\n",
                label,
                format_virtual(s.virtual_us),
                format!("{:.1} ms", s.wall_ms),
            ));
        }
        out.push_str(&format!(
            "{:<40} {:>14} {:>12}\n",
            "total",
            format_virtual(self.virtual_end_us.saturating_sub(self.virtual_start_us)),
            format!("{:.1} ms", self.wall_ms),
        ));
        out
    }
}

/// Human-format a virtual duration in microseconds.
pub(crate) fn format_virtual(us: u64) -> String {
    const SECOND: u64 = 1_000_000;
    const MINUTE: u64 = 60 * SECOND;
    const HOUR: u64 = 60 * MINUTE;
    const DAY: u64 = 24 * HOUR;
    if us >= DAY {
        format!("{:.1} d", us as f64 / DAY as f64)
    } else if us >= HOUR {
        format!("{:.1} h", us as f64 / HOUR as f64)
    } else if us >= MINUTE {
        format!("{:.1} min", us as f64 / MINUTE as f64)
    } else if us >= SECOND {
        format!("{:.2} s", us as f64 / SECOND as f64)
    } else {
        format!("{us} µs")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::recorder::VirtualClock;
    use std::sync::Arc;

    struct FixedClock(u64);
    impl VirtualClock for FixedClock {
        fn now_us(&self) -> u64 {
            self.0
        }
    }

    fn sample_recorder() -> Recorder {
        let rec = Recorder::new();
        rec.set_virtual_clock(Arc::new(FixedClock(5_000)));
        {
            let _s = rec.span("stage_one");
        }
        rec.incr("crawl.pages", &[("marketplace", "Accsmarket")], 12);
        rec.incr("crawl.offers", &[("marketplace", "Accsmarket")], 9);
        rec.incr("api.calls", &[("platform", "X"), ("outcome", "ok")], 4);
        rec.incr("api.calls", &[("platform", "X"), ("outcome", "not_found")], 1);
        rec.observe("net.latency_us", &[], 300);
        rec.gauge_set("crawl.frontier_peak", &[], 17.0);
        rec.event("unit", "sample event");
        rec
    }

    #[test]
    fn manifest_roundtrips_through_json() {
        let rec = sample_recorder();
        let m = rec.manifest("unit", 42, &digest64("cfg"));
        assert!(m.validate().is_ok(), "{:?}", m.validate());
        let text = m.to_json_pretty();
        let back = RunManifest::parse(&text).expect("parses");
        assert_eq!(back, m);
        assert_eq!(back.to_json_pretty(), text, "stable re-encode");
    }

    #[test]
    fn crawl_and_api_sections_extracted_from_counters() {
        let rec = sample_recorder();
        let m = rec.manifest("unit", 7, &digest64("cfg"));
        assert_eq!(m.crawl.len(), 1);
        assert_eq!(m.crawl[0].marketplace, "Accsmarket");
        assert_eq!(m.crawl[0].pages, 12);
        assert_eq!(m.crawl[0].offers, 9);
        assert_eq!(m.crawl[0].fetch_errors, 0);
        let ok = m.api.iter().find(|a| a.outcome == "ok").unwrap();
        assert_eq!((ok.platform.as_str(), ok.calls), ("X", 4));
        assert_eq!(m.api.len(), 2);
    }

    #[test]
    fn deterministic_view_strips_wall_fields() {
        let rec = sample_recorder();
        let m = rec.manifest("unit", 7, &digest64("cfg"));
        let full = m.to_json_string();
        let det = m.deterministic_string();
        assert!(full.contains("wall_ms"));
        assert!(!det.contains("wall_ms"));
        assert!(det.contains("virtual_us"), "virtual fields stay");
        // Two exports of the same recorder agree on the deterministic view
        // even though wall_ms keeps ticking between them.
        let m2 = rec.manifest("unit", 7, &digest64("cfg"));
        assert_eq!(m2.deterministic_string(), det);
    }

    #[test]
    fn stage_table_lists_stages_and_total() {
        let rec = sample_recorder();
        let m = rec.manifest("unit", 7, &digest64("cfg"));
        let table = m.render_stage_table();
        assert!(table.contains("stage_one"));
        assert!(table.contains("total"));
        assert!(table.contains("ms"));
    }

    #[test]
    fn validate_rejects_broken_manifests() {
        let rec = sample_recorder();
        let mut m = rec.manifest("unit", 7, &digest64("cfg"));
        m.schema = "bogus".into();
        assert!(m.validate().is_err());
        let mut m2 = rec.manifest("unit", 7, &digest64("cfg"));
        m2.config_digest = "xyz".into();
        assert!(m2.validate().is_err());
        let mut m3 = rec.manifest("unit", 7, &digest64("cfg"));
        m3.stages.clear();
        assert!(m3.validate().is_err());
    }

    #[test]
    fn empty_histogram_exports_zeros_not_sentinels() {
        let rec = sample_recorder();
        // A restore-style insert of a histogram that never saw a sample.
        rec.registry_ref()
            .insert_histogram(crate::metrics::Key::new("restored.empty", &[]), Histogram::default());
        let m = rec.manifest("unit", 7, &digest64("cfg"));
        let row = m
            .histograms
            .iter()
            .find(|h| h.key == "restored.empty")
            .expect("empty histogram is exported");
        assert_eq!(
            (row.count, row.sum, row.min, row.max, row.p50, row.p90, row.p99),
            (0, 0, 0, 0, 0, 0, 0),
            "empty histogram must export zeros, not u64::MAX sentinels"
        );
    }

    #[test]
    fn normalize_for_determinism_matches_deterministic_json() {
        let rec = sample_recorder();
        let m = rec.manifest("unit", 7, &digest64("cfg"));
        let normalized = normalize_for_determinism(&m.to_json());
        assert_eq!(normalized.render_pretty(), m.deterministic_string());
        assert!(!normalized.render().contains("wall_"));
    }

    #[test]
    fn digest_is_stable_and_hex() {
        assert_eq!(digest64("abc"), digest64("abc"));
        assert_ne!(digest64("abc"), digest64("abd"));
        assert_eq!(digest64("x").len(), 16);
    }

    #[test]
    fn virtual_formatting_scales() {
        assert_eq!(format_virtual(12), "12 µs");
        assert_eq!(format_virtual(2_500_000), "2.50 s");
        assert_eq!(format_virtual(90_000_000), "1.5 min");
        assert!(format_virtual(7_200_000_000).ends_with(" h"));
        assert!(format_virtual(86_400_000_000 * 3 / 2).ends_with(" d"));
    }
}
