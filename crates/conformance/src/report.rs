//! The analyzer's output model: [`Finding`]s collected into a
//! versioned [`LintReport`] (schema `acctrade-lint/v2`), serialized
//! through `foundation::json::JsonCodec` into the machine-diffable
//! `LINT_report.json`, plus the [`ArchBaseline`] types behind the
//! committed `ARCH_baseline.json`.
//!
//! Determinism contract (the report is itself gated by CI's double-run
//! `cmp`): findings are sorted by `(file, line, col, rule)`, rule
//! counts by rule slug, the unsafe inventory by `(file, line, kind)`,
//! paths are workspace-relative with forward slashes, and nothing
//! time- or environment-dependent is recorded.

use foundation::json_codec_struct;
use std::fmt;

/// One rule violation at a source location.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Rule slug (see [`crate::rules::KNOWN_RULES`]).
    pub rule: String,
    /// Workspace-relative path, `/`-separated on every platform.
    pub file: String,
    /// 1-based line.
    pub line: u64,
    /// 1-based byte column.
    pub col: u64,
    /// What was matched and why it is forbidden here.
    pub message: String,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}:{}: [{}] {}",
            self.file, self.line, self.col, self.rule, self.message
        )
    }
}

/// Per-rule tally: how many findings survived and how many matches the
/// tree's `conformance: allow(…)` annotations waived. Every known rule
/// appears, zeros included, so a rule silently never running is itself
/// visible in the diff.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RuleCount {
    /// Rule slug.
    pub rule: String,
    /// Unallowed findings under this rule.
    pub findings: u64,
    /// Annotation-waived matches under this rule.
    pub suppressed: u64,
}

/// One `unsafe` site in the workspace (documented or not): the
/// report's auditable unsafe inventory.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UnsafeSite {
    /// Workspace-relative path.
    pub file: String,
    /// 1-based line of the `unsafe` keyword.
    pub line: u64,
    /// Site kind: `block`, `fn`, `impl`, or `trait`.
    pub kind: String,
}

/// One crate's row in the architecture baseline.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ArchCrate {
    /// `[package] name` (e.g. `acctrade-net`).
    pub package: String,
    /// The library target name consumers `use` (e.g. `acctrade_net`,
    /// or an override like `foundation`).
    pub lib_name: String,
    /// Declared `[dependencies]`, as package names, sorted.
    pub deps: Vec<String>,
    /// Declared `[dev-dependencies]`, as package names, sorted.
    pub dev_deps: Vec<String>,
}

/// The committed architecture baseline (`ARCH_baseline.json`, schema
/// `acctrade-arch/v1`): the crate DAG the workspace is allowed to
/// have. Any divergence is an `arch` finding until the baseline is
/// regenerated and the diff reviewed.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct ArchBaseline {
    /// Schema tag, `acctrade-arch/v1`.
    pub schema: String,
    /// All workspace crates, sorted by package name.
    pub crates: Vec<ArchCrate>,
}

/// The full deterministic lint report (schema `acctrade-lint/v2`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LintReport {
    /// Schema tag, `acctrade-lint/v2`.
    pub schema: String,
    /// Number of `.rs` files scanned.
    pub files_scanned: u64,
    /// Number of `Cargo.toml` manifests scanned.
    pub manifests_scanned: u64,
    /// Findings silenced by `// conformance: allow(<rule>)` annotations.
    pub suppressed: u64,
    /// FNV-1a 64 digest (16 hex digits) of the current architecture
    /// graph — the one-line fingerprint of "which crates, which edges".
    pub arch_digest: String,
    /// Per-rule tallies, sorted by rule slug, zeros included.
    pub rule_counts: Vec<RuleCount>,
    /// Every `unsafe` site in non-test workspace code, sorted.
    pub unsafe_inventory: Vec<UnsafeSite>,
    /// Unallowed findings, sorted by `(file, line, col, rule)`.
    pub findings: Vec<Finding>,
}

/// The v2 schema tag.
pub const LINT_SCHEMA: &str = "acctrade-lint/v2";

impl Default for LintReport {
    fn default() -> Self {
        LintReport {
            schema: LINT_SCHEMA.to_string(),
            files_scanned: 0,
            manifests_scanned: 0,
            suppressed: 0,
            arch_digest: String::new(),
            rule_counts: Vec::new(),
            unsafe_inventory: Vec::new(),
            findings: Vec::new(),
        }
    }
}

impl LintReport {
    /// Canonical ordering — applied before serialization so equal scans
    /// always render byte-identically.
    pub fn sort(&mut self) {
        self.findings.sort_by(|a, b| {
            (&a.file, a.line, a.col, &a.rule).cmp(&(&b.file, b.line, b.col, &b.rule))
        });
        self.rule_counts.sort_by(|a, b| a.rule.cmp(&b.rule));
        self.unsafe_inventory
            .sort_by(|a, b| (&a.file, a.line, &a.kind).cmp(&(&b.file, b.line, &b.kind)));
    }

    /// Does the tree pass (no unallowed findings)?
    pub fn clean(&self) -> bool {
        self.findings.is_empty()
    }
}

json_codec_struct! {
    Finding { rule, file, line, col, message }
    RuleCount { rule, findings, suppressed }
    UnsafeSite { file, line, kind }
    ArchCrate { package, lib_name, deps, dev_deps }
    ArchBaseline { schema, crates }
    LintReport {
        schema,
        files_scanned,
        manifests_scanned,
        suppressed,
        arch_digest,
        rule_counts,
        unsafe_inventory,
        findings,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use foundation::json;

    fn finding(file: &str, line: u64, col: u64, rule: &str) -> Finding {
        Finding {
            rule: rule.into(),
            file: file.into(),
            line,
            col,
            message: format!("{rule} violated"),
        }
    }

    #[test]
    fn sort_orders_by_file_line_col_rule() {
        let mut report = LintReport {
            files_scanned: 2,
            manifests_scanned: 1,
            findings: vec![
                finding("b.rs", 1, 1, "determinism"),
                finding("a.rs", 9, 2, "panic-policy"),
                finding("a.rs", 9, 2, "determinism"),
                finding("a.rs", 3, 7, "panic-policy"),
            ],
            ..LintReport::default()
        };
        report.sort();
        let order: Vec<(String, u64, String)> = report
            .findings
            .iter()
            .map(|f| (f.file.clone(), f.line, f.rule.clone()))
            .collect();
        assert_eq!(
            order,
            vec![
                ("a.rs".into(), 3, "panic-policy".into()),
                ("a.rs".into(), 9, "determinism".into()),
                ("a.rs".into(), 9, "panic-policy".into()),
                ("b.rs".into(), 1, "determinism".into()),
            ]
        );
    }

    #[test]
    fn report_renders_deterministically() {
        let mut report = LintReport {
            files_scanned: 1,
            manifests_scanned: 1,
            suppressed: 3,
            arch_digest: "00deadbeef00cafe".into(),
            rule_counts: vec![RuleCount { rule: "arch".into(), findings: 0, suppressed: 0 }],
            unsafe_inventory: vec![UnsafeSite {
                file: "crates/telemetry/src/trace.rs".into(),
                line: 244,
                kind: "block".into(),
            }],
            findings: vec![finding("x.rs", 2, 5, "lock-discipline")],
            ..LintReport::default()
        };
        report.sort();
        let a = json::to_string_pretty(&report);
        let b = json::to_string_pretty(&report);
        assert_eq!(a, b);
        let back: LintReport = json::from_str(&a).expect("roundtrip");
        assert_eq!(back, report);
    }

    #[test]
    fn arch_baseline_roundtrips() {
        let base = ArchBaseline {
            schema: "acctrade-arch/v1".into(),
            crates: vec![ArchCrate {
                package: "acctrade-net".into(),
                lib_name: "acctrade_net".into(),
                deps: vec!["acctrade-foundation".into(), "acctrade-telemetry".into()],
                dev_deps: vec![],
            }],
        };
        let s = json::to_string_pretty(&base);
        let back: ArchBaseline = json::from_str(&s).expect("roundtrip");
        assert_eq!(back, base);
    }
}
