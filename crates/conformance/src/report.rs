//! The analyzer's output model: [`Finding`]s collected into a
//! [`LintReport`], serialized through `foundation::json::JsonCodec`
//! into the machine-diffable `LINT_report.json`.
//!
//! Determinism contract (the report is itself gated by CI's double-run
//! `cmp`): findings are sorted by `(file, line, col, rule)`, paths are
//! workspace-relative with forward slashes, and nothing time- or
//! environment-dependent is recorded.

use foundation::json_codec_struct;
use std::fmt;

/// One rule violation at a source location.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Rule slug (`zero-dep`, `determinism`, `panic-policy`,
    /// `lock-discipline`).
    pub rule: String,
    /// Workspace-relative path, `/`-separated on every platform.
    pub file: String,
    /// 1-based line.
    pub line: u64,
    /// 1-based byte column.
    pub col: u64,
    /// What was matched and why it is forbidden here.
    pub message: String,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}:{}: [{}] {}",
            self.file, self.line, self.col, self.rule, self.message
        )
    }
}

/// The full deterministic lint report.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct LintReport {
    /// Number of `.rs` files scanned.
    pub files_scanned: u64,
    /// Number of `Cargo.toml` manifests scanned.
    pub manifests_scanned: u64,
    /// Findings silenced by `// conformance: allow(<rule>)` annotations.
    pub suppressed: u64,
    /// Unallowed findings, sorted by `(file, line, col, rule)`.
    pub findings: Vec<Finding>,
}

impl LintReport {
    /// Canonical ordering — applied before serialization so equal scans
    /// always render byte-identically.
    pub fn sort(&mut self) {
        self.findings.sort_by(|a, b| {
            (&a.file, a.line, a.col, &a.rule).cmp(&(&b.file, b.line, b.col, &b.rule))
        });
    }

    /// Does the tree pass (no unallowed findings)?
    pub fn clean(&self) -> bool {
        self.findings.is_empty()
    }
}

json_codec_struct! {
    Finding { rule, file, line, col, message }
    LintReport { files_scanned, manifests_scanned, suppressed, findings }
}

#[cfg(test)]
mod tests {
    use super::*;
    use foundation::json;

    fn finding(file: &str, line: u64, col: u64, rule: &str) -> Finding {
        Finding {
            rule: rule.into(),
            file: file.into(),
            line,
            col,
            message: format!("{rule} violated"),
        }
    }

    #[test]
    fn sort_orders_by_file_line_col_rule() {
        let mut report = LintReport {
            files_scanned: 2,
            manifests_scanned: 1,
            suppressed: 0,
            findings: vec![
                finding("b.rs", 1, 1, "determinism"),
                finding("a.rs", 9, 2, "panic-policy"),
                finding("a.rs", 9, 2, "determinism"),
                finding("a.rs", 3, 7, "panic-policy"),
            ],
        };
        report.sort();
        let order: Vec<(String, u64, String)> = report
            .findings
            .iter()
            .map(|f| (f.file.clone(), f.line, f.rule.clone()))
            .collect();
        assert_eq!(
            order,
            vec![
                ("a.rs".into(), 3, "panic-policy".into()),
                ("a.rs".into(), 9, "determinism".into()),
                ("a.rs".into(), 9, "panic-policy".into()),
                ("b.rs".into(), 1, "determinism".into()),
            ]
        );
    }

    #[test]
    fn report_renders_deterministically() {
        let mut report = LintReport {
            files_scanned: 1,
            manifests_scanned: 1,
            suppressed: 3,
            findings: vec![finding("x.rs", 2, 5, "lock-discipline")],
        };
        report.sort();
        let a = json::to_string_pretty(&report);
        let b = json::to_string_pretty(&report);
        assert_eq!(a, b);
        let back: LintReport = json::from_str(&a).expect("roundtrip");
        assert_eq!(back, report);
    }
}
