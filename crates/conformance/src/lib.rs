//! # acctrade-conformance
//!
//! The workspace's in-tree static conformance analyzer. The repo's
//! scientific claim is determinism — byte-identical datasets, telemetry
//! manifests, and WAL artifacts from a seed — and this crate enforces
//! the source-level invariants that claim rests on, the way sanitizers
//! guard a training stack:
//!
//! * [`lexer`] — a self-contained Rust token scanner (raw strings,
//!   nested block comments, lifetime-vs-char disambiguation; no `syn`);
//! * [`workspace`] — deterministic discovery of every `.rs` file and
//!   `Cargo.toml` in the tree;
//! * [`resolve`] — the structural resolver: module trees, `use`/path
//!   graphs, module-level `pub` items, and per-file policy pragmas
//!   recovered from the token stream;
//! * [`manifest`] — rule `zero-dep` over manifests;
//! * [`rules`] — per-file rules (`determinism`, `panic-policy`,
//!   `lock-discipline`, `unsafe-audit`, `atomics-ordering`,
//!   `blocking-call`) with `#[cfg(test)]`-region tracking and
//!   `// conformance: allow(<rule>)` annotations, plus
//!   `stale-suppression` over the annotations themselves;
//! * [`arch`] — the cross-file pass: the crate dependency DAG checked
//!   against the committed `ARCH_baseline.json` (cycles, undeclared
//!   edges, canonical formatting), source-level edge consistency,
//!   module-tree orphans, and `pub-hygiene` dead exports;
//! * [`report`] — the sorted, `JsonCodec`-backed [`report::LintReport`]
//!   (schema `acctrade-lint/v2`: per-rule counts, the workspace unsafe
//!   inventory, the architecture digest) written to `LINT_report.json`,
//!   byte-identical across runs.
//!
//! The dynamic complement lives in `foundation::sync`: a debug-build
//! lock-order registry that panics on acquisition-order cycles (see
//! DESIGN.md §2.3). Run the analyzer with
//! `cargo run -p acctrade-conformance`; CI gates on a clean tree and on
//! report determinism (two runs, `cmp`).

#![warn(missing_docs)]

pub mod arch;
pub mod lexer;
pub mod manifest;
pub mod report;
pub mod resolve;
pub mod rules;
pub mod workspace;

use report::{LintReport, RuleCount};
use std::fmt;
use std::path::Path;

/// Analyzer failure (I/O or discovery), distinct from lint findings.
#[derive(Debug)]
pub struct Error {
    /// Human-readable description, including the path involved.
    pub msg: String,
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "conformance: {}", self.msg)
    }
}

impl std::error::Error for Error {}

/// Run the full conformance pass over the workspace rooted at `root`.
///
/// Every `.rs` file is lexed and structurally resolved (totality
/// exercise for scanner and resolver); per-file rules apply per the
/// role matrix in [`rules`], then the architecture pass checks the
/// whole workspace against `ARCH_baseline.json`. The returned report
/// is sorted and ready to serialize.
pub fn run(root: &Path) -> Result<LintReport, Error> {
    let ws = workspace::discover(root)
        .map_err(|e| Error { msg: format!("discovering {}: {e}", root.display()) })?;

    let mut report = LintReport::default();

    // Per-file pass: scan every source, remembering `#[cfg(test)]
    // mod x;` out-of-line declarations so the files they point at are
    // exempt from every rule (they are test code in their entirety).
    let mut analyses: Vec<rules::FileAnalysis> = Vec::new();
    let mut test_module_files: Vec<String> = Vec::new();
    for file in &ws.sources {
        let text = std::fs::read_to_string(ws.abs(&file.rel))
            .map_err(|e| Error { msg: format!("reading {}: {e}", file.rel) })?;
        let analysis = rules::analyze_file(file, &text);
        for module in &analysis.test_modules {
            let dir = match file.rel.rsplit_once('/') {
                Some((dir, _)) => dir,
                None => "",
            };
            test_module_files.push(format!("{dir}/{module}.rs"));
            test_module_files.push(format!("{dir}/{module}/mod.rs"));
        }
        analyses.push(analysis);
        report.files_scanned += 1;
    }

    // Manifest pass: `zero-dep` findings plus the parsed facts the
    // architecture pass builds its DAG from.
    let mut manifests: Vec<arch::ManifestInfo> = Vec::new();
    for rel in &ws.manifests {
        let text = std::fs::read_to_string(ws.abs(rel))
            .map_err(|e| Error { msg: format!("reading {rel}: {e}") })?;
        report.findings.extend(manifest::check(rel, &text));
        manifests.push(arch::parse_manifest(rel, &text));
        report.manifests_scanned += 1;
    }

    // Architecture pass over every non-test-module file (a whole-file
    // test module is invisible to layering the same way a `#[cfg(test)]`
    // region is).
    let arch_sources: Vec<arch::ArchSource<'_>> = ws
        .sources
        .iter()
        .zip(analyses.iter())
        .filter(|(file, _)| !test_module_files.contains(&file.rel))
        .map(|(file, analysis)| arch::ArchSource { file, analysis })
        .collect();
    let baseline_text = std::fs::read_to_string(ws.abs(arch::BASELINE_PATH)).ok();
    let baseline = baseline_text
        .as_deref()
        .and_then(|t| foundation::json::from_str::<report::ArchBaseline>(t).ok());
    let outcome =
        arch::check(&manifests, &arch_sources, baseline.as_ref(), baseline_text.as_deref());
    report.arch_digest = outcome.digest.clone();
    report.unsafe_inventory = arch::unsafe_inventory(&arch_sources);
    report.findings.extend(outcome.findings);

    // Assemble per-file results. Stale-suppression runs last: only now
    // have all passes (per-file and cross-file) marked consumption.
    let mut per_rule_suppressed: Vec<(String, u64)> = outcome.suppressed;
    for (file, analysis) in ws.sources.iter().zip(analyses.iter()) {
        if test_module_files.contains(&file.rel) {
            continue; // the whole file is a #[cfg(test)] module
        }
        report.findings.extend(analysis.findings.iter().cloned());
        report.findings.extend(analysis.stale_suppressions(file));
        for (rule, n) in &analysis.suppressed {
            match per_rule_suppressed.iter_mut().find(|(r, _)| r == rule) {
                Some((_, total)) => *total += n,
                None => per_rule_suppressed.push((rule.clone(), *n)),
            }
        }
    }
    report.suppressed = per_rule_suppressed.iter().map(|(_, n)| n).sum();

    // Per-rule tallies, every known rule present (zeros included).
    report.rule_counts = rules::KNOWN_RULES
        .iter()
        .map(|rule| RuleCount {
            rule: rule.to_string(),
            findings: report.findings.iter().filter(|f| f.rule == *rule).count() as u64,
            suppressed: per_rule_suppressed
                .iter()
                .find(|(r, _)| r == rule)
                .map(|(_, n)| *n)
                .unwrap_or(0),
        })
        .collect();

    report.sort();
    Ok(report)
}

/// Regenerate `ARCH_baseline.json` from the workspace's manifests and
/// write it at the root in canonical form. Returns the rendered text.
pub fn write_arch_baseline(root: &Path) -> Result<String, Error> {
    let ws = workspace::discover(root)
        .map_err(|e| Error { msg: format!("discovering {}: {e}", root.display()) })?;
    let mut manifests = Vec::new();
    for rel in &ws.manifests {
        let text = std::fs::read_to_string(ws.abs(rel))
            .map_err(|e| Error { msg: format!("reading {rel}: {e}") })?;
        manifests.push(arch::parse_manifest(rel, &text));
    }
    let rendered = arch::render_baseline(&arch::current_graph(&manifests));
    let path = ws.abs(arch::BASELINE_PATH);
    std::fs::write(&path, &rendered)
        .map_err(|e| Error { msg: format!("writing {}: {e}", path.display()) })?;
    Ok(rendered)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    fn repo_root() -> PathBuf {
        Path::new(env!("CARGO_MANIFEST_DIR")).join("../..").canonicalize().expect("repo root")
    }

    #[test]
    fn full_pass_over_this_workspace_is_deterministic() {
        let a = run(&repo_root()).expect("first pass");
        let b = run(&repo_root()).expect("second pass");
        assert_eq!(a, b, "two scans of the same tree must agree exactly");
        assert_eq!(
            foundation::json::to_string_pretty(&a),
            foundation::json::to_string_pretty(&b)
        );
        assert!(a.files_scanned > 100, "the whole tree is scanned");
        assert!(a.manifests_scanned >= 12, "every crate manifest is scanned");
    }

    #[test]
    fn this_tree_is_conformance_clean() {
        let report = run(&repo_root()).expect("pass");
        let rendered: Vec<String> =
            report.findings.iter().map(|f| f.to_string()).collect();
        assert!(
            report.clean(),
            "the tree must lint clean; findings:\n{}",
            rendered.join("\n")
        );
    }

    #[test]
    fn v2_report_carries_arch_digest_and_rule_counts() {
        let report = run(&repo_root()).expect("pass");
        assert_eq!(report.schema, report::LINT_SCHEMA);
        assert_eq!(report.arch_digest.len(), 16, "16-hex-digit FNV digest");
        let rules: Vec<&str> = report.rule_counts.iter().map(|c| c.rule.as_str()).collect();
        let mut expected: Vec<&str> = rules::KNOWN_RULES.to_vec();
        expected.sort_unstable();
        assert_eq!(rules, expected, "every known rule is tallied, zeros included");
        assert!(
            report.unsafe_inventory.iter().any(|s| s.file == "crates/telemetry/src/trace.rs"),
            "the trace ring's unsafe sites are inventoried: {:?}",
            report.unsafe_inventory
        );
        assert!(
            report.unsafe_inventory.iter().any(|s| s.file == "crates/foundation/src/json.rs"),
            "the json scanner's unsafe site is inventoried"
        );
    }
}
