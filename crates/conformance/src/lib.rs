//! # acctrade-conformance
//!
//! The workspace's in-tree static conformance analyzer. The repo's
//! scientific claim is determinism — byte-identical datasets, telemetry
//! manifests, and WAL artifacts from a seed — and this crate enforces
//! the source-level invariants that claim rests on, the way sanitizers
//! guard a training stack:
//!
//! * [`lexer`] — a self-contained Rust token scanner (raw strings,
//!   nested block comments, lifetime-vs-char disambiguation; no `syn`);
//! * [`workspace`] — deterministic discovery of every `.rs` file and
//!   `Cargo.toml` in the tree;
//! * [`manifest`] — rule `zero-dep` over manifests;
//! * [`rules`] — rules `determinism`, `panic-policy`, and
//!   `lock-discipline` over lexed sources, with `#[cfg(test)]`-region
//!   tracking and `// conformance: allow(<rule>)` annotations;
//! * [`report`] — the sorted, `JsonCodec`-backed [`report::LintReport`]
//!   written to `LINT_report.json`, byte-identical across runs.
//!
//! The dynamic complement lives in `foundation::sync`: a debug-build
//! lock-order registry that panics on acquisition-order cycles (see
//! DESIGN.md §2.3). Run the analyzer with
//! `cargo run -p acctrade-conformance`; CI gates on a clean tree and on
//! report determinism (two runs, `cmp`).

#![warn(missing_docs)]

pub mod lexer;
pub mod manifest;
pub mod report;
pub mod rules;
pub mod workspace;

use report::LintReport;
use std::fmt;
use std::path::Path;

/// Analyzer failure (I/O or discovery), distinct from lint findings.
#[derive(Debug)]
pub struct Error {
    /// Human-readable description, including the path involved.
    pub msg: String,
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "conformance: {}", self.msg)
    }
}

impl std::error::Error for Error {}

/// Run the full conformance pass over the workspace rooted at `root`.
///
/// Every `.rs` file is lexed (totality exercise for the scanner);
/// rules apply per the role matrix in [`rules`]. The returned report
/// is sorted and ready to serialize.
pub fn run(root: &Path) -> Result<LintReport, Error> {
    let ws = workspace::discover(root)
        .map_err(|e| Error { msg: format!("discovering {}: {e}", root.display()) })?;

    let mut report = LintReport::default();

    // First pass: scan every source, remembering `#[cfg(test)] mod x;`
    // out-of-line declarations so the files they point at are exempt.
    let mut scans = Vec::new();
    let mut test_module_files: Vec<String> = Vec::new();
    for file in &ws.sources {
        let text = std::fs::read_to_string(ws.abs(&file.rel))
            .map_err(|e| Error { msg: format!("reading {}: {e}", file.rel) })?;
        let scan = rules::scan_file(file, &text);
        for module in &scan.test_modules {
            let dir = match file.rel.rsplit_once('/') {
                Some((dir, _)) => dir,
                None => "",
            };
            test_module_files.push(format!("{dir}/{module}.rs"));
            test_module_files.push(format!("{dir}/{module}/mod.rs"));
        }
        scans.push((file.rel.clone(), scan));
        report.files_scanned += 1;
    }

    for (rel, scan) in scans {
        if test_module_files.contains(&rel) {
            continue; // the whole file is a #[cfg(test)] module
        }
        report.suppressed += scan.suppressed;
        report.findings.extend(scan.findings);
    }

    for rel in &ws.manifests {
        let text = std::fs::read_to_string(ws.abs(rel))
            .map_err(|e| Error { msg: format!("reading {rel}: {e}") })?;
        report.findings.extend(manifest::check(rel, &text));
        report.manifests_scanned += 1;
    }

    report.sort();
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    fn repo_root() -> PathBuf {
        Path::new(env!("CARGO_MANIFEST_DIR")).join("../..").canonicalize().expect("repo root")
    }

    #[test]
    fn full_pass_over_this_workspace_is_deterministic() {
        let a = run(&repo_root()).expect("first pass");
        let b = run(&repo_root()).expect("second pass");
        assert_eq!(a, b, "two scans of the same tree must agree exactly");
        assert_eq!(
            foundation::json::to_string_pretty(&a),
            foundation::json::to_string_pretty(&b)
        );
        assert!(a.files_scanned > 100, "the whole tree is scanned");
        assert!(a.manifests_scanned >= 12, "every crate manifest is scanned");
    }

    #[test]
    fn this_tree_is_conformance_clean() {
        let report = run(&repo_root()).expect("pass");
        let rendered: Vec<String> =
            report.findings.iter().map(|f| f.to_string()).collect();
        assert!(
            report.clean(),
            "the tree must lint clean; findings:\n{}",
            rendered.join("\n")
        );
    }
}
