//! A self-contained Rust token scanner — the lexical substrate of the
//! conformance rules, replacing `syn`/`proc-macro2`.
//!
//! The scanner is deliberately a *lexer*, not a parser: the rules only
//! need to know which bytes are code and which are comments, strings,
//! or char literals, plus identifier and punctuation boundaries. It
//! handles the Rust surface that defeats naive regex linting:
//!
//! * raw strings `r"…"`, `r#"…"#`, … with any number of `#` guards
//!   (and their byte-string cousins `b"…"`, `br#"…"#`);
//! * nested block comments `/* /* */ */`;
//! * `'a` lifetimes vs `'a'` char literals (including `'\''` and
//!   `'\u{1F600}'` escape forms);
//! * raw identifiers `r#type`;
//! * `//` and `/*` sequences inside string literals, which are text,
//!   not comments.
//!
//! Totality contract, enforced by a `prop_check!` property: scanning
//! any `&str` never panics, and the produced token spans exactly tile
//! the input (`tokens[0].start == 0`, each token starts where the
//! previous ended, the last ends at `input.len()`), so no byte ever
//! escapes classification. Malformed input (unterminated strings or
//! comments) degrades to a token that runs to end-of-input.

/// Lexical class of a [`Token`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokenKind {
    /// Runs of whitespace.
    Whitespace,
    /// `// …` to end of line (newline excluded).
    LineComment,
    /// `/* … */`, nesting-aware; unterminated runs to EOF.
    BlockComment,
    /// `"…"` or `b"…"`, escape-aware; unterminated runs to EOF.
    Str,
    /// `r"…"` / `r#"…"#` / `br#"…"#`; unterminated runs to EOF.
    RawStr,
    /// `'x'`, `'\n'`, `b'x'`, `'\u{…}'`.
    Char,
    /// `'ident` (no closing quote).
    Lifetime,
    /// Identifiers and keywords, including raw `r#ident` forms.
    Ident,
    /// Numeric literals (integers, floats, radix prefixes, suffixes).
    Num,
    /// A single punctuation or operator character.
    Punct,
    /// Anything unclassifiable (e.g. a lone `'` at EOF).
    Unknown,
}

/// One lexed token: a kind plus the `[start, end)` byte span it covers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Token {
    /// Lexical class.
    pub kind: TokenKind,
    /// Byte offset of the first byte, inclusive.
    pub start: usize,
    /// Byte offset one past the last byte, exclusive.
    pub end: usize,
}

impl Token {
    /// The token's text within its source.
    pub fn text<'a>(&self, source: &'a str) -> &'a str {
        source.get(self.start..self.end).unwrap_or("")
    }
}

/// Cursor over the source with char-boundary-safe advancement.
struct Cursor<'a> {
    src: &'a str,
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn peek(&self) -> Option<char> {
        self.src[self.pos..].chars().next()
    }

    fn peek_at(&self, n: usize) -> Option<char> {
        self.src[self.pos..].chars().nth(n)
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.peek()?;
        self.pos += c.len_utf8();
        Some(c)
    }

    fn eat(&mut self, c: char) -> bool {
        if self.peek() == Some(c) {
            self.pos += c.len_utf8();
            true
        } else {
            false
        }
    }

    fn eat_while(&mut self, pred: impl Fn(char) -> bool) {
        while let Some(c) = self.peek() {
            if !pred(c) {
                break;
            }
            self.pos += c.len_utf8();
        }
    }
}

fn is_ident_start(c: char) -> bool {
    c == '_' || c.is_alphabetic()
}

fn is_ident_continue(c: char) -> bool {
    c == '_' || c.is_alphanumeric()
}

/// Tokenize `source` completely. Total: never panics, and the returned
/// spans tile `0..source.len()` exactly.
pub fn tokenize(source: &str) -> Vec<Token> {
    let mut cursor = Cursor { src: source, pos: 0 };
    let mut tokens = Vec::new();
    while cursor.pos < source.len() {
        let start = cursor.pos;
        let kind = next_kind(&mut cursor);
        // Totality guard: every token consumes at least one byte.
        if cursor.pos == start {
            cursor.bump();
        }
        tokens.push(Token { kind, start, end: cursor.pos });
    }
    tokens
}

fn next_kind(c: &mut Cursor<'_>) -> TokenKind {
    let Some(first) = c.peek() else {
        return TokenKind::Unknown;
    };

    if first.is_whitespace() {
        c.eat_while(char::is_whitespace);
        return TokenKind::Whitespace;
    }

    if first == '/' {
        match c.peek_at(1) {
            Some('/') => {
                c.eat_while(|ch| ch != '\n');
                return TokenKind::LineComment;
            }
            Some('*') => {
                c.bump();
                c.bump();
                return block_comment(c);
            }
            _ => {
                c.bump();
                return TokenKind::Punct;
            }
        }
    }

    // Raw strings / raw identifiers: r"…", r#"…"#, r#ident.
    if first == 'r' {
        match c.peek_at(1) {
            Some('"') => {
                c.bump();
                return raw_string(c);
            }
            Some('#') => {
                // Distinguish r#"…"# (raw string) from r#ident.
                if let Some(kind) = raw_hash_form(c) {
                    return kind;
                }
            }
            _ => {}
        }
    }

    // Byte strings: b"…", b'…', br"…", br#"…"#.
    if first == 'b' {
        match c.peek_at(1) {
            Some('"') => {
                c.bump();
                c.bump();
                return string_body(c);
            }
            Some('\'') => {
                c.bump();
                c.bump();
                return char_body(c);
            }
            Some('r') if matches!(c.peek_at(2), Some('"') | Some('#')) => {
                c.bump(); // the `b`; cursor now at `r`, shared raw paths apply
                if c.peek_at(1) == Some('"') {
                    c.bump();
                    return raw_string(c);
                }
                if let Some(kind) = raw_hash_form(c) {
                    return kind;
                }
                c.eat_while(is_ident_continue);
                return TokenKind::Ident;
            }
            _ => {}
        }
    }

    if is_ident_start(first) {
        c.eat_while(is_ident_continue);
        return TokenKind::Ident;
    }

    if first.is_ascii_digit() {
        return number(c);
    }

    if first == '"' {
        c.bump();
        return string_body(c);
    }

    if first == '\'' {
        c.bump();
        return quote_form(c);
    }

    c.bump();
    TokenKind::Punct
}

/// After consuming `/*`: scan a nesting-aware block comment.
fn block_comment(c: &mut Cursor<'_>) -> TokenKind {
    let mut depth = 1usize;
    while depth > 0 {
        match c.bump() {
            None => break, // unterminated: token runs to EOF
            Some('/') if c.peek() == Some('*') => {
                c.bump();
                depth += 1;
            }
            Some('*') if c.peek() == Some('/') => {
                c.bump();
                depth -= 1;
            }
            Some(_) => {}
        }
    }
    TokenKind::BlockComment
}

/// At `r` (or after `br`'s `b`) with `"` next: `r"…"` raw string.
fn raw_string(c: &mut Cursor<'_>) -> TokenKind {
    c.bump(); // the quote (caller consumed `r`)
    raw_string_body(c, 0)
}

/// At `r` with `#` next: either `r#ident` or `r#…#"…"#…#`. Consumes the
/// whole token and returns its kind, or `None` when it is just the
/// identifier `r` followed by punctuation (caller falls through).
fn raw_hash_form(c: &mut Cursor<'_>) -> Option<TokenKind> {
    // Count the guard hashes without consuming yet (cursor is at `r`).
    let mut hashes = 0usize;
    while c.peek_at(1 + hashes) == Some('#') {
        hashes += 1;
    }
    match c.peek_at(1 + hashes) {
        Some('"') => {
            c.bump(); // r
            for _ in 0..hashes {
                c.bump(); // the guard #s
            }
            c.bump(); // the opening quote
            Some(raw_string_body(c, hashes))
        }
        Some(ch) if hashes == 1 && is_ident_start(ch) => {
            c.bump(); // r
            c.bump(); // #
            c.eat_while(is_ident_continue);
            Some(TokenKind::Ident)
        }
        _ => None,
    }
}

/// After the opening quote of a raw string with `guards` hashes: scan
/// until `"` followed by that many `#`s.
fn raw_string_body(c: &mut Cursor<'_>, guards: usize) -> TokenKind {
    loop {
        match c.bump() {
            None => return TokenKind::RawStr, // unterminated
            Some('"') => {
                let mut seen = 0usize;
                while seen < guards && c.peek() == Some('#') {
                    c.bump();
                    seen += 1;
                }
                if seen == guards {
                    return TokenKind::RawStr;
                }
            }
            Some(_) => {}
        }
    }
}

/// After an opening `"`: escape-aware string body.
fn string_body(c: &mut Cursor<'_>) -> TokenKind {
    loop {
        match c.bump() {
            None => return TokenKind::Str, // unterminated
            Some('\\') => {
                c.bump(); // the escaped char, whatever it is
            }
            Some('"') => return TokenKind::Str,
            Some(_) => {}
        }
    }
}

/// After an opening `'`: lifetime vs char literal disambiguation.
///
/// * `'\…'` — char with escape;
/// * `'x'` — char;
/// * `'ident` not followed by `'` — lifetime (`'a`, `'static`);
/// * `'x` where `x` is not ident-start — char body (possibly
///   malformed; consumed through the closing quote when present).
fn quote_form(c: &mut Cursor<'_>) -> TokenKind {
    match c.peek() {
        None => TokenKind::Unknown,
        Some('\\') => {
            c.bump();
            c.bump(); // escaped char
            char_tail(c)
        }
        Some(ch) if is_ident_start(ch) => {
            // `'a'` is a char; `'a` / `'abc` is a lifetime.
            if c.peek_at(1) == Some('\'') {
                c.bump();
                c.bump();
                TokenKind::Char
            } else {
                c.eat_while(is_ident_continue);
                TokenKind::Lifetime
            }
        }
        Some('\'') => {
            // `''` — empty (malformed) char literal.
            c.bump();
            TokenKind::Char
        }
        Some(_) => {
            c.bump();
            char_tail(c)
        }
    }
}

/// After `b'`: byte-char body.
fn char_body(c: &mut Cursor<'_>) -> TokenKind {
    c.eat('\\'); // an escape prefix just means one extra byte to skip
    c.bump();
    char_tail(c)
}

/// Consume through a closing `'`, tolerating `\u{…}`-style multi-char
/// bodies; give up (still a Char token) at newline or EOF so malformed
/// input cannot swallow the rest of the file.
fn char_tail(c: &mut Cursor<'_>) -> TokenKind {
    loop {
        match c.peek() {
            None | Some('\n') => return TokenKind::Char,
            Some('\'') => {
                c.bump();
                return TokenKind::Char;
            }
            Some(_) => {
                c.bump();
            }
        }
    }
}

/// At a digit: numeric literal (radix prefixes, `_` separators, float
/// forms, type suffixes). Careful not to consume `..` range operators.
fn number(c: &mut Cursor<'_>) -> TokenKind {
    c.eat_while(|ch| ch.is_ascii_alphanumeric() || ch == '_');
    // Fraction: `.` followed by a digit (so `0..10` and `1.max(2)` stay
    // separate tokens).
    if c.peek() == Some('.') && c.peek_at(1).is_some_and(|d| d.is_ascii_digit()) {
        c.bump();
        c.eat_while(|ch| ch.is_ascii_alphanumeric() || ch == '_');
    }
    // Signed exponent: `1e-9` (the unsigned form was consumed above).
    if c.src[..c.pos].ends_with(['e', 'E'])
        && matches!(c.peek(), Some('+') | Some('-'))
        && c.peek_at(1).is_some_and(|d| d.is_ascii_digit())
    {
        c.bump();
        c.eat_while(|ch| ch.is_ascii_alphanumeric() || ch == '_');
    }
    TokenKind::Num
}

/// Byte offsets of each line start; lines are 1-based in findings.
#[derive(Debug)]
pub struct LineIndex {
    starts: Vec<usize>,
}

impl LineIndex {
    /// Index `source`'s newlines.
    pub fn new(source: &str) -> LineIndex {
        let mut starts = vec![0];
        for (i, b) in source.bytes().enumerate() {
            if b == b'\n' {
                starts.push(i + 1);
            }
        }
        LineIndex { starts }
    }

    /// 1-based (line, column) of a byte offset. Columns count bytes.
    pub fn position(&self, offset: usize) -> (usize, usize) {
        let line = match self.starts.binary_search(&offset) {
            Ok(i) => i,
            Err(i) => i.saturating_sub(1),
        };
        let col = offset - self.starts.get(line).copied().unwrap_or(0);
        (line + 1, col + 1)
    }

    /// 1-based line of a byte offset.
    pub fn line(&self, offset: usize) -> usize {
        self.position(offset).0
    }

    /// Byte offset where a 1-based line starts (saturating: lines past
    /// the end map to the last line start).
    pub fn offset_of_line(&self, line: usize) -> usize {
        let i = line.saturating_sub(1).min(self.starts.len().saturating_sub(1));
        self.starts.get(i).copied().unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<(TokenKind, &str)> {
        tokenize(src)
            .into_iter()
            .filter(|t| t.kind != TokenKind::Whitespace)
            .map(|t| (t.kind, t.text(src)))
            .collect()
    }

    fn assert_tiles(src: &str) {
        let tokens = tokenize(src);
        let mut pos = 0;
        for t in &tokens {
            assert_eq!(t.start, pos, "gap before {t:?} in {src:?}");
            assert!(t.end > t.start, "empty token {t:?} in {src:?}");
            pos = t.end;
        }
        assert_eq!(pos, src.len(), "tail not covered in {src:?}");
    }

    #[test]
    fn raw_strings_with_guards() {
        let src = r####"let s = r#"quoted " inside"# ;"####;
        let k = kinds(src);
        assert!(k.contains(&(TokenKind::RawStr, r###"r#"quoted " inside"#"###)));
        assert_tiles(src);

        let src2 = "r\"plain\" r##\"two # guards\"##";
        let k2 = kinds(src2);
        assert_eq!(k2[0].0, TokenKind::RawStr);
        assert_eq!(k2[1].0, TokenKind::RawStr);
        assert_tiles(src2);
    }

    #[test]
    fn raw_identifiers() {
        let k = kinds("let r#type = r#match;");
        assert!(k.contains(&(TokenKind::Ident, "r#type")));
        assert!(k.contains(&(TokenKind::Ident, "r#match")));
    }

    #[test]
    fn nested_block_comments() {
        let src = "a /* outer /* inner */ still comment */ b";
        let k = kinds(src);
        assert_eq!(k[0], (TokenKind::Ident, "a"));
        assert_eq!(k[1].0, TokenKind::BlockComment);
        assert_eq!(k[1].1, "/* outer /* inner */ still comment */");
        assert_eq!(k[2], (TokenKind::Ident, "b"));
        assert_tiles(src);
    }

    #[test]
    fn unterminated_forms_run_to_eof() {
        for src in ["/* never closed", "\"never closed", "r#\"never closed\"", "'"] {
            let tokens = tokenize(src);
            assert_tiles(src);
            assert_eq!(tokens.last().map(|t| t.end), Some(src.len()));
        }
    }

    #[test]
    fn lifetime_vs_char() {
        let src = "fn f<'a>(x: &'a str) { let c = 'a'; let n = '\\n'; let q = '\\''; }";
        let k = kinds(src);
        let lifetimes: Vec<_> = k.iter().filter(|(kind, _)| *kind == TokenKind::Lifetime).collect();
        let chars: Vec<_> = k.iter().filter(|(kind, _)| *kind == TokenKind::Char).collect();
        assert_eq!(lifetimes.len(), 2, "{k:?}");
        assert!(lifetimes.iter().all(|(_, t)| *t == "'a"));
        assert_eq!(chars.len(), 3, "{k:?}");
        assert!(chars.contains(&&(TokenKind::Char, "'a'")));
        assert!(chars.contains(&&(TokenKind::Char, "'\\n'")));
        assert!(chars.contains(&&(TokenKind::Char, "'\\''")));
        assert_tiles(src);
    }

    #[test]
    fn static_lifetime_and_unicode_escape() {
        let src = "&'static str; let c = '\\u{1F600}';";
        let k = kinds(src);
        assert!(k.contains(&(TokenKind::Lifetime, "'static")));
        assert!(k.contains(&(TokenKind::Char, "'\\u{1F600}'")));
        assert_tiles(src);
    }

    #[test]
    fn comment_markers_inside_strings_are_text() {
        let src = r#"let url = "https://example.com/*notacomment*/"; x();"#;
        let k = kinds(src);
        assert!(k.iter().all(|(kind, _)| *kind != TokenKind::LineComment));
        assert!(k.iter().all(|(kind, _)| *kind != TokenKind::BlockComment));
        assert!(k.contains(&(TokenKind::Ident, "x")));
        assert_tiles(src);
    }

    #[test]
    fn byte_strings_and_byte_chars() {
        let src = "b\"bytes\" b'x' br#\"raw bytes\"#";
        let k = kinds(src);
        assert_eq!(k[0].0, TokenKind::Str);
        assert_eq!(k[1].0, TokenKind::Char);
        assert_eq!(k[2].0, TokenKind::RawStr);
        assert_tiles(src);
    }

    #[test]
    fn numbers_do_not_eat_ranges_or_methods() {
        let src = "0..10; 1.5e-3; 0xFF_u8; 1.max(2)";
        let k = kinds(src);
        assert!(k.contains(&(TokenKind::Num, "0")));
        assert!(k.contains(&(TokenKind::Num, "10")));
        assert!(k.contains(&(TokenKind::Num, "1.5e-3")));
        assert!(k.contains(&(TokenKind::Num, "0xFF_u8")));
        assert!(k.contains(&(TokenKind::Ident, "max")));
        assert_tiles(src);
    }

    #[test]
    fn line_index_positions() {
        let idx = LineIndex::new("ab\ncde\n\nf");
        assert_eq!(idx.position(0), (1, 1));
        assert_eq!(idx.position(3), (2, 1));
        assert_eq!(idx.position(5), (2, 3));
        assert_eq!(idx.position(7), (3, 1));
        assert_eq!(idx.position(8), (4, 1));
    }

    #[test]
    fn empty_and_whitespace_inputs() {
        assert!(tokenize("").is_empty());
        let t = tokenize("  \n\t ");
        assert_eq!(t.len(), 1);
        assert_eq!(t[0].kind, TokenKind::Whitespace);
    }
}
