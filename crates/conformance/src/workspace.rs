//! Deterministic workspace discovery: every `.rs` source and every
//! `Cargo.toml` manifest, classified by the role that decides which
//! rules apply to it.
//!
//! Directory entries are visited in sorted order, and paths are
//! emitted workspace-relative with `/` separators, so two scans of the
//! same tree always produce the same file list — the first link in the
//! report-determinism chain CI verifies with a double-run `cmp`.

use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// What kind of target a source file belongs to; rules scope by role.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Role {
    /// Library code under a crate's `src/` (or the root facade's).
    Lib,
    /// Binary code: `src/main.rs` or `src/bin/**`.
    Bin,
    /// Integration tests under `tests/`.
    Test,
    /// Bench targets under `benches/`.
    Bench,
    /// Examples under `examples/`.
    Example,
}

/// One discovered `.rs` file.
#[derive(Debug, Clone)]
pub struct SourceFile {
    /// Workspace-relative `/`-separated path.
    pub rel: String,
    /// The owning crate's directory name under `crates/`, or `None`
    /// for the root facade package.
    pub crate_name: Option<String>,
    /// Target role.
    pub role: Role,
}

/// The discovered workspace: sources, manifests, and the root they are
/// relative to.
#[derive(Debug)]
pub struct Workspace {
    /// Absolute workspace root.
    pub root: PathBuf,
    /// All `.rs` files, sorted by relative path.
    pub sources: Vec<SourceFile>,
    /// All `Cargo.toml` manifests, sorted by relative path.
    pub manifests: Vec<String>,
}

impl Workspace {
    /// Absolute path of a workspace-relative file.
    pub fn abs(&self, rel: &str) -> PathBuf {
        let mut p = self.root.clone();
        for part in rel.split('/') {
            p.push(part);
        }
        p
    }
}

/// Child entries of `dir`, sorted by file name for determinism.
fn sorted_entries(dir: &Path) -> io::Result<Vec<PathBuf>> {
    let mut entries: Vec<PathBuf> =
        fs::read_dir(dir)?.map(|e| e.map(|e| e.path())).collect::<io::Result<_>>()?;
    entries.sort();
    Ok(entries)
}

/// Recursively collect `.rs` files under `dir` into `out` as
/// `(prefix-relative path, is_under_bin)` pairs.
fn collect_rs(dir: &Path, prefix: &str, under_bin: bool, out: &mut Vec<(String, bool)>) -> io::Result<()> {
    if !dir.is_dir() {
        return Ok(());
    }
    for entry in sorted_entries(dir)? {
        let name = match entry.file_name().and_then(|n| n.to_str()) {
            Some(n) => n.to_string(),
            None => continue, // non-UTF-8 names cannot be workspace sources
        };
        let rel = if prefix.is_empty() { name.clone() } else { format!("{prefix}/{name}") };
        if entry.is_dir() {
            let bin = under_bin || name == "bin";
            collect_rs(&entry, &rel, bin, out)?;
        } else if name.ends_with(".rs") {
            out.push((rel, under_bin));
        }
    }
    Ok(())
}

/// Register one package directory (the root or a `crates/<name>` dir).
fn add_package(
    ws: &mut Workspace,
    pkg_dir: &Path,
    pkg_rel: &str,
    crate_name: Option<&str>,
) -> io::Result<()> {
    let join_rel = |tail: &str| {
        if pkg_rel.is_empty() {
            tail.to_string()
        } else {
            format!("{pkg_rel}/{tail}")
        }
    };

    let manifest = pkg_dir.join("Cargo.toml");
    if manifest.is_file() {
        ws.manifests.push(join_rel("Cargo.toml"));
    }

    let sections: [(&str, Role); 4] = [
        ("src", Role::Lib),
        ("tests", Role::Test),
        ("benches", Role::Bench),
        ("examples", Role::Example),
    ];
    for (sub, role) in sections {
        let mut files = Vec::new();
        collect_rs(&pkg_dir.join(sub), sub, false, &mut files)?;
        for (rel_in_pkg, under_bin) in files {
            let role = if role == Role::Lib
                && (under_bin || rel_in_pkg == "src/main.rs")
            {
                Role::Bin
            } else {
                role
            };
            ws.sources.push(SourceFile {
                rel: join_rel(&rel_in_pkg),
                crate_name: crate_name.map(str::to_string),
                role,
            });
        }
    }
    Ok(())
}

/// Discover the workspace rooted at `root` (must contain the top-level
/// `Cargo.toml` and the `crates/` directory).
pub fn discover(root: &Path) -> io::Result<Workspace> {
    if !root.join("Cargo.toml").is_file() {
        return Err(io::Error::new(
            io::ErrorKind::NotFound,
            "no Cargo.toml at the workspace root — wrong --root?",
        ));
    }
    let mut ws = Workspace {
        root: root.to_path_buf(),
        sources: Vec::new(),
        manifests: Vec::new(),
    };

    add_package(&mut ws, root, "", None)?;

    let crates_dir = root.join("crates");
    if crates_dir.is_dir() {
        for entry in sorted_entries(&crates_dir)? {
            if !entry.is_dir() {
                continue;
            }
            let Some(name) = entry.file_name().and_then(|n| n.to_str()).map(str::to_string)
            else {
                continue;
            };
            add_package(&mut ws, &entry, &format!("crates/{name}"), Some(&name))?;
        }
    }

    ws.sources.sort_by(|a, b| a.rel.cmp(&b.rel));
    ws.manifests.sort();
    Ok(ws)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn repo_root() -> PathBuf {
        // crates/conformance → workspace root is two levels up.
        Path::new(env!("CARGO_MANIFEST_DIR")).join("../..").canonicalize().expect("repo root")
    }

    #[test]
    fn discovers_this_workspace() {
        let ws = discover(&repo_root()).expect("discover");
        let rels: Vec<&str> = ws.sources.iter().map(|s| s.rel.as_str()).collect();
        assert!(rels.contains(&"src/lib.rs"));
        assert!(rels.contains(&"crates/foundation/src/sync.rs"));
        assert!(rels.contains(&"crates/conformance/src/lexer.rs"));
        assert!(ws.manifests.iter().any(|m| m == "Cargo.toml"));
        assert!(ws.manifests.iter().any(|m| m == "crates/conformance/Cargo.toml"));
    }

    #[test]
    fn roles_are_classified_by_location() {
        let ws = discover(&repo_root()).expect("discover");
        let role_of = |rel: &str| {
            ws.sources
                .iter()
                .find(|s| s.rel == rel)
                .map(|s| s.role)
                .unwrap_or_else(|| panic!("{rel} not discovered"))
        };
        assert_eq!(role_of("crates/net/src/client.rs"), Role::Lib);
        assert_eq!(role_of("crates/telemetry/src/bin/validate_manifest.rs"), Role::Bin);
        assert_eq!(role_of("crates/net/tests/concurrency.rs"), Role::Test);
        assert_eq!(role_of("tests/determinism.rs"), Role::Test);
        assert_eq!(role_of("examples/quickstart.rs"), Role::Example);
        let bench = ws
            .sources
            .iter()
            .find(|s| s.rel.starts_with("crates/bench/benches/"))
            .expect("bench targets discovered");
        assert_eq!(bench.role, Role::Bench);
    }

    #[test]
    fn discovery_is_deterministic() {
        let a = discover(&repo_root()).expect("first");
        let b = discover(&repo_root()).expect("second");
        let ra: Vec<&str> = a.sources.iter().map(|s| s.rel.as_str()).collect();
        let rb: Vec<&str> = b.sources.iter().map(|s| s.rel.as_str()).collect();
        assert_eq!(ra, rb);
        assert_eq!(a.manifests, b.manifests);
    }
}
