//! `acctrade-conformance` — lint the workspace for conformance
//! violations and emit the deterministic `LINT_report.json`.
//!
//! ```text
//! cargo run -p acctrade-conformance                  # lint ., report to target/LINT_report.json
//! cargo run -p acctrade-conformance -- --root DIR    # lint another tree
//! cargo run -p acctrade-conformance -- --out FILE    # report path override
//! cargo run -p acctrade-conformance -- --quiet       # no per-finding lines
//! cargo run -p acctrade-conformance -- --write-arch-baseline
//!                                                    # regenerate ARCH_baseline.json and exit
//! ```
//!
//! Exit codes: `0` clean, `1` findings, `2` usage or I/O error.

use std::path::PathBuf;
use std::process::ExitCode;

struct Args {
    root: PathBuf,
    out: Option<PathBuf>,
    quiet: bool,
    write_arch_baseline: bool,
}

fn parse_args() -> Result<Args, String> {
    let mut args =
        Args { root: PathBuf::from("."), out: None, quiet: false, write_arch_baseline: false };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--root" => {
                let v = it.next().ok_or("--root needs a path")?;
                args.root = PathBuf::from(v);
            }
            "--out" => {
                let v = it.next().ok_or("--out needs a path")?;
                args.out = Some(PathBuf::from(v));
            }
            "--quiet" => args.quiet = true,
            "--write-arch-baseline" => args.write_arch_baseline = true,
            "--help" | "-h" => {
                println!(
                    "usage: acctrade-conformance [--root DIR] [--out FILE] [--quiet] \
                     [--write-arch-baseline]"
                );
                std::process::exit(0);
            }
            other => return Err(format!("unknown argument `{other}`")),
        }
    }
    Ok(args)
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(args) => args,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::from(2);
        }
    };

    if args.write_arch_baseline {
        return match conformance::write_arch_baseline(&args.root) {
            Ok(_) => {
                eprintln!(
                    "conformance: wrote {} — review the diff and commit it",
                    args.root.join(conformance::arch::BASELINE_PATH).display()
                );
                ExitCode::SUCCESS
            }
            Err(err) => {
                eprintln!("{err}");
                ExitCode::from(2)
            }
        };
    }

    let report = match conformance::run(&args.root) {
        Ok(report) => report,
        Err(err) => {
            eprintln!("{err}");
            return ExitCode::from(2);
        }
    };

    let out = args.out.unwrap_or_else(|| args.root.join("target").join("LINT_report.json"));
    if let Some(parent) = out.parent() {
        if !parent.as_os_str().is_empty() {
            if let Err(err) = std::fs::create_dir_all(parent) {
                eprintln!("conformance: creating {}: {err}", parent.display());
                return ExitCode::from(2);
            }
        }
    }
    let rendered = foundation::json::to_string_pretty(&report) + "\n";
    if let Err(err) = std::fs::write(&out, rendered) {
        eprintln!("conformance: writing {}: {err}", out.display());
        return ExitCode::from(2);
    }

    if !args.quiet {
        for finding in &report.findings {
            eprintln!("{finding}");
        }
    }
    eprintln!(
        "conformance: {} file(s), {} manifest(s) scanned; {} finding(s), {} suppressed \
         by annotation; {} unsafe site(s); arch {} → {}",
        report.files_scanned,
        report.manifests_scanned,
        report.findings.len(),
        report.suppressed,
        report.unsafe_inventory.len(),
        report.arch_digest,
        out.display()
    );

    if report.clean() {
        ExitCode::SUCCESS
    } else {
        ExitCode::from(1)
    }
}
