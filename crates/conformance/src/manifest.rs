//! Rule `zero-dep` (R1): no external crates in any workspace manifest.
//!
//! The workspace's scientific claim — byte-identical artifacts from a
//! seed, fully offline — rests on every capability being in-tree (see
//! DESIGN.md §2.1). This pass walks each `Cargo.toml` with a
//! deliberately small line-oriented TOML-subset reader (sections +
//! `key = value` lines; the only shapes the workspace's manifests use)
//! and flags any dependency that is not one of:
//!
//! * a workspace-path crate (`acctrade-*`),
//! * a `path = "…"` dependency,
//! * a `workspace = true` / `name.workspace = true` reference.

use crate::report::Finding;

/// Is this `[section]` header one whose entries declare dependencies?
fn is_dependency_section(name: &str) -> bool {
    name == "dependencies"
        || name == "dev-dependencies"
        || name == "build-dependencies"
        || name == "workspace.dependencies"
        || name.ends_with(".dependencies")
        || name.ends_with(".dev-dependencies")
        || name.ends_with(".build-dependencies")
}

/// A dependency is allowed when it resolves inside the tree.
fn dependency_allowed(key: &str, value: &str) -> bool {
    let name = key.strip_suffix(".workspace").unwrap_or(key);
    name.starts_with("acctrade-")
        || value.contains("path =")
        || value.contains("path=")
        || value.contains("workspace = true")
        || value.contains("workspace=true")
}

/// Scan one manifest; `rel` is its workspace-relative path for
/// findings.
pub fn check(rel: &str, text: &str) -> Vec<Finding> {
    let mut findings = Vec::new();
    let mut section = String::new();
    for (i, raw) in text.lines().enumerate() {
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        if let Some(header) = line.strip_prefix('[') {
            let header = header.trim_start_matches('[');
            let name = header
                .split(']')
                .next()
                .unwrap_or("")
                .trim()
                .trim_matches('"')
                .to_string();
            // `[dependencies.foo]` sub-tables count as a dep entry for
            // the crate named in the header tail.
            if let Some((table, dep)) = name.rsplit_once('.') {
                if is_dependency_section(table) {
                    // The sub-table body is this one dependency's
                    // config, not further dependency entries.
                    section = format!("{table}.{dep}.body");
                    if !dep.starts_with("acctrade-") {
                        // The sub-table body may still say `path = …`;
                        // peek ahead until the next header.
                        let mut body_ok = false;
                        for later in text.lines().skip(i + 1) {
                            let later = later.trim();
                            if later.starts_with('[') {
                                break;
                            }
                            if later.starts_with("path") || later.contains("workspace = true") {
                                body_ok = true;
                                break;
                            }
                        }
                        if !body_ok {
                            findings.push(Finding {
                                rule: "zero-dep".into(),
                                file: rel.into(),
                                line: (i + 1) as u64,
                                col: 1,
                                message: format!(
                                    "external dependency `{dep}`: the workspace is \
                                     zero-dependency (std + in-tree crates only)"
                                ),
                            });
                        }
                    }
                    continue;
                }
            }
            section = name;
            continue;
        }
        if !is_dependency_section(&section) {
            continue;
        }
        let Some((key, value)) = line.split_once('=') else {
            continue;
        };
        let key = key.trim().trim_matches('"');
        let value = value.trim();
        if !dependency_allowed(key, value) {
            let name = key.strip_suffix(".workspace").unwrap_or(key);
            findings.push(Finding {
                rule: "zero-dep".into(),
                file: rel.into(),
                line: (i + 1) as u64,
                col: 1,
                message: format!(
                    "external dependency `{name}`: the workspace is zero-dependency \
                     (std + in-tree crates only)"
                ),
            });
        }
    }
    findings
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn workspace_path_deps_pass() {
        let toml = r#"
[package]
name = "acctrade-net"
version.workspace = true

[dependencies]
acctrade-foundation.workspace = true
acctrade-html = { path = "../html" }
"#;
        assert!(check("crates/net/Cargo.toml", toml).is_empty());
    }

    #[test]
    fn registry_deps_are_flagged() {
        let toml = r#"
[dependencies]
serde = "1.0"
rand = { version = "0.8", features = ["std"] }

[dev-dependencies]
proptest = "1"
"#;
        let findings = check("crates/x/Cargo.toml", toml);
        let names: Vec<&str> = findings
            .iter()
            .map(|f| {
                f.message
                    .split('`')
                    .nth(1)
                    .expect("message names the dep")
            })
            .collect();
        assert_eq!(names, vec!["serde", "rand", "proptest"]);
        assert!(findings.iter().all(|f| f.rule == "zero-dep"));
    }

    #[test]
    fn dependency_subtables_are_checked() {
        let bad = "[dependencies.libc]\nversion = \"0.2\"\n";
        assert_eq!(check("Cargo.toml", bad).len(), 1);
        let good = "[dependencies.helper]\npath = \"../helper\"\n";
        assert!(check("Cargo.toml", good).is_empty());
    }

    #[test]
    fn non_dependency_sections_are_ignored() {
        let toml = r#"
[package]
edition = "2021"

[features]
default = []

[workspace.package]
license = "MIT"
"#;
        assert!(check("Cargo.toml", toml).is_empty());
    }

    #[test]
    fn workspace_dependency_table_must_be_paths() {
        let toml = "[workspace.dependencies]\nacctrade-core = { path = \"crates/core\" }\nserde = \"1\"\n";
        let findings = check("Cargo.toml", toml);
        assert_eq!(findings.len(), 1);
        assert!(findings[0].message.contains("serde"));
        assert_eq!(findings[0].line, 3);
    }
}
