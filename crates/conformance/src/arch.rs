//! The workspace architecture pass: the crate dependency DAG, checked
//! against the committed `ARCH_baseline.json`, plus the cross-file
//! checks that need the whole workspace in view.
//!
//! The pass builds three structures and lints each:
//!
//! 1. **Crate dependency DAG** — parsed from every `Cargo.toml` by
//!    [`parse_manifest`]. The DAG is compared *structurally* against
//!    the committed baseline (undeclared edge / stale edge / missing
//!    crate findings), checked for cycles, and the baseline file itself
//!    must be the canonical rendering byte-for-byte (so `git diff`
//!    review is the only way an architecture change lands).
//! 2. **Use/path graph** — every file's `use` roots and qualified path
//!    roots, resolved through lib names (`foundation` →
//!    `acctrade-foundation`). A file referencing another crate whose
//!    package its manifest does not declare is an undeclared edge at
//!    source level; the root facade alias (`acctrade::core::…`) counts
//!    as referencing the aliased crate.
//! 3. **Module tree** — out-of-line `mod` declarations walked from each
//!    target root (`lib.rs`, `main.rs`, `src/bin/*`, tests, benches,
//!    examples). A `src/` file no root reaches is an orphan: compiled
//!    by nobody, linted by nobody, a silent rot vector.
//!
//! `pub-hygiene` also lives here because "referenced by another crate"
//! is a whole-workspace question: a module-level `pub` item in library
//! code that no other crate's sources mention (in a file that also
//! references the defining crate) is a dead export.

use crate::report::{ArchBaseline, ArchCrate, Finding, UnsafeSite};
use crate::resolve::{FileFacts, PubKind};
use crate::rules::FileAnalysis;
use crate::workspace::{Role, SourceFile};

/// One parsed `Cargo.toml`, reduced to what the DAG needs.
#[derive(Debug, Clone)]
pub struct ManifestInfo {
    /// Workspace-relative manifest path.
    pub rel: String,
    /// `[package] name`.
    pub package: String,
    /// `[lib] name` override, or the package name with `-` → `_`.
    pub lib_name: String,
    /// Package names from `[dependencies]` (and sub-tables), sorted.
    pub deps: Vec<String>,
    /// Package names from `[dev-dependencies]`, sorted.
    pub dev_deps: Vec<String>,
}

/// Parse the manifest facts the architecture pass needs. Total: a
/// malformed manifest yields an empty/partial info, never a panic
/// (`zero-dep` in [`crate::manifest`] polices manifest content).
pub fn parse_manifest(rel: &str, text: &str) -> ManifestInfo {
    let mut info = ManifestInfo {
        rel: rel.to_string(),
        package: String::new(),
        lib_name: String::new(),
        deps: Vec::new(),
        dev_deps: Vec::new(),
    };
    let mut section = String::new();
    for raw in text.lines() {
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        if let Some(header) = line.strip_prefix('[') {
            let name = header.split(']').next().unwrap_or("").trim().trim_matches('"');
            // `[dependencies.foo]` sub-tables declare the dep `foo`.
            if let Some((table, dep)) = name.rsplit_once('.') {
                if table == "dependencies" {
                    info.deps.push(dep.trim_matches('"').to_string());
                    section = String::from("_subtable");
                    continue;
                }
                if table == "dev-dependencies" {
                    info.dev_deps.push(dep.trim_matches('"').to_string());
                    section = String::from("_subtable");
                    continue;
                }
            }
            section = name.to_string();
            continue;
        }
        let Some((key, value)) = line.split_once('=') else { continue };
        let key = key.trim().trim_matches('"');
        let value = value.trim().trim_matches('"');
        match section.as_str() {
            "package" if key == "name" => info.package = value.to_string(),
            "lib" if key == "name" => info.lib_name = value.to_string(),
            "dependencies" | "dev-dependencies" => {
                let name = key.strip_suffix(".workspace").unwrap_or(key);
                if section == "dependencies" {
                    info.deps.push(name.to_string());
                } else {
                    info.dev_deps.push(name.to_string());
                }
            }
            _ => {}
        }
    }
    if info.lib_name.is_empty() && !info.package.is_empty() {
        info.lib_name = info.package.replace('-', "_");
    }
    info.deps.sort();
    info.deps.dedup();
    info.dev_deps.sort();
    info.dev_deps.dedup();
    info
}

/// Build the current-architecture snapshot from parsed manifests —
/// exactly the structure the committed `ARCH_baseline.json` pins.
pub fn current_graph(manifests: &[ManifestInfo]) -> ArchBaseline {
    let mut crates: Vec<ArchCrate> = manifests
        .iter()
        .filter(|m| !m.package.is_empty())
        .map(|m| ArchCrate {
            package: m.package.clone(),
            lib_name: m.lib_name.clone(),
            deps: m.deps.clone(),
            dev_deps: m.dev_deps.clone(),
        })
        .collect();
    crates.sort_by(|a, b| a.package.cmp(&b.package));
    ArchBaseline { schema: "acctrade-arch/v1".to_string(), crates }
}

/// FNV-1a 64 over bytes (the workspace's standard tiny hash; kept
/// local because `conformance` depends only on `foundation`).
fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// 16-hex-digit digest of the current architecture graph: the report's
/// one-line fingerprint of "which crates, which edges".
pub(crate) fn graph_digest(graph: &ArchBaseline) -> String {
    format!("{:016x}", fnv1a64(foundation::json::to_string_pretty(graph).as_bytes()))
}

/// Canonical on-disk rendering of a baseline (what
/// `--write-arch-baseline` writes and the formatting check expects).
pub fn render_baseline(graph: &ArchBaseline) -> String {
    let mut s = foundation::json::to_string_pretty(graph);
    s.push('\n');
    s
}

/// The committed baseline's workspace-relative path.
pub const BASELINE_PATH: &str = "ARCH_baseline.json";

/// One analyzed source file, as the architecture pass sees it.
pub struct ArchSource<'a> {
    /// Discovery record (path, crate, role).
    pub file: &'a SourceFile,
    /// Resolver + rule outputs for the file.
    pub analysis: &'a FileAnalysis,
}

/// Everything the architecture pass produces for the report.
pub struct ArchOutcome {
    /// Findings under rule `arch` and `pub-hygiene` (suppressions are
    /// tallied through each file's allow table, like per-file rules).
    pub findings: Vec<Finding>,
    /// Matches waived by annotations, per rule slug.
    pub suppressed: Vec<(String, u64)>,
    /// Digest of the *current* graph (recorded even when it diverges
    /// from the baseline — the report should describe reality).
    pub digest: String,
}

/// Finding anchored to a manifest or synthetic location (no allow
/// table applies — architecture facts are not per-line accidents).
fn arch_finding(file: &str, line: u64, message: String) -> Finding {
    Finding { rule: "arch".into(), file: file.into(), line, col: 1, message }
}

/// Run the whole architecture pass.
///
/// `baseline` is the parsed committed baseline (`None` when the file is
/// missing or unreadable — itself a finding), `baseline_text` the raw
/// bytes on disk for the canonical-formatting check.
pub fn check(
    manifests: &[ManifestInfo],
    sources: &[ArchSource<'_>],
    baseline: Option<&ArchBaseline>,
    baseline_text: Option<&str>,
) -> ArchOutcome {
    let current = current_graph(manifests);
    let mut out = ArchOutcome {
        findings: Vec::new(),
        suppressed: Vec::new(),
        digest: graph_digest(&current),
    };

    check_baseline(&current, baseline, baseline_text, &mut out);
    check_cycles(&current, &mut out);
    check_use_graph(manifests, sources, &mut out);
    check_module_tree(sources, &mut out);
    check_pub_hygiene(manifests, sources, &mut out);

    out
}

/// Structural + formatting comparison against the committed baseline.
fn check_baseline(
    current: &ArchBaseline,
    baseline: Option<&ArchBaseline>,
    baseline_text: Option<&str>,
    out: &mut ArchOutcome,
) {
    let Some(base) = baseline else {
        out.findings.push(arch_finding(
            BASELINE_PATH,
            1,
            "missing or unreadable ARCH_baseline.json — regenerate with \
             `cargo run -p acctrade-conformance -- --write-arch-baseline` \
             and commit it"
                .into(),
        ));
        return;
    };
    if base.schema != current.schema {
        out.findings.push(arch_finding(
            BASELINE_PATH,
            1,
            format!(
                "baseline schema `{}` does not match analyzer schema `{}`",
                base.schema, current.schema
            ),
        ));
    }
    // Structural diff, crate by crate, edge by edge — so the finding
    // names the exact divergence instead of "files differ".
    let find = |g: &ArchBaseline, pkg: &str| -> Option<ArchCrate> {
        g.crates.iter().find(|c| c.package == pkg).cloned()
    };
    for c in &current.crates {
        let Some(b) = find(base, &c.package) else {
            out.findings.push(arch_finding(
                BASELINE_PATH,
                1,
                format!(
                    "crate `{}` exists in the workspace but not in ARCH_baseline.json \
                     — an architecture change must update the committed baseline",
                    c.package
                ),
            ));
            continue;
        };
        if b.lib_name != c.lib_name {
            out.findings.push(arch_finding(
                BASELINE_PATH,
                1,
                format!(
                    "crate `{}` lib name changed: baseline `{}`, workspace `{}`",
                    c.package, b.lib_name, c.lib_name
                ),
            ));
        }
        for (kind, cur, bas) in
            [("dependency", &c.deps, &b.deps), ("dev-dependency", &c.dev_deps, &b.dev_deps)]
        {
            for d in cur {
                if !bas.contains(d) {
                    out.findings.push(arch_finding(
                        BASELINE_PATH,
                        1,
                        format!(
                            "undeclared edge: `{}` → `{d}` ({kind}) is in the workspace \
                             but not in ARCH_baseline.json",
                            c.package
                        ),
                    ));
                }
            }
            for d in bas {
                if !cur.contains(d) {
                    out.findings.push(arch_finding(
                        BASELINE_PATH,
                        1,
                        format!(
                            "stale edge: ARCH_baseline.json declares `{}` → `{d}` \
                             ({kind}) but the workspace no longer has it",
                            c.package
                        ),
                    ));
                }
            }
        }
    }
    for b in &base.crates {
        if find(current, &b.package).is_none() {
            out.findings.push(arch_finding(
                BASELINE_PATH,
                1,
                format!(
                    "stale baseline entry: crate `{}` is in ARCH_baseline.json but \
                     not in the workspace",
                    b.package
                ),
            ));
        }
    }
    // Byte-for-byte canonical formatting: the committed file must be
    // exactly what the analyzer would write, so review diffs are
    // always minimal and machine-produced.
    if let Some(text) = baseline_text {
        if out.findings.is_empty() && text != render_baseline(current) {
            out.findings.push(arch_finding(
                BASELINE_PATH,
                1,
                "ARCH_baseline.json is not the canonical rendering — regenerate \
                 with `--write-arch-baseline`"
                    .into(),
            ));
        }
    }
}

/// DFS cycle detection over the current dependency graph.
fn check_cycles(current: &ArchBaseline, out: &mut ArchOutcome) {
    // 0 = unvisited, 1 = on stack, 2 = done.
    let names: Vec<&str> = current.crates.iter().map(|c| c.package.as_str()).collect();
    let mut state = vec![0u8; names.len()];
    let index_of = |pkg: &str| names.iter().position(|n| *n == pkg);

    fn dfs(
        at: usize,
        crates: &[ArchCrate],
        index_of: &dyn Fn(&str) -> Option<usize>,
        state: &mut [u8],
        stack: &mut Vec<usize>,
        cycle: &mut Option<Vec<usize>>,
    ) {
        state[at] = 1;
        stack.push(at);
        // Dev-deps are excluded: cargo itself permits dev-dep cycles
        // (the classic bench-crate ↔ lib shape) and they never affect
        // the built artifact's layering.
        for dep in &crates[at].deps {
            let Some(j) = index_of(dep) else { continue };
            match state[j] {
                0 => dfs(j, crates, index_of, state, stack, cycle),
                1 if cycle.is_none() => {
                    let from = stack.iter().position(|&s| s == j).unwrap_or(0);
                    *cycle = Some(stack[from..].to_vec());
                }
                _ => {}
            }
        }
        stack.pop();
        state[at] = 2;
    }

    let mut cycle = None;
    for i in 0..names.len() {
        if state[i] == 0 {
            dfs(i, &current.crates, &index_of, &mut state, &mut Vec::new(), &mut cycle);
        }
    }
    if let Some(cycle) = cycle {
        let path: Vec<&str> = cycle.iter().map(|&i| names[i]).collect();
        out.findings.push(arch_finding(
            "Cargo.toml",
            1,
            format!("dependency cycle: {} → {}", path.join(" → "), path[0]),
        ));
    }
}

/// Emit a source-anchored cross-file finding through the file's allow
/// table (same suppression semantics as the per-file rules).
fn emit_at(
    src: &ArchSource<'_>,
    line: usize,
    rule: &str,
    message: String,
    out: &mut ArchOutcome,
) {
    if src.analysis.allow_and_mark(line, rule) {
        match out.suppressed.iter_mut().find(|(r, _)| r == rule) {
            Some((_, n)) => *n += 1,
            None => out.suppressed.push((rule.to_string(), 1)),
        }
        return;
    }
    out.findings.push(Finding {
        rule: rule.into(),
        file: src.file.rel.clone(),
        line: line as u64,
        col: 1,
        message,
    });
}

/// Which crates does this file reference? Lib-name roots of `use`
/// declarations and qualified paths, with the root facade (`acctrade`)
/// aliasing every workspace crate it re-exports. `local_mods` is the
/// owning crate's own module names: a path root shadowed by a sibling
/// module (`social` has a `mod store`, so `store::X` is local there)
/// never references the like-named crate.
fn referenced_packages(
    facts: &FileFacts,
    lib_to_pkg: &[(String, String)],
    local_mods: &[String],
) -> Vec<(String, usize)> {
    let mut refs: Vec<(String, usize)> = Vec::new();
    let mut push = |pkg: &str, offset: usize| {
        if !refs.iter().any(|(p, _)| p == pkg) {
            refs.push((pkg.to_string(), offset));
        }
    };
    for u in &facts.uses {
        if local_mods.contains(&u.root) {
            continue;
        }
        if let Some((_, pkg)) = lib_to_pkg.iter().find(|(lib, _)| *lib == u.root) {
            push(pkg, u.span.0);
        }
    }
    for p in &facts.paths {
        if local_mods.contains(&p.root) {
            continue;
        }
        if let Some((_, pkg)) = lib_to_pkg.iter().find(|(lib, _)| *lib == p.root) {
            push(pkg, p.span.0);
        }
    }
    refs
}

/// All module names declared anywhere in a crate's sources — the
/// shadowing set for [`referenced_packages`].
fn crate_mod_names(sources: &[ArchSource<'_>], crate_name: Option<&str>) -> Vec<String> {
    let mut names: Vec<String> = sources
        .iter()
        .filter(|s| s.file.crate_name.as_deref() == crate_name)
        .flat_map(|s| s.analysis.facts.mods.iter().map(|m| m.name.clone()))
        .collect();
    names.sort();
    names.dedup();
    names
}

/// Source-level edge check: each crate reference must be a declared
/// manifest dependency (dev-deps satisfy tests/benches/examples).
fn check_use_graph(
    manifests: &[ManifestInfo],
    sources: &[ArchSource<'_>],
    out: &mut ArchOutcome,
) {
    let lib_to_pkg: Vec<(String, String)> =
        manifests.iter().map(|m| (m.lib_name.clone(), m.package.clone())).collect();
    for src in sources {
        let owner = manifest_of(manifests, src.file);
        let Some(owner) = owner else { continue };
        let local_mods = crate_mod_names(sources, src.file.crate_name.as_deref());
        for (pkg, offset) in referenced_packages(&src.analysis.facts, &lib_to_pkg, &local_mods) {
            if pkg == owner.package {
                continue; // integration tests referencing their own crate
            }
            // Dev-dependencies satisfy test/bench/example targets and
            // `#[cfg(test)]` regions inside library files.
            let dev_context = matches!(src.file.role, Role::Test | Role::Bench | Role::Example)
                || src.analysis.in_test_region(offset);
            let declared =
                owner.deps.contains(&pkg) || (dev_context && owner.dev_deps.contains(&pkg));
            if !declared {
                let line = src.analysis.lines.line(offset);
                emit_at(
                    src,
                    line,
                    "arch",
                    format!(
                        "undeclared edge: `{}` uses crate `{pkg}` but {} does not \
                         declare it as a dependency",
                        owner.package, owner.rel
                    ),
                    out,
                );
            }
        }
    }
}

/// The manifest owning a source file (same package directory).
fn manifest_of<'m>(manifests: &'m [ManifestInfo], file: &SourceFile) -> Option<&'m ManifestInfo> {
    let want = match &file.crate_name {
        Some(name) => format!("crates/{name}/Cargo.toml"),
        None => "Cargo.toml".to_string(),
    };
    manifests.iter().find(|m| m.rel == want)
}

/// Walk out-of-line `mod` declarations from every target root and flag
/// unreachable `src/` files.
fn check_module_tree(sources: &[ArchSource<'_>], out: &mut ArchOutcome) {
    let rels: Vec<&str> = sources.iter().map(|s| s.file.rel.as_str()).collect();
    let facts_of = |rel: &str| -> Option<&FileFacts> {
        sources.iter().find(|s| s.file.rel == rel).map(|s| &s.analysis.facts)
    };

    let mut reachable: Vec<String> = Vec::new();
    let mut queue: Vec<String> = Vec::new();
    for s in sources {
        let rel = &s.file.rel;
        let is_root = rel.ends_with("/src/lib.rs")
            || rel == "src/lib.rs"
            || rel.ends_with("/src/main.rs")
            || rel == "src/main.rs"
            || rel.contains("/src/bin/")
            || rel.starts_with("src/bin/")
            || s.file.role != Role::Lib; // tests/benches/examples/bins are their own roots
        if is_root {
            queue.push(rel.clone());
        }
    }
    while let Some(rel) = queue.pop() {
        if reachable.contains(&rel) {
            continue;
        }
        reachable.push(rel.clone());
        let Some(facts) = facts_of(&rel) else { continue };
        let dir = rel.rsplit_once('/').map(|(d, _)| d).unwrap_or("");
        let stem = rel
            .rsplit_once('/')
            .map(|(_, f)| f)
            .unwrap_or(rel.as_str())
            .trim_end_matches(".rs");
        // `lib.rs`, `main.rs`, and `mod.rs` resolve children in their
        // own directory; `foo.rs` resolves them under `foo/`.
        let child_dir = if matches!(stem, "lib" | "main" | "mod") {
            dir.to_string()
        } else {
            format!("{dir}/{stem}")
        };
        for m in facts.mods.iter().filter(|m| !m.inline) {
            for cand in
                [format!("{child_dir}/{}.rs", m.name), format!("{child_dir}/{}/mod.rs", m.name)]
            {
                let cand = cand.trim_start_matches('/').to_string();
                if rels.contains(&cand.as_str()) {
                    queue.push(cand);
                }
            }
        }
    }

    for src in sources {
        let rel = &src.file.rel;
        // Only `src/` files can be orphans: tests/benches/examples are
        // roots by construction, and `src/bin/*` too.
        let in_src = rel.contains("/src/") || rel.starts_with("src/");
        if in_src && src.file.role == Role::Lib && !reachable.contains(rel) {
            emit_at(
                src,
                1,
                "arch",
                format!(
                    "orphan file: `{rel}` is not reachable from any target root \
                     via `mod` declarations — it is not compiled into the crate"
                ),
                out,
            );
        }
    }
}

/// Dead exports: module-level `pub` items in library code that no
/// *other file in the workspace* references — safe-to-prune surface.
/// A sibling file in the same package counts on an identifier match
/// alone (intra-crate paths go through `crate::`/`super::`, which
/// never name the package); a file in another package counts only
/// when its `use`/path graph also resolves through the defining crate
/// (its lib name, or the root facade). Identifier matching is
/// deliberately conservative: a coincidental name keeps an item
/// alive, but a flagged item is referenced by nobody.
fn check_pub_hygiene(
    manifests: &[ManifestInfo],
    sources: &[ArchSource<'_>],
    out: &mut ArchOutcome,
) {
    // Pre-compute, per file: the set of packages it resolves through.
    let lib_to_pkg: Vec<(String, String)> =
        manifests.iter().map(|m| (m.lib_name.clone(), m.package.clone())).collect();
    let facade_pkgs: Vec<String> = manifests
        .iter()
        .find(|m| m.rel == "Cargo.toml")
        .map(|m| m.deps.clone())
        .unwrap_or_default();

    struct RefView<'a> {
        crate_name: Option<&'a str>,
        packages: Vec<String>,
        idents: &'a [String],
    }
    let views: Vec<RefView<'_>> = sources
        .iter()
        .map(|s| {
            let local_mods = crate_mod_names(sources, s.file.crate_name.as_deref());
            let mut packages: Vec<String> =
                referenced_packages(&s.analysis.facts, &lib_to_pkg, &local_mods)
                    .into_iter()
                    .map(|(p, _)| p)
                    .collect();
            // The facade re-exports every workspace crate: a file that
            // resolves through `acctrade` can reach them all.
            if packages.iter().any(|p| p == "acctrade") {
                packages.extend(facade_pkgs.iter().cloned());
            }
            RefView {
                crate_name: s.file.crate_name.as_deref(),
                packages,
                idents: &s.analysis.facts.idents,
            }
        })
        .collect();

    for (si, src) in sources.iter().enumerate() {
        if src.file.role != Role::Lib {
            continue;
        }
        let Some(owner) = manifest_of(manifests, src.file) else { continue };
        // The root facade's own pub surface is the workspace API —
        // exercised by integration tests through `acctrade::…` paths,
        // which the facade-alias expansion above credits.
        for item in &src.analysis.facts.pub_items {
            if src.analysis.in_test_region(item.offset) {
                continue;
            }
            // Only value items (fn/const/static): a value must be *named*
            // to be used, so lexical absence proves deadness. Types and
            // traits are routinely alive without being named — field
            // access, inference, guards, trait bounds — and modules are
            // namespaces judged by their contents (the module-tree pass
            // already flags orphans).
            if !matches!(item.kind, PubKind::Fn | PubKind::Const | PubKind::Static) {
                continue;
            }
            let referenced = views.iter().enumerate().any(|(vi, v)| {
                if vi == si || v.idents.binary_search(&item.name).is_err() {
                    return false;
                }
                let same_package = v.crate_name == src.file.crate_name.as_deref();
                same_package || v.packages.contains(&owner.package)
            });
            if !referenced {
                let line = src.analysis.lines.line(item.offset);
                emit_at(
                    src,
                    line,
                    "pub-hygiene",
                    format!(
                        "dead export: `pub {} {}` is never referenced by any other \
                         file in the workspace — prune it, make it `pub(crate)`, or \
                         annotate why it is public API",
                        item.kind.as_str(),
                        item.name
                    ),
                    out,
                );
            }
        }
    }
}

/// Collect the workspace unsafe inventory from per-file scans, sorted.
pub fn unsafe_inventory(sources: &[ArchSource<'_>]) -> Vec<UnsafeSite> {
    let mut sites: Vec<UnsafeSite> = sources
        .iter()
        .flat_map(|s| s.analysis.unsafe_sites.iter().cloned())
        .collect();
    sites.sort_by(|a, b| (&a.file, a.line, &a.kind).cmp(&(&b.file, b.line, &b.kind)));
    sites
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_manifest_reads_package_lib_and_deps() {
        let toml = "[package]\nname = \"acctrade-econ\"\n\n[lib]\nname = \"econ\"\n\n\
                    [dependencies]\nacctrade-foundation.workspace = true\n\
                    acctrade-net = { path = \"../net\" }\n\n\
                    [dev-dependencies]\nacctrade-text.workspace = true\n";
        let info = parse_manifest("crates/econ/Cargo.toml", toml);
        assert_eq!(info.package, "acctrade-econ");
        assert_eq!(info.lib_name, "econ");
        assert_eq!(info.deps, vec!["acctrade-foundation", "acctrade-net"]);
        assert_eq!(info.dev_deps, vec!["acctrade-text"]);
    }

    #[test]
    fn lib_name_defaults_to_underscored_package() {
        let info = parse_manifest("crates/net/Cargo.toml", "[package]\nname = \"acctrade-net\"\n");
        assert_eq!(info.lib_name, "acctrade_net");
    }

    #[test]
    fn dependency_subtables_count_as_edges() {
        let toml = "[package]\nname = \"x\"\n[dependencies.acctrade-html]\npath = \"../html\"\n";
        let info = parse_manifest("crates/x/Cargo.toml", toml);
        assert_eq!(info.deps, vec!["acctrade-html"]);
    }

    #[test]
    fn cycle_detection_reports_the_loop() {
        let graph = ArchBaseline {
            schema: "acctrade-arch/v1".into(),
            crates: vec![
                ArchCrate {
                    package: "a".into(),
                    lib_name: "a".into(),
                    deps: vec!["b".into()],
                    dev_deps: vec![],
                },
                ArchCrate {
                    package: "b".into(),
                    lib_name: "b".into(),
                    deps: vec!["c".into()],
                    dev_deps: vec![],
                },
                ArchCrate {
                    package: "c".into(),
                    lib_name: "c".into(),
                    deps: vec!["a".into()],
                    dev_deps: vec![],
                },
            ],
        };
        let mut out =
            ArchOutcome { findings: Vec::new(), suppressed: Vec::new(), digest: String::new() };
        check_cycles(&graph, &mut out);
        assert_eq!(out.findings.len(), 1);
        assert!(out.findings[0].message.contains("cycle"), "{}", out.findings[0].message);
    }

    #[test]
    fn dev_dep_cycles_are_permitted() {
        let graph = ArchBaseline {
            schema: "acctrade-arch/v1".into(),
            crates: vec![
                ArchCrate {
                    package: "a".into(),
                    lib_name: "a".into(),
                    deps: vec![],
                    dev_deps: vec!["b".into()],
                },
                ArchCrate {
                    package: "b".into(),
                    lib_name: "b".into(),
                    deps: vec!["a".into()],
                    dev_deps: vec![],
                },
            ],
        };
        let mut out =
            ArchOutcome { findings: Vec::new(), suppressed: Vec::new(), digest: String::new() };
        check_cycles(&graph, &mut out);
        assert!(out.findings.is_empty());
    }

    #[test]
    fn baseline_diff_names_undeclared_and_stale_edges() {
        let manifests = vec![
            parse_manifest(
                "Cargo.toml",
                "[package]\nname = \"root\"\n[dependencies]\na.workspace = true\n",
            ),
            parse_manifest("crates/a/Cargo.toml", "[package]\nname = \"a\"\n"),
        ];
        let current = current_graph(&manifests);
        let mut stale = current.clone();
        // Crates sort by package: [0] = "a". Baseline keeps an edge
        // `a` → `ghost` that reality no longer has.
        stale.crates[0].deps = vec!["ghost".into()];
        let mut out =
            ArchOutcome { findings: Vec::new(), suppressed: Vec::new(), digest: String::new() };
        check_baseline(&current, Some(&stale), None, &mut out);
        assert_eq!(out.findings.len(), 1);
        assert!(out.findings[0].message.contains("stale edge"), "{}", out.findings[0].message);

        let mut missing_edge = current.clone();
        // [1] = "root": its dep on `a` is absent from the baseline.
        missing_edge.crates[1].deps = vec![];
        let mut out2 =
            ArchOutcome { findings: Vec::new(), suppressed: Vec::new(), digest: String::new() };
        check_baseline(&current, Some(&missing_edge), None, &mut out2);
        assert_eq!(out2.findings.len(), 1);
        assert!(
            out2.findings[0].message.contains("undeclared edge"),
            "{}",
            out2.findings[0].message
        );
    }

    #[test]
    fn digest_is_stable_and_sensitive() {
        let manifests = vec![parse_manifest("Cargo.toml", "[package]\nname = \"root\"\n")];
        let g1 = current_graph(&manifests);
        assert_eq!(graph_digest(&g1), graph_digest(&g1));
        let manifests2 = vec![parse_manifest(
            "Cargo.toml",
            "[package]\nname = \"root\"\n[dependencies]\nx.workspace = true\n",
        )];
        let g2 = current_graph(&manifests2);
        assert_ne!(graph_digest(&g1), graph_digest(&g2));
    }
}
