//! The structural resolver: a single pass over the token stream that
//! recovers the *shape* the cross-file rules need — module declarations,
//! `use` trees, module-level `pub` items, qualified path chains, and the
//! per-file conformance pragmas — without ever becoming a real parser.
//!
//! The resolver walks the significant tokens once, maintaining a brace
//! stack annotated with the kind of item that opened each block
//! ([`BlockKind`]). "Module level" means every enclosing block is a
//! `mod` block; only there do `mod name;`, `use …;`, and `pub` item
//! declarations have their cross-file meanings.
//!
//! Totality contract (property-tested alongside the lexer's): resolving
//! any input never panics, and every extracted element carries a byte
//! span that lies inside the input, starts/ends on token boundaries, and
//! is disjoint from and ordered against its siblings of the same
//! element class.
//!
//! Pragmas are whole-file policy declarations carried in comments:
//!
//! * `// conformance: atomics(relaxed, acquire, release, acqrel)` —
//!   declares the file's atomics-ordering policy (see
//!   [`crate::rules`]); a file that touches `Ordering::…` without a
//!   policy, or outside its declared set, is findings-worthy.
//! * `// conformance: reactor-path` — declares the file part of the
//!   reactor hot path, arming the `blocking-call` rule there.

use crate::lexer::{tokenize, Token, TokenKind};

/// What kind of item opened a brace block (approximate, token-level).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BlockKind {
    /// A `mod name { … }` body — module level continues inside.
    Mod,
    /// An `impl … { … }` body.
    Impl,
    /// A `trait … { … }` body.
    Trait,
    /// A `fn … { … }` body.
    Fn,
    /// A `struct`/`enum`/`union` body.
    Type,
    /// A `use …::{…}` group (not a scope at all).
    Use,
    /// Anything else: expression blocks, match bodies, closures.
    Expr,
}

/// One `mod` declaration found at module level.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ModDecl {
    /// Declared module name.
    pub name: String,
    /// `true` for `mod name { … }`, `false` for out-of-line `mod name;`.
    pub inline: bool,
    /// Byte span from the `mod` keyword through `;` or the header.
    pub span: (usize, usize),
}

/// One `use` declaration, flattened.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UseDecl {
    /// First path segment (after an optional leading `::`): the crate
    /// or namespace the import resolves through (`std`, `crate`,
    /// `super`, `self`, or an external crate's lib name).
    pub root: String,
    /// Every identifier appearing anywhere in the use tree, in source
    /// order — segments, leaves, and `as` renames alike. The cross-file
    /// rules only need name *mentions*, not precise leaf resolution.
    pub idents: Vec<String>,
    /// Whether the tree contains a `*` glob.
    pub glob: bool,
    /// Whether the declaration is `pub use` (a re-export).
    pub is_pub: bool,
    /// Byte span from `use` through `;`.
    pub span: (usize, usize),
}

/// Kind of a module-level `pub` item.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PubKind {
    /// `pub fn`.
    Fn,
    /// `pub struct`.
    Struct,
    /// `pub enum`.
    Enum,
    /// `pub trait`.
    Trait,
    /// `pub type`.
    Type,
    /// `pub const`.
    Const,
    /// `pub static`.
    Static,
    /// `pub mod`.
    Mod,
    /// `pub macro_rules!`-exported macros are not pub items; `pub use`
    /// re-exports are tracked as [`UseDecl`]s instead.
    Union,
}

impl PubKind {
    /// Stable slug for reports and messages.
    pub fn as_str(self) -> &'static str {
        match self {
            PubKind::Fn => "fn",
            PubKind::Struct => "struct",
            PubKind::Enum => "enum",
            PubKind::Trait => "trait",
            PubKind::Type => "type",
            PubKind::Const => "const",
            PubKind::Static => "static",
            PubKind::Mod => "mod",
            PubKind::Union => "union",
        }
    }
}

/// One module-level `pub` item declaration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PubItem {
    /// Item name.
    pub name: String,
    /// Item kind.
    pub kind: PubKind,
    /// Byte offset of the `pub` keyword.
    pub offset: usize,
}

/// One qualified path chain `root::a::b` appearing outside `use` trees.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PathChain {
    /// First segment.
    pub root: String,
    /// Remaining segments, in order.
    pub segments: Vec<String>,
    /// Byte span of the whole chain.
    pub span: (usize, usize),
}

/// The atomics orderings a pragma may grant.
pub const GRANTABLE_ORDERINGS: [&str; 4] = ["relaxed", "acquire", "release", "acqrel"];

/// Per-file conformance pragmas.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Pragmas {
    /// `Some(set)` once the file declares `conformance: atomics(…)`;
    /// entries are lowercased ordering names. Unknown names are kept so
    /// the rule can flag them.
    pub atomics: Option<Vec<String>>,
    /// Line (1-based) of the atomics pragma, for findings.
    pub atomics_line: usize,
    /// The file declared `conformance: reactor-path`.
    pub reactor_path: bool,
}

/// Everything the resolver recovers from one file.
#[derive(Debug, Clone, Default)]
pub struct FileFacts {
    /// Module declarations at module level.
    pub mods: Vec<ModDecl>,
    /// `use` declarations at module level.
    pub uses: Vec<UseDecl>,
    /// Module-level `pub` items.
    pub pub_items: Vec<PubItem>,
    /// Qualified path chains anywhere in the file.
    pub paths: Vec<PathChain>,
    /// Whole-file policy pragmas.
    pub pragmas: Pragmas,
    /// Every identifier in the file (deduplicated, sorted) — the
    /// reference universe for glob-import credit in `pub-hygiene`.
    pub idents: Vec<String>,
}

/// Marker a comment carries to declare a file-level pragma.
const PRAGMA_MARKER: &str = "conformance: ";

/// Resolve one source file. Total: never panics on any input.
pub fn resolve_file(source: &str) -> FileFacts {
    let tokens = tokenize(source);
    resolve_tokens(source, &tokens)
}

/// Resolve from an existing token stream (shared with the rule pass so
/// the file is only lexed once).
pub fn resolve_tokens(source: &str, tokens: &[Token]) -> FileFacts {
    let mut facts = FileFacts::default();
    collect_pragmas(source, tokens, &mut facts.pragmas);

    let sig: Vec<Token> = tokens
        .iter()
        .filter(|t| {
            !matches!(
                t.kind,
                TokenKind::Whitespace | TokenKind::LineComment | TokenKind::BlockComment
            )
        })
        .copied()
        .collect();

    let text = |i: usize| -> &str { sig.get(i).map(|t| t.text(source)).unwrap_or("") };
    let kind = |i: usize| -> Option<TokenKind> { sig.get(i).map(|t| t.kind) };

    // The brace stack: kinds of the blocks we are inside.
    let mut stack: Vec<BlockKind> = Vec::new();
    // Significant-token index where the current "item head" started —
    // the previous `;`, `{`, or `}` boundary — used to classify braces.
    let mut head_start = 0usize;

    let mut idents: Vec<String> = Vec::new();
    let mut i = 0usize;
    let n = sig.len();
    while i < n {
        let at_module_level = stack.iter().all(|k| *k == BlockKind::Mod);
        match text(i) {
            "{" => {
                let kind = classify_block(&sig, source, head_start, i);
                stack.push(kind);
                head_start = i + 1;
                i += 1;
            }
            "}" => {
                stack.pop();
                head_start = i + 1;
                i += 1;
            }
            ";" => {
                head_start = i + 1;
                i += 1;
            }
            "use" if at_module_level && kind(i) == Some(TokenKind::Ident) => {
                let is_pub = head_has_pub(&sig, source, head_start, i);
                let (decl, next) = parse_use(&sig, source, i);
                if let Some(mut decl) = decl {
                    decl.is_pub = is_pub;
                    for id in &decl.idents {
                        idents.push(id.clone());
                    }
                    facts.uses.push(decl);
                }
                head_start = next;
                i = next;
            }
            "mod" if at_module_level && kind(i) == Some(TokenKind::Ident) => {
                // `mod name;` or `mod name {` — the brace itself is
                // handled on a later iteration; here we only record the
                // declaration.
                if kind(i + 1) == Some(TokenKind::Ident) {
                    let name = text(i + 1).to_string();
                    let inline = text(i + 2) == "{";
                    let end = sig.get(i + 1).map(|t| t.end).unwrap_or(sig[i].end);
                    facts.mods.push(ModDecl {
                        name: name.clone(),
                        inline,
                        span: (sig[i].start, end),
                    });
                    idents.push(name);
                }
                i += 1;
            }
            "pub" if at_module_level && kind(i) == Some(TokenKind::Ident) => {
                if let Some(item) = parse_pub_item(&sig, source, i) {
                    idents.push(item.name.clone());
                    facts.pub_items.push(item);
                }
                i += 1;
            }
            _ => {
                if kind(i) == Some(TokenKind::Ident) {
                    // Qualified path chain: ident (:: ident)+ — collect
                    // it whole so `i` lands past the chain.
                    if text(i + 1) == ":" && text(i + 2) == ":" && kind(i + 3) == Some(TokenKind::Ident)
                    {
                        let root = text(i).to_string();
                        let start = sig[i].start;
                        let mut segments = Vec::new();
                        idents.push(root.clone());
                        let mut j = i + 1;
                        while text(j) == ":"
                            && text(j + 1) == ":"
                            && kind(j + 2) == Some(TokenKind::Ident)
                        {
                            segments.push(text(j + 2).to_string());
                            idents.push(text(j + 2).to_string());
                            j += 3;
                        }
                        let end = sig.get(j - 1).map(|t| t.end).unwrap_or(start);
                        facts.paths.push(PathChain { root, segments, span: (start, end) });
                        i = j;
                        continue;
                    }
                    idents.push(text(i).to_string());
                }
                i += 1;
            }
        }
    }

    idents.sort();
    idents.dedup();
    facts.idents = idents;
    facts
}

/// Does the item head `[head_start, at)` contain a bare `pub` (not
/// `pub(…)`) — used to mark `pub use` re-exports.
fn head_has_pub(sig: &[Token], source: &str, head_start: usize, at: usize) -> bool {
    let mut i = head_start;
    while i < at {
        if sig[i].text(source) == "pub" {
            return sig.get(i + 1).map(|t| t.text(source)) != Some("(");
        }
        i += 1;
    }
    false
}

/// Classify the block opened by the `{` at significant index `open`,
/// whose item head started at `head_start`.
fn classify_block(sig: &[Token], source: &str, head_start: usize, open: usize) -> BlockKind {
    let mut depth = 0i64; // `(`/`[` nesting inside the head (generics use <>, ignored)
    let mut kind = BlockKind::Expr;
    let mut i = head_start;
    while i < open {
        let t = sig[i].text(source);
        match t {
            "(" | "[" => depth += 1,
            ")" | "]" => depth -= 1,
            _ if depth == 0 => match t {
                "impl" => kind = BlockKind::Impl,
                "trait" => kind = BlockKind::Trait,
                "fn" => kind = BlockKind::Fn,
                "mod" => kind = BlockKind::Mod,
                "struct" | "enum" | "union" => kind = BlockKind::Type,
                "use" => kind = BlockKind::Use,
                // An `=` or control keyword before the brace means the
                // brace opens an expression, whatever came earlier
                // (`pub const X: Foo = Foo { … };`).
                "=" | "match" | "if" | "else" | "while" | "for" | "loop" | "return"
                | "break" => kind = BlockKind::Expr,
                _ => {}
            },
            _ => {}
        }
        i += 1;
    }
    kind
}

/// Parse a `use …;` declaration starting at the `use` keyword's
/// significant index. Returns the declaration (when a path root exists)
/// and the index just past the terminating `;` (or wherever recovery
/// stopped). Total on malformed input.
fn parse_use(sig: &[Token], source: &str, use_idx: usize) -> (Option<UseDecl>, usize) {
    let text = |i: usize| -> &str { sig.get(i).map(|t| t.text(source)).unwrap_or("") };
    let n = sig.len();
    let mut i = use_idx + 1;
    // Optional leading `::`.
    if text(i) == ":" && text(i + 1) == ":" {
        i += 2;
    }
    let mut root: Option<String> = None;
    let mut idents: Vec<String> = Vec::new();
    let mut glob = false;
    let mut depth = 0i64;
    while i < n {
        let t = text(i);
        match t {
            ";" if depth == 0 => {
                i += 1;
                break;
            }
            "{" => depth += 1,
            "}" => {
                depth -= 1;
                if depth < 0 {
                    // Stray close: the use tree is malformed — stop
                    // without consuming the brace so the block stack
                    // stays balanced.
                    break;
                }
            }
            "*" => glob = true,
            _ => {
                if sig[i].kind == TokenKind::Ident && t != "as" && t != "r" {
                    if root.is_none() {
                        root = Some(t.to_string());
                    }
                    idents.push(t.to_string());
                }
            }
        }
        i += 1;
    }
    let end = sig.get(i.saturating_sub(1)).map(|t| t.end).unwrap_or_else(|| {
        sig.get(use_idx).map(|t| t.end).unwrap_or(0)
    });
    let decl = root.map(|root| UseDecl {
        root,
        idents,
        glob,
        is_pub: false,
        span: (sig[use_idx].start, end),
    });
    (decl, i)
}

/// Parse a module-level `pub` item at the `pub` keyword's significant
/// index. Skips `pub(crate)`-style restricted visibility (those are not
/// workspace exports) and `pub use` (tracked as a [`UseDecl`]).
fn parse_pub_item(sig: &[Token], source: &str, pub_idx: usize) -> Option<PubItem> {
    let text = |i: usize| -> &str { sig.get(i).map(|t| t.text(source)).unwrap_or("") };
    let mut i = pub_idx + 1;
    if text(i) == "(" {
        return None; // pub(crate) / pub(super) / pub(in …): not exported
    }
    // Skip modifier keywords between `pub` and the item keyword.
    while matches!(text(i), "unsafe" | "const" | "async" | "extern") {
        i += 1;
        if text(i - 1) == "extern" && sig.get(i).map(|t| t.kind) == Some(TokenKind::Str) {
            i += 1; // the ABI string of `extern "C"`
        }
        // `pub const NAME` — `const` doubles as an item keyword when the
        // next token is the name followed by `:`.
        if text(i - 1) == "const"
            && sig.get(i).map(|t| t.kind) == Some(TokenKind::Ident)
            && !matches!(text(i), "fn" | "unsafe" | "extern" | "async")
        {
            return Some(PubItem {
                name: text(i).to_string(),
                kind: PubKind::Const,
                offset: sig[pub_idx].start,
            });
        }
    }
    let kind = match text(i) {
        "fn" => PubKind::Fn,
        "struct" => PubKind::Struct,
        "enum" => PubKind::Enum,
        "trait" => PubKind::Trait,
        "type" => PubKind::Type,
        "static" => PubKind::Static,
        "mod" => PubKind::Mod,
        "union" => PubKind::Union,
        _ => return None, // pub use (handled as UseDecl) or malformed
    };
    // `pub static mut NAME` / `pub mod NAME`.
    let mut j = i + 1;
    if text(j) == "mut" {
        j += 1;
    }
    if sig.get(j).map(|t| t.kind) != Some(TokenKind::Ident) {
        return None;
    }
    Some(PubItem { name: text(j).to_string(), kind, offset: sig[pub_idx].start })
}

/// Scan comment tokens for `conformance: atomics(…)` and
/// `conformance: reactor-path` pragmas.
fn collect_pragmas(source: &str, tokens: &[Token], pragmas: &mut Pragmas) {
    let lines = crate::lexer::LineIndex::new(source);
    for t in tokens {
        if !matches!(t.kind, TokenKind::LineComment | TokenKind::BlockComment) {
            continue;
        }
        let text = t.text(source);
        let mut rest = text;
        while let Some(at) = rest.find(PRAGMA_MARKER) {
            let tail = &rest[at + PRAGMA_MARKER.len()..];
            if let Some(args) = tail.strip_prefix("atomics(") {
                if let Some(end) = args.find(')') {
                    let set: Vec<String> = args[..end]
                        .split(',')
                        .map(|s| s.trim().to_ascii_lowercase())
                        .filter(|s| !s.is_empty())
                        .collect();
                    if pragmas.atomics.is_none() {
                        pragmas.atomics = Some(set);
                        pragmas.atomics_line = lines.line(t.start);
                    }
                }
            } else if tail.starts_with("reactor-path") {
                pragmas.reactor_path = true;
            }
            rest = &rest[at + PRAGMA_MARKER.len()..];
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mod_decls_inline_and_out_of_line() {
        let src = "mod alpha;\npub mod beta { mod inner; }\nfn f() { }\n";
        let facts = resolve_file(src);
        let names: Vec<(&str, bool)> =
            facts.mods.iter().map(|m| (m.name.as_str(), m.inline)).collect();
        assert_eq!(names, vec![("alpha", false), ("beta", true), ("inner", false)]);
    }

    #[test]
    fn mods_inside_fn_bodies_are_not_module_level() {
        let src = "fn f() { mod hidden; }\nmod seen;\n";
        let facts = resolve_file(src);
        let names: Vec<&str> = facts.mods.iter().map(|m| m.name.as_str()).collect();
        assert_eq!(names, vec!["seen"]);
    }

    #[test]
    fn use_trees_flatten_with_globs_and_renames() {
        let src = "use std::collections::{BTreeMap, btree_map::Entry};\n\
                   use foundation::sync::Mutex as Lock;\n\
                   pub use ::economy::*;\n";
        let facts = resolve_file(src);
        assert_eq!(facts.uses.len(), 3);
        assert_eq!(facts.uses[0].root, "std");
        assert!(facts.uses[0].idents.contains(&"BTreeMap".to_string()));
        assert!(facts.uses[0].idents.contains(&"Entry".to_string()));
        assert!(!facts.uses[0].glob);
        assert_eq!(facts.uses[1].root, "foundation");
        assert!(facts.uses[1].idents.contains(&"Lock".to_string()));
        assert_eq!(facts.uses[2].root, "economy");
        assert!(facts.uses[2].glob);
        assert!(facts.uses[2].is_pub);
    }

    #[test]
    fn pub_items_are_module_level_only() {
        let src = "pub fn top() {}\n\
                   pub(crate) fn internal() {}\n\
                   pub struct S { pub field: u32 }\n\
                   impl S { pub fn method(&self) {} }\n\
                   pub const LIMIT: usize = 9;\n\
                   pub static mut COUNTER: u32 = 0;\n\
                   mod m { pub enum E { A } }\n";
        let facts = resolve_file(src);
        let items: Vec<(&str, PubKind)> =
            facts.pub_items.iter().map(|p| (p.name.as_str(), p.kind)).collect();
        assert_eq!(
            items,
            vec![
                ("top", PubKind::Fn),
                ("S", PubKind::Struct),
                ("LIMIT", PubKind::Const),
                ("COUNTER", PubKind::Static),
                ("E", PubKind::Enum),
            ]
        );
    }

    #[test]
    fn path_chains_collect_roots_and_segments() {
        let src = "fn f() { let x = telemetry::with_recorder(|r| r.incr()); acctrade_net::clock::SimClock::new(); }";
        let facts = resolve_file(src);
        let chains: Vec<(&str, Vec<&str>)> = facts
            .paths
            .iter()
            .map(|p| (p.root.as_str(), p.segments.iter().map(String::as_str).collect()))
            .collect();
        assert!(chains.contains(&("telemetry", vec!["with_recorder"])));
        assert!(chains.contains(&("acctrade_net", vec!["clock", "SimClock", "new"])));
    }

    #[test]
    fn pragmas_parse_atomics_and_reactor_path() {
        let src = "//! Module docs.\n\
                   // conformance: atomics(relaxed, acquire, release)\n\
                   // conformance: reactor-path — the serve loop must never block\n\
                   fn f() {}\n";
        let facts = resolve_file(src);
        assert_eq!(
            facts.pragmas.atomics.as_deref(),
            Some(&["relaxed".to_string(), "acquire".into(), "release".into()][..])
        );
        assert_eq!(facts.pragmas.atomics_line, 2);
        assert!(facts.pragmas.reactor_path);
    }

    #[test]
    fn struct_literal_braces_do_not_fake_module_level() {
        let src = "fn f() { let s = S { a: 1 }; }\npub fn visible() {}\n";
        let facts = resolve_file(src);
        assert_eq!(facts.pub_items.len(), 1);
        assert_eq!(facts.pub_items[0].name, "visible");
    }

    #[test]
    fn malformed_input_is_total() {
        for src in ["use ;;;", "pub", "mod", "use a::{b, {", "pub fn", "}}}{{{", "use {x}"] {
            let _ = resolve_file(src); // must not panic
        }
    }

    #[test]
    fn spans_lie_inside_input_and_are_ordered() {
        let src = "use a::b;\nmod m;\npub fn f() { x::y(); }\n";
        let facts = resolve_file(src);
        let mut prev = 0usize;
        for u in &facts.uses {
            assert!(u.span.0 >= prev && u.span.1 <= src.len() && u.span.0 < u.span.1);
            prev = u.span.1;
        }
        for p in &facts.paths {
            assert!(p.span.0 < p.span.1 && p.span.1 <= src.len());
        }
    }
}
