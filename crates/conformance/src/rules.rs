//! The conformance rules over lexed Rust sources.
//!
//! | rule              | what it forbids                                        | where it applies |
//! |-------------------|--------------------------------------------------------|------------------|
//! | `zero-dep`        | external crates in any manifest (see [`crate::manifest`]) | every `Cargo.toml` |
//! | `determinism`     | `SystemTime::now` / `Instant::now` / `RandomState`; `HashMap`/`HashSet` in output-feeding crates | lib/bin/example code; the hash ban only in `core`, `crawler`, `store`, `telemetry`, `workload` libs |
//! | `panic-policy`    | `.unwrap()` / `.expect(` / `panic!` / `todo!`          | library code |
//! | `lock-discipline` | raw `std::sync::Mutex` / `std::sync::RwLock`           | everything outside `foundation` |
//!
//! Exemptions, in order of evaluation:
//!
//! 1. **Location**: `tests/` and `benches/` directories are never
//!    scanned by source rules; `panic-policy` additionally skips bins
//!    and examples (operator-facing entry points may crash loudly).
//! 2. **`#[cfg(test)]` regions**: the scanner tracks the byte span of
//!    every `#[cfg(test)]`-gated item (attribute through the closing
//!    brace or semicolon) and suppresses findings inside; a
//!    `#[cfg(test)] mod name;` out-of-line declaration marks the
//!    sibling `name.rs` / `name/mod.rs` as test code.
//! 3. **Allowlist**: a small built-in table grants whole-file waivers
//!    where a capability is the rule's *raison d'être* (the virtual
//!    clock, telemetry's wall-time stamping, the bench harness).
//! 4. **Annotations**: a comment `// conformance: allow(<rule>)` on a
//!    line (or the line directly above) waives that rule there;
//!    waived matches are tallied in `LintReport::suppressed` so silent
//!    debt stays visible.
//!
//! The `HashMap`/`HashSet` facet deliberately over-approximates: with
//! token-level analysis we cannot see *iteration*, so the rule flags
//! the type itself in crates whose data reaches serialized artifacts —
//! use `BTreeMap`/`BTreeSet` (deterministic order), or annotate the
//! line with the reason the map never leaks ordering.

use crate::lexer::{tokenize, LineIndex, Token, TokenKind};
use crate::report::Finding;
use crate::workspace::{Role, SourceFile};

/// Crates whose in-memory collections feed serialized output; hash
/// containers are banned in their library code.
const OUTPUT_CRATES: [&str; 6] = ["core", "crawler", "economy", "store", "telemetry", "workload"];

/// Whole-file waivers: `(rule, workspace-relative path)`. An entry
/// ending in `/` waives the rule for every file under that directory —
/// used to scope a waiver to one crate's sources without enumerating
/// them (new files under the prefix inherit the waiver by design; the
/// prefix itself is what review audits).
const ALLOWLIST: [(&str, &str); 5] = [
    // The simulation's virtual clock is *the* sanctioned time source.
    ("determinism", "crates/net/src/clock.rs"),
    // Telemetry stamps spans with wall time for operator ergonomics;
    // deterministic artifacts strip the wall_* fields (PR 2).
    ("determinism", "crates/telemetry/src/recorder.rs"),
    // The trace rings dual-stamp records with wall time for the ops
    // plane's flamegraph view; the deterministic TRACE_report.json
    // variant is derived purely from the manifest's virtual fields.
    ("determinism", "crates/telemetry/src/trace.rs"),
    // The bench harness measures real elapsed time by definition.
    ("determinism", "crates/foundation/src/bench.rs"),
    // The serving layer is *defined* as the real-socket, wall-clock
    // boundary: its artifacts carry wall timestamps that deterministic
    // comparisons strip (crawler::merge::normalize_for_parity). The
    // waiver is scoped to the one crate, not granted workspace-wide.
    ("determinism", "crates/httpd/src/"),
];

/// Marker any comment can carry to waive a rule on its line and the
/// line below.
const ALLOW_MARKER: &str = "conformance: allow(";

/// Result of scanning one file: real findings plus the count of
/// annotation-suppressed matches.
#[derive(Debug, Default)]
pub struct FileScan {
    /// Unallowed findings.
    pub findings: Vec<Finding>,
    /// Matches waived by `conformance: allow(...)` annotations.
    pub suppressed: u64,
    /// Module names declared as `#[cfg(test)] mod <name>;` — the
    /// caller should treat the referenced sibling files as test code.
    pub test_modules: Vec<String>,
}

struct FileCtx<'a> {
    source: &'a str,
    file: &'a SourceFile,
    lines: LineIndex,
    /// Significant (non-whitespace, non-comment) tokens.
    sig: Vec<Token>,
    /// Byte ranges covered by `#[cfg(test)]` items.
    test_regions: Vec<(usize, usize)>,
    /// `(line, rule-slug)` pairs granted by allow annotations.
    allows: Vec<(usize, String)>,
}

impl FileCtx<'_> {
    fn text(&self, i: usize) -> &str {
        self.sig.get(i).map(|t| t.text(self.source)).unwrap_or("")
    }

    fn kind(&self, i: usize) -> Option<TokenKind> {
        self.sig.get(i).map(|t| t.kind)
    }

    fn in_test_region(&self, offset: usize) -> bool {
        self.test_regions.iter().any(|&(s, e)| (s..e).contains(&offset))
    }

    fn allowed(&self, line: usize, rule: &str) -> bool {
        self.allows.iter().any(|(l, r)| *l == line && r == rule)
    }
}

/// Scan one source file under every rule applicable to its role.
pub fn scan_file(file: &SourceFile, source: &str) -> FileScan {
    let tokens = tokenize(source);
    let lines = LineIndex::new(source);

    // Allow annotations: a comment grants its rule on the comment's
    // own line (trailing form) and the next line (standalone form).
    let mut allows = Vec::new();
    for t in tokens.iter().filter(|t| {
        matches!(t.kind, TokenKind::LineComment | TokenKind::BlockComment)
    }) {
        let text = t.text(source);
        let mut rest = text;
        while let Some(at) = rest.find(ALLOW_MARKER) {
            let tail = &rest[at + ALLOW_MARKER.len()..];
            if let Some(end) = tail.find(')') {
                let slug = tail[..end].trim().to_string();
                let line = lines.line(t.start);
                allows.push((line, slug.clone()));
                allows.push((line + 1, slug));
            }
            rest = &rest[at + ALLOW_MARKER.len()..];
        }
    }

    let sig: Vec<Token> = tokens
        .iter()
        .filter(|t| {
            !matches!(
                t.kind,
                TokenKind::Whitespace | TokenKind::LineComment | TokenKind::BlockComment
            )
        })
        .copied()
        .collect();

    let mut ctx = FileCtx {
        source,
        file,
        lines,
        sig,
        test_regions: Vec::new(),
        allows,
    };
    let test_modules = find_test_regions(&mut ctx);

    let mut scan = FileScan { test_modules, ..FileScan::default() };
    determinism_clock(&ctx, &mut scan);
    determinism_hash(&ctx, &mut scan);
    panic_policy(&ctx, &mut scan);
    lock_discipline(&ctx, &mut scan);
    scan.findings.sort_by(|a, b| (a.line, a.col, &a.rule).cmp(&(b.line, b.col, &b.rule)));
    scan
}

/// Locate `#[cfg(test)]`-gated items; fills `ctx.test_regions` and
/// returns the names of out-of-line `mod name;` declarations.
fn find_test_regions(ctx: &mut FileCtx<'_>) -> Vec<String> {
    let mut test_modules = Vec::new();
    let mut regions = Vec::new();
    let sig = &ctx.sig;
    let n = sig.len();
    let is = |i: usize, text: &str| sig.get(i).map(|t| t.text(ctx.source)) == Some(text);

    let mut i = 0;
    while i < n {
        // Match `# [ cfg ( test ) ]`.
        let matched = is(i, "#")
            && is(i + 1, "[")
            && is(i + 2, "cfg")
            && is(i + 3, "(")
            && is(i + 4, "test")
            && is(i + 5, ")")
            && is(i + 6, "]");
        if !matched {
            i += 1;
            continue;
        }
        let start = sig[i].start;
        // Walk the following item: further attributes are absorbed by
        // depth tracking; the item ends at a top-level `;` or at the
        // close of its first top-level brace block.
        let mut j = i + 7;
        let mut depth = 0i64;
        let mut opened_brace = false;
        let mut end = sig.get(j).map(|t| t.end).unwrap_or(start);
        let mut mod_name: Option<String> = None;
        while j < n {
            let text = sig[j].text(ctx.source);
            match text {
                "(" | "[" | "{" => {
                    if text == "{" && depth == 0 {
                        opened_brace = true;
                    }
                    depth += 1;
                }
                ")" | "]" | "}" => {
                    depth -= 1;
                    if depth == 0 && opened_brace && text == "}" {
                        end = sig[j].end;
                        break;
                    }
                }
                ";" if depth == 0 => {
                    end = sig[j].end;
                    break;
                }
                "mod" if depth == 0 && mod_name.is_none() => {
                    // Remember the module name in case this is an
                    // out-of-line `mod name;` declaration.
                    if let Some(next) = sig.get(j + 1) {
                        if next.kind == TokenKind::Ident {
                            let name = next.text(ctx.source).to_string();
                            let terminated_by_semi = sig
                                .get(j + 2)
                                .map(|t| t.text(ctx.source) == ";")
                                .unwrap_or(false);
                            if terminated_by_semi {
                                test_modules.push(name.clone());
                            }
                            mod_name = Some(name);
                        }
                    }
                }
                _ => {}
            }
            end = sig[j].end;
            j += 1;
        }
        regions.push((start, end));
        i = j + 1;
    }
    ctx.test_regions = regions;
    test_modules
}

/// Push a finding unless the location is test code or annotated away.
fn emit(ctx: &FileCtx<'_>, scan: &mut FileScan, offset: usize, rule: &str, message: String) {
    if ctx.in_test_region(offset) {
        return;
    }
    let (line, col) = ctx.lines.position(offset);
    if ctx.allowed(line, rule) {
        scan.suppressed += 1;
        return;
    }
    scan.findings.push(Finding {
        rule: rule.into(),
        file: ctx.file.rel.clone(),
        line: line as u64,
        col: col as u64,
        message,
    });
}

fn file_allowlisted(ctx: &FileCtx<'_>, rule: &str) -> bool {
    ALLOWLIST.iter().any(|&(r, path)| {
        r == rule
            && if path.ends_with('/') {
                ctx.file.rel.starts_with(path)
            } else {
                path == ctx.file.rel
            }
    })
}

/// R2a — wall-clock reads and randomized hashing outside the sanctioned
/// modules. Applies to lib, bin, and example code.
fn determinism_clock(ctx: &FileCtx<'_>, scan: &mut FileScan) {
    if !matches!(ctx.file.role, Role::Lib | Role::Bin | Role::Example) {
        return;
    }
    if file_allowlisted(ctx, "determinism") {
        return;
    }
    for i in 0..ctx.sig.len() {
        if ctx.kind(i) != Some(TokenKind::Ident) {
            continue;
        }
        let text = ctx.text(i);
        if (text == "SystemTime" || text == "Instant")
            && ctx.text(i + 1) == ":"
            && ctx.text(i + 2) == ":"
            && ctx.text(i + 3) == "now"
        {
            emit(
                ctx,
                scan,
                ctx.sig[i].start,
                "determinism",
                format!(
                    "`{text}::now` reads the host clock; use the virtual clock \
                     (net::clock::SimClock) so same-seed runs stay byte-identical"
                ),
            );
        }
        if text == "RandomState" {
            emit(
                ctx,
                scan,
                ctx.sig[i].start,
                "determinism",
                "`RandomState` seeds hashing from OS entropy; iteration order \
                 would differ across runs"
                    .into(),
            );
        }
    }
}

/// R2b — hash containers in output-feeding crates' library code.
fn determinism_hash(ctx: &FileCtx<'_>, scan: &mut FileScan) {
    if ctx.file.role != Role::Lib {
        return;
    }
    let Some(name) = ctx.file.crate_name.as_deref() else {
        return;
    };
    if !OUTPUT_CRATES.contains(&name) {
        return;
    }
    if file_allowlisted(ctx, "determinism") {
        return;
    }
    for i in 0..ctx.sig.len() {
        if ctx.kind(i) != Some(TokenKind::Ident) {
            continue;
        }
        let text = ctx.text(i);
        if text == "HashMap" || text == "HashSet" {
            emit(
                ctx,
                scan,
                ctx.sig[i].start,
                "determinism",
                format!(
                    "`{text}` in a crate that feeds serialized output: iteration \
                     order is randomized per process — use BTreeMap/BTreeSet, or \
                     annotate why ordering never reaches an artifact"
                ),
            );
        }
    }
}

/// R3 — panicking calls in library code.
fn panic_policy(ctx: &FileCtx<'_>, scan: &mut FileScan) {
    if ctx.file.role != Role::Lib {
        return;
    }
    for i in 0..ctx.sig.len() {
        if ctx.kind(i) != Some(TokenKind::Ident) {
            continue;
        }
        let text = ctx.text(i);
        let method_call = |name: &str| {
            text == name && (i > 0 && ctx.text(i - 1) == ".") && ctx.text(i + 1) == "("
        };
        if method_call("unwrap") || method_call("expect") {
            emit(
                ctx,
                scan,
                ctx.sig[i].start,
                "panic-policy",
                format!(
                    "`.{text}(…)` in library code: return an error (or annotate \
                     the invariant that makes this unreachable)"
                ),
            );
        }
        if (text == "panic" || text == "todo") && ctx.text(i + 1) == "!" {
            emit(
                ctx,
                scan,
                ctx.sig[i].start,
                "panic-policy",
                format!("`{text}!` in library code: return an error instead"),
            );
        }
    }
}

/// R4 — raw std locks outside `foundation` (whose guard API feeds the
/// lock-order deadlock detector).
fn lock_discipline(ctx: &FileCtx<'_>, scan: &mut FileScan) {
    if ctx.file.role == Role::Test || ctx.file.role == Role::Bench {
        return;
    }
    if ctx.file.crate_name.as_deref() == Some("foundation") {
        return;
    }
    let n = ctx.sig.len();
    for i in 0..n {
        if ctx.kind(i) != Some(TokenKind::Ident) || ctx.text(i) != "std" {
            continue;
        }
        // `std :: sync :: X` — qualified use or path expression.
        if !(ctx.text(i + 1) == ":"
            && ctx.text(i + 2) == ":"
            && ctx.text(i + 3) == "sync"
            && ctx.text(i + 4) == ":"
            && ctx.text(i + 5) == ":")
        {
            continue;
        }
        let leaf = ctx.text(i + 6);
        if leaf == "Mutex" || leaf == "RwLock" {
            emit(
                ctx,
                scan,
                ctx.sig[i].start,
                "lock-discipline",
                format!(
                    "raw `std::sync::{leaf}`: use foundation::sync::{leaf} so the \
                     acquisition goes through the deadlock-detecting guard API"
                ),
            );
        } else if leaf == "{" {
            // `use std::sync::{A, B, …};` — flag banned leaves inside
            // the brace group (depth-1 idents only; `atomic::{…}`
            // nested groups cannot contain lock types).
            let mut j = i + 7;
            let mut depth = 1i64;
            while j < n && depth > 0 {
                match ctx.text(j) {
                    "{" => depth += 1,
                    "}" => depth -= 1,
                    "Mutex" | "RwLock" if depth == 1 => {
                        let name = ctx.text(j).to_string();
                        // Skip renamed imports of other things
                        // (`x as Mutex` would be flagged — good).
                        emit(
                            ctx,
                            scan,
                            ctx.sig[j].start,
                            "lock-discipline",
                            format!(
                                "raw `std::sync::{name}` import: use \
                                 foundation::sync::{name} so the acquisition goes \
                                 through the deadlock-detecting guard API"
                            ),
                        );
                    }
                    _ => {}
                }
                j += 1;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lib_file(rel: &str, crate_name: Option<&str>) -> SourceFile {
        SourceFile {
            rel: rel.into(),
            crate_name: crate_name.map(str::to_string),
            role: Role::Lib,
        }
    }

    fn rules_of(scan: &FileScan) -> Vec<(&str, u64)> {
        scan.findings.iter().map(|f| (f.rule.as_str(), f.line)).collect()
    }

    #[test]
    fn clock_reads_are_flagged_and_annotatable() {
        let src = "fn f() {\n\
                   let t = std::time::Instant::now();\n\
                   let s = SystemTime::now(); // conformance: allow(determinism)\n\
                   }\n";
        let scan = scan_file(&lib_file("crates/net/src/x.rs", Some("net")), src);
        assert_eq!(rules_of(&scan), vec![("determinism", 2)]);
        assert_eq!(scan.suppressed, 1);
    }

    #[test]
    fn standalone_annotation_covers_next_line() {
        let src = "fn f() {\n\
                   // conformance: allow(determinism) — measured, not emitted\n\
                   let t = Instant::now();\n\
                   }\n";
        let scan = scan_file(&lib_file("crates/net/src/x.rs", Some("net")), src);
        assert!(scan.findings.is_empty());
        assert_eq!(scan.suppressed, 1);
    }

    #[test]
    fn hash_containers_flagged_only_in_output_crates() {
        let src = "use std::collections::HashMap;\nfn f(m: &HashMap<u32, u32>) {}\n";
        let in_core = scan_file(&lib_file("crates/core/src/x.rs", Some("core")), src);
        assert_eq!(in_core.findings.len(), 2);
        assert!(in_core.findings.iter().all(|f| f.rule == "determinism"));
        let in_net = scan_file(&lib_file("crates/net/src/x.rs", Some("net")), src);
        assert!(in_net.findings.is_empty());
    }

    #[test]
    fn panic_policy_flags_unwrap_expect_panic_todo() {
        let src = "fn f(x: Option<u32>) -> u32 {\n\
                   let a = x.unwrap();\n\
                   let b = x.expect(\"msg\");\n\
                   if a == b { panic!(\"boom\") }\n\
                   todo!()\n\
                   }\n";
        let scan = scan_file(&lib_file("crates/html/src/x.rs", Some("html")), src);
        assert_eq!(
            rules_of(&scan),
            vec![
                ("panic-policy", 2),
                ("panic-policy", 3),
                ("panic-policy", 4),
                ("panic-policy", 5),
            ]
        );
    }

    #[test]
    fn panic_policy_ignores_lookalikes_and_strings() {
        let src = "fn f(x: Option<u32>) -> u32 {\n\
                   let a = x.unwrap_or(7);\n\
                   let b = x.unwrap_or_else(|| 9);\n\
                   let s = \"don't .unwrap() or panic! here\";\n\
                   let p = std::panic::Location::caller();\n\
                   #[should_panic]\n\
                   a + b\n\
                   }\n";
        let scan = scan_file(&lib_file("crates/html/src/x.rs", Some("html")), src);
        assert!(scan.findings.is_empty(), "{:?}", scan.findings);
    }

    #[test]
    fn cfg_test_regions_are_exempt() {
        let src = "fn lib_code(x: Option<u32>) -> Option<u32> { x }\n\
                   #[cfg(test)]\n\
                   mod tests {\n\
                   #[test]\n\
                   fn t() { lib_code(None).unwrap(); panic!(\"fine in tests\"); }\n\
                   }\n";
        let scan = scan_file(&lib_file("crates/html/src/x.rs", Some("html")), src);
        assert!(scan.findings.is_empty(), "{:?}", scan.findings);
    }

    #[test]
    fn cfg_test_mod_declaration_reports_module_name() {
        let src = "#[cfg(test)]\nmod proptests;\nfn f(x: Option<u32>) { x.unwrap(); }\n";
        let scan = scan_file(&lib_file("crates/html/src/lib.rs", Some("html")), src);
        assert_eq!(scan.test_modules, vec!["proptests".to_string()]);
        // The unwrap outside the region is still caught.
        assert_eq!(rules_of(&scan), vec![("panic-policy", 3)]);
    }

    #[test]
    fn lock_discipline_flags_raw_std_locks() {
        let src = "use std::sync::{Arc, Mutex};\n\
                   use std::sync::RwLock;\n\
                   static M: std::sync::Mutex<u32> = std::sync::Mutex::new(0);\n";
        let scan = scan_file(&lib_file("crates/net/src/x.rs", Some("net")), src);
        assert_eq!(
            rules_of(&scan),
            vec![
                ("lock-discipline", 1),
                ("lock-discipline", 2),
                ("lock-discipline", 3),
                ("lock-discipline", 3),
            ]
        );
    }

    #[test]
    fn lock_discipline_exempts_foundation_and_atomics() {
        let src = "use std::sync::{Arc, Mutex};\n";
        let foundation =
            scan_file(&lib_file("crates/foundation/src/sync.rs", Some("foundation")), src);
        assert!(foundation.findings.is_empty());
        let atomics = "use std::sync::atomic::{AtomicU64, Ordering};\nuse std::sync::Arc;\n";
        let scan = scan_file(&lib_file("crates/net/src/x.rs", Some("net")), atomics);
        assert!(scan.findings.is_empty());
    }

    #[test]
    fn foundation_sync_locks_pass() {
        let src = "use foundation::sync::{Mutex, RwLock};\nfn f() { let m = Mutex::new(0); }\n";
        let scan = scan_file(&lib_file("crates/net/src/x.rs", Some("net")), src);
        assert!(scan.findings.is_empty());
    }

    #[test]
    fn tests_and_benches_roles_are_never_scanned() {
        let src = "fn t() { None::<u32>.unwrap(); let i = Instant::now(); }\n";
        for role in [Role::Test, Role::Bench] {
            let file = SourceFile { rel: "tests/x.rs".into(), crate_name: None, role };
            let scan = scan_file(&file, src);
            assert!(scan.findings.is_empty());
        }
    }

    #[test]
    fn bins_skip_panic_policy_but_not_determinism() {
        let src = "fn main() { None::<u32>.unwrap(); let i = Instant::now(); }\n";
        let file = SourceFile {
            rel: "crates/telemetry/src/bin/x.rs".into(),
            crate_name: Some("telemetry".into()),
            role: Role::Bin,
        };
        let scan = scan_file(&file, src);
        assert_eq!(rules_of(&scan), vec![("determinism", 1)]);
    }
}
