//! The conformance rules over lexed Rust sources.
//!
//! | rule               | what it forbids                                        | where it applies |
//! |--------------------|--------------------------------------------------------|------------------|
//! | `zero-dep`         | external crates in any manifest (see [`crate::manifest`]) | every `Cargo.toml` |
//! | `determinism`      | `SystemTime::now` / `Instant::now` / `RandomState`; `HashMap`/`HashSet` in output-feeding crates | lib/bin/example code; the hash ban only in `core`, `crawler`, `store`, `telemetry`, `workload` libs |
//! | `panic-policy`     | `.unwrap()` / `.expect(` / `panic!` / `todo!`          | library code |
//! | `lock-discipline`  | raw `std::sync::Mutex` / `std::sync::RwLock`           | everything outside `foundation` |
//! | `unsafe-audit`     | `unsafe` without a `// SAFETY:` justification          | lib/bin/example code |
//! | `atomics-ordering` | `Ordering::` outside the file's declared policy; `SeqCst` anywhere | lib/bin/example code |
//! | `blocking-call`    | `sleep` / `lock` / `wait*` / `recv*` / `read_to_*` calls | files declared `conformance: reactor-path` |
//! | `arch`             | DAG drift vs `ARCH_baseline.json`, cycles, undeclared source-level edges, orphan files (see [`crate::arch`]) | manifests + whole workspace |
//! | `pub-hygiene`      | module-level `pub` items no other crate references (see [`crate::arch`]) | library code |
//! | `stale-suppression`| `conformance: allow(…)` annotations that waive nothing | every scanned file |
//!
//! Exemptions, in order of evaluation:
//!
//! 1. **Location**: `tests/` and `benches/` directories are never
//!    scanned by per-file source rules; `panic-policy` additionally
//!    skips bins and examples (operator-facing entry points may crash
//!    loudly).
//! 2. **`#[cfg(test)]` regions**: the scanner tracks the byte span of
//!    every `#[cfg(test)]`-gated item (attribute through the closing
//!    brace or semicolon) and suppresses findings inside; a
//!    `#[cfg(test)] mod name;` out-of-line declaration marks the
//!    sibling `name.rs` / `name/mod.rs` as test code.
//! 3. **Allowlist**: a small built-in table grants whole-file waivers
//!    where a capability is the rule's *raison d'être* (the virtual
//!    clock, telemetry's wall-time stamping, the bench harness).
//! 4. **Annotations**: a comment `// conformance: allow(<rule>)` on a
//!    line (or the line directly above) waives that rule there;
//!    waived matches are tallied in `LintReport::suppressed` so silent
//!    debt stays visible — and an annotation that waives *nothing* is
//!    itself a `stale-suppression` finding.
//!
//! Whole-file policy pragmas (parsed by [`crate::resolve`]):
//!
//! * `// conformance: atomics(relaxed, acquire, release, acqrel)` —
//!   declares which atomic orderings the file may use. A file that
//!   touches `Ordering::` without a pragma, or outside its declared
//!   set, gets an `atomics-ordering` finding. `seqcst` is not
//!   grantable: `Ordering::SeqCst` is flagged as a smell everywhere
//!   and can only be waived per line, with a reason.
//! * `// conformance: reactor-path` — declares the file part of the
//!   serving hot path, arming `blocking-call` there.
//!
//! The `HashMap`/`HashSet` facet deliberately over-approximates: with
//! token-level analysis we cannot see *iteration*, so the rule flags
//! the type itself in crates whose data reaches serialized artifacts —
//! use `BTreeMap`/`BTreeSet` (deterministic order), or annotate the
//! line with the reason the map never leaks ordering.

use crate::lexer::{tokenize, LineIndex, Token, TokenKind};
use crate::report::{Finding, UnsafeSite};
use crate::resolve::{self, FileFacts, GRANTABLE_ORDERINGS};
use crate::workspace::{Role, SourceFile};
use std::cell::Cell;

/// Every rule slug the analyzer can emit. `conformance: allow(<slug>)`
/// annotations naming anything else are ignored as allow sites (doc
/// text often shows the syntax with a placeholder), but a
/// *slug-shaped* unknown name is flagged — it is almost certainly a
/// typo silently waiving nothing.
pub const KNOWN_RULES: [&str; 10] = [
    "arch",
    "atomics-ordering",
    "blocking-call",
    "determinism",
    "lock-discipline",
    "panic-policy",
    "pub-hygiene",
    "stale-suppression",
    "unsafe-audit",
    "zero-dep",
];

/// Crates whose in-memory collections feed serialized output; hash
/// containers are banned in their library code.
const OUTPUT_CRATES: [&str; 6] = ["core", "crawler", "economy", "store", "telemetry", "workload"];

/// Whole-file waivers: `(rule, workspace-relative path)`. An entry
/// ending in `/` waives the rule for every file under that directory —
/// used to scope a waiver to one crate's sources without enumerating
/// them (new files under the prefix inherit the waiver by design; the
/// prefix itself is what review audits).
const ALLOWLIST: [(&str, &str); 5] = [
    // The simulation's virtual clock is *the* sanctioned time source.
    ("determinism", "crates/net/src/clock.rs"),
    // Telemetry stamps spans with wall time for operator ergonomics;
    // deterministic artifacts strip the wall_* fields (PR 2).
    ("determinism", "crates/telemetry/src/recorder.rs"),
    // The trace rings dual-stamp records with wall time for the ops
    // plane's flamegraph view; the deterministic TRACE_report.json
    // variant is derived purely from the manifest's virtual fields.
    ("determinism", "crates/telemetry/src/trace.rs"),
    // The bench harness measures real elapsed time by definition.
    ("determinism", "crates/foundation/src/bench.rs"),
    // The serving layer is *defined* as the real-socket, wall-clock
    // boundary: its artifacts carry wall timestamps that deterministic
    // comparisons strip (crawler::merge::normalize_for_parity). The
    // waiver is scoped to the one crate, not granted workspace-wide.
    ("determinism", "crates/httpd/src/"),
];

/// Marker any comment can carry to waive a rule on its line and the
/// line below.
const ALLOW_MARKER: &str = "conformance: allow(";

/// Method-shaped calls that block the calling thread; banned in files
/// declared `conformance: reactor-path`. `try_lock`/`try_recv` and
/// bounded `read`/`write` on a non-blocking socket are the sanctioned
/// alternatives, so they are deliberately absent.
const BLOCKING_CALLS: [&str; 10] = [
    "lock",
    "read_exact",
    "read_to_end",
    "read_to_string",
    "recv",
    "recv_timeout",
    "sleep",
    "wait",
    "wait_timeout",
    "wait_while",
];

/// One `conformance: allow(<rule>)` annotation site. The `used` flag
/// is interior-mutable so cross-file passes (which only hold shared
/// references to analyses) can mark consumption.
#[derive(Debug)]
pub struct AllowSite {
    /// Line (1-based) of the comment carrying the annotation.
    pub line: usize,
    /// The rule slug it waives.
    pub rule: String,
    /// Whether any emission consumed this annotation.
    pub used: Cell<bool>,
}

impl AllowSite {
    /// An annotation covers its own line (trailing form) and the next
    /// line (standalone form).
    fn covers(&self, line: usize) -> bool {
        line == self.line || line == self.line + 1
    }
}

/// Everything the analyzer knows about one file after the per-file
/// pass: findings, suppression state, resolver facts, and the
/// machinery cross-file passes need to emit with the same exemption
/// semantics.
#[derive(Debug)]
pub struct FileAnalysis {
    /// Unallowed findings from per-file rules, sorted.
    pub findings: Vec<Finding>,
    /// Per-rule annotation-waived counts, `(rule, count)`, unsorted.
    pub suppressed: Vec<(String, u64)>,
    /// Module names declared as `#[cfg(test)] mod <name>;` — the
    /// caller should treat the referenced sibling files as test code.
    pub test_modules: Vec<String>,
    /// Every `unsafe` site outside test regions (documented or not).
    pub unsafe_sites: Vec<UnsafeSite>,
    /// Resolver output: mods, uses, pub items, paths, pragmas.
    pub facts: FileFacts,
    /// Line index over the file's source.
    pub lines: LineIndex,
    /// Allow annotations, with consumption tracking.
    pub allows: Vec<AllowSite>,
    /// Byte ranges covered by `#[cfg(test)]` items.
    test_regions: Vec<(usize, usize)>,
}

impl FileAnalysis {
    /// Is the byte offset inside a `#[cfg(test)]` region?
    pub fn in_test_region(&self, offset: usize) -> bool {
        self.test_regions.iter().any(|&(s, e)| (s..e).contains(&offset))
    }

    /// If an annotation waives `rule` on `line`, mark it used and
    /// return true. Cross-file passes call this before emitting.
    pub fn allow_and_mark(&self, line: usize, rule: &str) -> bool {
        for a in &self.allows {
            if a.rule == rule && a.covers(line) {
                a.used.set(true);
                return true;
            }
        }
        false
    }

    /// Total annotation-waived matches in this file.
    pub fn suppressed_total(&self) -> u64 {
        self.suppressed.iter().map(|(_, n)| n).sum()
    }

    /// Bump the per-rule suppressed tally.
    fn bump_suppressed(&mut self, rule: &str) {
        match self.suppressed.iter_mut().find(|(r, _)| r == rule) {
            Some((_, n)) => *n += 1,
            None => self.suppressed.push((rule.to_string(), 1)),
        }
    }

    /// `stale-suppression`: annotations that waived nothing. Must run
    /// after every pass that could consume an allow (including the
    /// cross-file ones). Annotations inside `#[cfg(test)]` regions are
    /// exempt — no rule ever fires there, so "unused" is meaningless.
    pub fn stale_suppressions(&self, file: &SourceFile) -> Vec<Finding> {
        let mut out = Vec::new();
        for a in &self.allows {
            if a.used.get() {
                continue;
            }
            let offset = self.lines.offset_of_line(a.line);
            if self.in_test_region(offset) {
                continue;
            }
            let known = KNOWN_RULES.contains(&a.rule.as_str());
            let message = if known {
                format!(
                    "stale suppression: `conformance: allow({})` waives nothing here \
                     — delete the annotation",
                    a.rule
                )
            } else {
                format!(
                    "stale suppression: `conformance: allow({})` names an unknown \
                     rule — typo? known rules: {}",
                    a.rule,
                    KNOWN_RULES.join(", ")
                )
            };
            out.push(Finding {
                rule: "stale-suppression".into(),
                file: file.rel.clone(),
                line: a.line as u64,
                col: 1,
                message,
            });
        }
        out
    }
}

struct FileCtx<'a> {
    source: &'a str,
    file: &'a SourceFile,
    /// Significant (non-whitespace, non-comment) tokens.
    sig: Vec<Token>,
    /// All tokens, comments included (SAFETY detection).
    tokens: &'a [Token],
}

impl FileCtx<'_> {
    fn text(&self, i: usize) -> &str {
        self.sig.get(i).map(|t| t.text(self.source)).unwrap_or("")
    }

    fn kind(&self, i: usize) -> Option<TokenKind> {
        self.sig.get(i).map(|t| t.kind)
    }
}

/// Is the annotation slug plausibly a rule name? Doc text shows the
/// syntax with placeholders like `<rule>`; those are not allow sites.
fn slug_shaped(s: &str) -> bool {
    !s.is_empty() && s.bytes().all(|b| b.is_ascii_lowercase() || b == b'-')
}

/// Analyze one source file under every rule applicable to its role.
pub fn analyze_file(file: &SourceFile, source: &str) -> FileAnalysis {
    let tokens = tokenize(source);
    let lines = LineIndex::new(source);

    // Allow annotations: a comment grants its rule on the comment's
    // own line (trailing form) and the next line (standalone form).
    let mut allows = Vec::new();
    for t in tokens.iter().filter(|t| {
        matches!(t.kind, TokenKind::LineComment | TokenKind::BlockComment)
    }) {
        let text = t.text(source);
        let mut rest = text;
        while let Some(at) = rest.find(ALLOW_MARKER) {
            let tail = &rest[at + ALLOW_MARKER.len()..];
            if let Some(end) = tail.find(')') {
                let slug = tail[..end].trim().to_string();
                if slug_shaped(&slug) {
                    allows.push(AllowSite {
                        line: lines.line(t.start),
                        rule: slug,
                        used: Cell::new(false),
                    });
                }
            }
            rest = &rest[at + ALLOW_MARKER.len()..];
        }
    }

    let sig: Vec<Token> = tokens
        .iter()
        .filter(|t| {
            !matches!(
                t.kind,
                TokenKind::Whitespace | TokenKind::LineComment | TokenKind::BlockComment
            )
        })
        .copied()
        .collect();

    let facts = resolve::resolve_tokens(source, &tokens);

    let mut ctx = FileCtx { source, file, sig, tokens: &tokens };
    let mut analysis = FileAnalysis {
        findings: Vec::new(),
        suppressed: Vec::new(),
        test_modules: Vec::new(),
        unsafe_sites: Vec::new(),
        facts,
        lines,
        allows,
        test_regions: Vec::new(),
    };
    analysis.test_modules = find_test_regions(&mut ctx, &mut analysis.test_regions);

    determinism_clock(&ctx, &mut analysis);
    determinism_hash(&ctx, &mut analysis);
    panic_policy(&ctx, &mut analysis);
    lock_discipline(&ctx, &mut analysis);
    unsafe_audit(&ctx, &mut analysis);
    atomics_ordering(&ctx, &mut analysis);
    blocking_call(&ctx, &mut analysis);

    analysis
        .findings
        .sort_by(|a, b| (a.line, a.col, &a.rule).cmp(&(b.line, b.col, &b.rule)));
    analysis
}

/// Locate `#[cfg(test)]`-gated items; fills `regions` and returns the
/// names of out-of-line `mod name;` declarations.
fn find_test_regions(ctx: &mut FileCtx<'_>, regions: &mut Vec<(usize, usize)>) -> Vec<String> {
    let mut test_modules = Vec::new();
    let sig = &ctx.sig;
    let n = sig.len();
    let is = |i: usize, text: &str| sig.get(i).map(|t| t.text(ctx.source)) == Some(text);

    let mut i = 0;
    while i < n {
        // Match `# [ cfg ( test ) ]`.
        let matched = is(i, "#")
            && is(i + 1, "[")
            && is(i + 2, "cfg")
            && is(i + 3, "(")
            && is(i + 4, "test")
            && is(i + 5, ")")
            && is(i + 6, "]");
        if !matched {
            i += 1;
            continue;
        }
        let start = sig[i].start;
        // Walk the following item: further attributes are absorbed by
        // depth tracking; the item ends at a top-level `;` or at the
        // close of its first top-level brace block.
        let mut j = i + 7;
        let mut depth = 0i64;
        let mut opened_brace = false;
        let mut end = sig.get(j).map(|t| t.end).unwrap_or(start);
        let mut mod_name: Option<String> = None;
        while j < n {
            let text = sig[j].text(ctx.source);
            match text {
                "(" | "[" | "{" => {
                    if text == "{" && depth == 0 {
                        opened_brace = true;
                    }
                    depth += 1;
                }
                ")" | "]" | "}" => {
                    depth -= 1;
                    if depth == 0 && opened_brace && text == "}" {
                        end = sig[j].end;
                        break;
                    }
                }
                ";" if depth == 0 => {
                    end = sig[j].end;
                    break;
                }
                "mod" if depth == 0 && mod_name.is_none() => {
                    // Remember the module name in case this is an
                    // out-of-line `mod name;` declaration.
                    if let Some(next) = sig.get(j + 1) {
                        if next.kind == TokenKind::Ident {
                            let name = next.text(ctx.source).to_string();
                            let terminated_by_semi = sig
                                .get(j + 2)
                                .map(|t| t.text(ctx.source) == ";")
                                .unwrap_or(false);
                            if terminated_by_semi {
                                test_modules.push(name.clone());
                            }
                            mod_name = Some(name);
                        }
                    }
                }
                _ => {}
            }
            end = sig[j].end;
            j += 1;
        }
        regions.push((start, end));
        i = j + 1;
    }
    test_modules
}

/// Push a finding unless the location is test code or annotated away.
fn emit(ctx: &FileCtx<'_>, analysis: &mut FileAnalysis, offset: usize, rule: &str, message: String) {
    if analysis.in_test_region(offset) {
        return;
    }
    let (line, col) = analysis.lines.position(offset);
    if analysis.allow_and_mark(line, rule) {
        analysis.bump_suppressed(rule);
        return;
    }
    analysis.findings.push(Finding {
        rule: rule.into(),
        file: ctx.file.rel.clone(),
        line: line as u64,
        col: col as u64,
        message,
    });
}

fn file_allowlisted(ctx: &FileCtx<'_>, rule: &str) -> bool {
    ALLOWLIST.iter().any(|&(r, path)| {
        r == rule
            && if path.ends_with('/') {
                ctx.file.rel.starts_with(path)
            } else {
                path == ctx.file.rel
            }
    })
}

/// R2a — wall-clock reads and randomized hashing outside the sanctioned
/// modules. Applies to lib, bin, and example code.
fn determinism_clock(ctx: &FileCtx<'_>, analysis: &mut FileAnalysis) {
    if !matches!(ctx.file.role, Role::Lib | Role::Bin | Role::Example) {
        return;
    }
    if file_allowlisted(ctx, "determinism") {
        return;
    }
    for i in 0..ctx.sig.len() {
        if ctx.kind(i) != Some(TokenKind::Ident) {
            continue;
        }
        let text = ctx.text(i);
        if (text == "SystemTime" || text == "Instant")
            && ctx.text(i + 1) == ":"
            && ctx.text(i + 2) == ":"
            && ctx.text(i + 3) == "now"
        {
            emit(
                ctx,
                analysis,
                ctx.sig[i].start,
                "determinism",
                format!(
                    "`{text}::now` reads the host clock; use the virtual clock \
                     (net::clock::SimClock) so same-seed runs stay byte-identical"
                ),
            );
        }
        if text == "RandomState" {
            emit(
                ctx,
                analysis,
                ctx.sig[i].start,
                "determinism",
                "`RandomState` seeds hashing from OS entropy; iteration order \
                 would differ across runs"
                    .into(),
            );
        }
    }
}

/// R2b — hash containers in output-feeding crates' library code.
fn determinism_hash(ctx: &FileCtx<'_>, analysis: &mut FileAnalysis) {
    if ctx.file.role != Role::Lib {
        return;
    }
    let Some(name) = ctx.file.crate_name.as_deref() else {
        return;
    };
    if !OUTPUT_CRATES.contains(&name) {
        return;
    }
    if file_allowlisted(ctx, "determinism") {
        return;
    }
    for i in 0..ctx.sig.len() {
        if ctx.kind(i) != Some(TokenKind::Ident) {
            continue;
        }
        let text = ctx.text(i);
        if text == "HashMap" || text == "HashSet" {
            emit(
                ctx,
                analysis,
                ctx.sig[i].start,
                "determinism",
                format!(
                    "`{text}` in a crate that feeds serialized output: iteration \
                     order is randomized per process — use BTreeMap/BTreeSet, or \
                     annotate why ordering never reaches an artifact"
                ),
            );
        }
    }
}

/// R3 — panicking calls in library code.
fn panic_policy(ctx: &FileCtx<'_>, analysis: &mut FileAnalysis) {
    if ctx.file.role != Role::Lib {
        return;
    }
    for i in 0..ctx.sig.len() {
        if ctx.kind(i) != Some(TokenKind::Ident) {
            continue;
        }
        let text = ctx.text(i);
        let method_call = |name: &str| {
            text == name && (i > 0 && ctx.text(i - 1) == ".") && ctx.text(i + 1) == "("
        };
        if method_call("unwrap") || method_call("expect") {
            emit(
                ctx,
                analysis,
                ctx.sig[i].start,
                "panic-policy",
                format!(
                    "`.{text}(…)` in library code: return an error (or annotate \
                     the invariant that makes this unreachable)"
                ),
            );
        }
        if (text == "panic" || text == "todo") && ctx.text(i + 1) == "!" {
            emit(
                ctx,
                analysis,
                ctx.sig[i].start,
                "panic-policy",
                format!("`{text}!` in library code: return an error instead"),
            );
        }
    }
}

/// R4 — raw std locks outside `foundation` (whose guard API feeds the
/// lock-order deadlock detector).
fn lock_discipline(ctx: &FileCtx<'_>, analysis: &mut FileAnalysis) {
    if ctx.file.role == Role::Test || ctx.file.role == Role::Bench {
        return;
    }
    if ctx.file.crate_name.as_deref() == Some("foundation") {
        return;
    }
    let n = ctx.sig.len();
    for i in 0..n {
        if ctx.kind(i) != Some(TokenKind::Ident) || ctx.text(i) != "std" {
            continue;
        }
        // `std :: sync :: X` — qualified use or path expression.
        if !(ctx.text(i + 1) == ":"
            && ctx.text(i + 2) == ":"
            && ctx.text(i + 3) == "sync"
            && ctx.text(i + 4) == ":"
            && ctx.text(i + 5) == ":")
        {
            continue;
        }
        let leaf = ctx.text(i + 6);
        if leaf == "Mutex" || leaf == "RwLock" {
            emit(
                ctx,
                analysis,
                ctx.sig[i].start,
                "lock-discipline",
                format!(
                    "raw `std::sync::{leaf}`: use foundation::sync::{leaf} so the \
                     acquisition goes through the deadlock-detecting guard API"
                ),
            );
        } else if leaf == "{" {
            // `use std::sync::{A, B, …};` — flag banned leaves inside
            // the brace group (depth-1 idents only; `atomic::{…}`
            // nested groups cannot contain lock types).
            let mut j = i + 7;
            let mut depth = 1i64;
            while j < n && depth > 0 {
                match ctx.text(j) {
                    "{" => depth += 1,
                    "}" => depth -= 1,
                    "Mutex" | "RwLock" if depth == 1 => {
                        let name = ctx.text(j).to_string();
                        // Skip renamed imports of other things
                        // (`x as Mutex` would be flagged — good).
                        emit(
                            ctx,
                            analysis,
                            ctx.sig[j].start,
                            "lock-discipline",
                            format!(
                                "raw `std::sync::{name}` import: use \
                                 foundation::sync::{name} so the acquisition goes \
                                 through the deadlock-detecting guard API"
                            ),
                        );
                    }
                    _ => {}
                }
                j += 1;
            }
        }
    }
}

/// R5 — `unsafe` without a `// SAFETY:` justification; also records
/// the workspace unsafe inventory. Applies to lib, bin, and example
/// code (test regions are neither inventoried nor flagged).
fn unsafe_audit(ctx: &FileCtx<'_>, analysis: &mut FileAnalysis) {
    if !matches!(ctx.file.role, Role::Lib | Role::Bin | Role::Example) {
        return;
    }

    // Per-line classification for the contiguity walk: which lines a
    // SAFETY-bearing comment covers, which lines hold any comment, and
    // which hold significant tokens.
    let mut safety_lines: Vec<usize> = Vec::new();
    let mut comment_lines: Vec<usize> = Vec::new();
    let mut sig_lines: Vec<usize> = Vec::new();
    for t in ctx.tokens {
        let span_lines = || {
            let first = analysis.lines.line(t.start);
            let last = analysis.lines.line(t.end.saturating_sub(1).max(t.start));
            first..=last
        };
        match t.kind {
            TokenKind::LineComment | TokenKind::BlockComment => {
                let has_safety = t.text(ctx.source).contains("SAFETY:");
                for l in span_lines() {
                    comment_lines.push(l);
                    if has_safety {
                        safety_lines.push(l);
                    }
                }
            }
            TokenKind::Whitespace => {}
            _ => {
                for l in span_lines() {
                    sig_lines.push(l);
                }
            }
        }
    }
    let comment_only = |l: usize| comment_lines.contains(&l) && !sig_lines.contains(&l);
    let documented = |line: usize| {
        if safety_lines.contains(&line) {
            return true; // trailing `// SAFETY: …` on the unsafe line
        }
        let mut l = line;
        while l > 1 && comment_only(l - 1) {
            l -= 1;
            if safety_lines.contains(&l) {
                return true;
            }
        }
        false
    };

    for i in 0..ctx.sig.len() {
        if ctx.kind(i) != Some(TokenKind::Ident) || ctx.text(i) != "unsafe" {
            continue;
        }
        let offset = ctx.sig[i].start;
        if analysis.in_test_region(offset) {
            continue;
        }
        // Classify the site by the tokens between `unsafe` and its `{`.
        let mut kind = "block";
        for j in (i + 1)..(i + 6).min(ctx.sig.len()) {
            match ctx.text(j) {
                "fn" => {
                    kind = "fn";
                    break;
                }
                "impl" => {
                    kind = "impl";
                    break;
                }
                "trait" => {
                    kind = "trait";
                    break;
                }
                "{" => break,
                _ => {}
            }
        }
        let (line, _) = analysis.lines.position(offset);
        analysis.unsafe_sites.push(UnsafeSite {
            file: ctx.file.rel.clone(),
            line: line as u64,
            kind: kind.to_string(),
        });
        if !documented(line) {
            emit(
                ctx,
                analysis,
                offset,
                "unsafe-audit",
                format!(
                    "`unsafe` {kind} without a `// SAFETY:` comment — state the \
                     invariant that makes this sound (same line or directly above)"
                ),
            );
        }
    }
}

/// R6 — atomic memory orderings against the file's declared policy.
fn atomics_ordering(ctx: &FileCtx<'_>, analysis: &mut FileAnalysis) {
    if !matches!(ctx.file.role, Role::Lib | Role::Bin | Role::Example) {
        return;
    }

    // Validate the pragma itself: unknown names waive nothing.
    let policy = analysis.facts.pragmas.atomics.clone();
    if let Some(set) = &policy {
        let pragma_line = analysis.facts.pragmas.atomics_line;
        for name in set {
            if !GRANTABLE_ORDERINGS.contains(&name.as_str()) {
                let offset = analysis.lines.offset_of_line(pragma_line);
                let hint = if name == "seqcst" {
                    "seqcst is not grantable by pragma — waive individual uses \
                     per line, with a reason"
                } else {
                    "known orderings: relaxed, acquire, release, acqrel"
                };
                emit(
                    ctx,
                    analysis,
                    offset,
                    "atomics-ordering",
                    format!("unknown ordering `{name}` in atomics pragma — {hint}"),
                );
            }
        }
    }

    const ATOMIC_VARIANTS: [&str; 5] = ["Relaxed", "Acquire", "Release", "AcqRel", "SeqCst"];
    for i in 0..ctx.sig.len() {
        if ctx.kind(i) != Some(TokenKind::Ident) || ctx.text(i) != "Ordering" {
            continue;
        }
        if !(ctx.text(i + 1) == ":" && ctx.text(i + 2) == ":") {
            continue;
        }
        let variant = ctx.text(i + 3);
        if !ATOMIC_VARIANTS.contains(&variant) {
            continue; // std::cmp::Ordering::{Less, Equal, Greater}
        }
        let offset = ctx.sig[i].start;
        if variant == "SeqCst" {
            emit(
                ctx,
                analysis,
                offset,
                "atomics-ordering",
                "`Ordering::SeqCst` is a smell: it hides which pairwise ordering \
                 the algorithm actually needs — name the acquire/release pair, or \
                 waive this line with the reason SeqCst is load-bearing"
                    .into(),
            );
            continue;
        }
        match &policy {
            None => {
                emit(
                    ctx,
                    analysis,
                    offset,
                    "atomics-ordering",
                    format!(
                        "`Ordering::{variant}` without a declared policy — add \
                         `// conformance: atomics(…)` naming every ordering this \
                         file's protocol uses"
                    ),
                );
            }
            Some(set) => {
                let lowered = variant.to_ascii_lowercase();
                if !set.contains(&lowered) {
                    emit(
                        ctx,
                        analysis,
                        offset,
                        "atomics-ordering",
                        format!(
                            "`Ordering::{variant}` is outside this file's declared \
                             atomics policy ({}) — extend the pragma deliberately \
                             or use a declared ordering",
                            set.join(", ")
                        ),
                    );
                }
            }
        }
    }
}

/// R7 — blocking calls in files declared `conformance: reactor-path`.
fn blocking_call(ctx: &FileCtx<'_>, analysis: &mut FileAnalysis) {
    if !analysis.facts.pragmas.reactor_path {
        return;
    }
    for i in 0..ctx.sig.len() {
        if ctx.kind(i) != Some(TokenKind::Ident) {
            continue;
        }
        let text = ctx.text(i);
        if !BLOCKING_CALLS.contains(&text) {
            continue;
        }
        // Call-shaped: preceded by `.` or `::`, followed by `(`.
        let preceded = i > 0 && (ctx.text(i - 1) == "." || ctx.text(i - 1) == ":");
        if !preceded || ctx.text(i + 1) != "(" {
            continue;
        }
        emit(
            ctx,
            analysis,
            ctx.sig[i].start,
            "blocking-call",
            format!(
                "`{text}(…)` in a reactor-path file: the hot loop must never \
                 block — hand the work to the pool, or use the try_/deadline \
                 variant"
            ),
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lib_file(rel: &str, crate_name: Option<&str>) -> SourceFile {
        SourceFile {
            rel: rel.into(),
            crate_name: crate_name.map(str::to_string),
            role: Role::Lib,
        }
    }

    fn rules_of(a: &FileAnalysis) -> Vec<(&str, u64)> {
        a.findings.iter().map(|f| (f.rule.as_str(), f.line)).collect()
    }

    #[test]
    fn clock_reads_are_flagged_and_annotatable() {
        let src = "fn f() {\n\
                   let t = std::time::Instant::now();\n\
                   let s = SystemTime::now(); // conformance: allow(determinism)\n\
                   }\n";
        let a = analyze_file(&lib_file("crates/net/src/x.rs", Some("net")), src);
        assert_eq!(rules_of(&a), vec![("determinism", 2)]);
        assert_eq!(a.suppressed_total(), 1);
    }

    #[test]
    fn standalone_annotation_covers_next_line() {
        let src = "fn f() {\n\
                   // conformance: allow(determinism) — measured, not emitted\n\
                   let t = Instant::now();\n\
                   }\n";
        let a = analyze_file(&lib_file("crates/net/src/x.rs", Some("net")), src);
        assert!(a.findings.is_empty());
        assert_eq!(a.suppressed_total(), 1);
        assert_eq!(a.suppressed, vec![("determinism".to_string(), 1)]);
    }

    #[test]
    fn hash_containers_flagged_only_in_output_crates() {
        let src = "use std::collections::HashMap;\nfn f(m: &HashMap<u32, u32>) {}\n";
        let in_core = analyze_file(&lib_file("crates/core/src/x.rs", Some("core")), src);
        assert_eq!(in_core.findings.len(), 2);
        assert!(in_core.findings.iter().all(|f| f.rule == "determinism"));
        let in_net = analyze_file(&lib_file("crates/net/src/x.rs", Some("net")), src);
        assert!(in_net.findings.is_empty());
    }

    #[test]
    fn panic_policy_flags_unwrap_expect_panic_todo() {
        let src = "fn f(x: Option<u32>) -> u32 {\n\
                   let a = x.unwrap();\n\
                   let b = x.expect(\"msg\");\n\
                   if a == b { panic!(\"boom\") }\n\
                   todo!()\n\
                   }\n";
        let a = analyze_file(&lib_file("crates/html/src/x.rs", Some("html")), src);
        assert_eq!(
            rules_of(&a),
            vec![
                ("panic-policy", 2),
                ("panic-policy", 3),
                ("panic-policy", 4),
                ("panic-policy", 5),
            ]
        );
    }

    #[test]
    fn panic_policy_ignores_lookalikes_and_strings() {
        let src = "fn f(x: Option<u32>) -> u32 {\n\
                   let a = x.unwrap_or(7);\n\
                   let b = x.unwrap_or_else(|| 9);\n\
                   let s = \"don't .unwrap() or panic! here\";\n\
                   let p = std::panic::Location::caller();\n\
                   #[should_panic]\n\
                   a + b\n\
                   }\n";
        let a = analyze_file(&lib_file("crates/html/src/x.rs", Some("html")), src);
        assert!(a.findings.is_empty(), "{:?}", a.findings);
    }

    #[test]
    fn cfg_test_regions_are_exempt() {
        let src = "fn lib_code(x: Option<u32>) -> Option<u32> { x }\n\
                   #[cfg(test)]\n\
                   mod tests {\n\
                   #[test]\n\
                   fn t() { lib_code(None).unwrap(); panic!(\"fine in tests\"); }\n\
                   }\n";
        let a = analyze_file(&lib_file("crates/html/src/x.rs", Some("html")), src);
        assert!(a.findings.is_empty(), "{:?}", a.findings);
    }

    #[test]
    fn cfg_test_mod_declaration_reports_module_name() {
        let src = "#[cfg(test)]\nmod proptests;\nfn f(x: Option<u32>) { x.unwrap(); }\n";
        let a = analyze_file(&lib_file("crates/html/src/lib.rs", Some("html")), src);
        assert_eq!(a.test_modules, vec!["proptests".to_string()]);
        // The unwrap outside the region is still caught.
        assert_eq!(rules_of(&a), vec![("panic-policy", 3)]);
    }

    #[test]
    fn lock_discipline_flags_raw_std_locks() {
        let src = "use std::sync::{Arc, Mutex};\n\
                   use std::sync::RwLock;\n\
                   static M: std::sync::Mutex<u32> = std::sync::Mutex::new(0);\n";
        let a = analyze_file(&lib_file("crates/net/src/x.rs", Some("net")), src);
        assert_eq!(
            rules_of(&a),
            vec![
                ("lock-discipline", 1),
                ("lock-discipline", 2),
                ("lock-discipline", 3),
                ("lock-discipline", 3),
            ]
        );
    }

    #[test]
    fn lock_discipline_exempts_foundation_and_atomics() {
        let src = "use std::sync::{Arc, Mutex};\n";
        let foundation =
            analyze_file(&lib_file("crates/foundation/src/sync.rs", Some("foundation")), src);
        assert!(foundation.findings.is_empty());
        let atomics = "use std::sync::atomic::{AtomicU64, Ordering};\nuse std::sync::Arc;\n";
        let a = analyze_file(&lib_file("crates/net/src/x.rs", Some("net")), atomics);
        assert!(a.findings.is_empty());
    }

    #[test]
    fn foundation_sync_locks_pass() {
        let src = "use foundation::sync::{Mutex, RwLock};\nfn f() { let m = Mutex::new(0); }\n";
        let a = analyze_file(&lib_file("crates/net/src/x.rs", Some("net")), src);
        assert!(a.findings.is_empty());
    }

    #[test]
    fn tests_and_benches_roles_are_never_scanned() {
        let src = "fn t() { None::<u32>.unwrap(); let i = Instant::now(); }\n";
        for role in [Role::Test, Role::Bench] {
            let file = SourceFile { rel: "tests/x.rs".into(), crate_name: None, role };
            let a = analyze_file(&file, src);
            assert!(a.findings.is_empty());
        }
    }

    #[test]
    fn bins_skip_panic_policy_but_not_determinism() {
        let src = "fn main() { None::<u32>.unwrap(); let i = Instant::now(); }\n";
        let file = SourceFile {
            rel: "crates/telemetry/src/bin/x.rs".into(),
            crate_name: Some("telemetry".into()),
            role: Role::Bin,
        };
        let a = analyze_file(&file, src);
        assert_eq!(rules_of(&a), vec![("determinism", 1)]);
    }

    #[test]
    fn unsafe_without_safety_is_flagged_and_inventoried() {
        let src = "pub fn f(p: *const u8) -> u8 {\n\
                   unsafe { *p }\n\
                   }\n";
        let a = analyze_file(&lib_file("crates/foundation/src/x.rs", Some("foundation")), src);
        assert_eq!(rules_of(&a), vec![("unsafe-audit", 2)]);
        assert_eq!(a.unsafe_sites.len(), 1);
        assert_eq!(a.unsafe_sites[0].kind, "block");
    }

    #[test]
    fn safety_comment_above_or_trailing_documents_the_site() {
        let src = "pub fn f(p: *const u8) -> u8 {\n\
                   // SAFETY: caller guarantees p is valid for reads.\n\
                   unsafe { *p }\n\
                   }\n\
                   pub fn g(p: *const u8) -> u8 {\n\
                   unsafe { *p } // SAFETY: ditto.\n\
                   }\n";
        let a = analyze_file(&lib_file("crates/foundation/src/x.rs", Some("foundation")), src);
        assert!(a.findings.is_empty(), "{:?}", a.findings);
        assert_eq!(a.unsafe_sites.len(), 2, "documented sites are still inventoried");
    }

    #[test]
    fn safety_contiguity_breaks_on_code_lines() {
        let src = "// SAFETY: this comment is detached from the site below.\n\
                   pub fn noise() {}\n\
                   pub fn f(p: *const u8) -> u8 { unsafe { *p } }\n";
        let a = analyze_file(&lib_file("crates/foundation/src/x.rs", Some("foundation")), src);
        assert_eq!(rules_of(&a), vec![("unsafe-audit", 3)]);
    }

    #[test]
    fn unsafe_impl_and_fn_kinds_are_classified() {
        let src = "// SAFETY: all fields are Send.\n\
                   unsafe impl Send for X {}\n\
                   // SAFETY: contract documented on the trait.\n\
                   pub unsafe fn raw() {}\n";
        let a = analyze_file(&lib_file("crates/foundation/src/x.rs", Some("foundation")), src);
        assert!(a.findings.is_empty(), "{:?}", a.findings);
        let kinds: Vec<&str> = a.unsafe_sites.iter().map(|s| s.kind.as_str()).collect();
        assert_eq!(kinds, vec!["impl", "fn"]);
    }

    #[test]
    fn atomics_require_a_policy_pragma() {
        let src = "use std::sync::atomic::{AtomicU64, Ordering};\n\
                   fn f(a: &AtomicU64) { a.load(Ordering::Relaxed); }\n";
        let a = analyze_file(&lib_file("crates/net/src/x.rs", Some("net")), src);
        assert_eq!(rules_of(&a), vec![("atomics-ordering", 2)]);
    }

    #[test]
    fn declared_policy_grants_its_orderings_only() {
        let src = "// conformance: atomics(relaxed, acquire)\n\
                   use std::sync::atomic::{AtomicU64, Ordering};\n\
                   fn f(a: &AtomicU64) {\n\
                   a.load(Ordering::Acquire);\n\
                   a.store(1, Ordering::Release);\n\
                   }\n";
        let a = analyze_file(&lib_file("crates/net/src/x.rs", Some("net")), src);
        assert_eq!(rules_of(&a), vec![("atomics-ordering", 5)]);
        assert!(a.findings[0].message.contains("Release"), "{}", a.findings[0].message);
    }

    #[test]
    fn seqcst_is_flagged_even_under_a_policy() {
        let src = "// conformance: atomics(relaxed, acquire, release, acqrel)\n\
                   use std::sync::atomic::{AtomicU64, Ordering};\n\
                   fn f(a: &AtomicU64) { a.load(Ordering::SeqCst); }\n";
        let a = analyze_file(&lib_file("crates/net/src/x.rs", Some("net")), src);
        assert_eq!(rules_of(&a), vec![("atomics-ordering", 3)]);
        assert!(a.findings[0].message.contains("SeqCst"));
    }

    #[test]
    fn cmp_ordering_variants_are_not_atomics() {
        let src = "fn f(a: u32, b: u32) -> std::cmp::Ordering {\n\
                   if a < b { std::cmp::Ordering::Less } else { Ordering::Equal }\n\
                   }\n";
        let a = analyze_file(&lib_file("crates/text/src/x.rs", Some("text")), src);
        assert!(a.findings.is_empty(), "{:?}", a.findings);
    }

    #[test]
    fn seqcst_pragma_name_is_rejected() {
        let src = "// conformance: atomics(seqcst)\n\
                   use std::sync::atomic::{AtomicU64, Ordering};\n\
                   fn f(a: &AtomicU64) { a.load(Ordering::SeqCst); }\n";
        let a = analyze_file(&lib_file("crates/net/src/x.rs", Some("net")), src);
        let rules: Vec<&str> = a.findings.iter().map(|f| f.rule.as_str()).collect();
        assert_eq!(rules, vec!["atomics-ordering", "atomics-ordering"]);
        assert!(a.findings[0].message.contains("not grantable"));
    }

    #[test]
    fn blocking_calls_flagged_only_in_reactor_path_files() {
        let src = "fn f(m: &foundation::sync::Mutex<u32>) {\n\
                   std::thread::sleep(std::time::Duration::from_millis(1));\n\
                   let g = m.lock();\n\
                   let t = m.try_lock();\n\
                   }\n";
        let plain = analyze_file(&lib_file("crates/net/src/x.rs", Some("net")), src);
        assert!(plain.findings.iter().all(|f| f.rule != "blocking-call"));

        let reactor = format!("// conformance: reactor-path\n{src}");
        let a = analyze_file(&lib_file("crates/net/src/x.rs", Some("net")), &reactor);
        assert_eq!(
            rules_of(&a),
            vec![("blocking-call", 3), ("blocking-call", 4)],
            "sleep and lock flagged; try_lock sanctioned"
        );
    }

    #[test]
    fn stale_suppressions_are_reported_after_use_marking() {
        let src = "// conformance: allow(determinism) — nothing here reads a clock\n\
                   fn f() {}\n\
                   fn g(x: Option<u32>) -> u32 {\n\
                   x.unwrap() // conformance: allow(panic-policy) — checked by caller\n\
                   }\n";
        let file = lib_file("crates/net/src/x.rs", Some("net"));
        let a = analyze_file(&file, src);
        assert!(a.findings.is_empty());
        let stale = a.stale_suppressions(&file);
        assert_eq!(stale.len(), 1);
        assert_eq!(stale[0].line, 1);
        assert!(stale[0].message.contains("determinism"));
    }

    #[test]
    fn unknown_rule_slugs_are_flagged_but_placeholders_ignored() {
        let src = "//! Docs show `// conformance: allow(<rule>)` syntax.\n\
                   // conformance: allow(panic-polcy) — typo'd, waives nothing\n\
                   fn f() {}\n";
        let file = lib_file("crates/net/src/x.rs", Some("net"));
        let a = analyze_file(&file, src);
        let stale = a.stale_suppressions(&file);
        assert_eq!(stale.len(), 1, "{stale:?}");
        assert!(stale[0].message.contains("unknown rule"));
    }
}
