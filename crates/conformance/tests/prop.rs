//! Property tests: the conformance lexer's and resolver's totality
//! contracts.
//!
//! The analyzer's rules are only as trustworthy as the scanner beneath
//! them, and the scanner sees every byte of the workspace — so it must
//! be total. These properties pin the contract the unit tests spot-check:
//! any input tokenizes without panicking, and the produced spans tile the
//! input exactly (start at 0, no gaps, no overlaps, no empty tokens, end
//! at `len`). The structural resolver layered on the token stream
//! inherits the same obligation: any input resolves to well-formed
//! [`conformance::resolve::FileFacts`] without panicking.

use conformance::lexer::tokenize;
use conformance::resolve::resolve_file;
use foundation::check::pattern;
use foundation::prop_check;

fn assert_tiles(src: &str) {
    let tokens = tokenize(src);
    let mut pos = 0;
    for t in &tokens {
        assert_eq!(t.start, pos, "gap or overlap at byte {pos} in {src:?}");
        assert!(t.end > t.start, "empty token at byte {pos} in {src:?}");
        pos = t.end;
    }
    assert_eq!(pos, src.len(), "tail not covered in {src:?}");
}

prop_check! {
    /// Arbitrary printable soup (any chars, any length) scans totally.
    fn scanner_total_on_arbitrary_input(input in pattern("\\PC{0,300}")) {
        assert_tiles(&input);
    }

    /// Soup biased toward the modal constructs — quotes, raw-string
    /// guards, comment markers, escapes — where a lexer state machine
    /// would get stuck or double-consume if it could. Unterminated forms
    /// must run to EOF and still tile.
    fn scanner_total_on_rust_soup(
        input in pattern("(\"|'|//|/\\*|\\*/|r#|#|b|\\\\n|\\\\|[a-z0-9_ ]|\n){0,120}"),
    ) {
        assert_tiles(&input);
    }

    /// Tokens survive re-slicing: every span is a valid `str` range (the
    /// scanner never splits a UTF-8 character).
    fn spans_are_char_boundaries(input in pattern("\\PC{0,200}")) {
        for t in tokenize(&input) {
            assert!(input.get(t.start..t.end).is_some(),
                "span {}..{} splits a char in {input:?}", t.start, t.end);
        }
    }

    /// The resolver is total on arbitrary soup: no input panics, and the
    /// facts it returns are structurally sound (sorted idents, in-bounds
    /// spans).
    fn resolver_total_on_arbitrary_input(input in pattern("\\PC{0,300}")) {
        let facts = resolve_file(&input);
        assert!(facts.idents.windows(2).all(|w| w[0] < w[1]),
            "idents sorted and deduped in {input:?}");
        for m in &facts.mods {
            assert!(m.span.1 <= input.len(), "mod span in bounds in {input:?}");
        }
        for u in &facts.uses {
            assert!(u.span.1 <= input.len(), "use span in bounds in {input:?}");
        }
    }

    /// Soup biased toward the declarations the resolver cares about —
    /// `mod`/`use`/`pub` headers, path separators, pragma comments —
    /// including malformed and truncated forms, which must degrade to
    /// partial facts, never a panic.
    fn resolver_total_on_item_soup(
        input in pattern(
            "(mod |use |pub |pub\\(crate\\) |fn |struct |::|\\{|\\}|;|,|\\*| as |\
             // conformance: |atomics\\(|reactor-path|[a-z_]{1,6}|\n){0,80}",
        ),
    ) {
        let facts = resolve_file(&input);
        // Out-of-line mod declarations the resolver reports really are
        // `mod <ident> ;` shaped in the source.
        for m in facts.mods.iter().filter(|m| !m.inline) {
            let text = &input[m.span.0..m.span.1];
            assert!(text.starts_with("mod") || text.starts_with("pub"),
                "mod span {text:?} in {input:?}");
        }
    }

    /// Every `use` root the resolver reports is an identifier that
    /// occurs in the source (roots feed the arch pass's edge checks, so
    /// a fabricated root would fabricate an architecture edge).
    fn use_roots_occur_in_source(
        input in pattern("(use |::|\\{|\\}|;|,|crate|super|self|std|[a-z_]{1,8}| |\n){0,60}"),
    ) {
        let facts = resolve_file(&input);
        for u in &facts.uses {
            assert!(input.contains(&u.root), "root {:?} not in {input:?}", u.root);
        }
    }
}
