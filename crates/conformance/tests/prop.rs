//! Property tests: the conformance lexer's totality contract.
//!
//! The analyzer's rules are only as trustworthy as the scanner beneath
//! them, and the scanner sees every byte of the workspace — so it must
//! be total. These properties pin the contract the unit tests spot-check:
//! any input tokenizes without panicking, and the produced spans tile the
//! input exactly (start at 0, no gaps, no overlaps, no empty tokens, end
//! at `len`).

use conformance::lexer::tokenize;
use foundation::check::pattern;
use foundation::prop_check;

fn assert_tiles(src: &str) {
    let tokens = tokenize(src);
    let mut pos = 0;
    for t in &tokens {
        assert_eq!(t.start, pos, "gap or overlap at byte {pos} in {src:?}");
        assert!(t.end > t.start, "empty token at byte {pos} in {src:?}");
        pos = t.end;
    }
    assert_eq!(pos, src.len(), "tail not covered in {src:?}");
}

prop_check! {
    /// Arbitrary printable soup (any chars, any length) scans totally.
    fn scanner_total_on_arbitrary_input(input in pattern("\\PC{0,300}")) {
        assert_tiles(&input);
    }

    /// Soup biased toward the modal constructs — quotes, raw-string
    /// guards, comment markers, escapes — where a lexer state machine
    /// would get stuck or double-consume if it could. Unterminated forms
    /// must run to EOF and still tile.
    fn scanner_total_on_rust_soup(
        input in pattern("(\"|'|//|/\\*|\\*/|r#|#|b|\\\\n|\\\\|[a-z0-9_ ]|\n){0,120}"),
    ) {
        assert_tiles(&input);
    }

    /// Tokens survive re-slicing: every span is a valid `str` range (the
    /// scanner never splits a UTF-8 character).
    fn spans_are_char_boundaries(input in pattern("\\PC{0,200}")) {
        for t in tokenize(&input) {
            assert!(input.get(t.start..t.end).is_some(),
                "span {}..{} splits a char in {input:?}", t.start, t.end);
        }
    }
}
