//! Fixture-workspace tests: the analyzer against a synthetic two-crate
//! tree it can mutate freely.
//!
//! The unit tests pin each rule on snippets and the integration tests
//! pin "this repo is clean" — what neither shows is the analyzer
//! *catching* a violation end-to-end through [`conformance::run`]:
//! discovery, resolution, the architecture pass, and the report
//! assembly all firing on a tree that genuinely contains the defect.
//! Each scenario here starts from a clean fixture, injects exactly one
//! defect, and asserts exactly one finding of exactly the right rule —
//! the must-fail proof CI's gate relies on, kept as a test.

use std::fs;
use std::path::{Path, PathBuf};

fn write(root: &Path, rel: &str, text: &str) {
    let path = root.join(rel);
    fs::create_dir_all(path.parent().expect("fixture paths have parents")).expect("mkdir");
    fs::write(path, text).expect("write fixture file");
}

fn append(root: &Path, rel: &str, text: &str) {
    let path = root.join(rel);
    let mut current = fs::read_to_string(&path).expect("read fixture file");
    current.push_str(text);
    fs::write(path, current).expect("append fixture file");
}

/// Build a clean two-crate fixture workspace under the test scratch
/// dir: `alpha` (leaf) and `beta` (depends on `alpha`), plus a virtual
/// workspace root and a freshly generated `ARCH_baseline.json`.
fn fixture(tag: &str) -> PathBuf {
    let root = Path::new(env!("CARGO_TARGET_TMPDIR")).join(format!("conf_fixture_{tag}"));
    let _ = fs::remove_dir_all(&root);
    write(
        &root,
        "Cargo.toml",
        "[workspace]\nmembers = [\"crates/alpha\", \"crates/beta\"]\nresolver = \"2\"\n",
    );
    write(
        &root,
        "crates/alpha/Cargo.toml",
        "[package]\nname = \"alpha\"\nversion = \"0.1.0\"\nedition = \"2021\"\n",
    );
    write(&root, "crates/alpha/src/lib.rs", "//! Alpha: the leaf crate.\n\npub fn greet() -> u32 {\n    1\n}\n");
    write(
        &root,
        "crates/beta/Cargo.toml",
        "[package]\nname = \"beta\"\nversion = \"0.1.0\"\nedition = \"2021\"\n\n\
         [dependencies]\nalpha = { path = \"../alpha\" }\n",
    );
    write(
        &root,
        "crates/beta/src/lib.rs",
        "//! Beta: depends on alpha.\n\nuse alpha::greet;\n\npub fn double() -> u32 {\n    greet() * 2\n}\n",
    );
    write(
        &root,
        "crates/beta/tests/basic.rs",
        "use beta::double;\n\n#[test]\nfn doubles() {\n    assert_eq!(double(), 2);\n}\n",
    );
    conformance::write_arch_baseline(&root).expect("baseline");
    root
}

fn run(root: &Path) -> conformance::report::LintReport {
    conformance::run(root).expect("analyzer runs")
}

#[test]
fn clean_fixture_is_clean_and_deterministic() {
    let root = fixture("clean");
    let a = run(&root);
    let rendered: Vec<String> = a.findings.iter().map(|f| f.to_string()).collect();
    assert!(a.clean(), "clean fixture must lint clean; findings:\n{}", rendered.join("\n"));
    assert_eq!(a.files_scanned, 3);
    assert_eq!(a.manifests_scanned, 3);
    let b = run(&root);
    assert_eq!(
        foundation::json::to_string_pretty(&a),
        foundation::json::to_string_pretty(&b),
        "double run is byte-identical"
    );
}

#[test]
fn layering_violation_produces_exactly_one_arch_finding() {
    let root = fixture("layering");
    // alpha reaching *up* into beta: a source-level edge its manifest
    // never declared.
    append(&root, "crates/alpha/src/lib.rs", "\nuse beta::double;\n\nfn cheat() -> u32 {\n    double()\n}\n");
    let report = run(&root);
    assert_eq!(report.findings.len(), 1, "exactly one finding: {:?}", report.findings);
    let f = &report.findings[0];
    assert_eq!(f.rule, "arch");
    assert_eq!(f.file, "crates/alpha/src/lib.rs");
    assert!(
        f.message.contains("undeclared edge") && f.message.contains("`beta`"),
        "names the undeclared crate: {}",
        f.message
    );
}

#[test]
fn undeclared_manifest_edge_is_caught_against_the_baseline() {
    let root = fixture("baseline_edge");
    // The CI gate's sed injection, as a test: a manifest edge appears
    // without the committed baseline being regenerated.
    append(&root, "crates/alpha/Cargo.toml", "\n[dependencies]\nbeta = { path = \"../beta\" }\n");
    let report = run(&root);
    // One baseline-diff finding for the new edge, plus the cycle the
    // edge closes (alpha → beta → alpha) — the analyzer reports both
    // facts, each exactly once.
    let diffs: Vec<_> =
        report.findings.iter().filter(|f| f.message.contains("undeclared edge")).collect();
    assert_eq!(diffs.len(), 1, "one undeclared-edge finding: {:?}", report.findings);
    assert!(diffs[0].message.contains("`alpha` → `beta`"), "{}", diffs[0].message);
    let cycles: Vec<_> =
        report.findings.iter().filter(|f| f.message.contains("dependency cycle")).collect();
    assert_eq!(cycles.len(), 1, "the closed cycle is reported: {:?}", report.findings);
    assert_eq!(report.findings.len(), 2, "nothing else fires: {:?}", report.findings);
}

#[test]
fn unannotated_unsafe_produces_exactly_one_finding() {
    let root = fixture("unsafe");
    append(&root, "crates/alpha/src/lib.rs", "\nfn danger() {\n    unsafe { std::ptr::null::<u8>(); }\n}\n");
    let report = run(&root);
    assert_eq!(report.findings.len(), 1, "exactly one finding: {:?}", report.findings);
    let f = &report.findings[0];
    assert_eq!(f.rule, "unsafe-audit");
    assert_eq!(f.file, "crates/alpha/src/lib.rs");
    // The site is inventoried even while undocumented — the inventory
    // describes reality, the finding demands the justification.
    assert_eq!(report.unsafe_inventory.len(), 1);
    assert_eq!(report.unsafe_inventory[0].kind, "block");
}

#[test]
fn safety_comment_clears_the_unsafe_finding() {
    let root = fixture("unsafe_ok");
    append(
        &root,
        "crates/alpha/src/lib.rs",
        "\nfn danger() {\n    // SAFETY: null is a valid const pointer; nothing is dereferenced.\n    unsafe { std::ptr::null::<u8>(); }\n}\n",
    );
    let report = run(&root);
    assert!(report.clean(), "documented unsafe is clean: {:?}", report.findings);
    assert_eq!(report.unsafe_inventory.len(), 1, "and still inventoried");
}

#[test]
fn reactor_path_sleep_produces_exactly_one_finding() {
    let root = fixture("reactor");
    append(
        &root,
        "crates/alpha/src/lib.rs",
        "\n// conformance: reactor-path\nfn nap() {\n    std::thread::sleep(std::time::Duration::from_millis(1));\n}\n",
    );
    let report = run(&root);
    assert_eq!(report.findings.len(), 1, "exactly one finding: {:?}", report.findings);
    let f = &report.findings[0];
    assert_eq!(f.rule, "blocking-call");
    assert!(f.message.contains("sleep"), "{}", f.message);
    // Without the pragma the same code is rule-silent (the rule arms
    // per-file, not globally).
    let root2 = fixture("reactor_unarmed");
    append(
        &root2,
        "crates/alpha/src/lib.rs",
        "\nfn nap() {\n    std::thread::sleep(std::time::Duration::from_millis(1));\n}\n",
    );
    assert!(run(&root2).clean(), "no pragma, no blocking-call findings");
}

#[test]
fn seqcst_is_flagged_even_under_a_policy() {
    let root = fixture("seqcst");
    append(
        &root,
        "crates/alpha/src/lib.rs",
        "\n// conformance: atomics(relaxed)\nuse std::sync::atomic::{AtomicU32, Ordering};\n\n\
         static N: AtomicU32 = AtomicU32::new(0);\n\nfn bump() -> u32 {\n    N.fetch_add(1, Ordering::SeqCst)\n}\n",
    );
    let report = run(&root);
    assert_eq!(report.findings.len(), 1, "exactly one finding: {:?}", report.findings);
    assert_eq!(report.findings[0].rule, "atomics-ordering");
}

#[test]
fn stale_allow_produces_a_stale_suppression_finding() {
    let root = fixture("stale");
    append(
        &root,
        "crates/alpha/src/lib.rs",
        "\n// conformance: allow(determinism) — waives nothing\nfn idle() {}\n",
    );
    let report = run(&root);
    assert_eq!(report.findings.len(), 1, "exactly one finding: {:?}", report.findings);
    assert_eq!(report.findings[0].rule, "stale-suppression");
}

#[test]
fn missing_baseline_is_itself_a_finding() {
    let root = fixture("no_baseline");
    fs::remove_file(root.join("ARCH_baseline.json")).expect("remove baseline");
    let report = run(&root);
    let arch: Vec<_> = report.findings.iter().filter(|f| f.rule == "arch").collect();
    assert_eq!(arch.len(), 1, "one missing-baseline finding: {:?}", report.findings);
    assert!(arch[0].message.contains("ARCH_baseline.json"), "{}", arch[0].message);
}
