//! Deterministic random numbers: a ChaCha8 stream-cipher RNG plus the
//! `rand`-shaped trait surface the codebase grew up with.
//!
//! The generator is a faithful ChaCha implementation (the RFC 8439 core
//! with 8 double-round-pairs' worth of quarter rounds, i.e. 8 ChaCha
//! rounds) keyed by a SplitMix64 expansion of a `u64` seed. The exact
//! stream for a given seed is part of the workspace's compatibility
//! contract: the determinism tests assert byte-identical study reports
//! across runs, so changing this module's output is a breaking change.

use std::ops::{Range, RangeInclusive};

/// SplitMix64 — the canonical 64-bit mixer (Steele et al.). Used to
/// expand seeds and to decorrelate per-case seeds in [`crate::check`].
#[inline]
pub fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// The core random source: raw words and bytes.
pub trait Rng {
    /// Next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32;

    /// Next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Fill `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }
}

/// Construction from a 64-bit seed.
pub trait SeedableRng: Sized {
    /// Build a generator whose stream is a pure function of `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Convenience sampling methods over any [`Rng`].
pub trait RngExt: Rng {
    /// Uniform sample from `range` (`a..b` or `a..=b`; integers and
    /// floats). Panics on an empty range.
    fn random_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    /// `true` with probability `p` (clamped to `[0, 1]`).
    fn random_bool(&mut self, p: f64) -> bool {
        if p >= 1.0 {
            return true;
        }
        if p <= 0.0 {
            return false;
        }
        self.random_f64() < p
    }

    /// Uniform `f64` in `[0, 1)` with 53 random bits.
    fn random_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / ((1u64 << 53) as f64))
    }
}

impl<R: Rng + ?Sized> RngExt for R {}

/// Uniform selection from slices (the `rand` `IndexedRandom` surface).
pub trait IndexedRandom {
    /// Element type.
    type Item;

    /// A uniformly random element, or `None` when empty.
    fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
}

impl<T> IndexedRandom for [T] {
    type Item = T;

    fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&T> {
        if self.is_empty() {
            None
        } else {
            let i = rng.random_range(0..self.len());
            Some(&self[i])
        }
    }
}

/// A range that knows how to sample itself uniformly.
pub trait SampleRange<T> {
    /// Draw one uniform sample.
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> T;
}

/// Element types that can be drawn uniformly from a range. A single
/// generic `SampleRange` impl keys on this trait so `rng.random_range`
/// infers the element type from untyped literals (`0.05..0.6`).
pub trait SampleUniform: Copy + PartialOrd {
    /// Uniform sample from `[lo, hi)` (`inclusive == false`) or
    /// `[lo, hi]` (`inclusive == true`). Panics on an empty range.
    fn sample_uniform<R: Rng + ?Sized>(lo: Self, hi: Self, inclusive: bool, rng: &mut R) -> Self;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> T {
        T::sample_uniform(self.start, self.end, false, rng)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> T {
        T::sample_uniform(*self.start(), *self.end(), true, rng)
    }
}

/// Widening-multiply bounded sample in `[0, span)`; `span == 0` means
/// the full 64-bit range.
#[inline]
fn bounded_u64<R: Rng + ?Sized>(rng: &mut R, span: u64) -> u64 {
    if span == 0 {
        return rng.next_u64();
    }
    // Lemire-style widening multiply. Deterministic, single draw; the
    // modulo bias at 64-bit width is immaterial for simulation use.
    ((rng.next_u64() as u128 * span as u128) >> 64) as u64
}

macro_rules! int_sample_uniform {
    ($($t:ty => $wide:ty),+ $(,)?) => {$(
        impl SampleUniform for $t {
            fn sample_uniform<R: Rng + ?Sized>(
                lo: $t,
                hi: $t,
                inclusive: bool,
                rng: &mut R,
            ) -> $t {
                let span = if inclusive {
                    assert!(lo <= hi, "cannot sample empty range");
                    // Span of 0 encodes the full 64-bit range.
                    (hi as $wide).wrapping_sub(lo as $wide).wrapping_add(1) as u64
                } else {
                    assert!(lo < hi, "cannot sample empty range");
                    (hi as $wide).wrapping_sub(lo as $wide) as u64
                };
                (lo as $wide).wrapping_add(bounded_u64(rng, span) as $wide) as $t
            }
        }
    )+};
}

int_sample_uniform! {
    u8 => u64, u16 => u64, u32 => u64, u64 => u64, usize => u64,
    i8 => i64, i16 => i64, i32 => i64, i64 => i64, isize => i64,
}

macro_rules! float_sample_uniform {
    ($($t:ty),+) => {$(
        impl SampleUniform for $t {
            fn sample_uniform<R: Rng + ?Sized>(
                lo: $t,
                hi: $t,
                inclusive: bool,
                rng: &mut R,
            ) -> $t {
                if inclusive {
                    assert!(lo <= hi, "cannot sample empty range");
                } else {
                    assert!(lo < hi, "cannot sample empty range");
                }
                let unit = (rng.next_u64() >> 11) as f64 * (1.0 / ((1u64 << 53) as f64));
                let v = (lo as f64 + unit * (hi as f64 - lo as f64)) as $t;
                // Guard against landing exactly on the excluded bound
                // after rounding at low precision.
                if !inclusive && v >= hi {
                    lo
                } else {
                    v
                }
            }
        }
    )+};
}

float_sample_uniform!(f32, f64);

/// The ChaCha8 stream-cipher RNG — the workspace's one true generator.
///
/// Seeded via [`SeedableRng::seed_from_u64`]; the 256-bit key is the
/// SplitMix64 expansion of the seed, the stream position starts at
/// block 0. Cloning captures the exact stream position.
#[derive(Clone, Debug)]
pub struct ChaCha8Rng {
    /// Input block: constants, key, counter, nonce.
    state: [u32; 16],
    /// Current keystream block.
    buf: [u32; 16],
    /// Next unserved word index in `buf`; 16 means "refill".
    idx: usize,
}

const CHACHA_CONSTANTS: [u32; 4] = [0x6170_7865, 0x3320_646e, 0x7962_2d32, 0x6b20_6574];

#[inline(always)]
fn quarter_round(state: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(16);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(12);
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(8);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(7);
}

impl ChaCha8Rng {
    /// Build from a raw 256-bit key (8 little-endian words).
    pub fn from_key(key: [u32; 8]) -> ChaCha8Rng {
        let mut state = [0u32; 16];
        state[..4].copy_from_slice(&CHACHA_CONSTANTS);
        state[4..12].copy_from_slice(&key);
        // words 12..14: 64-bit block counter; 14..16: nonce (zero).
        ChaCha8Rng { state, buf: [0; 16], idx: 16 }
    }

    /// Generate the next keystream block into `buf`.
    fn refill(&mut self) {
        let mut working = self.state;
        for _ in 0..4 {
            // One double round = 8 quarter rounds; 4 double rounds = 8
            // ChaCha rounds (the "8" in ChaCha8).
            quarter_round(&mut working, 0, 4, 8, 12);
            quarter_round(&mut working, 1, 5, 9, 13);
            quarter_round(&mut working, 2, 6, 10, 14);
            quarter_round(&mut working, 3, 7, 11, 15);
            quarter_round(&mut working, 0, 5, 10, 15);
            quarter_round(&mut working, 1, 6, 11, 12);
            quarter_round(&mut working, 2, 7, 8, 13);
            quarter_round(&mut working, 3, 4, 9, 14);
        }
        for (dst, (w, s)) in self.buf.iter_mut().zip(working.iter().zip(self.state.iter())) {
            *dst = w.wrapping_add(*s);
        }
        // Advance the 64-bit block counter.
        let counter = ((self.state[13] as u64) << 32 | self.state[12] as u64).wrapping_add(1);
        self.state[12] = counter as u32;
        self.state[13] = (counter >> 32) as u32;
        self.idx = 0;
    }

    /// Number of 32-bit words served so far (diagnostics).
    pub fn word_position(&self) -> u64 {
        let blocks = (self.state[13] as u64) << 32 | self.state[12] as u64;
        blocks.saturating_sub(if self.idx < 16 { 1 } else { 0 }) * 16 + (self.idx as u64 % 16)
    }

    /// Seek the keystream to an absolute word position — the exact inverse
    /// of [`ChaCha8Rng::word_position`]. ChaCha's counter-mode construction
    /// makes this O(1): set the 64-bit block counter, regenerate at most one
    /// block, and continue. Used by checkpoint/resume machinery to restore a
    /// generator to the precise point it was snapshotted at.
    pub fn set_word_position(&mut self, pos: u64) {
        let counter = pos / 16;
        self.state[12] = counter as u32;
        self.state[13] = (counter >> 32) as u32;
        if pos.is_multiple_of(16) {
            // On a block boundary: the next draw refills from `counter`.
            self.idx = 16;
        } else {
            // Mid-block: materialize the block (refill advances the
            // counter past it, matching the forward path) and skip into it.
            self.refill();
            self.idx = (pos % 16) as usize;
        }
    }
}

impl SeedableRng for ChaCha8Rng {
    fn seed_from_u64(seed: u64) -> ChaCha8Rng {
        let mut key = [0u32; 8];
        let mut s = seed;
        for pair in key.chunks_exact_mut(2) {
            s = splitmix64(s.wrapping_add(0x9E37_79B9_7F4A_7C15));
            pair[0] = s as u32;
            pair[1] = (s >> 32) as u32;
        }
        ChaCha8Rng::from_key(key)
    }
}

impl Rng for ChaCha8Rng {
    fn next_u32(&mut self) -> u32 {
        if self.idx >= 16 {
            self.refill();
        }
        let w = self.buf[self.idx];
        self.idx += 1;
        w
    }

    fn next_u64(&mut self) -> u64 {
        let lo = self.next_u32() as u64;
        let hi = self.next_u32() as u64;
        (hi << 32) | lo
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = ChaCha8Rng::seed_from_u64(42);
        let mut b = ChaCha8Rng::seed_from_u64(42);
        for _ in 0..1000 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = ChaCha8Rng::seed_from_u64(1);
        let mut b = ChaCha8Rng::seed_from_u64(2);
        let va: Vec<u64> = (0..16).map(|_| a.next_u64()).collect();
        let vb: Vec<u64> = (0..16).map(|_| b.next_u64()).collect();
        assert_ne!(va, vb);
    }

    #[test]
    fn clone_preserves_position() {
        let mut a = ChaCha8Rng::seed_from_u64(7);
        for _ in 0..37 {
            a.next_u32();
        }
        let mut b = a.clone();
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    /// `set_word_position` is the exact inverse of `word_position`: snapshot
    /// a stream mid-flight, keep drawing, seek a fresh generator to the
    /// snapshot, and the continuation must be identical. Exercised at both
    /// mid-block offsets and exact block boundaries (pos % 16 == 0), the two
    /// branches of the seek.
    #[test]
    fn set_word_position_resumes_stream() {
        for advance in [0usize, 1, 15, 16, 17, 31, 32, 100, 160] {
            let mut a = ChaCha8Rng::seed_from_u64(77);
            for _ in 0..advance {
                a.next_u32();
            }
            let pos = a.word_position();
            assert_eq!(pos, advance as u64);
            let tail: Vec<u64> = (0..50).map(|_| a.next_u64()).collect();

            let mut b = ChaCha8Rng::seed_from_u64(77);
            b.set_word_position(pos);
            assert_eq!(b.word_position(), pos, "seek lands on the requested position");
            let resumed: Vec<u64> = (0..50).map(|_| b.next_u64()).collect();
            assert_eq!(tail, resumed, "continuation after seek(advance={advance}) diverged");
        }
    }

    #[test]
    fn range_sampling_in_bounds() {
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        for _ in 0..2000 {
            let v = rng.random_range(10..20u64);
            assert!((10..20).contains(&v));
            let w = rng.random_range(-5..=5i64);
            assert!((-5..=5).contains(&w));
            let f = rng.random_range(0.25..0.75f64);
            assert!((0.25..0.75).contains(&f));
        }
    }

    #[test]
    fn full_u64_range_supported() {
        let mut rng = ChaCha8Rng::seed_from_u64(9);
        let mut seen_high = false;
        for _ in 0..64 {
            if rng.random_range(0..=u64::MAX) > u64::MAX / 2 {
                seen_high = true;
            }
        }
        assert!(seen_high, "full-range sampling covers the upper half");
    }

    #[test]
    fn random_bool_extremes() {
        let mut rng = ChaCha8Rng::seed_from_u64(4);
        assert!(rng.random_bool(1.0));
        assert!(!rng.random_bool(0.0));
        let hits = (0..10_000).filter(|_| rng.random_bool(0.3)).count();
        assert!((2_500..3_500).contains(&hits), "p=0.3 hit rate ~30%, got {hits}");
    }

    #[test]
    fn choose_is_uniformish_and_total() {
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        let empty: [u8; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
        let items = [1u8, 2, 3, 4];
        let mut counts = [0usize; 4];
        for _ in 0..4000 {
            counts[(*items.choose(&mut rng).unwrap() - 1) as usize] += 1;
        }
        assert!(counts.iter().all(|&c| c > 700), "roughly uniform: {counts:?}");
    }

    #[test]
    fn fill_bytes_matches_words() {
        let mut a = ChaCha8Rng::seed_from_u64(8);
        let mut b = ChaCha8Rng::seed_from_u64(8);
        let mut buf = [0u8; 16];
        a.fill_bytes(&mut buf);
        let expect: [u8; 16] = {
            let mut e = [0u8; 16];
            e[..8].copy_from_slice(&b.next_u64().to_le_bytes());
            e[8..].copy_from_slice(&b.next_u64().to_le_bytes());
            e
        };
        assert_eq!(buf, expect);
    }

    #[test]
    fn splitmix_mixes() {
        assert_ne!(splitmix64(0), 0);
        assert_ne!(splitmix64(1), splitmix64(2));
    }
}
