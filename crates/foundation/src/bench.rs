//! Criterion-style benchmark harness without the `criterion` crate.
//!
//! The surface mirrors the subset of criterion's API the bench targets
//! use — [`Criterion`], [`BenchGroup`], [`Bencher`], [`BenchmarkId`],
//! and the [`criterion_group!`]/[`criterion_main!`] macros — so a bench
//! file ports by swapping `use criterion::…` for
//! `use foundation::bench::…`.
//!
//! Two run modes:
//!
//! - **quick** (default, what `cargo test` sees for `harness = false`
//!   targets): every routine runs once, proving the bench compiles and
//!   executes. No warmup, near-zero added wall time.
//! - **full** (when the process was started with `--bench`, which is
//!   what `cargo bench` passes): each routine is warmed up and then
//!   timed `sample_size` times.
//!
//! Either way the timings are appended to a merged JSON report
//! (`BENCH_report.json`, overridable via `BENCH_REPORT_PATH`) keyed by
//! benchmark id, so successive bench targets build one file.
//!
//! [`criterion_group!`]: crate::criterion_group
//! [`criterion_main!`]: crate::criterion_main

use std::fmt::Display;
use std::hint::black_box;
use std::time::{Duration, Instant};

use crate::json::Json;

pub use crate::{criterion_group, criterion_main};

/// Default sample count when the config does not override it.
const DEFAULT_SAMPLE_SIZE: usize = 50;

/// Warmup budget per benchmark in full mode.
const WARMUP: Duration = Duration::from_millis(50);

/// A benchmark identifier; renders as `function/parameter` segments.
#[derive(Debug, Clone)]
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// `function/parameter` compound id.
    pub fn new(function: impl Display, parameter: impl Display) -> BenchmarkId {
        BenchmarkId(format!("{function}/{parameter}"))
    }

    /// Id that is just the parameter (the group supplies the prefix).
    pub fn from_parameter(parameter: impl Display) -> BenchmarkId {
        BenchmarkId(parameter.to_string())
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> BenchmarkId {
        BenchmarkId(s.to_string())
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> BenchmarkId {
        BenchmarkId(s)
    }
}

/// Summary statistics for one benchmark (nanoseconds).
#[derive(Debug, Clone)]
pub struct Stats {
    /// Number of timed iterations.
    pub samples: usize,
    /// Arithmetic mean.
    pub mean_ns: f64,
    /// Median (p50).
    pub median_ns: f64,
    /// 95th percentile.
    pub p95_ns: f64,
    /// Fastest iteration.
    pub min_ns: f64,
    /// Slowest iteration.
    pub max_ns: f64,
}

impl Stats {
    fn from_samples(mut ns: Vec<u64>) -> Stats {
        if ns.is_empty() {
            return Stats {
                samples: 0,
                mean_ns: 0.0,
                median_ns: 0.0,
                p95_ns: 0.0,
                min_ns: 0.0,
                max_ns: 0.0,
            };
        }
        ns.sort_unstable();
        let n = ns.len();
        let sum: u128 = ns.iter().map(|&v| v as u128).sum();
        let pct = |p: f64| {
            let idx = ((n as f64 - 1.0) * p).round() as usize;
            ns[idx.min(n - 1)] as f64
        };
        Stats {
            samples: n,
            mean_ns: sum as f64 / n as f64,
            median_ns: pct(0.50),
            p95_ns: pct(0.95),
            min_ns: ns[0] as f64,
            max_ns: ns[n - 1] as f64,
        }
    }

    fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("samples".into(), Json::Num(self.samples as f64)),
            ("mean_ns".into(), Json::Num(self.mean_ns)),
            ("median_ns".into(), Json::Num(self.median_ns)),
            ("p95_ns".into(), Json::Num(self.p95_ns)),
            ("min_ns".into(), Json::Num(self.min_ns)),
            ("max_ns".into(), Json::Num(self.max_ns)),
        ])
    }
}

/// Collects iteration timings for one benchmark routine.
#[derive(Debug)]
pub struct Bencher {
    full: bool,
    sample_size: usize,
    samples: Vec<u64>,
}

impl Bencher {
    fn new(full: bool, sample_size: usize) -> Bencher {
        Bencher {
            full,
            sample_size,
            samples: Vec::new(),
        }
    }

    fn iters(&self) -> usize {
        if self.full {
            self.sample_size
        } else {
            1
        }
    }

    /// Time `routine` once per sample.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut routine: F) {
        if self.full {
            let start = Instant::now();
            let mut warmed = 0;
            while start.elapsed() < WARMUP && warmed < self.sample_size {
                black_box(routine());
                warmed += 1;
            }
        }
        for _ in 0..self.iters() {
            let t = Instant::now();
            black_box(routine());
            self.samples.push(t.elapsed().as_nanos() as u64);
        }
    }

    /// Time `routine` on a fresh `setup()` value per sample; setup time
    /// is excluded from the measurement.
    pub fn iter_with_setup<I, R, S, F>(&mut self, mut setup: S, mut routine: F)
    where
        S: FnMut() -> I,
        F: FnMut(I) -> R,
    {
        if self.full {
            let input = setup();
            black_box(routine(input));
        }
        for _ in 0..self.iters() {
            let input = setup();
            let t = Instant::now();
            black_box(routine(input));
            self.samples.push(t.elapsed().as_nanos() as u64);
        }
    }
}

/// Top-level harness; accumulates results and flushes the JSON report
/// when dropped (which is when a `criterion_group!` function returns).
#[derive(Debug)]
pub struct Criterion {
    sample_size: usize,
    full: bool,
    results: Vec<(String, Stats)>,
}

impl Default for Criterion {
    fn default() -> Criterion {
        let full = std::env::args().any(|a| a == "--bench");
        Criterion {
            sample_size: DEFAULT_SAMPLE_SIZE,
            full,
            results: Vec::new(),
        }
    }
}

impl Criterion {
    /// Override the timed-iteration count (full mode only).
    pub fn sample_size(mut self, n: usize) -> Criterion {
        assert!(n >= 1, "sample_size must be at least 1");
        self.sample_size = n;
        self
    }

    /// Run a single named benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Criterion
    where
        F: FnOnce(&mut Bencher),
    {
        let id = id.into().0;
        let stats = self.run(f);
        self.record(id, stats);
        self
    }

    /// Open a named group; ids inside are prefixed with `name/`.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchGroup<'_> {
        BenchGroup {
            criterion: self,
            name: name.into(),
            sample_size: None,
        }
    }

    fn run<F: FnOnce(&mut Bencher)>(&mut self, f: F) -> Stats {
        self.run_sized(self.sample_size, f)
    }

    fn run_sized<F: FnOnce(&mut Bencher)>(&mut self, sample_size: usize, f: F) -> Stats {
        let mut b = Bencher::new(self.full, sample_size);
        f(&mut b);
        Stats::from_samples(b.samples)
    }

    fn record(&mut self, id: String, stats: Stats) {
        eprintln!(
            "[bench] {id}: median {:.0} ns (n={})",
            stats.median_ns, stats.samples
        );
        self.results.push((id, stats));
    }

    fn flush(&mut self) {
        if self.results.is_empty() {
            return;
        }
        let path = report_path();
        let mut entries: Vec<(String, Json)> = match std::fs::read_to_string(&path) {
            Ok(existing) => match Json::parse(&existing) {
                Ok(Json::Obj(fields)) => fields,
                _ => Vec::new(),
            },
            Err(_) => Vec::new(),
        };
        for (id, stats) in self.results.drain(..) {
            let value = stats.to_json();
            match entries.iter_mut().find(|(k, _)| *k == id) {
                Some(slot) => slot.1 = value,
                None => entries.push((id, value)),
            }
        }
        let doc = Json::Obj(entries);
        if let Err(err) = std::fs::write(&path, doc.render_pretty() + "\n") {
            eprintln!("[bench] could not write {path}: {err}");
        }
    }
}

impl Drop for Criterion {
    fn drop(&mut self) {
        self.flush();
    }
}

fn report_path() -> String {
    std::env::var("BENCH_REPORT_PATH").unwrap_or_else(|_| "BENCH_report.json".to_string())
}

/// A named benchmark group (criterion's `BenchmarkGroup`).
#[derive(Debug)]
pub struct BenchGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: Option<usize>,
}

impl BenchGroup<'_> {
    /// Override the timed-iteration count for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n >= 1, "sample_size must be at least 1");
        self.sample_size = Some(n);
        self
    }

    fn effective_sample_size(&self) -> usize {
        self.sample_size.unwrap_or(self.criterion.sample_size)
    }

    /// Run a benchmark inside the group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnOnce(&mut Bencher),
    {
        let id = format!("{}/{}", self.name, id.into().0);
        let stats = self.criterion.run_sized(self.effective_sample_size(), f);
        self.criterion.record(id, stats);
        self
    }

    /// Run a parameterised benchmark inside the group.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, f: F) -> &mut Self
    where
        F: FnOnce(&mut Bencher, &I),
    {
        let id = format!("{}/{}", self.name, id.0);
        let stats = self
            .criterion
            .run_sized(self.effective_sample_size(), |b| f(b, input));
        self.criterion.record(id, stats);
        self
    }

    /// End the group (flushes happen on `Criterion` drop).
    pub fn finish(self) {}
}

/// Define a benchmark group function, mirroring criterion's macro.
///
/// Both forms are supported:
///
/// ```ignore
/// criterion_group!(benches, bench_a, bench_b);
/// criterion_group! {
///     name = benches;
///     config = Criterion::default().sample_size(20);
///     targets = bench_a
/// }
/// ```
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::bench::Criterion::default();
            targets = $($target),+
        }
    };
}

/// Define `main` for a `harness = false` bench target.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stats_from_sorted_samples() {
        let s = Stats::from_samples(vec![10, 20, 30, 40, 100]);
        assert_eq!(s.samples, 5);
        assert_eq!(s.min_ns, 10.0);
        assert_eq!(s.max_ns, 100.0);
        assert_eq!(s.median_ns, 30.0);
        assert!((s.mean_ns - 40.0).abs() < 1e-9);
        assert_eq!(s.p95_ns, 100.0);
    }

    #[test]
    fn quick_mode_runs_each_routine_once() {
        let mut calls = 0usize;
        let mut c = Criterion {
            sample_size: 10,
            full: false,
            results: Vec::new(),
        };
        c.bench_function("count_calls", |b| b.iter(|| calls += 1));
        assert_eq!(c.results.len(), 1);
        assert_eq!(c.results[0].0, "count_calls");
        assert_eq!(c.results[0].1.samples, 1);
        // Don't let Drop write a report file from a unit test.
        c.results.clear();
        drop(c);
        assert_eq!(calls, 1);
    }

    #[test]
    fn full_mode_collects_sample_size_timings() {
        let mut c = Criterion {
            sample_size: 7,
            full: true,
            results: Vec::new(),
        };
        {
            let mut g = c.benchmark_group("grp");
            g.sample_size(5);
            g.bench_with_input(BenchmarkId::from_parameter(3), &3u64, |b, &n| {
                b.iter_with_setup(|| n, |v| v * 2)
            });
            g.bench_function(BenchmarkId::new("f", "x"), |b| b.iter(|| 1 + 1));
            g.finish();
        }
        assert_eq!(c.results.len(), 2);
        assert_eq!(c.results[0].0, "grp/3");
        assert_eq!(c.results[0].1.samples, 5);
        assert_eq!(c.results[1].0, "grp/f/x");
        assert_eq!(c.results[1].1.samples, 5);
        c.results.clear();
    }

    #[test]
    fn report_merge_upserts_by_id() {
        let dir = std::env::temp_dir().join(format!(
            "foundation-bench-test-{}",
            std::process::id()
        ));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("BENCH_report.json");
        std::env::set_var("BENCH_REPORT_PATH", &path);
        {
            let mut c = Criterion {
                sample_size: 1,
                full: false,
                results: Vec::new(),
            };
            c.bench_function("alpha", |b| b.iter(|| 0));
        }
        {
            let mut c = Criterion {
                sample_size: 1,
                full: false,
                results: Vec::new(),
            };
            c.bench_function("alpha", |b| b.iter(|| 0));
            c.bench_function("beta", |b| b.iter(|| 0));
        }
        let text = std::fs::read_to_string(&path).unwrap();
        let doc = Json::parse(&text).unwrap();
        let fields = match doc {
            Json::Obj(fields) => fields,
            other => panic!("expected object, got {other:?}"),
        };
        let keys: Vec<&str> = fields.iter().map(|(k, _)| k.as_str()).collect();
        assert_eq!(keys, vec!["alpha", "beta"]);
        std::env::remove_var("BENCH_REPORT_PATH");
        let _ = std::fs::remove_dir_all(&dir);
    }
}
