//! Cheaply cloneable shared byte buffers (the `bytes` crate surface the
//! workspace uses: `Bytes`, `BytesMut`, `BufMut::put_slice`,
//! `freeze`).
//!
//! `Bytes` is an `Arc<[u8]>`: cloning a large listing page shares one
//! allocation between the fabric's request log and the client, which is
//! the property the HTTP layer depends on.

use std::fmt;
use std::ops::Deref;
use std::sync::Arc;

/// An immutable, reference-counted byte buffer.
#[derive(Clone, Default)]
pub struct Bytes(Arc<[u8]>);

impl Bytes {
    /// An empty buffer (no allocation).
    pub fn new() -> Bytes {
        static EMPTY: &[u8] = &[];
        Bytes(Arc::from(EMPTY))
    }

    /// Copy a slice into a fresh shared buffer.
    pub fn copy_from_slice(data: &[u8]) -> Bytes {
        Bytes(Arc::from(data))
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// `true` when empty.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// The contents as a slice (inherent, mirroring the `bytes` crate's
    /// method so call sites need no explicit trait dispatch).
    #[allow(clippy::should_implement_trait)]
    pub fn as_ref(&self) -> &[u8] {
        &self.0
    }
}

impl Deref for Bytes {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.0
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.0
    }
}

impl fmt::Debug for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Bytes({} bytes)", self.0.len())
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Bytes) -> bool {
        self.0 == other.0
    }
}

impl Eq for Bytes {}

impl std::hash::Hash for Bytes {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.0.hash(state)
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Bytes {
        Bytes(Arc::from(v.into_boxed_slice()))
    }
}

impl From<String> for Bytes {
    fn from(s: String) -> Bytes {
        Bytes::from(s.into_bytes())
    }
}

impl From<&str> for Bytes {
    fn from(s: &str) -> Bytes {
        Bytes::copy_from_slice(s.as_bytes())
    }
}

impl From<&[u8]> for Bytes {
    fn from(s: &[u8]) -> Bytes {
        Bytes::copy_from_slice(s)
    }
}

/// Append-only byte assembly; `freeze()` converts into shared
/// [`Bytes`] without copying.
#[derive(Debug, Clone, Default)]
pub struct BytesMut(Vec<u8>);

impl BytesMut {
    /// An empty builder.
    pub fn new() -> BytesMut {
        BytesMut(Vec::new())
    }

    /// Pre-allocate `cap` bytes.
    pub fn with_capacity(cap: usize) -> BytesMut {
        BytesMut(Vec::with_capacity(cap))
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// `true` when empty.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// Convert into an immutable shared buffer.
    pub fn freeze(self) -> Bytes {
        Bytes::from(self.0)
    }
}

impl Deref for BytesMut {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.0
    }
}

/// Byte-sink trait: the subset of the `bytes` crate's `BufMut` in use.
pub trait BufMut {
    /// Append a slice.
    fn put_slice(&mut self, src: &[u8]);

    /// Append a single byte.
    fn put_u8(&mut self, b: u8) {
        self.put_slice(&[b]);
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.0.extend_from_slice(src);
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_freeze_share() {
        let mut b = BytesMut::with_capacity(8);
        b.put_slice(b"hello ");
        b.put_slice(b"world");
        let frozen = b.freeze();
        let clone = frozen.clone();
        assert_eq!(&*frozen, b"hello world");
        assert_eq!(frozen, clone);
        // Cloning shares the allocation.
        assert!(std::ptr::eq(frozen.as_ref().as_ptr(), clone.as_ref().as_ptr()));
    }

    #[test]
    fn conversions() {
        assert_eq!(&*Bytes::from("abc"), b"abc");
        assert_eq!(&*Bytes::from(vec![1u8, 2]), &[1, 2]);
        assert_eq!(Bytes::copy_from_slice(b"xy").len(), 2);
        assert!(Bytes::new().is_empty());
    }
}
