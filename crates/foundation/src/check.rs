//! A minimal property-testing harness with seeded generation and
//! shrinking (replacing `proptest`).
//!
//! * [`Strategy`] — generate a random value, and propose strictly
//!   simpler variants of a failing one (`shrink`).
//! * [`pattern`] — a regex-subset string generator covering the
//!   character-class/quantifier/alternation patterns the workspace's
//!   property tests were written with.
//! * [`run`] — execute a property over N seeded cases; on failure,
//!   greedily shrink to a minimal counterexample and panic with it.
//! * [`prop_check!`] — the test-declaration macro.
//!
//! Reproducibility: every case's RNG seed derives from the property
//! name and case index; `CHECK_SEED` / `CHECK_CASES` environment
//! variables override the defaults.

use crate::rng::{splitmix64, ChaCha8Rng, Rng, RngExt, SampleRange, SeedableRng};
use std::fmt::Debug;
use std::ops::Range;
use std::panic::{catch_unwind, AssertUnwindSafe};

/// A value generator with shrinking.
pub trait Strategy {
    /// The generated value type.
    type Value: Clone + Debug;

    /// Draw one value.
    fn generate(&self, rng: &mut ChaCha8Rng) -> Self::Value;

    /// Candidate simplifications of `v` — each must stay inside this
    /// strategy's support. An empty vector means fully shrunk.
    fn shrink(&self, _v: &Self::Value) -> Vec<Self::Value> {
        Vec::new()
    }
}

// -------------------------------------------------------- numeric ranges

macro_rules! int_strategy {
    ($($t:ty),+) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut ChaCha8Rng) -> $t {
                self.clone().sample_from(rng)
            }

            fn shrink(&self, v: &$t) -> Vec<$t> {
                let lo = self.start;
                let mut out = Vec::new();
                if *v == lo {
                    return out;
                }
                out.push(lo);
                let mid = lo + (*v - lo) / 2;
                if mid != lo && mid != *v {
                    out.push(mid);
                }
                out.push(*v - 1);
                out
            }
        }
    )+};
}

int_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_strategy {
    ($($t:ty),+) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut ChaCha8Rng) -> $t {
                self.clone().sample_from(rng)
            }

            fn shrink(&self, v: &$t) -> Vec<$t> {
                let lo = self.start;
                if *v == lo {
                    return Vec::new();
                }
                let mut out = vec![lo];
                let mid = lo + (*v - lo) / 2.0;
                if mid != lo && mid != *v {
                    out.push(mid);
                }
                out
            }
        }
    )+};
}

float_strategy!(f32, f64);

/// Any byte, uniform over `0..=255`.
#[derive(Clone, Debug)]
pub struct AnyByte;

impl Strategy for AnyByte {
    type Value = u8;

    fn generate(&self, rng: &mut ChaCha8Rng) -> u8 {
        rng.next_u32() as u8
    }

    fn shrink(&self, v: &u8) -> Vec<u8> {
        if *v == 0 {
            Vec::new()
        } else {
            vec![0, v / 2, v - 1]
        }
    }
}

/// Any byte.
pub fn any_byte() -> AnyByte {
    AnyByte
}

/// Any `u64`, uniform over the full range.
#[derive(Clone, Debug)]
pub struct AnyU64;

impl Strategy for AnyU64 {
    type Value = u64;

    fn generate(&self, rng: &mut ChaCha8Rng) -> u64 {
        rng.next_u64()
    }

    fn shrink(&self, v: &u64) -> Vec<u64> {
        if *v == 0 {
            Vec::new()
        } else {
            vec![0, v / 2, v - 1]
        }
    }
}

/// Any `u64`.
pub fn any_u64() -> AnyU64 {
    AnyU64
}

// ---------------------------------------------------------------- vec

/// Vector of values from an element strategy, length drawn from a
/// range. See [`vec`].
#[derive(Clone, Debug)]
pub struct VecStrategy<S> {
    element: S,
    len: Range<usize>,
}

/// `vec(strategy, 1..50)` — the `proptest::collection::vec`
/// equivalent.
pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
    assert!(len.start < len.end, "empty length range");
    VecStrategy { element, len }
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut ChaCha8Rng) -> Vec<S::Value> {
        let n = rng.random_range(self.len.clone());
        (0..n).map(|_| self.element.generate(rng)).collect()
    }

    fn shrink(&self, v: &Vec<S::Value>) -> Vec<Vec<S::Value>> {
        let mut out = Vec::new();
        // Structural shrinks: drop elements (keeping length in range).
        if v.len() > self.len.start {
            if v.len() / 2 >= self.len.start && v.len() > 1 {
                out.push(v[..v.len() / 2].to_vec());
            }
            for i in (0..v.len()).rev() {
                let mut shorter = v.clone();
                shorter.remove(i);
                out.push(shorter);
            }
        }
        // Element-wise shrinks.
        for (i, item) in v.iter().enumerate() {
            for cand in self.element.shrink(item) {
                let mut modified = v.clone();
                modified[i] = cand;
                out.push(modified);
            }
        }
        out
    }
}

// ---------------------------------------------------------------- tuples

macro_rules! tuple_strategy {
    ($(($($s:ident / $idx:tt),+))+) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            fn generate(&self, rng: &mut ChaCha8Rng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }

            fn shrink(&self, v: &Self::Value) -> Vec<Self::Value> {
                let mut out = Vec::new();
                $(
                    for cand in self.$idx.shrink(&v.$idx) {
                        let mut modified = v.clone();
                        modified.$idx = cand;
                        out.push(modified);
                    }
                )+
                out
            }
        }
    )+};
}

tuple_strategy! {
    (A/0)
    (A/0, B/1)
    (A/0, B/1, C/2)
    (A/0, B/1, C/2, D/3)
    (A/0, B/1, C/2, D/3, E/4)
}

// ---------------------------------------------------------------- map

/// A strategy post-processed through a function (no shrinking through
/// the map).
#[derive(Clone)]
pub struct MapStrategy<S, F> {
    inner: S,
    f: F,
}

/// Transform generated values.
pub fn map<S, T, F>(inner: S, f: F) -> MapStrategy<S, F>
where
    S: Strategy,
    T: Clone + Debug,
    F: Fn(S::Value) -> T,
{
    MapStrategy { inner, f }
}

impl<S, T, F> Strategy for MapStrategy<S, F>
where
    S: Strategy,
    T: Clone + Debug,
    F: Fn(S::Value) -> T,
{
    type Value = T;

    fn generate(&self, rng: &mut ChaCha8Rng) -> T {
        (self.f)(self.inner.generate(rng))
    }
}

// ------------------------------------------------------------- patterns

mod pat {
    use super::*;

    /// A character class: inclusive ranges minus an exclusion set.
    #[derive(Clone, Debug)]
    pub struct Class {
        pub ranges: Vec<(char, char)>,
        pub excluded: Vec<(char, char)>,
    }

    impl Class {
        fn contains(&self, c: char) -> bool {
            self.ranges.iter().any(|&(a, b)| (a..=b).contains(&c))
                && !self.excluded.iter().any(|&(a, b)| (a..=b).contains(&c))
        }

        /// The shrink target: 'a' when allowed, else the lowest member.
        pub fn canonical(&self) -> char {
            if self.contains('a') {
                return 'a';
            }
            let mut best: Option<char> = None;
            for &(lo, hi) in &self.ranges {
                let mut c = lo;
                loop {
                    if self.contains(c) {
                        best = Some(match best {
                            Some(b) if b <= c => b,
                            _ => c,
                        });
                        break;
                    }
                    if c == hi {
                        break;
                    }
                    c = char::from_u32(c as u32 + 1).unwrap_or(hi);
                }
            }
            best.unwrap_or('a')
        }

        pub fn sample(&self, rng: &mut ChaCha8Rng) -> char {
            // Weight ranges by size; retry around exclusions.
            let total: u32 = self.ranges.iter().map(|&(a, b)| b as u32 - a as u32 + 1).sum();
            for _ in 0..64 {
                let mut pick = rng.random_range(0..total.max(1));
                for &(a, b) in &self.ranges {
                    let size = b as u32 - a as u32 + 1;
                    if pick < size {
                        if let Some(c) = char::from_u32(a as u32 + pick) {
                            if self.contains(c) {
                                return c;
                            }
                        }
                        break;
                    }
                    pick -= size;
                }
            }
            self.canonical()
        }
    }

    /// Parsed pattern node.
    #[derive(Clone, Debug)]
    pub enum Ast {
        Lit(char),
        Class(Class),
        /// Alternation of sequences.
        Group(Vec<Vec<Quantified>>),
    }

    /// A node with repetition bounds.
    #[derive(Clone, Debug)]
    pub struct Quantified {
        pub ast: Ast,
        pub min: u32,
        pub max: u32,
    }

    /// Expansion of one quantified node: which items were emitted.
    #[derive(Clone, Debug)]
    pub enum Exp {
        Char { c: char, canonical: char },
        /// One expansion per emitted repetition; each repetition is the
        /// expansion of the node's sequence.
        Rep { items: Vec<Vec<Exp>>, min: u32 },
        /// Chosen alternative index, plus its expansion.
        Alt { chosen: usize, seq: Vec<Exp> },
    }

    pub fn render(seq: &[Exp], out: &mut String) {
        for e in seq {
            match e {
                Exp::Char { c, .. } => out.push(*c),
                Exp::Rep { items, .. } => {
                    for item in items {
                        render(item, out);
                    }
                }
                Exp::Alt { seq, .. } => render(seq, out),
            }
        }
    }

    /// Parse the supported regex subset.
    pub fn parse(pattern: &str) -> Vec<Quantified> {
        let chars: Vec<char> = pattern.chars().collect();
        let mut pos = 0usize;
        let seq = parse_seq(&chars, &mut pos, pattern);
        assert!(pos == chars.len(), "unsupported pattern syntax in {pattern:?} at {pos}");
        seq
    }

    fn parse_seq(chars: &[char], pos: &mut usize, pattern: &str) -> Vec<Quantified> {
        let mut seq = Vec::new();
        while *pos < chars.len() && chars[*pos] != ')' && chars[*pos] != '|' {
            let ast = parse_atom(chars, pos, pattern);
            let (min, max) = parse_quantifier(chars, pos, pattern);
            seq.push(Quantified { ast, min, max });
        }
        seq
    }

    fn parse_atom(chars: &[char], pos: &mut usize, pattern: &str) -> Ast {
        match chars[*pos] {
            '(' => {
                *pos += 1;
                let mut alts = vec![parse_seq(chars, pos, pattern)];
                while *pos < chars.len() && chars[*pos] == '|' {
                    *pos += 1;
                    alts.push(parse_seq(chars, pos, pattern));
                }
                assert!(
                    *pos < chars.len() && chars[*pos] == ')',
                    "unclosed group in {pattern:?}"
                );
                *pos += 1;
                Ast::Group(alts)
            }
            '[' => {
                *pos += 1;
                Ast::Class(parse_class(chars, pos, pattern))
            }
            '\\' => {
                *pos += 1;
                let c = chars[*pos];
                *pos += 1;
                match c {
                    // \PC — proptest's "any non-control char". Generate
                    // from printable ASCII plus a sprinkle of multibyte
                    // scalars to exercise UTF-8 handling.
                    'P' => {
                        assert!(chars[*pos] == 'C', "only \\PC is supported");
                        *pos += 1;
                        Ast::Class(Class {
                            ranges: vec![
                                (' ', '~'),
                                ('\u{a1}', '\u{ff}'),
                                ('α', 'ω'),
                                ('一', '三'),
                            ],
                            excluded: Vec::new(),
                        })
                    }
                    'd' => Ast::Class(Class { ranges: vec![('0', '9')], excluded: Vec::new() }),
                    c => Ast::Lit(c),
                }
            }
            '.' => {
                *pos += 1;
                Ast::Class(Class { ranges: vec![(' ', '~')], excluded: Vec::new() })
            }
            c => {
                *pos += 1;
                Ast::Lit(c)
            }
        }
    }

    fn parse_class(chars: &[char], pos: &mut usize, pattern: &str) -> Class {
        let mut ranges = Vec::new();
        let mut excluded = Vec::new();
        let mut target_excluded = false;
        loop {
            assert!(*pos < chars.len(), "unclosed class in {pattern:?}");
            match chars[*pos] {
                ']' => {
                    *pos += 1;
                    break;
                }
                '&' if chars.get(*pos + 1) == Some(&'&') => {
                    // proptest's class intersection `[...&&[^...]]`: we
                    // support the exclusion form.
                    *pos += 2;
                    assert!(
                        chars.get(*pos) == Some(&'[') && chars.get(*pos + 1) == Some(&'^'),
                        "only `&&[^...]` class intersection is supported in {pattern:?}"
                    );
                    *pos += 2;
                    target_excluded = true;
                }
                _ => {
                    let lo = read_class_char(chars, pos);
                    let hi = if chars.get(*pos) == Some(&'-')
                        && chars.get(*pos + 1).map(|&c| c != ']').unwrap_or(false)
                    {
                        *pos += 1;
                        read_class_char(chars, pos)
                    } else {
                        lo
                    };
                    if target_excluded {
                        excluded.push((lo, hi));
                    } else {
                        ranges.push((lo, hi));
                    }
                }
            }
        }
        // When the exclusion form was used the outer `]` closes the
        // inner class; consume the outer one too.
        if target_excluded {
            assert!(chars.get(*pos) == Some(&']'), "unclosed outer class in {pattern:?}");
            *pos += 1;
        }
        Class { ranges, excluded }
    }

    fn read_class_char(chars: &[char], pos: &mut usize) -> char {
        let c = chars[*pos];
        *pos += 1;
        if c == '\\' {
            let e = chars[*pos];
            *pos += 1;
            match e {
                'n' => '\n',
                't' => '\t',
                'r' => '\r',
                other => other,
            }
        } else {
            c
        }
    }

    fn parse_quantifier(chars: &[char], pos: &mut usize, pattern: &str) -> (u32, u32) {
        match chars.get(*pos) {
            Some('{') => {
                *pos += 1;
                let mut min_text = String::new();
                while chars[*pos].is_ascii_digit() {
                    min_text.push(chars[*pos]);
                    *pos += 1;
                }
                let min: u32 = min_text.parse().expect("quantifier min"); // conformance: allow(panic-policy) — panicking on a malformed test pattern is the harness contract
                let max = if chars[*pos] == ',' {
                    *pos += 1;
                    let mut max_text = String::new();
                    while chars[*pos].is_ascii_digit() {
                        max_text.push(chars[*pos]);
                        *pos += 1;
                    }
                    max_text.parse().expect("quantifier max") // conformance: allow(panic-policy) — panicking on a malformed test pattern is the harness contract
                } else {
                    min
                };
                assert!(chars[*pos] == '}', "unclosed quantifier in {pattern:?}");
                *pos += 1;
                (min, max)
            }
            Some('?') => {
                *pos += 1;
                (0, 1)
            }
            Some('*') => {
                *pos += 1;
                (0, 8)
            }
            Some('+') => {
                *pos += 1;
                (1, 8)
            }
            _ => (1, 1),
        }
    }

    pub(crate) fn expand_seq(seq: &[Quantified], rng: &mut ChaCha8Rng) -> Vec<Exp> {
        seq.iter()
            .map(|q| {
                let n = rng.random_range(q.min..=q.max);
                let items = (0..n).map(|_| vec![expand_ast(&q.ast, rng)]).collect();
                Exp::Rep { items, min: q.min }
            })
            .collect()
    }

    fn expand_ast(ast: &Ast, rng: &mut ChaCha8Rng) -> Exp {
        match ast {
            Ast::Lit(c) => Exp::Char { c: *c, canonical: *c },
            Ast::Class(class) => {
                Exp::Char { c: class.sample(rng), canonical: class.canonical() }
            }
            Ast::Group(alts) => {
                let chosen = rng.random_range(0..alts.len());
                Exp::Alt { chosen, seq: expand_seq(&alts[chosen], rng) }
            }
        }
    }

    /// Deterministic minimal expansion: every repetition at `min`,
    /// every char canonical, every alternation on alternative 0.
    pub(crate) fn minimal_seq(seq: &[Quantified]) -> Vec<Exp> {
        seq.iter()
            .map(|q| Exp::Rep {
                items: (0..q.min).map(|_| vec![minimal_ast(&q.ast)]).collect(),
                min: q.min,
            })
            .collect()
    }

    fn minimal_ast(ast: &Ast) -> Exp {
        match ast {
            Ast::Lit(c) => Exp::Char { c: *c, canonical: *c },
            Ast::Class(class) => {
                let c = class.canonical();
                Exp::Char { c, canonical: c }
            }
            Ast::Group(alts) => Exp::Alt { chosen: 0, seq: minimal_seq(&alts[0]) },
        }
    }

    /// All single-step simplifications of an expansion sequence.
    pub(crate) fn shrink_seq(pattern: &[Quantified], seq: &[Exp]) -> Vec<Vec<Exp>> {
        let mut out = Vec::new();
        for (i, (q, e)) in pattern.iter().zip(seq.iter()).enumerate() {
            for cand in shrink_exp(q, e) {
                let mut modified = seq.to_vec();
                modified[i] = cand;
                out.push(modified);
            }
        }
        out
    }

    fn shrink_exp(q: &Quantified, e: &Exp) -> Vec<Exp> {
        let mut out = Vec::new();
        if let Exp::Rep { items, min } = e {
            // Drop one repetition (each position).
            if items.len() as u32 > *min {
                for i in (0..items.len()).rev() {
                    let mut fewer = items.clone();
                    fewer.remove(i);
                    out.push(Exp::Rep { items: fewer, min: *min });
                }
            }
            // Simplify one repetition's contents.
            for (i, item) in items.iter().enumerate() {
                debug_assert_eq!(item.len(), 1);
                for cand in shrink_inner(&q.ast, &item[0]) {
                    let mut modified = items.clone();
                    modified[i] = vec![cand];
                    out.push(Exp::Rep { items: modified, min: *min });
                }
            }
        }
        out
    }

    fn shrink_inner(ast: &Ast, e: &Exp) -> Vec<Exp> {
        match (ast, e) {
            (_, Exp::Char { c, canonical }) if c != canonical => {
                vec![Exp::Char { c: *canonical, canonical: *canonical }]
            }
            (Ast::Group(alts), Exp::Alt { chosen, seq }) => {
                let mut out = Vec::new();
                if *chosen != 0 {
                    out.push(Exp::Alt { chosen: 0, seq: minimal_seq(&alts[0]) });
                }
                for cand in shrink_seq(&alts[*chosen], seq) {
                    out.push(Exp::Alt { chosen: *chosen, seq: cand });
                }
                out
            }
            _ => Vec::new(),
        }
    }
}

/// A string generated from a [`pattern`] strategy. Dereferences to
/// `str`; keeps its expansion tree so shrinking stays inside the
/// pattern's language.
#[derive(Clone)]
pub struct PatStr {
    value: String,
    tree: Vec<pat::Exp>,
}

impl PatStr {
    /// The generated text.
    pub fn as_str(&self) -> &str {
        &self.value
    }
}

impl std::ops::Deref for PatStr {
    type Target = str;

    fn deref(&self) -> &str {
        &self.value
    }
}

impl AsRef<str> for PatStr {
    fn as_ref(&self) -> &str {
        &self.value
    }
}

impl From<PatStr> for String {
    fn from(p: PatStr) -> String {
        p.value
    }
}

impl std::fmt::Display for PatStr {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.value)
    }
}

impl Debug for PatStr {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        Debug::fmt(&self.value, f)
    }
}

impl PartialEq<&str> for PatStr {
    fn eq(&self, other: &&str) -> bool {
        self.value == *other
    }
}

/// String generator for a regex subset: literals, `[a-z0-9_.-]`
/// classes (with `&&[^...]` exclusion), `(...|...)` groups, `{m,n}` /
/// `?` / `*` / `+` quantifiers, `\PC` (any non-control char), `\d`,
/// and escaped literals.
#[derive(Clone, Debug)]
pub struct PatternStrategy {
    ast: std::rc::Rc<Vec<pat::Quantified>>,
}

/// Build a [`PatternStrategy`]. Panics on unsupported syntax — the
/// supported subset is exactly what the workspace's properties use.
pub fn pattern(p: &str) -> PatternStrategy {
    PatternStrategy { ast: std::rc::Rc::new(pat::parse(p)) }
}

impl Strategy for PatternStrategy {
    type Value = PatStr;

    fn generate(&self, rng: &mut ChaCha8Rng) -> PatStr {
        let tree = pat::expand_seq(&self.ast, rng);
        let mut value = String::new();
        pat::render(&tree, &mut value);
        PatStr { value, tree }
    }

    fn shrink(&self, v: &PatStr) -> Vec<PatStr> {
        pat::shrink_seq(&self.ast, &v.tree)
            .into_iter()
            .map(|tree| {
                let mut value = String::new();
                pat::render(&tree, &mut value);
                PatStr { value, tree }
            })
            .collect()
    }
}

// ---------------------------------------------------------------- runner

/// Harness configuration.
#[derive(Clone, Debug)]
pub struct Config {
    /// Number of generated cases per property.
    pub cases: u32,
    /// Cap on shrink candidate evaluations after a failure.
    pub max_shrink: u32,
    /// Base seed; case `i` uses `splitmix64(seed ^ splitmix64(i))`.
    pub seed: u64,
}

impl Config {
    /// Defaults, with `CHECK_CASES` / `CHECK_SEED` env overrides.
    pub fn from_env(name: &str) -> Config {
        let cases = std::env::var("CHECK_CASES")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(64);
        let seed = std::env::var("CHECK_SEED")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or_else(|| {
                // Stable per-name seed so failures reproduce without
                // any environment setup.
                name.bytes().fold(0xA77E_5EED_u64, |acc, b| {
                    splitmix64(acc ^ b as u64)
                })
            });
        Config { cases, max_shrink: 4_096, seed }
    }
}

fn failure_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "<non-string panic payload>".to_string()
    }
}

/// Run `property` over `config.cases` generated inputs; shrink and
/// panic on the first failure.
pub fn run_with<S, F>(name: &str, config: &Config, strategy: &S, property: F)
where
    S: Strategy,
    F: Fn(&S::Value),
{
    let fails = |v: &S::Value| -> Option<String> {
        catch_unwind(AssertUnwindSafe(|| property(v)))
            .err()
            .map(|p| failure_message(p.as_ref()))
    };

    for case in 0..config.cases {
        let case_seed = splitmix64(config.seed ^ splitmix64(case as u64));
        let mut rng = ChaCha8Rng::seed_from_u64(case_seed);
        let value = strategy.generate(&mut rng);
        let Some(first_message) = fails(&value) else {
            continue;
        };

        // Greedy shrink: keep taking the first candidate that still
        // fails until none does (or the evaluation budget runs out).
        let mut minimal = value;
        let mut message = first_message;
        let mut evaluated = 0u32;
        'shrinking: loop {
            for candidate in strategy.shrink(&minimal) {
                evaluated += 1;
                if evaluated > config.max_shrink {
                    break 'shrinking;
                }
                if let Some(m) = fails(&candidate) {
                    minimal = candidate;
                    message = m;
                    continue 'shrinking;
                }
            }
            break;
        }

        panic!( // conformance: allow(panic-policy) — property failure must panic: that is prop_check's contract
            "[check] property `{name}` failed (case {case}/{cases}, seed {seed})\n\
             minimal input: {minimal:?}\n\
             failure: {message}\n\
             reproduce with CHECK_SEED={seed}",
            cases = config.cases,
            seed = config.seed,
        );
    }
}

/// [`run_with`] under the environment-derived [`Config`].
pub fn run<S, F>(name: &str, strategy: &S, property: F)
where
    S: Strategy,
    F: Fn(&S::Value),
{
    run_with(name, &Config::from_env(name), strategy, property)
}

/// Declare property tests. Each `fn` becomes a `#[test]` that runs the
/// body over generated inputs, shrinking failures to minimal
/// counterexamples:
///
/// ```ignore
/// foundation::prop_check! {
///     fn addition_commutes(a in 0u64..1000, b in 0u64..1000) {
///         assert_eq!(a + b, b + a);
///     }
/// }
/// ```
#[macro_export]
macro_rules! prop_check {
    ($( $(#[$meta:meta])* fn $name:ident( $($arg:ident in $strat:expr),+ $(,)? ) $body:block )+) => {$(
        $(#[$meta])*
        #[test]
        fn $name() {
            let strategy = ( $($strat,)+ );
            $crate::check::run(stringify!($name), &strategy, |case| {
                let ( $($arg,)+ ) = case.clone();
                $body
            });
        }
    )+};
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn passing_property_passes() {
        run("tautology", &(0u64..100,), |&(v,)| assert!(v < 100));
    }

    #[test]
    fn int_shrinking_finds_boundary() {
        // Property "v < 10" fails for v >= 10; the minimal
        // counterexample is exactly 10.
        let err = catch_unwind(AssertUnwindSafe(|| {
            run_with(
                "boundary",
                &Config { cases: 256, max_shrink: 4_096, seed: 99 },
                &(0u64..1_000,),
                |&(v,)| assert!(v < 10, "too big: {v}"),
            );
        }))
        .expect_err("property must fail");
        let msg = failure_message(err.as_ref());
        assert!(msg.contains("minimal input: (10,)"), "shrunk to boundary, got:\n{msg}");
    }

    #[test]
    fn vec_shrinking_minimizes_structure() {
        // Fails whenever the vec contains an element >= 5; minimal
        // counterexample is the single-element vec [5].
        let err = catch_unwind(AssertUnwindSafe(|| {
            run_with(
                "vec_boundary",
                &Config { cases: 256, max_shrink: 65_536, seed: 7 },
                &(vec(0u64..100, 1..20),),
                |(xs,)| assert!(xs.iter().all(|&x| x < 5)),
            );
        }))
        .expect_err("property must fail");
        let msg = failure_message(err.as_ref());
        assert!(msg.contains("minimal input: ([5],)"), "got:\n{msg}");
    }

    #[test]
    fn pattern_generates_matching_strings() {
        let strat = pattern("[a-z][a-z0-9-]{0,12}(\\.[a-z]{2,5}){1,2}");
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        for _ in 0..200 {
            let s = strat.generate(&mut rng);
            let text = s.as_str();
            assert!(text.chars().next().unwrap().is_ascii_lowercase(), "{text}");
            assert!(text.contains('.'), "{text}");
            assert!(
                text.chars().all(|c| c.is_ascii_lowercase()
                    || c.is_ascii_digit()
                    || c == '-'
                    || c == '.'),
                "{text}"
            );
        }
    }

    #[test]
    fn pattern_exclusion_classes() {
        let strat = pattern("[ -~&&[^<>]]{0,40}");
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        for _ in 0..200 {
            let s = strat.generate(&mut rng);
            assert!(s.chars().all(|c| (' '..='~').contains(&c) && c != '<' && c != '>'));
        }
    }

    #[test]
    fn pattern_alternation() {
        let strat = pattern("(div|span|a|p|li)");
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let mut seen = std::collections::HashSet::new();
        for _ in 0..100 {
            let s = strat.generate(&mut rng).to_string();
            assert!(["div", "span", "a", "p", "li"].contains(&s.as_str()), "{s}");
            seen.insert(s);
        }
        assert!(seen.len() >= 4, "alternation explores variants: {seen:?}");
    }

    #[test]
    fn pattern_shrinking_reaches_minimal_string() {
        // Any host fails; the shrinker must walk down to the minimal
        // member of the pattern's language ("a.aa"), never leaving it.
        let strat = pattern("[a-z][a-z0-9-]{0,12}(\\.[a-z]{2,5}){1,2}");
        let err = catch_unwind(AssertUnwindSafe(|| {
            run_with(
                "host_minimal",
                &Config { cases: 1, max_shrink: 65_536, seed: 11 },
                &(strat,),
                |(h,)| assert!(h.as_str().is_empty(), "always fails"),
            );
        }))
        .expect_err("property must fail");
        let msg = failure_message(err.as_ref());
        assert!(msg.contains("minimal input: (\"a.aa\",)"), "got:\n{msg}");
    }

    #[test]
    fn runs_are_reproducible() {
        let strat = pattern("[a-z]{1,10}");
        let gen = |seed: u64| {
            let mut rng = ChaCha8Rng::seed_from_u64(seed);
            (0..20).map(|_| strat.generate(&mut rng).to_string()).collect::<Vec<_>>()
        };
        assert_eq!(gen(5), gen(5));
        assert_ne!(gen(5), gen(6));
    }
}
