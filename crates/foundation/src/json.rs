//! A small JSON value model with a strict parser, deterministic
//! serializers, and the [`JsonCodec`] trait the workspace's serialized
//! types implement (replacing `serde`/`serde_json`).
//!
//! Determinism contract: serialization is a pure function of the value
//! — object keys keep insertion order, numbers print via Rust's
//! shortest-round-trip formatting — so equal values always produce
//! byte-identical JSON. The study's determinism tests rely on this.

use std::fmt;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number (stored as `f64`; integers up to 2^53 are exact).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object: insertion-ordered key/value pairs.
    Obj(Vec<(String, Json)>),
}

/// Error raised by parsing or decoding.
#[derive(Debug, Clone, PartialEq)]
pub struct JsonError {
    /// Human-readable description.
    pub msg: String,
    /// Byte offset in the input, when known.
    pub offset: Option<usize>,
}

impl JsonError {
    /// A decode-stage error (no input offset).
    pub fn decode(msg: impl Into<String>) -> JsonError {
        JsonError { msg: msg.into(), offset: None }
    }

    fn parse(msg: impl Into<String>, offset: usize) -> JsonError {
        JsonError { msg: msg.into(), offset: Some(offset) }
    }
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.offset {
            Some(o) => write!(f, "json error at byte {o}: {}", self.msg),
            None => write!(f, "json error: {}", self.msg),
        }
    }
}

impl std::error::Error for JsonError {}

impl Json {
    /// Object field lookup (first match).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(entries) => entries.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as `f64`, if numeric.
    pub fn as_num(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The value as `&str`, if a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as `bool`, if boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value as an array slice, if an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Compact serialization.
    pub fn render(&self) -> String {
        let mut out = String::new();
        write_value(&mut out, self, None, 0);
        out
    }

    /// Pretty serialization (two-space indent, like `serde_json`'s).
    pub fn render_pretty(&self) -> String {
        let mut out = String::new();
        write_value(&mut out, self, Some(2), 0);
        out
    }

    /// Parse a JSON document. The whole input must be consumed.
    pub fn parse(input: &str) -> Result<Json, JsonError> {
        let bytes = input.as_bytes();
        let mut pos = 0usize;
        let value = parse_value(bytes, &mut pos, 0)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(JsonError::parse("trailing characters", pos));
        }
        Ok(value)
    }
}

impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.render())
    }
}

// ---------------------------------------------------------------- writer

/// Deterministic number formatting: integers without a fractional part
/// print as integers; everything else uses Rust's shortest-round-trip
/// `Display`. Non-finite values (never produced by the pipeline) print
/// as `null`, matching `serde_json`.
fn write_num(out: &mut String, n: f64) {
    if !n.is_finite() {
        out.push_str("null");
    } else if n == n.trunc() && n.abs() < 9.007_199_254_740_992e15 {
        use fmt::Write;
        let _ = write!(out, "{}", n as i64);
    } else {
        use fmt::Write;
        let _ = write!(out, "{n}");
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0c}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                use fmt::Write;
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn indent(out: &mut String, step: Option<usize>, depth: usize) {
    if let Some(step) = step {
        out.push('\n');
        out.extend(std::iter::repeat_n(' ', step * depth));
    }
}

fn write_value(out: &mut String, v: &Json, step: Option<usize>, depth: usize) {
    match v {
        Json::Null => out.push_str("null"),
        Json::Bool(true) => out.push_str("true"),
        Json::Bool(false) => out.push_str("false"),
        Json::Num(n) => write_num(out, *n),
        Json::Str(s) => write_escaped(out, s),
        Json::Arr(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                indent(out, step, depth + 1);
                write_value(out, item, step, depth + 1);
            }
            indent(out, step, depth);
            out.push(']');
        }
        Json::Obj(entries) => {
            if entries.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (k, item)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                indent(out, step, depth + 1);
                write_escaped(out, k);
                out.push(':');
                if step.is_some() {
                    out.push(' ');
                }
                write_value(out, item, step, depth + 1);
            }
            indent(out, step, depth);
            out.push('}');
        }
    }
}

// ---------------------------------------------------------------- parser

const MAX_DEPTH: usize = 128;

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(bytes: &[u8], pos: &mut usize, lit: &str) -> Result<(), JsonError> {
    if bytes[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(())
    } else {
        Err(JsonError::parse(format!("expected `{lit}`"), *pos))
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize, depth: usize) -> Result<Json, JsonError> {
    if depth > MAX_DEPTH {
        return Err(JsonError::parse("nesting too deep", *pos));
    }
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        None => Err(JsonError::parse("unexpected end of input", *pos)),
        Some(b'n') => expect(bytes, pos, "null").map(|_| Json::Null),
        Some(b't') => expect(bytes, pos, "true").map(|_| Json::Bool(true)),
        Some(b'f') => expect(bytes, pos, "false").map(|_| Json::Bool(false)),
        Some(b'"') => parse_string(bytes, pos).map(Json::Str),
        Some(b'[') => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            loop {
                items.push(parse_value(bytes, pos, depth + 1)?);
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Json::Arr(items));
                    }
                    _ => return Err(JsonError::parse("expected `,` or `]`", *pos)),
                }
            }
        }
        Some(b'{') => {
            *pos += 1;
            let mut entries = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Json::Obj(entries));
            }
            loop {
                skip_ws(bytes, pos);
                let key = parse_string(bytes, pos)?;
                skip_ws(bytes, pos);
                if bytes.get(*pos) != Some(&b':') {
                    return Err(JsonError::parse("expected `:`", *pos));
                }
                *pos += 1;
                let value = parse_value(bytes, pos, depth + 1)?;
                entries.push((key, value));
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Json::Obj(entries));
                    }
                    _ => return Err(JsonError::parse("expected `,` or `}`", *pos)),
                }
            }
        }
        Some(_) => parse_number(bytes, pos),
    }
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, JsonError> {
    if bytes.get(*pos) != Some(&b'"') {
        return Err(JsonError::parse("expected string", *pos));
    }
    *pos += 1;
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            None => return Err(JsonError::parse("unterminated string", *pos)),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                let esc = *bytes.get(*pos).ok_or_else(|| {
                    JsonError::parse("unterminated escape", *pos)
                })?;
                *pos += 1;
                match esc {
                    b'"' => out.push('"'),
                    b'\\' => out.push('\\'),
                    b'/' => out.push('/'),
                    b'b' => out.push('\u{08}'),
                    b'f' => out.push('\u{0c}'),
                    b'n' => out.push('\n'),
                    b'r' => out.push('\r'),
                    b't' => out.push('\t'),
                    b'u' => {
                        let hi = parse_hex4(bytes, pos)?;
                        let c = if (0xD800..0xDC00).contains(&hi) {
                            // Surrogate pair: require the low half.
                            expect(bytes, pos, "\\u")?;
                            let lo = parse_hex4(bytes, pos)?;
                            if !(0xDC00..0xE000).contains(&lo) {
                                return Err(JsonError::parse("bad low surrogate", *pos));
                            }
                            let code =
                                0x10000 + (((hi - 0xD800) as u32) << 10) + (lo - 0xDC00) as u32;
                            char::from_u32(code)
                        } else if (0xDC00..0xE000).contains(&hi) {
                            None
                        } else {
                            char::from_u32(hi as u32)
                        };
                        out.push(c.ok_or_else(|| {
                            JsonError::parse("invalid unicode escape", *pos)
                        })?);
                    }
                    _ => return Err(JsonError::parse("unknown escape", *pos - 1)),
                }
            }
            Some(&b) if b < 0x20 => {
                return Err(JsonError::parse("unescaped control character", *pos))
            }
            Some(_) => {
                // Consume one UTF-8 scalar.
                // SAFETY: `bytes` came from a `&str` and `*pos` only ever
                // advances by whole scalar widths (`c.len_utf8()`), so the
                // tail slice starts on a character boundary and is valid
                // UTF-8.
                let s = unsafe { std::str::from_utf8_unchecked(&bytes[*pos..]) };
                let c = s.chars().next().unwrap(); // conformance: allow(panic-policy) — pos < len is the loop guard; slice starts on a char boundary
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

fn parse_hex4(bytes: &[u8], pos: &mut usize) -> Result<u16, JsonError> {
    let chunk = bytes
        .get(*pos..*pos + 4)
        .ok_or_else(|| JsonError::parse("truncated unicode escape", *pos))?;
    let s = std::str::from_utf8(chunk).map_err(|_| JsonError::parse("bad hex", *pos))?;
    let v = u16::from_str_radix(s, 16).map_err(|_| JsonError::parse("bad hex", *pos))?;
    *pos += 4;
    Ok(v)
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<Json, JsonError> {
    let start = *pos;
    if bytes.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    let digits_start = *pos;
    while matches!(bytes.get(*pos), Some(b'0'..=b'9')) {
        *pos += 1;
    }
    if *pos == digits_start {
        return Err(JsonError::parse("expected value", start));
    }
    if bytes.get(*pos) == Some(&b'.') {
        *pos += 1;
        let frac_start = *pos;
        while matches!(bytes.get(*pos), Some(b'0'..=b'9')) {
            *pos += 1;
        }
        if *pos == frac_start {
            return Err(JsonError::parse("digits required after decimal point", *pos));
        }
    }
    if matches!(bytes.get(*pos), Some(b'e' | b'E')) {
        *pos += 1;
        if matches!(bytes.get(*pos), Some(b'+' | b'-')) {
            *pos += 1;
        }
        let exp_start = *pos;
        while matches!(bytes.get(*pos), Some(b'0'..=b'9')) {
            *pos += 1;
        }
        if *pos == exp_start {
            return Err(JsonError::parse("digits required in exponent", *pos));
        }
    }
    let text = std::str::from_utf8(&bytes[start..*pos]).expect("ascii"); // conformance: allow(panic-policy) — scanner only accepted ASCII number bytes
    text.parse::<f64>()
        .map(Json::Num)
        .map_err(|_| JsonError::parse("invalid number", start))
}

// ---------------------------------------------------------------- codec

/// Types that convert to and from [`Json`]. The manual replacement for
/// `serde::{Serialize, Deserialize}` — implement with
/// [`json_codec_struct!`], [`json_codec_enum!`], or
/// [`json_codec_newtype!`] for the common shapes.
pub trait JsonCodec: Sized {
    /// Project into a JSON value.
    fn to_json(&self) -> Json;

    /// Reconstruct from a JSON value.
    fn from_json(v: &Json) -> Result<Self, JsonError>;
}

/// Serialize any codec-implementing value to compact JSON.
pub fn to_string<T: JsonCodec>(value: &T) -> String {
    value.to_json().render()
}

/// Serialize any codec-implementing value to pretty JSON.
pub fn to_string_pretty<T: JsonCodec>(value: &T) -> String {
    value.to_json().render_pretty()
}

/// Parse JSON text straight into a codec-implementing type.
pub fn from_str<T: JsonCodec>(s: &str) -> Result<T, JsonError> {
    T::from_json(&Json::parse(s)?)
}

/// A `'static` null, used by the codec macros for missing-field lookups.
// conformance: allow(pub-hygiene) — named by json_codec_struct! expansions in downstream crates
pub static JSON_NULL: Json = Json::Null;

macro_rules! int_codec {
    ($($t:ty),+) => {$(
        impl JsonCodec for $t {
            fn to_json(&self) -> Json {
                Json::Num(*self as f64)
            }

            fn from_json(v: &Json) -> Result<$t, JsonError> {
                let n = v.as_num().ok_or_else(|| {
                    JsonError::decode(concat!("expected number for ", stringify!($t)))
                })?;
                if n.fract() != 0.0 {
                    return Err(JsonError::decode("expected integer, found fraction"));
                }
                if n < <$t>::MIN as f64 || n > <$t>::MAX as f64 {
                    return Err(JsonError::decode(concat!(stringify!($t), " out of range")));
                }
                Ok(n as $t)
            }
        }
    )+};
}

int_codec!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl JsonCodec for f64 {
    fn to_json(&self) -> Json {
        Json::Num(*self)
    }

    fn from_json(v: &Json) -> Result<f64, JsonError> {
        v.as_num().ok_or_else(|| JsonError::decode("expected number"))
    }
}

impl JsonCodec for f32 {
    fn to_json(&self) -> Json {
        // Round-trip through the shortest f32 decimal so the printed
        // number looks like the f32, not its widened f64 neighbour.
        Json::Num(format!("{self}").parse::<f64>().unwrap_or(*self as f64))
    }

    fn from_json(v: &Json) -> Result<f32, JsonError> {
        Ok(v.as_num().ok_or_else(|| JsonError::decode("expected number"))? as f32)
    }
}

impl JsonCodec for bool {
    fn to_json(&self) -> Json {
        Json::Bool(*self)
    }

    fn from_json(v: &Json) -> Result<bool, JsonError> {
        v.as_bool().ok_or_else(|| JsonError::decode("expected bool"))
    }
}

impl JsonCodec for String {
    fn to_json(&self) -> Json {
        Json::Str(self.clone())
    }

    fn from_json(v: &Json) -> Result<String, JsonError> {
        v.as_str().map(str::to_string).ok_or_else(|| JsonError::decode("expected string"))
    }
}

impl<T: JsonCodec> JsonCodec for Option<T> {
    fn to_json(&self) -> Json {
        match self {
            None => Json::Null,
            Some(v) => v.to_json(),
        }
    }

    fn from_json(v: &Json) -> Result<Option<T>, JsonError> {
        match v {
            Json::Null => Ok(None),
            other => T::from_json(other).map(Some),
        }
    }
}

impl<T: JsonCodec> JsonCodec for Vec<T> {
    fn to_json(&self) -> Json {
        Json::Arr(self.iter().map(JsonCodec::to_json).collect())
    }

    fn from_json(v: &Json) -> Result<Vec<T>, JsonError> {
        v.as_arr()
            .ok_or_else(|| JsonError::decode("expected array"))?
            .iter()
            .map(T::from_json)
            .collect()
    }
}

/// Implement [`JsonCodec`] for a plain struct: fields serialize in
/// declaration order under their own names; missing fields decode as
/// `null` (so `Option` fields tolerate omission, everything else
/// rejects).
///
/// ```ignore
/// json_codec_struct! { Post { id, author, text, created_unix } }
/// ```
#[macro_export]
macro_rules! json_codec_struct {
    ($($ty:ident { $($field:ident),+ $(,)? })+) => {$(
        impl $crate::json::JsonCodec for $ty {
            fn to_json(&self) -> $crate::json::Json {
                $crate::json::Json::Obj(vec![
                    $( (stringify!($field).to_string(), $crate::json::JsonCodec::to_json(&self.$field)), )+
                ])
            }

            fn from_json(v: &$crate::json::Json) -> Result<$ty, $crate::json::JsonError> {
                if !matches!(v, $crate::json::Json::Obj(_)) {
                    return Err($crate::json::JsonError::decode(concat!(
                        "expected object for ", stringify!($ty)
                    )));
                }
                Ok($ty {
                    $($field: {
                        let field_value =
                            v.get(stringify!($field)).unwrap_or(&$crate::json::JSON_NULL);
                        $crate::json::JsonCodec::from_json(field_value).map_err(|e| {
                            $crate::json::JsonError::decode(format!(
                                "{}.{}: {}", stringify!($ty), stringify!($field), e.msg
                            ))
                        })?
                    },)+
                })
            }
        }
    )+};
}

/// Implement [`JsonCodec`] for a fieldless enum: unit variants
/// serialize as their identifier string, mirroring serde's default
/// representation.
///
/// ```ignore
/// json_codec_enum! { FetchStatus { Ok, Forbidden, NotFound, Error } }
/// ```
#[macro_export]
macro_rules! json_codec_enum {
    ($($ty:ident { $($variant:ident),+ $(,)? })+) => {$(
        impl $crate::json::JsonCodec for $ty {
            fn to_json(&self) -> $crate::json::Json {
                let name = match self {
                    $($ty::$variant => stringify!($variant),)+
                };
                $crate::json::Json::Str(name.to_string())
            }

            fn from_json(v: &$crate::json::Json) -> Result<$ty, $crate::json::JsonError> {
                let s = v.as_str().ok_or_else(|| {
                    $crate::json::JsonError::decode(concat!(
                        "expected string variant for ", stringify!($ty)
                    ))
                })?;
                match s {
                    $(stringify!($variant) => Ok($ty::$variant),)+
                    other => Err($crate::json::JsonError::decode(format!(
                        "unknown {} variant {:?}", stringify!($ty), other
                    ))),
                }
            }
        }
    )+};
}

/// Implement [`JsonCodec`] for a single-field tuple struct
/// (`struct AccountId(pub u64)`): transparent, like serde newtypes.
#[macro_export]
macro_rules! json_codec_newtype {
    ($($ty:ident),+ $(,)?) => {$(
        impl $crate::json::JsonCodec for $ty {
            fn to_json(&self) -> $crate::json::Json {
                $crate::json::JsonCodec::to_json(&self.0)
            }

            fn from_json(v: &$crate::json::Json) -> Result<$ty, $crate::json::JsonError> {
                Ok($ty($crate::json::JsonCodec::from_json(v)?))
            }
        }
    )+};
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_roundtrip() {
        for text in ["null", "true", "false", "0", "-17", "3.5", "\"hi\"", "[]", "{}"] {
            let v = Json::parse(text).unwrap();
            assert_eq!(v.render(), text, "compact render is canonical");
        }
    }

    #[test]
    fn nested_roundtrip_and_pretty() {
        let v = Json::parse(r#"{"a":[1,2,{"b":null}],"c":"x\ny"}"#).unwrap();
        let pretty = v.render_pretty();
        assert_eq!(Json::parse(&pretty).unwrap(), v);
        assert!(pretty.contains("\n  \"a\""));
    }

    #[test]
    fn string_escapes() {
        let v = Json::parse(r#""A\t\\\"é😀""#).unwrap();
        assert_eq!(v.as_str(), Some("A\t\\\"é😀"));
        let back = Json::parse(&v.render()).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn rejects_malformed() {
        for bad in [
            "", "{", "[1,", "{\"a\"}", "{\"a\":}", "nul", "01x", "\"unterminated",
            "[1] trailing", "1.", "--2", "\"\\q\"", "\"\\ud800\"",
        ] {
            assert!(Json::parse(bad).is_err(), "{bad:?} should fail");
        }
    }

    #[test]
    fn deep_nesting_bounded() {
        let deep = "[".repeat(200) + &"]".repeat(200);
        assert!(Json::parse(&deep).is_err());
    }

    #[test]
    fn integer_formatting_is_integral() {
        assert_eq!(Json::Num(298.0).render(), "298");
        assert_eq!(Json::Num(4.5).render(), "4.5");
        assert_eq!(Json::Num(-0.25).render(), "-0.25");
    }

    #[test]
    fn option_and_vec_codecs() {
        let v: Option<u64> = None;
        assert_eq!(to_string(&v), "null");
        let xs = vec![1u64, 2, 3];
        assert_eq!(to_string(&xs), "[1,2,3]");
        let back: Vec<u64> = from_str("[1,2,3]").unwrap();
        assert_eq!(back, xs);
        assert!(from_str::<Vec<u64>>("[1,2.5]").is_err());
        assert!(from_str::<u8>("300").is_err());
    }

    #[test]
    fn f32_prints_shortest() {
        let r: f32 = 4.7;
        let s = to_string(&r);
        assert_eq!(s, "4.7");
        let back: f32 = from_str(&s).unwrap();
        assert_eq!(back, r);
    }
}
