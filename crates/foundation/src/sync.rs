//! Non-poisoning locks and scoped threads.
//!
//! `Mutex`/`RwLock` here wrap `std::sync` but expose the `parking_lot`
//! calling convention the codebase uses: `.lock()`, `.read()`, and
//! `.write()` return guards directly. A poisoned lock (a panic while
//! held) is not an error state for this workload — every critical
//! section is a small data-structure update — so poison is stripped.
//!
//! Scoped threads come straight from `std::thread::scope` (stable since
//! 1.63), which replaces `crossbeam::scope`.

use std::sync::{MutexGuard, RwLockReadGuard, RwLockWriteGuard};

pub use std::thread::{scope, Scope, ScopedJoinHandle};

/// A mutual-exclusion lock whose `lock()` returns the guard directly.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Wrap a value.
    pub fn new(value: T) -> Mutex<T> {
        Mutex(std::sync::Mutex::new(value))
    }

    /// Consume the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|p| p.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, blocking; poison is stripped.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|p| p.into_inner())
    }

    /// Try to acquire without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(guard) => Some(guard),
            Err(std::sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires `&mut self`).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|p| p.into_inner())
    }
}

/// A readers-writer lock whose `read()`/`write()` return guards
/// directly.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(std::sync::RwLock<T>);

impl<T> RwLock<T> {
    /// Wrap a value.
    pub fn new(value: T) -> RwLock<T> {
        RwLock(std::sync::RwLock::new(value))
    }

    /// Consume the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|p| p.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire a shared read guard; poison is stripped.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(|p| p.into_inner())
    }

    /// Acquire the exclusive write guard; poison is stripped.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(|p| p.into_inner())
    }

    /// Mutable access without locking (requires `&mut self`).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|p| p.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn mutex_basics() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert!(m.try_lock().is_some());
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_basics() {
        let l = RwLock::new(vec![1, 2]);
        assert_eq!(l.read().len(), 2);
        l.write().push(3);
        assert_eq!(l.into_inner(), vec![1, 2, 3]);
    }

    #[test]
    fn lock_survives_panic_in_holder() {
        let m = std::sync::Arc::new(Mutex::new(0u32));
        let m2 = std::sync::Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _guard = m2.lock();
            panic!("poison it");
        })
        .join();
        // parking_lot semantics: still usable.
        *m.lock() += 7;
        assert_eq!(*m.lock(), 7);
    }

    #[test]
    fn scoped_threads_share_stack_state() {
        let counter = AtomicUsize::new(0);
        scope(|s| {
            for _ in 0..4 {
                s.spawn(|| {
                    for _ in 0..100 {
                        counter.fetch_add(1, Ordering::Relaxed);
                    }
                });
            }
        });
        assert_eq!(counter.into_inner(), 400);
    }
}
