//! Non-poisoning locks, scoped threads, and a debug-build lock-order
//! deadlock detector.
//!
//! `Mutex`/`RwLock` here wrap `std::sync` but expose the `parking_lot`
//! calling convention the codebase uses: `.lock()`, `.read()`, and
//! `.write()` return guards directly. A poisoned lock (a panic while
//! held) is not an error state for this workload — every critical
//! section is a small data-structure update — so poison is stripped.
//!
//! Scoped threads come straight from `std::thread::scope` (stable since
//! 1.63), which replaces `crossbeam::scope`.
//!
//! # Lock-order deadlock detection
//!
//! In debug builds (`cfg(debug_assertions)` — i.e. under `cargo test`)
//! every blocking acquisition is recorded in a per-thread held-lock
//! stack and a global acquisition-order graph. Acquiring lock `B` while
//! holding lock `A` adds the edge `A → B`; if the graph already proves
//! `B → … → A`, the two orders can interleave into a deadlock, and the
//! detector panics *at acquisition time* with both witness sites — the
//! `#[track_caller]` location of the current acquisition and the
//! location(s) that established the reverse order. Release builds
//! compile all tracking out; the guards are zero-cost wrappers.
//!
//! `try_lock` acquisitions never block, so they cannot close a cycle;
//! they are pushed on the held stack (edges *from* them still matter)
//! but do not record or check edges themselves.
//!
//! This is the dynamic complement to the static `conformance` pass
//! (rule `lock-discipline`): the linter proves every lock goes through
//! this guard API, and the detector proves the guarded acquisitions are
//! cycle-free on every path the test suite exercises.

// conformance: atomics(relaxed) — lock ids are opaque tokens; ordering comes from the locks themselves

use std::sync::{
    MutexGuard as StdMutexGuard, RwLockReadGuard as StdRwLockReadGuard,
    RwLockWriteGuard as StdRwLockWriteGuard,
};

pub use std::thread::{scope, Scope, ScopedJoinHandle};

#[cfg(debug_assertions)]
mod order {
    //! The lock-order registry backing the deadlock detector.
    //!
    //! Uses raw `std::sync::Mutex` internally — the registry cannot
    //! track itself, and `foundation` is the one crate the
    //! `lock-discipline` conformance rule exempts.

    use std::cell::RefCell;
    use std::collections::BTreeMap;
    use std::panic::Location;
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::sync::Mutex;

    /// A code location pair witnessing one recorded edge `from → to`:
    /// where `from` was acquired (and held), and where `to` was then
    /// acquired on top of it.
    #[derive(Clone, Copy)]
    struct Witness {
        held_at: &'static Location<'static>,
        acquired_at: &'static Location<'static>,
    }

    /// Global acquisition-order graph: `from-lock → to-lock → witness`.
    /// Keyed by per-instance lock ids, so independent tests sharing the
    /// process can never alias each other's locks.
    static GRAPH: Mutex<BTreeMap<u64, BTreeMap<u64, Witness>>> = Mutex::new(BTreeMap::new());

    static NEXT_ID: AtomicU64 = AtomicU64::new(1);

    /// Mint a fresh lock id.
    pub fn next_id() -> u64 {
        NEXT_ID.fetch_add(1, Ordering::Relaxed)
    }

    struct HeldLock {
        id: u64,
        acquired_at: &'static Location<'static>,
    }

    thread_local! {
        /// The locks this thread currently holds, in acquisition order.
        static HELD: RefCell<Vec<HeldLock>> = const { RefCell::new(Vec::new()) };
    }

    /// Pops its lock id from the thread's held stack on drop; embedded
    /// in every guard.
    pub struct Held {
        id: u64,
    }

    impl Drop for Held {
        fn drop(&mut self) {
            let id = self.id;
            HELD.with(|held| {
                let mut held = held.borrow_mut();
                // Guards may drop out of acquisition order; remove the
                // most recent matching entry.
                if let Some(i) = held.iter().rposition(|h| h.id == id) {
                    held.remove(i);
                }
            });
        }
    }

    /// Is `to` reachable from `from` in the order graph? Returns the
    /// witnessed edge path when it is.
    fn path(
        graph: &BTreeMap<u64, BTreeMap<u64, Witness>>,
        from: u64,
        to: u64,
    ) -> Option<Vec<(u64, u64, Witness)>> {
        let mut stack = vec![(from, Vec::new())];
        let mut visited = Vec::new();
        while let Some((node, trail)) = stack.pop() {
            if visited.contains(&node) {
                continue;
            }
            visited.push(node);
            if let Some(edges) = graph.get(&node) {
                for (&next, &witness) in edges {
                    let mut extended = trail.clone();
                    extended.push((node, next, witness));
                    if next == to {
                        return Some(extended);
                    }
                    stack.push((next, extended));
                }
            }
        }
        None
    }

    /// Record a blocking acquisition of `id` at `site`: check and add
    /// edges from every currently-held lock, then push onto the held
    /// stack. Panics when an edge would close a cycle.
    pub(crate) fn acquire(id: u64, site: &'static Location<'static>) -> Held {
        let inversion = HELD.with(|held| {
            let held = held.borrow();
            let mut graph = GRAPH.lock().unwrap_or_else(|p| p.into_inner());
            for h in held.iter() {
                if h.id == id {
                    // Re-entrant acquisition (legal for RwLock reads on
                    // some platforms); not an ordering edge.
                    continue;
                }
                let known = graph.get(&h.id).is_some_and(|e| e.contains_key(&id));
                if known {
                    continue;
                }
                if let Some(reverse) = path(&graph, id, h.id) {
                    return Some((h.id, h.acquired_at, reverse));
                }
                graph.entry(h.id).or_default().insert(
                    id,
                    Witness { held_at: h.acquired_at, acquired_at: site },
                );
            }
            None
        });

        if let Some((held_id, held_at, reverse)) = inversion {
            let mut msg = format!(
                "lock-order inversion detected (potential deadlock):\n  \
                 this thread acquires lock #{id} at {site}\n  \
                 while holding lock #{held_id} (acquired at {held_at}),\n  \
                 but the reverse order #{id} → … → #{held_id} is already on record:"
            );
            for (from, to, w) in &reverse {
                msg.push_str(&format!(
                    "\n    lock #{to} acquired at {} while holding lock #{from} (acquired at {})",
                    w.acquired_at, w.held_at
                ));
            }
            panic!("{msg}"); // conformance: allow(panic-policy) — the detector's contract is to panic with both witness stacks
        }

        push_held(id, site)
    }

    /// Record a non-blocking (`try_lock`) acquisition: it cannot close
    /// a cycle, so it only joins the held stack.
    pub(crate) fn push_held(id: u64, site: &'static Location<'static>) -> Held {
        HELD.with(|held| {
            held.borrow_mut().push(HeldLock { id, acquired_at: site });
        });
        Held { id }
    }
}

/// Per-lock detector state: a fresh id in debug builds, nothing in
/// release builds.
#[derive(Debug, Default)]
struct LockId {
    #[cfg(debug_assertions)]
    id: std::sync::OnceLock<u64>,
}

impl LockId {
    const fn new() -> LockId {
        LockId {
            #[cfg(debug_assertions)]
            id: std::sync::OnceLock::new(),
        }
    }

    #[cfg(debug_assertions)]
    fn get(&self) -> u64 {
        *self.id.get_or_init(order::next_id)
    }
}

/// A mutual-exclusion lock whose `lock()` returns the guard directly.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized> {
    #[cfg_attr(not(debug_assertions), allow(dead_code))]
    id: LockId,
    inner: std::sync::Mutex<T>,
}

/// RAII guard for [`Mutex::lock`]; releases on drop and, in debug
/// builds, pops the deadlock detector's held-lock stack.
pub struct MutexGuard<'a, T: ?Sized> {
    inner: StdMutexGuard<'a, T>,
    #[cfg(debug_assertions)]
    _held: order::Held,
}

impl<T> Mutex<T> {
    /// Wrap a value.
    pub fn new(value: T) -> Mutex<T> {
        Mutex { id: LockId::new(), inner: std::sync::Mutex::new(value) }
    }

    /// Consume the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|p| p.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, blocking; poison is stripped. In debug builds
    /// the acquisition is checked against the global lock-order graph
    /// and panics on a would-deadlock inversion.
    #[track_caller]
    pub fn lock(&self) -> MutexGuard<'_, T> {
        #[cfg(debug_assertions)]
        let _held = order::acquire(self.id.get(), std::panic::Location::caller());
        MutexGuard {
            inner: self.inner.lock().unwrap_or_else(|p| p.into_inner()),
            #[cfg(debug_assertions)]
            _held,
        }
    }

    /// Try to acquire without blocking.
    #[track_caller]
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        let inner = match self.inner.try_lock() {
            Ok(guard) => guard,
            Err(std::sync::TryLockError::Poisoned(p)) => p.into_inner(),
            Err(std::sync::TryLockError::WouldBlock) => return None,
        };
        Some(MutexGuard {
            inner,
            #[cfg(debug_assertions)]
            _held: order::push_held(self.id.get(), std::panic::Location::caller()),
        })
    }

    /// Mutable access without locking (requires `&mut self`).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(|p| p.into_inner())
    }
}

impl<T: ?Sized> std::ops::Deref for MutexGuard<'_, T> {
    type Target = T;

    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> std::ops::DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

impl<T: ?Sized + std::fmt::Debug> std::fmt::Debug for MutexGuard<'_, T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        std::fmt::Debug::fmt(&**self, f)
    }
}

/// A readers-writer lock whose `read()`/`write()` return guards
/// directly.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized> {
    #[cfg_attr(not(debug_assertions), allow(dead_code))]
    id: LockId,
    inner: std::sync::RwLock<T>,
}

/// RAII guard for [`RwLock::read`].
pub struct RwLockReadGuard<'a, T: ?Sized> {
    inner: StdRwLockReadGuard<'a, T>,
    #[cfg(debug_assertions)]
    _held: order::Held,
}

/// RAII guard for [`RwLock::write`].
pub struct RwLockWriteGuard<'a, T: ?Sized> {
    inner: StdRwLockWriteGuard<'a, T>,
    #[cfg(debug_assertions)]
    _held: order::Held,
}

impl<T> RwLock<T> {
    /// Wrap a value.
    pub fn new(value: T) -> RwLock<T> {
        RwLock { id: LockId::new(), inner: std::sync::RwLock::new(value) }
    }

    /// Consume the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|p| p.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire a shared read guard; poison is stripped. Checked by the
    /// debug-build deadlock detector like every blocking acquisition.
    #[track_caller]
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        #[cfg(debug_assertions)]
        let _held = order::acquire(self.id.get(), std::panic::Location::caller());
        RwLockReadGuard {
            inner: self.inner.read().unwrap_or_else(|p| p.into_inner()),
            #[cfg(debug_assertions)]
            _held,
        }
    }

    /// Acquire the exclusive write guard; poison is stripped. Checked
    /// by the debug-build deadlock detector.
    #[track_caller]
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        #[cfg(debug_assertions)]
        let _held = order::acquire(self.id.get(), std::panic::Location::caller());
        RwLockWriteGuard {
            inner: self.inner.write().unwrap_or_else(|p| p.into_inner()),
            #[cfg(debug_assertions)]
            _held,
        }
    }

    /// Mutable access without locking (requires `&mut self`).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(|p| p.into_inner())
    }
}

impl<T: ?Sized> std::ops::Deref for RwLockReadGuard<'_, T> {
    type Target = T;

    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized + std::fmt::Debug> std::fmt::Debug for RwLockReadGuard<'_, T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        std::fmt::Debug::fmt(&**self, f)
    }
}

impl<T: ?Sized> std::ops::Deref for RwLockWriteGuard<'_, T> {
    type Target = T;

    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> std::ops::DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

impl<T: ?Sized + std::fmt::Debug> std::fmt::Debug for RwLockWriteGuard<'_, T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        std::fmt::Debug::fmt(&**self, f)
    }
}

/// A work-stealing deque: the owner treats it as a LIFO stack (`push` /
/// `pop` at the back), thieves take from the front (`steal`), FIFO —
/// the classic Chase–Lev access pattern, implemented here over a single
/// [`Mutex`]-guarded `VecDeque` rather than lock-free rings because
/// every item in this workload is a whole crawl shard (milliseconds of
/// work), so the lock is never contended enough to matter.
///
/// Lock discipline: all three operations acquire exactly one lock and
/// release it before returning, so a `StealDeque` can never participate
/// in a lock-order cycle on its own; callers must still avoid holding a
/// deque guard while taking other locks (none of the accessors make
/// that possible — they return owned items).
#[derive(Debug, Default)]
pub struct StealDeque<T> {
    inner: Mutex<std::collections::VecDeque<T>>,
}

impl<T> StealDeque<T> {
    /// An empty deque.
    pub fn new() -> StealDeque<T> {
        StealDeque { inner: Mutex::new(std::collections::VecDeque::new()) }
    }

    /// Owner: push one item onto the back.
    pub fn push(&self, item: T) {
        self.inner.lock().push_back(item);
    }

    /// Owner: pop the most recently pushed item (LIFO — keeps the owner
    /// on its freshest work, leaving the oldest for thieves).
    pub fn pop(&self) -> Option<T> {
        self.inner.lock().pop_back()
    }

    /// Thief: steal the oldest item from the front (FIFO).
    pub fn steal(&self) -> Option<T> {
        self.inner.lock().pop_front()
    }

    /// Items currently queued.
    pub fn len(&self) -> usize {
        self.inner.lock().len()
    }

    /// Is the deque empty?
    pub fn is_empty(&self) -> bool {
        self.inner.lock().is_empty()
    }
}

/// A condition variable paired with [`Mutex`].
///
/// Wraps [`std::sync::Condvar`] so waiters hand over (and get back) the
/// workspace's deadlock-checked [`MutexGuard`] rather than a raw std
/// guard. While a thread is blocked in `wait*` it holds no other locks
/// (the guard it surrendered is the only one a waiter may hold by the
/// lock-discipline rule), so the held-lock marker is carried across the
/// wait unchanged — conservative, and it keeps the re-acquisition
/// invisible to the order graph (no new edges can form while parked).
#[derive(Debug, Default)]
pub struct Condvar {
    inner: std::sync::Condvar,
}

impl Condvar {
    /// A new condition variable.
    pub fn new() -> Condvar {
        Condvar { inner: std::sync::Condvar::new() }
    }

    /// Atomically release `guard` and block until notified; the lock is
    /// re-acquired before returning. Poison is stripped like every
    /// other acquisition in this module.
    pub fn wait<'a, T>(&self, guard: MutexGuard<'a, T>) -> MutexGuard<'a, T> {
        let MutexGuard {
            inner,
            #[cfg(debug_assertions)]
            _held,
        } = guard;
        let inner = self.inner.wait(inner).unwrap_or_else(|p| p.into_inner());
        MutexGuard {
            inner,
            #[cfg(debug_assertions)]
            _held,
        }
    }

    /// [`Condvar::wait`] with a timeout; the boolean is `true` when the
    /// wait timed out rather than being notified.
    pub fn wait_timeout<'a, T>(
        &self,
        guard: MutexGuard<'a, T>,
        dur: std::time::Duration,
    ) -> (MutexGuard<'a, T>, bool) {
        let MutexGuard {
            inner,
            #[cfg(debug_assertions)]
            _held,
        } = guard;
        let (inner, res) = self
            .inner
            .wait_timeout(inner, dur)
            .unwrap_or_else(|p| p.into_inner());
        (
            MutexGuard {
                inner,
                #[cfg(debug_assertions)]
                _held,
            },
            res.timed_out(),
        )
    }

    /// Wake one waiter.
    pub fn notify_one(&self) {
        self.inner.notify_one();
    }

    /// Wake every waiter.
    pub fn notify_all(&self) {
        self.inner.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn condvar_wakes_waiter_and_times_out() {
        let pair = std::sync::Arc::new((Mutex::new(false), Condvar::new()));
        // Timeout path: nothing signals, so the wait must report a timeout.
        {
            let (lock, cv) = &*pair;
            let guard = lock.lock();
            let (_guard, timed_out) =
                cv.wait_timeout(guard, std::time::Duration::from_millis(10));
            assert!(timed_out);
        }
        // Notify path: a second thread flips the flag and signals.
        let p2 = std::sync::Arc::clone(&pair);
        let t = std::thread::spawn(move || {
            let (lock, cv) = &*p2;
            *lock.lock() = true;
            cv.notify_one();
        });
        let (lock, cv) = &*pair;
        let mut guard = lock.lock();
        while !*guard {
            let (g, timed_out) = cv.wait_timeout(guard, std::time::Duration::from_secs(5));
            guard = g;
            assert!(!timed_out || *guard, "waiter starved");
        }
        t.join().unwrap();
    }
    use std::panic::{catch_unwind, AssertUnwindSafe};
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn mutex_basics() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert!(m.try_lock().is_some());
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_basics() {
        let l = RwLock::new(vec![1, 2]);
        assert_eq!(l.read().len(), 2);
        l.write().push(3);
        assert_eq!(l.into_inner(), vec![1, 2, 3]);
    }

    #[test]
    fn lock_survives_panic_in_holder() {
        let m = std::sync::Arc::new(Mutex::new(0u32));
        let m2 = std::sync::Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _guard = m2.lock();
            panic!("poison it");
        })
        .join();
        // parking_lot semantics: still usable.
        *m.lock() += 7;
        assert_eq!(*m.lock(), 7);
    }

    #[test]
    fn scoped_threads_share_stack_state() {
        let counter = AtomicUsize::new(0);
        scope(|s| {
            for _ in 0..4 {
                s.spawn(|| {
                    for _ in 0..100 {
                        counter.fetch_add(1, Ordering::Relaxed);
                    }
                });
            }
        });
        assert_eq!(counter.into_inner(), 400);
    }

    // ------------------------------------------- lock-order detector

    #[test]
    fn consistent_lock_order_stays_silent() {
        let a = Mutex::new(0u32);
        let b = Mutex::new(0u32);
        // A → B, many times, from several threads: one global order is
        // never an inversion.
        scope(|s| {
            for _ in 0..4 {
                s.spawn(|| {
                    for _ in 0..50 {
                        let ga = a.lock();
                        let mut gb = b.lock();
                        *gb += *ga;
                    }
                });
            }
        });
        assert_eq!(*b.lock(), 0);
    }

    #[test]
    #[should_panic(expected = "lock-order inversion detected")]
    fn ab_ba_inversion_panics() {
        let a = Mutex::new(());
        let b = Mutex::new(());
        {
            let _ga = a.lock();
            let _gb = b.lock(); // establishes A → B
        }
        let _gb = b.lock();
        let _ga = a.lock(); // B → A closes the cycle: must panic
    }

    #[test]
    fn inversion_report_names_both_witness_sites() {
        let a = Mutex::new(());
        let b = Mutex::new(());
        {
            let _ga = a.lock();
            let _gb = b.lock(); // first witness: this line
        }
        let err = catch_unwind(AssertUnwindSafe(|| {
            let _gb = b.lock();
            let _ga = a.lock(); // second witness: this line
        }))
        .expect_err("inversion must panic");
        let msg = err
            .downcast_ref::<String>()
            .cloned()
            .unwrap_or_else(|| "<non-string>".into());
        // Both acquisition sites land in the report, file and line.
        assert!(msg.contains("sync.rs"), "sites are source locations:\n{msg}");
        assert!(
            msg.contains("while holding lock #"),
            "current held lock is named:\n{msg}"
        );
        assert!(
            msg.contains("already on record"),
            "recorded reverse order is cited:\n{msg}"
        );
        // The message cites at least two distinct source lines.
        let mut lines: Vec<&str> = msg
            .match_indices("sync.rs:")
            .map(|(i, _)| &msg[i..msg[i..].find([' ', ',', '\n']).map_or(msg.len(), |e| i + e)])
            .collect();
        lines.sort_unstable();
        lines.dedup();
        assert!(lines.len() >= 2, "two distinct witness sites:\n{msg}");
    }

    #[test]
    #[should_panic(expected = "lock-order inversion detected")]
    fn transitive_inversion_panics() {
        // A → B, B → C, then C → A: the cycle spans three locks.
        let a = Mutex::new(());
        let b = Mutex::new(());
        let c = Mutex::new(());
        {
            let _ga = a.lock();
            let _gb = b.lock();
        }
        {
            let _gb = b.lock();
            let _gc = c.lock();
        }
        let _gc = c.lock();
        let _ga = a.lock();
    }

    #[test]
    #[should_panic(expected = "lock-order inversion detected")]
    fn rwlock_participates_in_ordering() {
        let a = RwLock::new(());
        let b = Mutex::new(());
        {
            let _ga = a.read();
            let _gb = b.lock();
        }
        let _gb = b.lock();
        let _ga = a.write();
    }

    #[test]
    fn try_lock_does_not_close_cycles() {
        let a = Mutex::new(());
        let b = Mutex::new(());
        {
            let _ga = a.lock();
            let _gb = b.lock(); // A → B on record
        }
        // try_lock(A) while holding B never blocks, so it is exempt
        // from the cycle check even though the order is inverted.
        let _gb = b.lock();
        let ga = a.try_lock();
        assert!(ga.is_some());
    }

    // ------------------------------------------- work-stealing deque

    #[test]
    fn steal_deque_owner_is_lifo_thief_is_fifo() {
        let d = StealDeque::new();
        assert!(d.is_empty());
        d.push(1);
        d.push(2);
        d.push(3);
        assert_eq!(d.len(), 3);
        assert_eq!(d.pop(), Some(3), "owner pops the freshest item");
        assert_eq!(d.steal(), Some(1), "thief steals the oldest item");
        assert_eq!(d.pop(), Some(2));
        assert_eq!(d.pop(), None);
        assert_eq!(d.steal(), None);
    }

    /// Conservation under contention: 8 threads (each owning one deque,
    /// stealing from the others when dry) collectively consume every
    /// item exactly once — nothing lost, nothing duplicated.
    #[test]
    fn steal_deque_eight_thread_conservation() {
        const WORKERS: usize = 8;
        const ITEMS: usize = 4_000;
        let deques: Vec<StealDeque<usize>> = (0..WORKERS).map(|_| StealDeque::new()).collect();
        // Deliberately unbalanced: all items start on deque 0, so every
        // other worker can only make progress by stealing.
        for i in 0..ITEMS {
            deques[0].push(i);
        }
        let taken: Vec<Mutex<Vec<usize>>> = (0..WORKERS).map(|_| Mutex::new(Vec::new())).collect();
        scope(|s| {
            for w in 0..WORKERS {
                let deques = &deques;
                let taken = &taken;
                s.spawn(move || loop {
                    let item = deques[w].pop().or_else(|| {
                        (1..WORKERS).find_map(|off| deques[(w + off) % WORKERS].steal())
                    });
                    match item {
                        Some(i) => taken[w].lock().push(i),
                        None => break,
                    }
                });
            }
        });
        let mut all: Vec<usize> = taken.iter().flat_map(|t| t.lock().clone()).collect();
        assert_eq!(all.len(), ITEMS, "every item consumed");
        all.sort_unstable();
        all.dedup();
        assert_eq!(all.len(), ITEMS, "no item consumed twice");
        assert!(deques.iter().all(|d| d.is_empty()));
    }

    /// The deque's single internal lock participates in the global
    /// lock-order graph like any other: an AB/BA interleaving between
    /// two deques' inner locks is caught with both witness sites. (The
    /// public API cannot express this — `push`/`pop`/`steal` never hold
    /// the guard across a call — so this reaches into `inner` to prove
    /// the detector covers the new lock.)
    #[test]
    #[should_panic(expected = "lock-order inversion detected")]
    fn steal_deque_inner_lock_is_order_checked() {
        let a: StealDeque<u8> = StealDeque::new();
        let b: StealDeque<u8> = StealDeque::new();
        {
            let _ga = a.inner.lock();
            let _gb = b.inner.lock(); // establishes A → B
        }
        let _gb = b.inner.lock();
        let _ga = a.inner.lock(); // B → A closes the cycle: must panic
    }

    #[test]
    fn detector_tracks_release_correctly() {
        // A held, released, then B → A is fine as long as A → B was
        // never recorded while both were held.
        let a = Mutex::new(());
        let b = Mutex::new(());
        {
            let _ga = a.lock();
        } // released before B
        {
            let _gb = b.lock();
            let _ga = a.lock(); // records B → A
        }
        {
            let _gb = b.lock();
            let _ga = a.lock(); // same direction again: silent
        }
    }
}
