//! # acctrade-foundation
//!
//! The workspace's zero-dependency substrate. Every capability the
//! measurement pipeline used to pull from crates.io lives here as a
//! small, deterministic, auditable in-tree implementation:
//!
//! * [`rng`] — a seedable ChaCha8 stream-cipher RNG (replaces `rand` +
//!   `rand_chacha`). Same seed ⇒ same stream, forever.
//! * [`json`] — a JSON value model, parser, serializer, and the
//!   [`json::JsonCodec`] trait (replaces `serde` + `serde_json`).
//! * [`sync`] — non-poisoning `Mutex`/`RwLock` wrappers and scoped
//!   threads (replaces `parking_lot` + `crossbeam::scope`).
//! * [`bytes`] — cheaply cloneable shared byte buffers (replaces
//!   `bytes`).
//! * [`check`] — a property-testing harness with seeded generators and
//!   shrinking (replaces `proptest`).
//! * [`bench`] — a criterion-style benchmarking harness with JSON
//!   reports (replaces `criterion`).
//!
//! The design rule (DESIGN.md "substitution rule"): the study must be
//! reproducible from a seed alone, offline, with no registry access.
//! Everything here is `std`-only.

#![warn(missing_docs)]

pub mod bench;
pub mod bytes;
pub mod check;
pub mod json;
pub mod rng;
pub mod sync;
