//! Deterministic merge of parallel shard output.
//!
//! The sharded engine ([`crate::steal`]) crawls each (marketplace,
//! platform-chain) shard on whatever worker thread picks it up, so the
//! order in which shards *complete* depends on the OS scheduler. The
//! campaign's artifacts must not. This module defines the canonical
//! record order the campaign commits in:
//!
//! ```text
//! (collected_unix, marketplace, offer_url, iteration)
//! ```
//!
//! The leading key is the record's **virtual** collection timestamp —
//! every shard stamps records from its own deterministic lane clock, so
//! the merged stream interleaves shards exactly as a single sequential
//! crawler walking the same virtual timeline would. The remaining keys
//! are a stable tiebreak: `(marketplace, offer_url, iteration)` is
//! unique within one iteration's crawl (a marketplace never lists the
//! same offer URL twice on one walk), making the key a total order over
//! any iteration's output and the sort result independent of input
//! permutation. Arrival order is *never* consulted.

use crate::record::OfferRecord;

/// The canonical sort key: virtual collection time, then the stable
/// `(marketplace, offer_url, iteration)` tiebreak.
pub fn merge_key(record: &OfferRecord) -> (i64, &str, &str, usize) {
    (record.collected_unix, &record.marketplace, &record.offer_url, record.iteration)
}

/// Sort records into canonical order. Any permutation of the same
/// multiset of records yields the same output (the parallel-determinism
/// property; see `tests/proptests.rs`).
pub(crate) fn sort_records(records: &mut [OfferRecord]) {
    records.sort_by(|a, b| merge_key(a).cmp(&merge_key(b)));
}

/// Flatten per-shard record batches (already in shard-index order) into
/// one canonically ordered stream.
pub fn merge_shards(shards: Vec<Vec<OfferRecord>>) -> Vec<OfferRecord> {
    let mut all: Vec<OfferRecord> = shards.into_iter().flatten().collect();
    sort_records(&mut all);
    all
}

/// Normalize records for cross-transport comparison.
///
/// A crawl over a real transport (`acctrade-httpd`'s loopback TCP)
/// stamps `collected_unix` from the wall clock, so the timestamps —
/// and nothing else — differ from the same crawl run in sim mode. This
/// zeroes the timestamp and re-sorts by the remaining stable key, so
/// two crawls of the same seeded world are comparable field-for-field
/// regardless of transport. The parity gate (`tests/` at the workspace
/// root, CI gate 8) asserts `normalize_for_parity(sim) ==
/// normalize_for_parity(loopback)`.
pub fn normalize_for_parity(mut records: Vec<OfferRecord>) -> Vec<OfferRecord> {
    for r in &mut records {
        r.collected_unix = 0;
    }
    sort_records(&mut records);
    records
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(t: i64, market: &str, url: &str, iter: usize) -> OfferRecord {
        OfferRecord {
            marketplace: market.into(),
            offer_url: url.into(),
            title: String::new(),
            seller: None,
            seller_country: None,
            price_usd: None,
            platform: None,
            category: None,
            claimed_followers: None,
            claims_verified: false,
            monthly_revenue_usd: None,
            income_source: None,
            description: None,
            profile_link: None,
            handle: None,
            collected_unix: t,
            iteration: iter,
        }
    }

    #[test]
    fn merge_orders_by_virtual_time_then_stable_tiebreak() {
        let a = rec(10, "Z2U", "http://z2u.com/offer/2", 0);
        let b = rec(10, "Accsmarket", "http://accsmarket.com/offer/9", 0);
        let c = rec(5, "Z2U", "http://z2u.com/offer/1", 0);
        let merged = merge_shards(vec![vec![a.clone()], vec![b.clone(), c.clone()]]);
        assert_eq!(merged, vec![c, b, a]);
    }

    #[test]
    fn normalize_strips_time_and_resorts() {
        let a = rec(500, "Z2U", "http://z2u.com/offer/2", 0);
        let b = rec(100, "Z2U", "http://z2u.com/offer/1", 0);
        let sim = normalize_for_parity(vec![a.clone(), b.clone()]);
        // Same offers collected at different (wall) times normalize equal.
        let mut a2 = a.clone();
        a2.collected_unix = 999_999;
        let mut b2 = b.clone();
        b2.collected_unix = 777;
        let loopback = normalize_for_parity(vec![b2, a2]);
        assert_eq!(sim, loopback);
        assert!(sim.iter().all(|r| r.collected_unix == 0));
    }

    #[test]
    fn merge_is_permutation_invariant() {
        let rs: Vec<OfferRecord> = (0..8)
            .map(|i| rec(100 - (i % 3), "M", &format!("http://m/offer/{i}"), 0))
            .collect();
        let forward = merge_shards(vec![rs.clone()]);
        let reversed = merge_shards(vec![rs.into_iter().rev().collect()]);
        assert_eq!(forward, reversed);
    }
}
