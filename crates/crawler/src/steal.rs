//! The sharded, work-stealing parallel crawl engine.
//!
//! One campaign iteration is split into **shards**: the unit of work is
//! a (marketplace, platform listing chain) pair, discovered by fetching
//! each marketplace's storefront. Shards run on `workers` OS threads
//! coordinated by per-worker [`foundation::sync::StealDeque`]s — a
//! worker drains its own deque LIFO and steals FIFO from its neighbours
//! when idle — so the load balances even though chain sizes are skewed.
//!
//! ## Why this stays deterministic
//!
//! Parallelism never touches the simulation's shared RNG or clock:
//!
//! 1. **Discovery is sequential.** The coordinator fetches every
//!    storefront on a per-marketplace [`acctrade_net::lane::Lane`]
//!    whose salt depends only on (host, iteration). The seed URLs a
//!    storefront yields depend only on world state.
//! 2. **Each chain shard gets its own lane**, salted by (host,
//!    iteration, seed URL) and starting at its market's discovery-lane
//!    end. A shard's entire behaviour — latency draws, politeness
//!    waits, robots delays, record timestamps — is a pure function of
//!    (fabric seed, salt, start time), independent of which worker runs
//!    it or when.
//! 3. **Results merge canonically.** Lanes fold back into the fabric in
//!    fixed shard order ([`acctrade_net::sim::SimNet::absorb_lane`]);
//!    records sort by [`crate::merge::merge_key`], never arrival order.
//!
//! Steal/completion order therefore only shows up in the per-worker
//! [`WorkerReport`] diagnostics, which are deliberately kept out of the
//! deterministic artifacts.
//!
//! ## Why this stays polite
//!
//! `k` chains on one host crawl concurrently in *virtual* time, so each
//! shard client is forked with `host_share = k`: its token bucket gets
//! `rate / k` and its robots crawl-delay is stretched `k×`
//! ([`acctrade_net::client::Client::fork_for_shard`]). The aggregate
//! request density against any host never exceeds what one sequential
//! polite crawler would have produced.

// conformance: atomics(acquire, release, acqrel) — Chase-Lev deque protocol orderings

use crate::crawl::{CrawlStats, MarketplaceCrawler};
use crate::record::OfferRecord;
use acctrade_market::config::{MarketplaceId, ALL_MARKETPLACES};
use acctrade_net::client::Client;
use acctrade_net::lane::Lane;
use foundation::sync::{scope, Mutex, StealDeque};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;

/// One unit of parallel work: crawl a single platform listing chain.
#[derive(Debug)]
pub struct ShardJob {
    /// Stable shard index (position in the canonical shard order).
    pub index: usize,
    /// Marketplace the chain belongs to.
    pub market: MarketplaceId,
    /// 1-based chain index within the marketplace (0 is reserved for
    /// the discovery pseudo-shard in checkpoint cursors).
    pub chain: usize,
    /// The chain's seed listing URL.
    pub seed_url: String,
    /// How many sibling chains share this host (politeness divisor).
    pub host_share: u32,
    /// The shard's private execution lane.
    pub lane: Arc<Lane>,
}

/// The result of crawling one shard.
#[derive(Debug)]
pub struct ShardOutcome {
    /// Stable shard index (matches [`ShardJob::index`]).
    pub index: usize,
    /// Marketplace.
    pub market: MarketplaceId,
    /// 1-based chain index within the marketplace.
    pub chain: usize,
    /// Records collected, stamped with lane virtual time.
    pub records: Vec<OfferRecord>,
    /// Fetch statistics.
    pub stats: CrawlStats,
    /// The shard's lane (folded into the fabric by the campaign).
    pub lane: Arc<Lane>,
    /// Which worker executed the shard (diagnostic; schedule-dependent).
    pub worker: usize,
    /// Whether the shard was stolen rather than run by its home worker
    /// (diagnostic; schedule-dependent).
    pub stolen: bool,
}

/// Per-worker execution diagnostics. Schedule-dependent by nature, so
/// these are reported to the caller but never merged into the
/// deterministic run manifest.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct WorkerReport {
    /// Worker index.
    pub worker: usize,
    /// Shards this worker executed.
    pub shards_run: usize,
    /// Of those, how many it stole from another worker's deque.
    pub shards_stolen: usize,
    /// Total virtual time spent inside shards (µs).
    pub busy_virtual_us: u64,
}

/// Everything one parallel iteration produced.
#[derive(Debug)]
pub struct IterationRun {
    /// Per-marketplace discovery lanes, in canonical marketplace order.
    pub discovery: Vec<(MarketplaceId, Arc<Lane>)>,
    /// Shard outcomes sorted by stable shard index. When `killed`, only
    /// the shards completed before the kill are present.
    pub outcomes: Vec<ShardOutcome>,
    /// Per-worker diagnostics (schedule-dependent).
    pub reports: Vec<WorkerReport>,
    /// Total shards planned for the iteration.
    pub shards_total: usize,
    /// Whether a `kill_after_shards` hook fired mid-iteration.
    pub killed: bool,
}

/// FNV-1a over a label string: the stable lane salt. Depends only on
/// the label bytes, so shard substreams are identical across runs and
/// across worker counts.
fn salt(label: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in label.as_bytes() {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Run one campaign iteration across all marketplaces on `workers`
/// threads. `kill_after_shards` is the crash-injection hook: after that
/// many shard completions the engine stops pulling work and returns
/// with `killed = true` (simulating a process death mid-parallel-crawl;
/// nothing is persisted by this layer, so the caller can abandon the
/// iteration exactly as a real crash would).
pub fn run_iteration(
    client: &Client,
    iteration: usize,
    workers: usize,
    kill_after_shards: Option<usize>,
) -> IterationRun {
    let workers = workers.max(1);
    let net = client.net();

    // Phase A — sequential discovery on the coordinator: one lane per
    // marketplace, all starting at the iteration's shared-clock time.
    let mut discovery = Vec::new();
    let mut jobs: Vec<ShardJob> = Vec::new();
    for market in ALL_MARKETPLACES {
        let host = market.host();
        let lane = net.lane(salt(&format!("discover:{host}:{iteration}")));
        let shard_client = client.fork_for_shard(Arc::clone(&lane), 1);
        let mut crawler = MarketplaceCrawler::new(&shard_client, market);
        let (seeds, _stats) = crawler.discover();
        let share = seeds.len().max(1) as u32;
        for (chain0, seed_url) in seeds.into_iter().enumerate() {
            let chain_lane = net.lane_starting_at(
                salt(&format!("chain:{host}:{iteration}:{seed_url}")),
                lane.now_us(),
            );
            jobs.push(ShardJob {
                index: jobs.len(),
                market,
                chain: chain0 + 1,
                seed_url,
                host_share: share,
                lane: chain_lane,
            });
        }
        discovery.push((market, lane));
    }
    let shards_total = jobs.len();

    // Phase B — work-stealing execution. Jobs are dealt round-robin so
    // every worker starts with a slice of every marketplace.
    let deques: Vec<StealDeque<ShardJob>> = (0..workers).map(|_| StealDeque::new()).collect();
    for (i, job) in jobs.into_iter().enumerate() {
        deques[i % workers].push(job);
    }

    let outcomes: Mutex<Vec<ShardOutcome>> = Mutex::new(Vec::new());
    let reports: Mutex<Vec<WorkerReport>> = Mutex::new(Vec::new());
    let completions = AtomicUsize::new(0);
    let killed = AtomicBool::new(false);
    let ambient = telemetry::recorder();

    scope(|s| {
        for w in 0..workers {
            let deques = &deques;
            let outcomes = &outcomes;
            let reports = &reports;
            let completions = &completions;
            let killed = &killed;
            let ambient = ambient.clone();
            s.spawn(move || {
                // Commutative counters/histograms flow into the shared
                // ambient recorder; schedule-dependent span attribution
                // stays on a worker-local recorder aggregated below.
                let _scope = ambient.enter();
                let local = telemetry::Recorder::new();
                let mut report = WorkerReport { worker: w, ..WorkerReport::default() };
                while !killed.load(Ordering::Acquire) {
                    let (job, stolen) = match next_job(deques, w) {
                        Some(pair) => pair,
                        None => break,
                    };
                    local.set_virtual_clock(Arc::clone(&job.lane) as Arc<dyn telemetry::VirtualClock>);
                    let span = local.span_starting_at(
                        &format!("shard.{}.{}", job.market.name(), job.chain),
                        job.lane.start_us(),
                    );
                    let shard_client =
                        client.fork_for_shard(Arc::clone(&job.lane), job.host_share);
                    let mut crawler = MarketplaceCrawler::new(&shard_client, job.market);
                    let (records, stats) = crawler.crawl_chain(&job.seed_url, iteration);
                    drop(span);
                    report.shards_run += 1;
                    report.shards_stolen += usize::from(stolen);
                    report.busy_virtual_us += job.lane.now_us() - job.lane.start_us();
                    outcomes.lock().push(ShardOutcome {
                        index: job.index,
                        market: job.market,
                        chain: job.chain,
                        records,
                        stats,
                        lane: job.lane,
                        worker: w,
                        stolen,
                    });
                    let done = completions.fetch_add(1, Ordering::AcqRel) + 1;
                    if kill_after_shards.is_some_and(|k| done >= k) {
                        killed.store(true, Ordering::Release);
                    }
                }
                reports.lock().push(report);
            });
        }
    });

    let mut outcomes = outcomes.into_inner();
    outcomes.sort_by_key(|o| o.index);
    let mut reports = reports.into_inner();
    reports.sort_by_key(|r| r.worker);
    IterationRun {
        discovery,
        outcomes,
        reports,
        shards_total,
        killed: killed.load(Ordering::Acquire),
    }
}

/// Pop from the worker's own deque (LIFO), else steal FIFO from the
/// nearest non-empty neighbour. Returns the job and whether it was
/// stolen.
fn next_job(deques: &[StealDeque<ShardJob>], w: usize) -> Option<(ShardJob, bool)> {
    if let Some(job) = deques[w].pop() {
        return Some((job, false));
    }
    let n = deques.len();
    for off in 1..n {
        if let Some(job) = deques[(w + off) % n].steal() {
            return Some((job, true));
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use acctrade_net::sim::SimNet;
    use acctrade_workload::world::{World, WorldParams};

    fn setup(seed: u64) -> (World, std::sync::Arc<SimNet>) {
        let world = World::generate(WorldParams { seed, scale: 0.01 });
        let net = SimNet::new(seed);
        world.deploy(&net);
        (world, net)
    }

    #[test]
    fn every_shard_is_processed_exactly_once() {
        let (_world, net) = setup(31);
        let client = Client::new(&net, "acctrade-crawler/0.1").with_politeness(50.0, 10.0);
        let run = run_iteration(&client, 0, 4, None);
        assert!(!run.killed);
        assert_eq!(run.outcomes.len(), run.shards_total);
        let mut indexes: Vec<usize> = run.outcomes.iter().map(|o| o.index).collect();
        indexes.dedup();
        assert_eq!(indexes, (0..run.shards_total).collect::<Vec<_>>());
        assert_eq!(
            run.reports.iter().map(|r| r.shards_run).sum::<usize>(),
            run.shards_total,
        );
    }

    #[test]
    fn worker_counts_agree_on_merged_records() {
        let (_w1, net1) = setup(32);
        let (_w8, net8) = setup(32);
        let c1 = Client::new(&net1, "acctrade-crawler/0.1").with_politeness(50.0, 10.0);
        let c8 = Client::new(&net8, "acctrade-crawler/0.1").with_politeness(50.0, 10.0);
        let r1 = run_iteration(&c1, 0, 1, None);
        let r8 = run_iteration(&c8, 0, 8, None);
        let m1 = crate::merge::merge_shards(r1.outcomes.into_iter().map(|o| o.records).collect());
        let m8 = crate::merge::merge_shards(r8.outcomes.into_iter().map(|o| o.records).collect());
        assert!(!m1.is_empty());
        assert_eq!(m1, m8, "merged stream must not depend on worker count");
    }

    #[test]
    fn kill_hook_stops_the_iteration_early() {
        let (_world, net) = setup(33);
        let client = Client::new(&net, "acctrade-crawler/0.1").with_politeness(50.0, 10.0);
        let run = run_iteration(&client, 0, 2, Some(3));
        assert!(run.killed);
        assert!(run.outcomes.len() < run.shards_total);
        assert!(run.outcomes.len() >= 3, "kill fires only after 3 completions");
    }
}
